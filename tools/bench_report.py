#!/usr/bin/env python
"""Run the fast-path benchmark suite and write ``BENCH_PR3.json``.

The report is the repo's first perf-trajectory data point: per-app window
extraction and final-round re-solve wall-clock (fast path vs reference),
events/sec, plus enough environment metadata to compare runs.  CI runs
this on a two-app subset and uploads the JSON as an artifact; run it
locally over all apps with::

    PYTHONPATH=src python tools/bench_report.py --output BENCH_PR3.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, REPO_ROOT)
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from benchmarks.bench_fastpath import (  # noqa: E402
    DEFAULT_REPEATS,
    DEFAULT_ROUNDS,
    run_suite,
)


def _git_commit() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--apps",
        nargs="*",
        default=None,
        help="app ids to benchmark (default: all registered apps)",
    )
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_PR3.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    started = time.time()
    suite = run_suite(args.apps, rounds=args.rounds, repeats=args.repeats)
    suite["meta"] = {
        "generated_unix": round(started, 3),
        "wall_clock_s": round(time.time() - started, 3),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "commit": _git_commit(),
    }
    with open(args.output, "w", encoding="utf-8") as fp:
        json.dump(suite, fp, indent=2, sort_keys=True)
        fp.write("\n")

    for entry in suite["apps"]:
        print(
            f"{entry['app_id']}: extract {entry['extract_speedup']:.1f}x, "
            f"re-solve {entry['resolve_speedup']:.1f}x"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
