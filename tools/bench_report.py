#!/usr/bin/env python
"""Run the fast-path benchmark suite, write a BENCH json, and (optionally)
gate against a committed baseline.

The report is the repo's perf-trajectory data point: per-app window
extraction and final-round re-solve wall-clock (fast path vs reference),
per-backend LP solve times, events/sec, plus enough environment metadata
to compare runs.  CI runs this on a two-app subset, uploads the JSON as
an artifact, and *gates* it against the committed ``BENCH_PR3.json``
baseline::

    python tools/bench_report.py --apps App-2 App-8 --repeats 3 \\
        --output bench_current.json --baseline BENCH_PR3.json --gate

The gate fails (exit 1) when the fast path stops paying for itself:

* App-8's incremental re-solve speedup drops below 2x, or
* the summed incremental re-solve time over apps present in both suites
  regresses by more than 25% against the baseline.

Run locally over all apps with::

    PYTHONPATH=src python tools/bench_report.py --output BENCH_PR4.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, REPO_ROOT)
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from benchmarks.bench_fastpath import (  # noqa: E402
    DEFAULT_REPEATS,
    DEFAULT_ROUNDS,
    run_suite,
)


def _git_commit() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


#: Gate thresholds (see module docstring).
MIN_APP8_RESOLVE_SPEEDUP = 2.0
MAX_SOLVE_TIME_REGRESSION = 1.25


def evaluate_gate(suite, baseline):
    """Compare a fresh benchmark ``suite`` against a ``baseline`` suite.

    Returns ``(ok, lines)``: ``ok`` is False when a gate tripped, and
    ``lines`` is a human-readable verdict per check.  Pure function so
    the CI behavior is unit-testable without running benchmarks.
    """
    ok = True
    lines = []
    new_apps = {entry["app_id"]: entry for entry in suite["apps"]}
    base_apps = {entry["app_id"]: entry for entry in baseline["apps"]}

    app8 = new_apps.get("App-8")
    if app8 is not None:
        speedup = app8["resolve_speedup"]
        passed = speedup >= MIN_APP8_RESOLVE_SPEEDUP
        ok = ok and passed
        lines.append(
            f"{'PASS' if passed else 'FAIL'}: App-8 re-solve speedup "
            f"{speedup:.2f}x (floor {MIN_APP8_RESOLVE_SPEEDUP:.1f}x)"
        )
    else:
        lines.append("SKIP: App-8 not benchmarked; speedup floor not checked")

    common = sorted(new_apps.keys() & base_apps.keys())
    if common:
        new_total = sum(new_apps[a]["resolve_incremental_s"] for a in common)
        base_total = sum(
            base_apps[a]["resolve_incremental_s"] for a in common
        )
        limit = MAX_SOLVE_TIME_REGRESSION * base_total
        passed = new_total <= limit
        ok = ok and passed
        lines.append(
            f"{'PASS' if passed else 'FAIL'}: total incremental re-solve "
            f"over {len(common)} common app(s) {new_total * 1e3:.2f}ms "
            f"(baseline {base_total * 1e3:.2f}ms, limit "
            f"{limit * 1e3:.2f}ms)"
        )
    else:
        ok = False
        lines.append("FAIL: no apps in common with the baseline suite")
    return ok, lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--apps",
        nargs="*",
        default=None,
        help="app ids to benchmark (default: all registered apps)",
    )
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_PR3.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH json to compare against",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 when the comparison against --baseline regresses",
    )
    args = parser.parse_args(argv)
    if args.gate and not args.baseline:
        parser.error("--gate requires --baseline")

    started = time.time()
    suite = run_suite(args.apps, rounds=args.rounds, repeats=args.repeats)
    suite["meta"] = {
        "generated_unix": round(started, 3),
        "wall_clock_s": round(time.time() - started, 3),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "commit": _git_commit(),
    }
    with open(args.output, "w", encoding="utf-8") as fp:
        json.dump(suite, fp, indent=2, sort_keys=True)
        fp.write("\n")

    for entry in suite["apps"]:
        print(
            f"{entry['app_id']}: extract {entry['extract_speedup']:.1f}x, "
            f"re-solve {entry['resolve_speedup']:.1f}x"
        )
    print(f"wrote {args.output}")

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as fp:
            baseline = json.load(fp)
        ok, lines = evaluate_gate(suite, baseline)
        print(f"gate vs {args.baseline}:")
        for line in lines:
            print(f"  {line}")
        if args.gate and not ok:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
