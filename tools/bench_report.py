#!/usr/bin/env python
"""Run the fast-path benchmark suite, write a BENCH json, and (optionally)
gate against a committed baseline.

The report is the repo's perf-trajectory data point: per-app window
extraction and final-round re-solve wall-clock (fast path vs reference),
per-backend LP solve times, events/sec, plus enough environment metadata
to compare runs.  ``--tier scale`` adds the synthetic ``App-XL*``
workloads (``scale_apps`` in the JSON): per-backend cold-solve wall
clock with phase breakdown, factorization counts, and peak RSS, each
backend subprocess-isolated under a ``--budget-s`` wall-clock cap.

CI runs the small tier on a two-app subset plus a one-round scale smoke
(``--tier scale --apps App-XL1 --rounds 1 --scale-backends revised``),
uploads the JSON as an artifact, and *gates* it against the committed
``BENCH_PR10.json`` baseline::

    python tools/bench_report.py --apps App-2 App-8 --repeats 3 \\
        --output bench_current.json --baseline BENCH_PR10.json --gate

The gate fails (exit 1) when a fast path stops paying for itself:

* App-8's incremental re-solve speedup drops below 2x, or
* the summed incremental re-solve time over apps present in both suites
  regresses by more than 25% against the baseline, or
* the revised simplex's summed cold-solve time over the small-tier apps
  exceeds 1.15x the dense tableau's (aggregate: individual small-app
  solves are a few ms, where per-app ratios are scheduler noise), or
* any warm-round phase-1 iteration count is nonzero (the dual re-solve
  portfolio's contract), or
* any scale-tier revised cold solve blows its budget, runs slower than
  the dense tableau (fresh run, or the baseline's measurement when
  dense was skipped — a *capped* baseline reference only gates what it
  can: above the cap the check is skipped with the reason recorded), or
  regresses more than 50% against the baseline's revised time, or
* ``--require-scale-speedup`` is set and no flagship scale app solved
  at or below 0.67x the baseline's revised cold-solve time.

Regenerate the committed baseline over everything with::

    PYTHONPATH=src python tools/bench_report.py --tier both \\
        --output BENCH_PR10.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, REPO_ROOT)
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from benchmarks.bench_fastpath import (  # noqa: E402
    DEFAULT_REPEATS,
    DEFAULT_ROUNDS,
    DEFAULT_SCALE_BUDGET_S,
    SCALE_BACKENDS,
    run_scale_suite,
    run_suite,
)


def _git_commit() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


#: Gate thresholds (see module docstring).
MIN_APP8_RESOLVE_SPEEDUP = 2.0
MAX_SOLVE_TIME_REGRESSION = 1.25
#: Ceiling on (summed revised cold solve) / (summed dense cold solve)
#: over the small-tier apps.
REVISED_SMALL_MAX_RATIO = 1.15
#: Ceiling on a scale-tier revised cold solve relative to the baseline's
#: measurement of the same (app, rounds) entry.
MAX_SCALE_SOLVE_REGRESSION = 1.5
#: Presolve + dual re-solve portfolio target (``--require-scale-speedup``):
#: at least one flagship scale app's cold solve must land at or below
#: this fraction of the baseline's revised time.
SCALE_SPEEDUP_RATIO = 0.67
SCALE_SPEEDUP_APPS = (("App-XL2", 3), ("App-XL3", 3))


def evaluate_gate(suite, baseline, require_scale_speedup=False):
    """Compare a fresh benchmark ``suite`` against a ``baseline`` suite.

    Returns ``(ok, lines)``: ``ok`` is False when a gate tripped, and
    ``lines`` is a human-readable verdict per check.  Pure function so
    the CI behavior is unit-testable without running benchmarks.

    With ``require_scale_speedup``, additionally demands that at least
    one of the flagship scale apps (:data:`SCALE_SPEEDUP_APPS`) solved
    at or below :data:`SCALE_SPEEDUP_RATIO` times the baseline's
    revised cold-solve time — the presolve portfolio's headline gate.
    """
    ok = True
    lines = []
    new_apps = {entry["app_id"]: entry for entry in suite["apps"]}
    base_apps = {entry["app_id"]: entry for entry in baseline["apps"]}

    app8 = new_apps.get("App-8")
    if app8 is not None:
        speedup = app8["resolve_speedup"]
        passed = speedup >= MIN_APP8_RESOLVE_SPEEDUP
        ok = ok and passed
        lines.append(
            f"{'PASS' if passed else 'FAIL'}: App-8 re-solve speedup "
            f"{speedup:.2f}x (floor {MIN_APP8_RESOLVE_SPEEDUP:.1f}x)"
        )
    else:
        lines.append("SKIP: App-8 not benchmarked; speedup floor not checked")

    common = sorted(new_apps.keys() & base_apps.keys())
    if common:
        new_total = sum(new_apps[a]["resolve_incremental_s"] for a in common)
        base_total = sum(
            base_apps[a]["resolve_incremental_s"] for a in common
        )
        limit = MAX_SOLVE_TIME_REGRESSION * base_total
        passed = new_total <= limit
        ok = ok and passed
        lines.append(
            f"{'PASS' if passed else 'FAIL'}: total incremental re-solve "
            f"over {len(common)} common app(s) {new_total * 1e3:.2f}ms "
            f"(baseline {base_total * 1e3:.2f}ms, limit "
            f"{limit * 1e3:.2f}ms)"
        )
    elif not suite["apps"] and suite.get("scale_apps"):
        lines.append(
            "SKIP: scale-only run, no small-tier apps to compare against "
            "the baseline"
        )
    else:
        ok = False
        lines.append("FAIL: no apps in common with the baseline suite")

    # Small tier: revised cold solve within 1.15x of dense, in AGGREGATE
    # over the benchmarked apps — each individual solve is a few ms,
    # where per-app ratios are scheduler noise, not signal.
    timed = [
        e
        for e in suite["apps"]
        if "solve_revised_s" in e and "solve_dense_tableau_s" in e
    ]
    if timed:
        revised_total = sum(e["solve_revised_s"] for e in timed)
        dense_total = sum(e["solve_dense_tableau_s"] for e in timed)
        limit = REVISED_SMALL_MAX_RATIO * dense_total
        passed = revised_total <= limit
        ok = ok and passed
        lines.append(
            f"{'PASS' if passed else 'FAIL'}: revised cold solve over "
            f"{len(timed)} small app(s) {revised_total * 1e3:.2f}ms "
            f"(dense {dense_total * 1e3:.2f}ms, limit {limit * 1e3:.2f}ms "
            f"= {REVISED_SMALL_MAX_RATIO:.2f}x)"
        )

    # Small tier warm rounds: with the dual re-solve portfolio in place
    # the warm-started rounds must do zero phase-1 iterations.
    warm_small = [e for e in suite["apps"] if "warm_phase1_iterations" in e]
    if warm_small:
        total_p1 = sum(e["warm_phase1_iterations"] for e in warm_small)
        passed = total_p1 == 0
        ok = ok and passed
        lines.append(
            f"{'PASS' if passed else 'FAIL'}: warm-round phase-1 "
            f"iterations over {len(warm_small)} small app(s): {total_p1} "
            f"(must be 0)"
        )

    # Scale tier: per (app, rounds) entry, the revised simplex must
    # finish inside its budget, beat the dense tableau (falling back to
    # the baseline's dense measurement when the fresh run skipped it),
    # and stay within MAX_SCALE_SOLVE_REGRESSION of the baseline's
    # revised time.  Entries are deduplicated on (app_id, rounds) —
    # last measurement wins — and matched against the baseline on the
    # same key, so a rounds=1 smoke never gates against a rounds=3
    # baseline.
    base_scale = {}
    for e in baseline.get("scale_apps", []):
        base_scale[(e["app_id"], e.get("rounds"))] = e
    fresh_scale = {}
    for e in suite.get("scale_apps", []):
        fresh_scale[(e["app_id"], e.get("rounds"))] = e
    for (app_id, rounds), entry in fresh_scale.items():
        label = f"{app_id} (rounds={rounds})"
        backends = entry.get("backends", {})
        revised = backends.get("revised")
        if revised is None:
            ok = False
            lines.append(f"FAIL: {label} has no revised-simplex run")
            continue
        if revised.get("capped"):
            ok = False
            lines.append(
                f"FAIL: {label} revised cold solve blew its "
                f"{revised['solve_s']:.0f}s budget"
            )
            continue
        base_entry = base_scale.get((app_id, rounds))
        base_backends = (base_entry or {}).get("backends", {})
        dense, dense_source = backends.get("dense_tableau"), "fresh"
        if dense is None:
            dense, dense_source = base_backends.get("dense_tableau"), (
                "baseline"
            )
        if dense is None:
            lines.append(
                f"SKIP: {label} has no dense-tableau reference (fresh or "
                f"baseline); revised-vs-dense not checked"
            )
        elif dense.get("capped") and revised["solve_s"] > dense["solve_s"]:
            # A capped dense time only bounds the true dense solve from
            # below: "revised <= cap" passes a fortiori, but anything
            # above the cap is unknowable, not a regression.
            lines.append(
                f"SKIP: {label} revised cold solve "
                f"{revised['solve_s']:.1f}s vs {dense_source} dense "
                f">={dense['solve_s']:.0f}s (capped) — capped "
                f"measurement only bounds dense from below; gate skipped"
            )
        else:
            passed = revised["solve_s"] <= dense["solve_s"]
            ok = ok and passed
            capped = " (capped)" if dense.get("capped") else ""
            lines.append(
                f"{'PASS' if passed else 'FAIL'}: {label} revised cold "
                f"solve {revised['solve_s']:.1f}s <= {dense_source} dense "
                f"{dense['solve_s']:.1f}s{capped}"
            )
        base_revised = base_backends.get("revised")
        if base_revised is not None and not base_revised.get("capped"):
            limit = MAX_SCALE_SOLVE_REGRESSION * base_revised["solve_s"]
            passed = revised["solve_s"] <= limit
            ok = ok and passed
            lines.append(
                f"{'PASS' if passed else 'FAIL'}: {label} revised cold "
                f"solve {revised['solve_s']:.1f}s vs baseline "
                f"{base_revised['solve_s']:.1f}s (limit {limit:.1f}s)"
            )
        warm = entry.get("warm")
        if warm is not None:
            skipped = warm.get("phase1_skipped", 0)
            passed = skipped >= 1
            ok = ok and passed
            lines.append(
                f"{'PASS' if passed else 'FAIL'}: {label} warm rounds "
                f"skipped phase 1 in {skipped} round(s) "
                f"({warm.get('dual_iterations', 0)} dual pivots, "
                f"{warm.get('phase1_iterations', 0)} phase-1 iterations)"
            )

    if require_scale_speedup:
        ratios = []
        for app_id, rounds in SCALE_SPEEDUP_APPS:
            entry = fresh_scale.get((app_id, rounds))
            base_entry = base_scale.get((app_id, rounds))
            revised = (entry or {}).get("backends", {}).get("revised")
            base_revised = (
                (base_entry or {}).get("backends", {}).get("revised")
            )
            if (
                revised is None
                or base_revised is None
                or revised.get("capped")
                or base_revised.get("capped")
                or base_revised["solve_s"] <= 0
            ):
                continue
            ratios.append(
                (app_id, rounds, revised["solve_s"] / base_revised["solve_s"])
            )
        if not ratios:
            ok = False
            lines.append(
                "FAIL: scale speedup required but no comparable "
                "App-XL2/App-XL3 rounds=3 revised entries in both suites"
            )
        else:
            app_id, rounds, best = min(ratios, key=lambda t: t[2])
            passed = best <= SCALE_SPEEDUP_RATIO
            ok = ok and passed
            lines.append(
                f"{'PASS' if passed else 'FAIL'}: best scale cold-solve "
                f"ratio {best:.2f}x of baseline on {app_id} "
                f"(rounds={rounds}), required <= "
                f"{SCALE_SPEEDUP_RATIO:.2f}x"
            )
    return ok, lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--apps",
        nargs="*",
        default=None,
        help="app ids to benchmark (default: all registered apps)",
    )
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--tier",
        choices=("small", "scale", "both"),
        default="small",
        help="which benchmark tier(s) to run; with 'both', --apps "
        "selects small-tier apps and every registered scale app runs",
    )
    parser.add_argument(
        "--budget-s",
        type=float,
        default=DEFAULT_SCALE_BUDGET_S,
        help="wall-clock cap per scale-tier cold solve (exceeders are "
        "recorded at the cap with capped:true)",
    )
    parser.add_argument(
        "--scale-backends",
        nargs="*",
        choices=sorted(SCALE_BACKENDS),
        default=None,
        help="scale-tier backends to time (default: all)",
    )
    parser.add_argument(
        "--scale-warm",
        action="store_true",
        help="also run the incremental warm-round leg per scale app "
        "(gated: warm rounds must skip phase 1)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_PR10.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH json to compare against",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 when the comparison against --baseline regresses",
    )
    parser.add_argument(
        "--require-scale-speedup",
        action="store_true",
        help="additionally require a scale cold solve at or below "
        f"{SCALE_SPEEDUP_RATIO}x the baseline's revised time on at "
        "least one of App-XL2/App-XL3 (rounds=3)",
    )
    args = parser.parse_args(argv)
    if args.gate and not args.baseline:
        parser.error("--gate requires --baseline")

    started = time.time()
    if args.tier in ("small", "both"):
        suite = run_suite(
            args.apps,
            rounds=args.rounds,
            repeats=args.repeats,
            seed=args.seed,
        )
    else:
        suite = {
            "benchmark": "fastpath",
            "rounds": args.rounds,
            "repeats": args.repeats,
            "seed": args.seed,
            "apps": [],
        }
    if args.tier in ("scale", "both"):
        suite["scale_apps"] = run_scale_suite(
            args.apps if args.tier == "scale" else None,
            rounds=args.rounds,
            seed=args.seed,
            budget_s=args.budget_s,
            backend_keys=args.scale_backends,
            warm=args.scale_warm,
        )
    suite["meta"] = {
        "generated_unix": round(started, 3),
        "wall_clock_s": round(time.time() - started, 3),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "commit": _git_commit(),
    }
    # allow_nan=False: inf/nan are not valid JSON, and a speedup that
    # divides by a ~0 timing would otherwise poison the baseline for
    # every later --gate run (bench_fastpath clamps denominators, so a
    # violation here is a bug in a new metric).
    with open(args.output, "w", encoding="utf-8") as fp:
        json.dump(suite, fp, indent=2, sort_keys=True, allow_nan=False)
        fp.write("\n")

    for entry in suite["apps"]:
        print(
            f"{entry['app_id']}: extract {entry['extract_speedup']:.1f}x, "
            f"re-solve {entry['resolve_speedup']:.1f}x"
        )
    for entry in suite.get("scale_apps", []):
        solves = ", ".join(
            f"{key} "
            + (
                f">={run['solve_s']:.0f}s (capped)"
                if run.get("capped")
                else f"{run['solve_s']:.1f}s"
            )
            for key, run in entry["backends"].items()
        )
        print(
            f"{entry['app_id']} (scale, rounds={entry['rounds']}): {solves}"
        )
    print(f"wrote {args.output}")

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as fp:
            baseline = json.load(fp)
        ok, lines = evaluate_gate(
            suite,
            baseline,
            require_scale_speedup=args.require_scale_speedup,
        )
        print(f"gate vs {args.baseline}:")
        for line in lines:
            print(f"  {line}")
        if args.gate and not ok:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
