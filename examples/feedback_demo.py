#!/usr/bin/env python3
"""Watch the Perturber's feedback loop disambiguate a noisy release.

Builds a program where a utility method (``Cache::Touch``) is called right
after every write, making its exit look like a plausible release.  The
true release is a custom ``Publish`` method.  Round 1's inference may be
ambiguous; the injected delays then *refute* the utility (a delay before
it does not stall the consumer) while the true release's delay
propagates — and the inference locks in.

Run:  python examples/feedback_demo.py
"""

import repro
from repro import SherlockConfig
from repro.sim import (
    AppContext,
    AppInfo,
    Application,
    GroundTruth,
    Method,
    UnitTest,
)
from repro.sim.primitives import SystemThread
from repro.sim.thread import WaitSet


def make_test():
    def body(rt, ctx):
        data = rt.new_object(
            "Feed.Store", {"head": 0, "tail": 0, "items": ""}
        )
        gate = WaitSet("publish")
        ack_gate = WaitSet("ack")
        published = [0]
        acked = [0]

        def touch(rt_, obj):
            # Popular utility: appears in every release window as noise.
            yield from rt_.sched_yield()

        touch_m = Method("Feed.Cache::Touch", touch)

        def publish_body(rt_, obj):
            published[0] += 1
            rt_.notify_all(gate)
            yield from rt_.sched_yield()

        publish_m = Method("Feed.Store::Publish", publish_body)

        def wait_ack_body(rt_, obj, upto):
            while acked[0] < upto:
                yield from rt_.wait_on(ack_gate)

        wait_ack_m = Method("Feed.Store::WaitForAck", wait_ack_body)

        def ack_body(rt_, obj):
            acked[0] += 1
            rt_.notify_all(ack_gate)
            yield from rt_.sched_yield()

        ack_m = Method("Feed.Reader::AckBatch", ack_body)

        fields = ["head", "items", "tail"]

        def producer(rt_, obj):
            for i in range(3):
                # Rotate the write order per batch, as real code paths do.
                for offset in range(3):
                    fieldname = fields[(i + offset) % 3]
                    value = f"item{i}" if fieldname == "items" else i
                    yield from rt_.write(data, fieldname, value)
                yield from rt_.call(publish_m, data)
                yield from rt_.call(touch_m, data)  # noise after publish
                # Wait for the consumer before overwriting the batch.
                yield from rt_.call(wait_ack_m, data, i + 1)

        def consumer(rt_, obj):
            for i in range(3):
                while published[0] <= i:
                    yield from rt_.wait_on(gate)
                order = [(i + k) % 3 for k in range(3)]
                values = {}
                for idx in order:
                    values[fields[idx]] = (
                        yield from rt_.read(data, fields[idx])
                    )
                assert values["items"] and values["head"] == values["tail"]
                yield from rt_.call(ack_m, data)

        tp = SystemThread(Method("Feed::Producer", producer), name="p")
        tc = SystemThread(Method("Feed::Consumer", consumer), name="c")
        yield from tp.start(rt)
        yield from tc.start(rt)
        yield from tp.join(rt)
        yield from tc.join(rt)

    return UnitTest("Feed.Tests::PublishSubscribe", body)


def main() -> None:
    app = Application(
        info=AppInfo("Demo", "FeedbackDemo", "0.1K", 0, 1),
        make_context=lambda rt: AppContext(),
        tests=[make_test()],
        ground_truth=GroundTruth(),
    )
    report = repro.run(app, SherlockConfig(rounds=3, seed=4))

    for round_result in report.rounds:
        releases = sorted(
            s.op.display() for s in round_result.inference.releases
        )
        print(
            f"round {round_result.round_index + 1}: "
            f"windows={round_result.windows_total}, "
            f"delays injected={round_result.delays_injected}"
        )
        for name in releases:
            print("    release:", name)
    final = {s.op.display() for s in report.final.syncs}
    print(
        "\nCustom ack release (AckBatch-End) inferred:",
        "Feed.Reader::AckBatch-End" in final,
    )
    print(
        "Publish-End inferred:",
        "Feed.Store::Publish-End" in final,
        "(ties with the batch's first write are possible — the paper's"
        " Not-Sync FP class)",
    )
    print(
        "Noise (Touch-End) rejected:",
        "Feed.Cache::Touch-End" not in final,
    )


if __name__ == "__main__":
    main()
