#!/usr/bin/env python3
"""Use SherLock's inferred synchronizations to power a race detector.

Reproduces the §5.4 workflow on one benchmark app: run SherLock, build a
``SherLock_dr`` happens-before spec from the inference, and compare its
FastTrack results against the hand-annotated ``Manual_dr`` — inferred
synchronizations eliminate the false races manual annotation misses
(task-creation APIs, framework ordering, custom synchronization).

Run:  python examples/race_detection.py [App-7]
"""

import sys

import repro
from repro import SherlockConfig, get_application
from repro.racedet import detect_races, manual_spec, sherlock_spec


def main() -> None:
    app_id = sys.argv[1] if len(sys.argv) > 1 else "App-7"
    app = get_application(app_id)
    print(f"Running SherLock on {app_id} ({app.name})...")
    report = repro.run(app, SherlockConfig(rounds=3, seed=0))
    print(report.describe())

    manual = detect_races(app, manual_spec(app), seed=0)
    inferred = detect_races(app, sherlock_spec(report.final), seed=0)

    print(f"\n{'detector':12s} {'true races':>11s} {'false races':>12s}")
    for result in (manual, inferred):
        print(
            f"{result.spec_name:12s} {result.true_races:11d} "
            f"{result.false_races:12d}"
        )

    print("\nFalse races under Manual_dr (missed synchronizations):")
    for fieldname in sorted(set(manual.false_race_fields())):
        protector = app.ground_truth.protected_by.get(fieldname, "?")
        print(f"    {fieldname}   (actually protected by {protector})")

    print(
        "\nIntentionally racy fields (true races):",
        ", ".join(sorted(app.ground_truth.racy_fields)) or "(none)",
    )


if __name__ == "__main__":
    main()
