#!/usr/bin/env python3
"""Run the paper's hypothesis ablation (Table 5) on a subset of apps.

Each of SherLock's properties/hypotheses is switched off in turn; the
Mostly-Protected hypothesis is indispensable (nothing is inferred without
it) while Synchronizations-are-Rare is the main precision lever.

Run:  python examples/ablation_study.py            (2 quick apps)
      python examples/ablation_study.py --full     (all 8 apps)
"""

import sys

from repro.analysis.experiments import table5


def main() -> None:
    app_ids = None if "--full" in sys.argv else ["App-2", "App-7"]
    scope = "all 8 apps" if app_ids is None else ", ".join(app_ids)
    print(f"Running the Table-5 ablation on {scope} (this runs the full "
          f"pipeline once per setting)...\n")
    table = table5.run(app_ids=app_ids)
    print(table.render())


if __name__ == "__main__":
    main()
