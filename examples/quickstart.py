#!/usr/bin/env python3
"""Quickstart: infer the synchronizations of a tiny concurrent program.

Builds a small application (a lock-protected counter plus a flag
variable), runs SherLock for three rounds with delay-injection feedback,
and prints the inferred acquire/release operations — with no annotations
whatsoever.

Run:  python examples/quickstart.py
"""

import repro
from repro import SherlockConfig
from repro.sim import (
    AppContext,
    AppInfo,
    Application,
    GroundTruth,
    Method,
    UnitTest,
)
from repro.sim.primitives import Monitor, SystemThread


def counter_test(rt, ctx):
    """Two workers increment a shared pair of counters under a lock;
    a producer/consumer pair coordinates through a flag variable."""
    lock = Monitor("counter-lock")
    shared = rt.new_object("Demo.Counter", {"value": 0, "total": 0})
    state = rt.new_object("Demo.State", {"ready": False, "payload": ""})

    def worker_a(rt_, obj):
        for _ in range(3):
            yield from lock.enter(rt_)
            v = yield from rt_.read(shared, "value")
            yield from rt_.write(shared, "value", v + 1)
            t = yield from rt_.read(shared, "total")
            yield from rt_.write(shared, "total", t + v)
            yield from lock.exit(rt_)
            pause = yield from rt_.rand()
            yield from rt_.sleep(0.05 + 0.05 * pause)

    def worker_b(rt_, obj):
        yield from rt_.sleep(0.04)
        for _ in range(3):
            yield from lock.enter(rt_)
            t = yield from rt_.read(shared, "total")
            yield from rt_.write(shared, "total", t + 1)
            v = yield from rt_.read(shared, "value")
            yield from rt_.write(shared, "value", v + 1)
            yield from lock.exit(rt_)
            pause = yield from rt_.rand()
            yield from rt_.sleep(0.05 + 0.05 * pause)

    def producer(rt_, obj):
        yield from rt_.write(state, "payload", "hello")
        yield from rt_.write(state, "ready", True)

    def consumer(rt_, obj):
        while not (yield from rt_.read(state, "ready")):
            yield from rt_.sleep(0.01)
        payload = yield from rt_.read(state, "payload")
        assert payload == "hello"

    threads = [
        SystemThread(Method("Demo::WorkerA", worker_a), name="a"),
        SystemThread(Method("Demo::WorkerB", worker_b), name="b"),
        SystemThread(Method("Demo::Producer", producer), name="p"),
        SystemThread(Method("Demo::Consumer", consumer), name="c"),
    ]
    for thread in threads:
        yield from thread.start(rt)
    for thread in threads:
        yield from thread.join(rt)


def main() -> None:
    app = Application(
        info=AppInfo("Demo", "QuickstartDemo", "0.1K", 0, 1),
        make_context=lambda rt: AppContext(),
        tests=[UnitTest("Demo.Tests::CounterAndFlag", counter_test)],
        ground_truth=GroundTruth(),
    )
    config = SherlockConfig(rounds=3, seed=1)
    report = repro.run(app, config)

    print(report.describe())
    print("\nInferred releases:")
    for sync in sorted(report.final.releases, key=lambda s: s.op.name):
        print("   ", sync.op.display())
    print("\nInferred acquires:")
    for sync in sorted(report.final.acquires, key=lambda s: s.op.name):
        print("   ", sync.op.display())

    expected = {
        "System.Threading.Monitor::Exit-End",
        "System.Threading.Monitor::Enter-Begin",
        "Write-Demo.State::ready",
        "Read-Demo.State::ready",
    }
    found = {s.op.display() for s in report.final.syncs}
    print(
        "\nCanonical syncs found:",
        f"{len(expected & found)}/{len(expected)}",
    )


if __name__ == "__main__":
    main()
