#!/usr/bin/env python3
"""Inferring *custom* synchronization SherLock has never seen.

Builds an application with a hand-rolled "turnstile" gate implemented as
a spin-checked flag plus published configuration — the paper's
variable-based custom synchronization (§5.3.2, Example B).  SherLock
infers the flag's write as a release and its read as an acquire purely
from window evidence, with zero annotations.

Run:  python examples/custom_sync.py
"""

import repro
from repro import SherlockConfig
from repro.sim import (
    AppContext,
    AppInfo,
    Application,
    GroundTruth,
    Method,
    UnitTest,
)
from repro.sim.primitives import SystemThread


class Turnstile:
    """A custom gate: ``Open`` publishes the configuration and flips the
    ``isOpen`` flag; ``Pass`` spin-checks the flag before proceeding."""

    def pass_method(self, state, order=0):
        def body(rt, obj):
            # The custom wait: a spin-checked flag variable (Example B).
            while not (yield from rt.read(state, "isOpen")):
                yield from rt.sleep(0.012)
            # Consume the published configuration after the gate opens
            # (different code paths read it in different orders).
            if order == 0:
                mode = yield from rt.read(state, "mode")
                limit = yield from rt.read(state, "limit")
            else:
                limit = yield from rt.read(state, "limit")
                mode = yield from rt.read(state, "mode")
            assert mode and limit

        return Method("Demo.Turnstile::Pass", body)

    def open_method(self, state):
        def body(rt, obj):
            yield from rt.write(state, "limit", 10)
            yield from rt.write(state, "mode", "open-access")
            yield from rt.write(state, "isOpen", True)

        return Method("Demo.Turnstile::Open", body)


def turnstile_test(rt, ctx):
    gate = Turnstile()
    state = rt.new_object(
        "Demo.GateState", {"mode": "", "limit": 0, "isOpen": False}
    )

    def opener(rt_, obj):
        yield from rt_.sleep(0.05)
        yield from rt_.call(gate.open_method(state), state)

    def visitor(index):
        def body(rt_, obj):
            yield from rt_.sleep(0.01 * index)
            yield from rt_.call(gate.pass_method(state, order=index % 2), state)

        return Method(f"Demo::Visitor{index}", body)

    threads = [SystemThread(Method("Demo::Opener", opener), name="o")]
    threads += [
        SystemThread(visitor(i), name=f"v{i}") for i in range(2)
    ]
    for thread in threads:
        yield from thread.start(rt)
    for thread in threads:
        yield from thread.join(rt)


def main() -> None:
    app = Application(
        info=AppInfo("Demo", "CustomSyncDemo", "0.1K", 0, 1),
        make_context=lambda rt: AppContext(),
        tests=[UnitTest("Demo.Tests::TurnstileGate", turnstile_test)],
        ground_truth=GroundTruth(),
    )
    report = repro.run(app, SherlockConfig(rounds=3, seed=2))

    print(report.describe())
    print("\nInferred synchronizations:")
    for sync in sorted(report.final.syncs, key=lambda s: s.op.name):
        print("   ", sync.display())

    names = {s.op.display() for s in report.final.syncs}
    assert_ok = (
        "Write-Demo.GateState::isOpen" in names
        and "Read-Demo.GateState::isOpen" in names
    )
    print(
        "\nCustom gate flag inferred:",
        "yes" if assert_ok else "partially (see listing above)",
    )


if __name__ == "__main__":
    main()
