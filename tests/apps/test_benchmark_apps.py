"""Tests for the 8 benchmark applications.

Every app must (a) build, (b) run its unit tests to completion without
simulator errors, (c) declare consistent ground truth, and (d) — the
headline property — let SherLock infer a meaningful share of its true
synchronizations at the default configuration.
"""

import pytest

from repro.apps.registry import app_ids, get_application
from repro.core import Sherlock, SherlockConfig
from repro.sim.runner import RunOptions, run_application

APP_IDS = app_ids()


def test_registry_lists_eight_apps():
    assert len(APP_IDS) == 8
    assert APP_IDS[0] == "App-1"


def test_registry_unknown_id_raises():
    with pytest.raises(KeyError):
        get_application("App-99")


def test_registry_builds_fresh_instances():
    a = get_application("App-2")
    b = get_application("App-2")
    assert a is not b


@pytest.mark.parametrize("app_id", APP_IDS)
def test_app_tests_run_clean(app_id):
    """Every unit test of every app must run without simulator errors."""
    app = get_application(app_id)
    executions = run_application(app, RunOptions(seed=0))
    for execution in executions:
        assert execution.error is None, (
            f"{app_id} {execution.test_name}: {execution.error}"
        )
        assert len(execution.log) > 0


@pytest.mark.parametrize("app_id", APP_IDS)
def test_app_tests_deterministic(app_id):
    """Same seed ⇒ identical traces."""
    app_a = get_application(app_id)
    app_b = get_application(app_id)
    logs_a = [
        [(e.thread_id, e.name, e.optype) for e in ex.log]
        for ex in run_application(app_a, RunOptions(seed=5))
    ]
    logs_b = [
        [(e.thread_id, e.name, e.optype) for e in ex.log]
        for ex in run_application(app_b, RunOptions(seed=5))
    ]
    assert logs_a == logs_b


@pytest.mark.parametrize("app_id", APP_IDS)
def test_ground_truth_consistency(app_id):
    app = get_application(app_id)
    gt = app.ground_truth
    assert gt.syncs, f"{app_id} declares no true synchronizations"
    # Hidden methods must be declared as true syncs too.
    sync_names = gt.true_sync_names()
    for hidden in gt.hidden_sync_methods:
        assert hidden in sync_names
    # Every sync op must respect the capability property.
    for sync in gt.syncs:
        assert sync.op.can_play(sync.role), sync.display()


@pytest.mark.parametrize("app_id", APP_IDS)
def test_inference_recovers_true_syncs(app_id):
    """At the default config SherLock must find true synchronizations and
    keep false positives bounded (Table-2 shape, per app)."""
    app = get_application(app_id)
    report = Sherlock(app, SherlockConfig(rounds=3, seed=0)).run()
    gt = app.ground_truth
    final = report.final.syncs
    correct = [s for s in final if gt.is_true_sync(s)]
    assert len(correct) >= 2, f"{app_id} inferred too few true syncs"
    assert len(final) <= len(gt.syncs) + 18


def test_app2_is_inferred_perfectly():
    """App-2 matches the paper's row exactly: 6 syncs, no FPs."""
    app = get_application("App-2")
    report = Sherlock(app, SherlockConfig(rounds=3, seed=0)).run()
    gt = app.ground_truth
    final = report.final.syncs
    assert len(final) == 6
    assert all(gt.is_true_sync(s) for s in final)


def test_app7_plants_data_racy_misclassifications():
    """App-7's racy lastError flag is misclassified as a flag sync."""
    app = get_application("App-7")
    report = Sherlock(app, SherlockConfig(rounds=3, seed=0)).run()
    racy_inferred = [
        s
        for s in report.final.syncs
        if s.op.name in app.ground_truth.racy_fields
    ]
    assert racy_inferred, "expected Data-Racy misclassifications"


def test_app1_framework_edge_inferred():
    """TestInitialize-End must be inferred as a release (Example E)."""
    from repro.trace import Role, end_of, SyncOp

    app = get_application("App-1")
    report = Sherlock(app, SherlockConfig(rounds=3, seed=0)).run()
    target = SyncOp(
        end_of(
            "Microsoft.ApplicationInsights.Tests.TelemetryClientTests"
            "::TestInitialize"
        ),
        Role.RELEASE,
    )
    all_rounds = set()
    for r in report.rounds:
        all_rounds.update(r.inference.syncs)
    assert target in all_rounds


def test_app8_double_role_is_missed():
    """UpgradeToWriterLock's hidden release is blocked by Single-Role."""
    from repro.trace import Role, end_of, SyncOp

    app = get_application("App-8")
    report = Sherlock(app, SherlockConfig(rounds=3, seed=0)).run()
    upgrade_release = SyncOp(
        end_of("System.Threading.ReaderWriterLock::UpgradeToWriterLock"),
        Role.RELEASE,
    )
    assert upgrade_release not in report.final.syncs


def test_hidden_methods_never_inferred():
    """Events of hidden methods are invisible, so they cannot appear."""
    for app_id in ("App-1", "App-3"):
        app = get_application(app_id)
        report = Sherlock(app, SherlockConfig(rounds=2, seed=0)).run()
        hidden = app.ground_truth.hidden_sync_methods
        for sync in report.final.syncs:
            assert sync.op.name not in hidden
