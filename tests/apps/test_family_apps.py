"""Family-tier lockdown: App-9 (service registry) and App-10 (pipeline).

The two grown apps get the same treatment the 8 paper apps got in the
seed PRs: clean runs, seed determinism, consistent ground truth,
meaningful inference — plus the phaser-specific acceptance spine:
predicted ⊇ FastTrack-first-races under both the Manual and SherLock
specs, and every planted race either FastTrack-detected or converted by
a directed schedule.  The alias round-trip is parametrized over all ten
apps (registry tier integrity).
"""

import pytest

from repro.apps.registry import (
    app_ids,
    family_app_ids,
    get_application,
    resolve_app_id,
)
from repro.core import Sherlock, SherlockConfig
from repro.predict import predict_app, validate_witness
from repro.racedet import analyze_run, manual_spec, sherlock_spec
from repro.sim.runner import RunOptions, run_application

FAMILY = family_app_ids()

#: Canonical id → registry module stem (the free extra alias).
MODULE_ALIASES = {
    "App-1": "app1_insights",
    "App-2": "app2_datetime",
    "App-3": "app3_fluentassertions",
    "App-4": "app4_k8sclient",
    "App-5": "app5_radical",
    "App-6": "app6_restsharp",
    "App-7": "app7_statsd",
    "App-8": "app8_linqdynamic",
    "App-9": "app9_registry",
    "App-10": "app10_pipeline",
}


class TestFamilyRegistry:
    def test_family_tier_lists_app9_and_app10(self):
        assert FAMILY == ["App-9", "App-10"]

    def test_paper_corpus_still_eight(self):
        """The family tier must NOT leak into the default corpus —
        suites quantifying over "the 8 apps" keep their meaning."""
        assert len(app_ids()) == 8
        assert "App-9" not in app_ids()
        assert "App-10" not in app_ids()

    def test_family_builds_fresh_instances(self):
        a = get_application("App-9")
        b = get_application("App-9")
        assert a is not b
        assert a.info.app_id == "App-9"
        assert get_application("App-10").info.app_id == "App-10"

    def test_unknown_id_error_names_family_apps(self):
        with pytest.raises(KeyError) as exc:
            resolve_app_id("App-99")
        message = str(exc.value)
        assert "App-9" in message and "App-10" in message


@pytest.mark.parametrize("app_id", sorted(MODULE_ALIASES))
def test_alias_round_trip_all_ten_apps(app_id):
    """Canonical, lowercase, dash-stripped, and module-stem aliases all
    resolve back to the canonical id, for every app in either tier."""
    aliases = [
        app_id,
        app_id.lower(),
        app_id.upper(),
        app_id.lower().replace("-", ""),
        MODULE_ALIASES[app_id],
        MODULE_ALIASES[app_id].upper(),
    ]
    for alias in aliases:
        assert resolve_app_id(alias) == app_id, alias
        assert get_application(alias).info.app_id == app_id


@pytest.mark.parametrize("app_id", FAMILY)
def test_family_tests_run_clean(app_id):
    app = get_application(app_id)
    for seed in range(4):
        executions = run_application(app, RunOptions(seed=seed))
        for execution in executions:
            assert execution.error is None, (
                f"{app_id} seed {seed} {execution.test_name}: "
                f"{execution.error}"
            )
            assert len(execution.log) > 0


@pytest.mark.parametrize("app_id", FAMILY)
def test_family_tests_deterministic(app_id):
    def trace(app):
        return [
            [(e.thread_id, e.name, e.optype) for e in ex.log]
            for ex in run_application(app, RunOptions(seed=5))
        ]

    assert trace(get_application(app_id)) == trace(get_application(app_id))


@pytest.mark.parametrize("app_id", FAMILY)
def test_family_ground_truth_consistency(app_id):
    app = get_application(app_id)
    gt = app.ground_truth
    assert gt.syncs
    sync_names = gt.true_sync_names()
    for hidden in gt.hidden_sync_methods:
        assert hidden in sync_names
    for sync in gt.syncs:
        assert sync.op.can_play(sync.role), sync.display()
    # Both family apps plant exactly two racy fields.
    assert len(gt.racy_fields) == 2


@pytest.mark.parametrize("app_id", FAMILY)
def test_family_traces_use_the_phaser(app_id):
    """Both family apps actually exercise the collective primitive."""
    from repro.sim.primitives.phaser import (
        ARRIVE_API, AWAIT_ADVANCE_API, DEREGISTER_API, REGISTER_API,
    )

    app = get_application(app_id)
    names = set()
    for execution in run_application(app, RunOptions(seed=0)):
        names.update(e.name for e in execution.log)
    for api in (REGISTER_API, ARRIVE_API, AWAIT_ADVANCE_API,
                DEREGISTER_API):
        assert api in names, f"{app_id} never traces {api}"


@pytest.mark.parametrize("app_id", FAMILY)
def test_family_inference_recovers_true_syncs(app_id):
    app = get_application(app_id)
    report = Sherlock(app, SherlockConfig(rounds=3, seed=0)).run()
    gt = app.ground_truth
    final = report.final.syncs
    correct = [s for s in final if gt.is_true_sync(s)]
    assert len(correct) >= 2, f"{app_id} inferred too few true syncs"
    assert len(final) <= len(gt.syncs) + 18
    # The instrumentation-skip plant: hidden methods never inferred.
    for sync in final:
        assert sync.op.name not in gt.hidden_sync_methods


@pytest.fixture(scope="module")
def family_sherlock_specs():
    specs = {}
    for app_id in FAMILY:
        app = get_application(app_id)
        report = Sherlock(app, SherlockConfig(rounds=3, seed=0)).run()
        specs[app_id] = sherlock_spec(report.final)
    return specs


@pytest.mark.parametrize("app_id", FAMILY)
def test_family_predictive_superset_both_specs(
    app_id, family_sherlock_specs
):
    """Acceptance: predicted ⊇ FastTrack-first-races under Manual AND
    SherLock specs, with every witness sanitizing."""
    app = get_application(app_id)
    for spec in (manual_spec(app), family_sherlock_specs[app_id]):
        executions = run_application(app, RunOptions(seed=0, run_id=0))
        from repro.predict import PredictiveDetector

        detector = PredictiveDetector(spec)
        for execution in executions:
            analysis = detector.analyze(execution.log)
            assert analysis.invalid_witnesses == 0
            first = analyze_run(execution.log, spec).first
            if first is not None:
                assert first.key() in analysis.keys(), (
                    f"{app_id}/{execution.test_name} [{spec.name}]"
                )
            for race in analysis.races:
                assert race.validated
                problems = validate_witness(
                    execution.log, race.witness, spec,
                    race.a_seq, race.b_seq,
                )
                assert problems == [], (app_id, execution.test_name)


def test_app9_planted_races_fasttrack_detected():
    """App-9's unregister/dispatch plant surfaces in the observed
    seed-0 order: FastTrack reports both planted fields outright."""
    app = get_application("App-9")
    spec = manual_spec(app)
    detected = set()
    for execution in run_application(app, RunOptions(seed=0)):
        detected.update(
            r.field_name for r in analyze_run(execution.log, spec).races
        )
    assert set(app.ground_truth.racy_fields) <= detected


def test_app10_masked_race_is_predicted_only():
    """App-10's drain race is masked in the observed report order: it
    is never a FastTrack FIRST race at seed 0, only a prediction — the
    directed-schedule conversion target."""
    app = get_application("App-10")
    report = predict_app(app, manual_spec(app), seed=0)
    assert report.superset_ok
    masked = "PyPipeline.Stages.StageRunner/Meter::drainCount"
    first_fields = {
        r.field_name for r in report.ft_first if r is not None
    }
    assert masked not in first_fields
    assert masked in report.predicted_only_fields
    # The registration/signal plant IS first-race-detected.
    assert "PyPipeline.Stages.StageRunner/Meter::registrationLog" in (
        first_fields
    )
