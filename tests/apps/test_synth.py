"""Tests for the synthetic scale tier (App-XL1..XL3).

Covers registry alias resolution for the synthetic ids, per-seed
determinism of generation (including across processes — the digest pin),
TraceSanitizer cleanliness of generated programs, and the scale floors
the tier exists for: ≥10,000 coverage windows and ≥10,000 LP variables
from the smallest config.
"""

import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.registry import (
    app_ids,
    get_application,
    resolve_app_id,
    scale_app_ids,
)
from repro.apps.synth import SCALE_SPECS, SynthSpec, build_synth_app
from repro.core import SherlockConfig
from repro.core.encoder import build_model
from repro.core.stats import ObservationStore
from repro.core.windows import WindowExtractor
from repro.fuzz import sanitize_execution, trace_digest
from repro.sim.runner import RunOptions, run_unit_test

#: Pinned content hash of App-XL1's first unit test at seed 0: generation
#: must stay deterministic across processes and machines, or golden
#: hashes / trace-cache keys for the scale tier silently churn.
APP_XL1_SEED0_DIGEST = (
    "635b546debf8a8e067e8871a43711e1ebc4f3b35bff5d7e8de5c1e22acdf4dd3"
)


class TestRegistryAliases:
    """Alias regression tests for the synthetic ids (alongside the
    module-alias behavior the paper apps already have)."""

    @pytest.mark.parametrize(
        "alias", ["App-XL1", "app-xl1", "appxl1", "APP-XL1", "App-xl1"]
    )
    def test_xl1_aliases_resolve(self, alias):
        assert resolve_app_id(alias) == "App-XL1"

    @pytest.mark.parametrize("app_id", ["App-XL1", "App-XL2", "App-XL3"])
    def test_scale_ids_registered(self, app_id):
        assert app_id in scale_app_ids()
        app = get_application(app_id.lower().replace("-", ""))
        assert app.info.app_id == app_id

    def test_paper_aliases_still_resolve(self):
        assert resolve_app_id("app7_statsd") == "App-7"
        assert resolve_app_id("app-7") == "App-7"
        assert resolve_app_id("app7") == "App-7"

    def test_scale_tier_not_in_default_corpus(self):
        assert scale_app_ids() == ["App-XL1", "App-XL2", "App-XL3"]
        assert not set(scale_app_ids()) & set(app_ids())

    def test_unknown_still_raises(self):
        with pytest.raises(KeyError, match="app-xl9"):
            resolve_app_id("app-xl9")


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pairs": 0},
            {"fields_per_pair": 0},
            {"episodes": 0},
            {"sync_density": 1.5},
            {"sync_density": -0.1},
            {"tests": 0},
        ],
    )
    def test_rejects_bad_spec(self, kwargs):
        base = dict(app_id="X", pairs=1, fields_per_pair=1, episodes=1)
        base.update(kwargs)
        with pytest.raises(ValueError):
            SynthSpec(**base)

    def test_guarded_at_least_one(self):
        spec = SynthSpec(
            app_id="X", pairs=1, fields_per_pair=4, episodes=1,
            sync_density=0.0,
        )
        assert spec.guarded_per_pair == 1


def _tiny_specs():
    return st.builds(
        SynthSpec,
        app_id=st.just("App-TINY"),
        pairs=st.integers(1, 2),
        fields_per_pair=st.integers(1, 3),
        episodes=st.integers(1, 2),
        sync_density=st.sampled_from([0.0, 0.5, 1.0]),
        tests=st.just(1),
    )


class TestDeterminism:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(spec=_tiny_specs(), seed=st.integers(0, 2**31 - 1))
    def test_generation_deterministic_per_seed(self, spec, seed):
        """Two independent builds + runs at the same seed produce the
        same trace digest, and the trace passes every sanitizer
        invariant."""
        digests = []
        for _ in range(2):
            app = build_synth_app(spec)
            ex = run_unit_test(app, app.tests[0], RunOptions(seed=seed))
            assert ex.error is None, ex.error
            assert sanitize_execution(ex) == []
            digests.append(trace_digest([ex]))
        assert digests[0] == digests[1]

    def test_xl1_digest_pinned(self):
        app = build_synth_app(SCALE_SPECS["App-XL1"])
        ex = run_unit_test(app, app.tests[0], RunOptions(seed=0))
        assert ex.error is None
        assert trace_digest([ex]) == APP_XL1_SEED0_DIGEST

    def test_xl1_digest_stable_across_processes(self):
        """The pin above, recomputed in a fresh interpreter: the digest
        renumbers heap addresses, so nothing process-dependent leaks."""
        src = Path(__file__).resolve().parents[2] / "src"
        code = (
            "from repro.apps.synth import build_app_xl1\n"
            "from repro.sim.runner import RunOptions, run_unit_test\n"
            "from repro.fuzz import trace_digest\n"
            "app = build_app_xl1()\n"
            "ex = run_unit_test(app, app.tests[0], RunOptions(seed=0))\n"
            "print(trace_digest([ex]))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        assert out.stdout.strip() == APP_XL1_SEED0_DIGEST

    @pytest.mark.parametrize("app_id", ["App-XL2", "App-XL3"])
    def test_larger_tiers_sanitize_clean(self, app_id):
        app = get_application(app_id)
        ex = run_unit_test(app, app.tests[0], RunOptions(seed=0))
        assert ex.error is None
        assert sanitize_execution(ex) == []


class TestScaleFloors:
    def test_xl1_meets_window_and_variable_floors(self):
        """The smallest scale config clears the tier's reason to exist:
        ≥10,000 coverage windows and ≥10,000 LP variables over the
        standard 3-round accumulation."""
        cfg = SherlockConfig()
        app = build_synth_app(SCALE_SPECS["App-XL1"])
        extractor = WindowExtractor(near=cfg.near, window_cap=cfg.window_cap)
        store = ObservationStore()
        for round_id in range(3):
            for test in app.tests:
                ex = run_unit_test(
                    app, test, RunOptions(seed=cfg.seed, run_id=round_id)
                )
                assert ex.error is None, ex.error
                store.ingest_run(ex.log, extractor.extract(ex.log))
        assert len(store.coverage_windows(True)) >= 10_000
        model, _registry = build_model(store, cfg)
        assert model.stats()["variables"] >= 10_000

    def test_spec_sizing_monotone(self):
        """XL1 < XL2 < XL3 in estimated event volume."""
        sizes = [
            SCALE_SPECS[a].approx_events_per_test
            for a in ("App-XL1", "App-XL2", "App-XL3")
        ]
        assert sizes == sorted(sizes) and len(set(sizes)) == 3
