"""Integration tests: the race-detection harness over benchmark apps."""

import pytest

from repro.apps.registry import get_application
from repro.core import Sherlock, SherlockConfig
from repro.racedet import (
    attribute_false_races,
    detect_races,
    manual_spec,
    sherlock_spec,
)


@pytest.fixture(scope="module")
def app7_report():
    app = get_application("App-7")
    report = Sherlock(app, SherlockConfig(rounds=3, seed=0)).run()
    return app, report


def test_manual_spec_contains_classics():
    app = get_application("App-1")
    spec = manual_spec(app)
    names = {ref.name for ref in spec.acquires | spec.releases}
    assert "System.Threading.Monitor::Enter" in names
    assert "System.Threading.Monitor::Exit" in names
    # The blind spots the paper describes:
    assert not any("TaskFactory" in n for n in names)
    assert not any("ThreadPool" in n for n in names)
    assert not any("Dataflow" in n for n in names)


def test_manual_spec_knows_volatile_fields():
    app = get_application("App-4")
    spec = manual_spec(app)
    assert "k8s.ByteBuffer::endOfFile" in spec.volatile_fields


def test_sherlock_spec_mirrors_inference(app7_report):
    app, report = app7_report
    spec = sherlock_spec(report.final)
    assert len(spec.acquires) == len(report.final.acquires)
    assert len(spec.releases) == len(report.final.releases)


def test_detect_races_counts_first_per_run(app7_report):
    app, report = app7_report
    result = detect_races(app, sherlock_spec(report.final), seed=0)
    assert len(result.first_races) == len(app.tests)
    assert result.total == result.true_races + result.false_races


def test_sherlock_dr_beats_manual_on_false_races(app7_report):
    """The paper's headline §5.4 shape on App-7."""
    app, report = app7_report
    manual = detect_races(app, manual_spec(app), seed=0)
    inferred = detect_races(app, sherlock_spec(report.final), seed=0)
    assert inferred.false_races <= manual.false_races


def test_attribute_false_races_buckets(app7_report):
    app, report = app7_report
    result = detect_races(app, sherlock_spec(report.final), seed=0)
    buckets = attribute_false_races(app, result)
    assert all(count > 0 for count in buckets.values())
