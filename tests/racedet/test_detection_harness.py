"""Integration tests: the race-detection harness over benchmark apps."""

import pytest

from repro.apps.registry import get_application
from repro.core import Sherlock, SherlockConfig
from repro.racedet import (
    HappensBeforeSpec,
    analyze_run,
    attribute_false_races,
    classify_first_races,
    detect_races,
    manual_spec,
    sherlock_spec,
)
from repro.sim.runner import RunOptions, run_application


@pytest.fixture(scope="module")
def app7_report():
    app = get_application("App-7")
    report = Sherlock(app, SherlockConfig(rounds=3, seed=0)).run()
    return app, report


def test_manual_spec_contains_classics():
    app = get_application("App-1")
    spec = manual_spec(app)
    names = {ref.name for ref in spec.acquires | spec.releases}
    assert "System.Threading.Monitor::Enter" in names
    assert "System.Threading.Monitor::Exit" in names
    # The blind spots the paper describes:
    assert not any("TaskFactory" in n for n in names)
    assert not any("ThreadPool" in n for n in names)
    assert not any("Dataflow" in n for n in names)


def test_manual_spec_knows_volatile_fields():
    app = get_application("App-4")
    spec = manual_spec(app)
    assert "k8s.ByteBuffer::endOfFile" in spec.volatile_fields


def test_sherlock_spec_mirrors_inference(app7_report):
    app, report = app7_report
    spec = sherlock_spec(report.final)
    assert len(spec.acquires) == len(report.final.acquires)
    assert len(spec.releases) == len(report.final.releases)


def test_detect_races_classifies_first_races(app7_report):
    """The harness's counts are the *classified* first-race verdicts,
    not raw report lists."""
    app, report = app7_report
    result = detect_races(app, sherlock_spec(report.final), seed=0)
    assert len(result.first_races) == len(app.tests)
    expected = classify_first_races(
        result.first_races, set(app.ground_truth.racy_fields)
    )
    assert (result.true_races, result.false_races) == expected
    assert result.total == sum(expected)


def test_classify_first_races_skips_race_free_runs(app7_report):
    app, report = app7_report
    result = detect_races(app, sherlock_spec(report.final), seed=0)
    racy = set(app.ground_truth.racy_fields)
    true_n, false_n = classify_first_races(result.first_races, racy)
    reported = [r for r in result.first_races if r is not None]
    assert true_n + false_n == len(reported)
    assert true_n == sum(1 for r in reported if r.field_name in racy)
    # None entries (race-free runs) never count either way.
    assert classify_first_races([None, None], racy) == (0, 0)


def test_fasttrack_stops_counting_after_first_race_per_run():
    """§5.4 soundness caveat: FastTrack's guarantee holds only until
    the first report, so the harness counts one race per run even when
    the analysis reports several."""
    app = get_application("App-7")
    empty = HappensBeforeSpec(name="empty")  # no syncs: many races
    executions = run_application(app, RunOptions(seed=0, run_id=0))
    per_run = [
        len(analyze_run(e.log, empty).races) for e in executions
    ]
    assert max(per_run) > 1  # at least one run reports multiple races
    result = detect_races(app, empty, seed=0)
    assert result.total == sum(1 for n in per_run if n > 0)
    assert result.total < sum(per_run)


def test_sherlock_dr_beats_manual_on_false_races(app7_report):
    """The paper's headline §5.4 shape on App-7."""
    app, report = app7_report
    manual = detect_races(app, manual_spec(app), seed=0)
    inferred = detect_races(app, sherlock_spec(report.final), seed=0)
    assert inferred.false_races <= manual.false_races


def test_attribute_false_races_buckets(app7_report):
    app, report = app7_report
    result = detect_races(app, sherlock_spec(report.final), seed=0)
    buckets = attribute_false_races(app, result)
    assert all(count > 0 for count in buckets.values())
