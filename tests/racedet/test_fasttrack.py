"""FastTrack race-detector tests on hand-built traces."""


from repro.racedet import HappensBeforeSpec, analyze_run
from repro.racedet.vectorclock import Epoch, VarState, VectorClock
from repro.trace import OpType, TraceEvent, TraceLog, begin_of, end_of


def ev(t, tid, op, name, addr=1, **meta):
    return TraceEvent(
        timestamp=t, thread_id=tid, optype=op, name=name, address=addr,
        meta=meta,
    )


def build_log(events):
    log = TraceLog()
    for e in sorted(events, key=lambda e: e.timestamp):
        log.append(e)
    return log


W, R, EN, EX = OpType.WRITE, OpType.READ, OpType.ENTER, OpType.EXIT


class TestVectorClock:
    def test_join_takes_max(self):
        a = VectorClock({1: 3, 2: 1})
        b = VectorClock({2: 5, 3: 2})
        a.join(b)
        assert a.get(1) == 3 and a.get(2) == 5 and a.get(3) == 2

    def test_happens_before(self):
        a = VectorClock({1: 1})
        b = VectorClock({1: 2, 2: 1})
        assert a.happens_before(b)
        assert not b.happens_before(a)

    def test_epoch(self):
        e = Epoch(1, 3)
        assert e.happens_before(VectorClock({1: 3}))
        assert not e.happens_before(VectorClock({1: 2}))

    def test_var_state_read_inflation(self):
        state = VarState()
        state.record_read(1, VectorClock({1: 1}))
        assert state.read_epoch is not None
        # A concurrent read from another thread inflates to a VC.
        state.record_read(2, VectorClock({2: 1}))
        assert state.read_vc is not None

    def test_var_state_write_resets_reads(self):
        state = VarState()
        state.record_read(1, VectorClock({1: 1}))
        state.record_write(1, VectorClock({1: 2}))
        assert state.read_epoch is None and state.read_vc is None
        assert state.write is not None


class TestFastTrack:
    def test_unsynchronized_write_read_is_race(self):
        log = build_log([
            ev(0.1, 1, W, "C::x"),
            ev(0.2, 2, R, "C::x"),
        ])
        analysis = analyze_run(log, HappensBeforeSpec("empty"))
        assert analysis.first is not None
        assert analysis.first.field_name == "C::x"

    def test_write_write_race(self):
        log = build_log([
            ev(0.1, 1, W, "C::x"),
            ev(0.2, 2, W, "C::x"),
        ])
        analysis = analyze_run(log, HappensBeforeSpec("empty"))
        assert analysis.first is not None

    def test_same_thread_no_race(self):
        log = build_log([
            ev(0.1, 1, W, "C::x"),
            ev(0.2, 1, R, "C::x"),
            ev(0.3, 1, W, "C::x"),
        ])
        assert analyze_run(log, HappensBeforeSpec("empty")).first is None

    def test_release_acquire_orders_accesses(self):
        # T1: write x; Release-exit (channel=lock obj 9).
        # T2: Acquire-enter on same lock; read x.  No race with the spec.
        spec = HappensBeforeSpec(
            "lock",
            acquires={begin_of("L::Acquire")},
            releases={end_of("L::Release")},
        )
        events = [
            ev(0.10, 1, W, "C::x", addr=1),
            ev(0.12, 1, EN, "L::Release", addr=9),
            ev(0.14, 1, EX, "L::Release", addr=9),
            ev(0.16, 2, EN, "L::Acquire", addr=9),
            ev(0.18, 2, EX, "L::Acquire", addr=9),
            ev(0.20, 2, R, "C::x", addr=1),
        ]
        assert analyze_run(build_log(events), spec).first is None
        # Without the spec the same trace races.
        assert (
            analyze_run(build_log(events), HappensBeforeSpec("none")).first
            is not None
        )

    def test_blocking_acquire_joins_at_exit(self):
        # The acquire's ENTER precedes the release (it blocked); the join
        # must land at its EXIT for the read to be ordered.
        spec = HappensBeforeSpec(
            "lock",
            acquires={begin_of("L::Acquire")},
            releases={end_of("L::Release")},
        )
        events = [
            ev(0.05, 2, EN, "L::Acquire", addr=9),   # invoked early, blocks
            ev(0.10, 1, W, "C::x", addr=1),
            ev(0.12, 1, EN, "L::Release", addr=9),
            ev(0.14, 1, EX, "L::Release", addr=9),
            ev(0.18, 2, EX, "L::Acquire", addr=9),   # returns after release
            ev(0.20, 2, R, "C::x", addr=1),
        ]
        assert analyze_run(build_log(events), spec).first is None

    def test_volatile_fields_order(self):
        spec = HappensBeforeSpec("volatile", volatile_fields={"C::flag"})
        events = [
            ev(0.10, 1, W, "C::data", addr=1),
            ev(0.12, 1, W, "C::flag", addr=1),
            ev(0.14, 2, R, "C::flag", addr=1),
            ev(0.16, 2, R, "C::data", addr=1),
        ]
        assert analyze_run(build_log(events), spec).first is None

    def test_static_init_channel_joins_any_access(self):
        spec = HappensBeforeSpec(
            "statics", static_init_methods={"C::.cctor"}
        )
        events = [
            ev(0.08, 1, EN, "C::.cctor", addr=7),
            ev(0.10, 1, W, "C::table", addr=7),
            ev(0.12, 1, EX, "C::.cctor", addr=7),
            ev(0.20, 2, R, "C::table", addr=7),
        ]
        assert analyze_run(build_log(events), spec).first is None

    def test_first_race_is_earliest(self):
        log = build_log([
            ev(0.1, 1, W, "C::x"),
            ev(0.2, 2, R, "C::x"),
            ev(0.3, 1, W, "C::y", addr=2),
            ev(0.4, 2, W, "C::y", addr=2),
        ])
        analysis = analyze_run(log, HappensBeforeSpec("empty"))
        assert analysis.first.field_name == "C::x"
        assert len(analysis.races) >= 2
