"""Property-based tests for vector-clock algebra (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.racedet.vectorclock import VectorClock

clock_dicts = st.dictionaries(
    st.integers(1, 6), st.integers(0, 20), max_size=6
)


@given(clock_dicts, clock_dicts)
@settings(max_examples=80, deadline=None)
def test_join_is_least_upper_bound(a_dict, b_dict):
    a = VectorClock(a_dict)
    b = VectorClock(b_dict)
    joined = a.copy()
    joined.join(b)
    # Upper bound of both operands.
    assert a.happens_before(joined)
    assert b.happens_before(joined)
    # Least: componentwise max, nothing more.
    for tid in set(a_dict) | set(b_dict):
        assert joined.get(tid) == max(a.get(tid), b.get(tid))


@given(clock_dicts, clock_dicts)
@settings(max_examples=80, deadline=None)
def test_join_commutes(a_dict, b_dict):
    ab = VectorClock(a_dict)
    ab.join(VectorClock(b_dict))
    ba = VectorClock(b_dict)
    ba.join(VectorClock(a_dict))
    for tid in set(a_dict) | set(b_dict):
        assert ab.get(tid) == ba.get(tid)


@given(clock_dicts)
@settings(max_examples=50, deadline=None)
def test_join_idempotent(a_dict):
    a = VectorClock(a_dict)
    twice = a.copy()
    twice.join(a)
    for tid in a_dict:
        assert twice.get(tid) == a.get(tid)


@given(clock_dicts)
@settings(max_examples=50, deadline=None)
def test_happens_before_reflexive(a_dict):
    a = VectorClock(a_dict)
    assert a.happens_before(a)


@given(clock_dicts, st.integers(1, 6))
@settings(max_examples=50, deadline=None)
def test_increment_breaks_happens_before(a_dict, tid):
    a = VectorClock(a_dict)
    b = a.copy()
    b.increment(tid)
    assert a.happens_before(b)
    assert not b.happens_before(a)
