"""TSVD baseline tests."""


from repro.apps.registry import get_application
from repro.trace import OpType, TraceEvent, TraceLog
from repro.tsvd import TsvdResult, analyze_log, run_tsvd


def api_event(t, tid, op, name, addr, mode):
    return TraceEvent(
        timestamp=t, thread_id=tid, optype=op, name=name, address=addr,
        meta={"unsafe_api": mode, "library": True},
    )


def build_log(events):
    log = TraceLog()
    for e in sorted(events, key=lambda e: e.timestamp):
        log.append(e)
    return log


EN, EX = OpType.ENTER, OpType.EXIT


def test_sequential_conflicting_calls_are_synchronized():
    log = build_log([
        api_event(0.10, 1, EN, "List::Add", 9, "write"),
        api_event(0.12, 1, EX, "List::Add", 9, "write"),
        api_event(0.20, 2, EN, "List::Contains", 9, "read"),
        api_event(0.22, 2, EX, "List::Contains", 9, "read"),
    ])
    result = TsvdResult("T")
    analyze_log(log, result, near=1.0)
    assert len(result.synchronized_pairs) == 1
    assert not result.racy_pairs


def test_overlapping_calls_are_racy():
    log = build_log([
        api_event(0.10, 1, EN, "List::Add", 9, "write"),
        api_event(0.30, 1, EX, "List::Add", 9, "write"),
        api_event(0.15, 2, EN, "List::Add", 9, "write"),
        api_event(0.35, 2, EX, "List::Add", 9, "write"),
    ])
    result = TsvdResult("T")
    analyze_log(log, result, near=1.0)
    assert result.racy_pairs
    assert not result.synchronized_pairs


def test_read_read_pairs_ignored():
    log = build_log([
        api_event(0.10, 1, EN, "List::Contains", 9, "read"),
        api_event(0.12, 1, EX, "List::Contains", 9, "read"),
        api_event(0.20, 2, EN, "List::Contains", 9, "read"),
        api_event(0.22, 2, EX, "List::Contains", 9, "read"),
    ])
    result = TsvdResult("T")
    analyze_log(log, result, near=1.0)
    assert result.total_pairs == 0


def test_different_objects_do_not_conflict():
    log = build_log([
        api_event(0.10, 1, EN, "List::Add", 9, "write"),
        api_event(0.12, 1, EX, "List::Add", 9, "write"),
        api_event(0.20, 2, EN, "List::Add", 10, "write"),
        api_event(0.22, 2, EX, "List::Add", 10, "write"),
    ])
    result = TsvdResult("T")
    analyze_log(log, result, near=1.0)
    assert result.total_pairs == 0


def test_run_tsvd_on_benchmark_apps():
    for app_id in ("App-6", "App-7"):
        result = run_tsvd(get_application(app_id), runs=1)
        assert result.total_pairs >= 1, app_id
