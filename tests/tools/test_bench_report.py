"""Unit tests for the CI perf gate in ``tools/bench_report.py``.

``evaluate_gate`` is a pure function over two BENCH suite dicts, so the
gating semantics — the App-8 re-solve speedup floor and the 25% total
solve-time regression budget against the committed baseline — are tested
without running any benchmark.
"""

import importlib.util
import json
import os

import pytest

_REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _load_bench_report():
    spec = importlib.util.spec_from_file_location(
        "bench_report", os.path.join(_REPO_ROOT, "tools", "bench_report.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


bench_report = _load_bench_report()


def _suite(entries):
    return {
        "benchmark": "fastpath",
        "apps": [
            {
                "app_id": app_id,
                "extract_speedup": 1.0,
                "resolve_speedup": speedup,
                "resolve_incremental_s": solve_s,
            }
            for app_id, speedup, solve_s in entries
        ],
    }


BASELINE = _suite([("App-2", 1.8, 0.010), ("App-8", 3.0, 0.020)])


class TestEvaluateGate:
    def test_passes_when_fast_and_not_regressed(self):
        suite = _suite([("App-2", 1.9, 0.010), ("App-8", 3.1, 0.019)])
        ok, lines = bench_report.evaluate_gate(suite, BASELINE)
        assert ok
        assert all(line.startswith(("PASS", "SKIP")) for line in lines)

    def test_fails_when_app8_speedup_below_floor(self):
        suite = _suite([("App-2", 1.9, 0.010), ("App-8", 1.9, 0.019)])
        ok, lines = bench_report.evaluate_gate(suite, BASELINE)
        assert not ok
        assert any("FAIL" in line and "App-8" in line for line in lines)

    def test_passes_at_exactly_the_speedup_floor(self):
        suite = _suite([("App-8", 2.0, 0.020)])
        ok, _ = bench_report.evaluate_gate(suite, BASELINE)
        assert ok

    def test_fails_when_total_solve_time_regresses_past_25_percent(self):
        # Baseline common total = 30ms; 38ms > 1.25 * 30ms = 37.5ms.
        suite = _suite([("App-2", 2.5, 0.013), ("App-8", 2.5, 0.025)])
        ok, lines = bench_report.evaluate_gate(suite, BASELINE)
        assert not ok
        assert any("FAIL" in line and "re-solve" in line for line in lines)

    def test_passes_just_inside_the_regression_budget(self):
        # 37ms <= 37.5ms limit.
        suite = _suite([("App-2", 2.5, 0.013), ("App-8", 2.5, 0.024)])
        ok, _ = bench_report.evaluate_gate(suite, BASELINE)
        assert ok

    def test_total_compares_common_apps_only(self):
        # App-9 exists only in the new suite: its (huge) solve time must
        # not count against the baseline-relative budget.
        suite = _suite(
            [("App-2", 2.5, 0.010), ("App-8", 2.5, 0.020),
             ("App-9", 1.0, 9.000)]
        )
        ok, _ = bench_report.evaluate_gate(suite, BASELINE)
        assert ok

    def test_missing_app8_is_skipped_not_failed(self):
        suite = _suite([("App-2", 1.9, 0.010)])
        ok, lines = bench_report.evaluate_gate(suite, BASELINE)
        assert ok
        assert any(line.startswith("SKIP") for line in lines)

    def test_no_common_apps_fails_loudly(self):
        suite = _suite([("App-9", 5.0, 0.001)])
        ok, lines = bench_report.evaluate_gate(suite, BASELINE)
        assert not ok
        assert any("no apps in common" in line for line in lines)


class TestGateAgainstCommittedBaseline:
    def test_committed_baseline_is_gateable(self):
        """The checked-in BENCH_PR3.json must satisfy its own gate (the
        CI job compares fresh numbers against it, so it has to parse and
        self-compare cleanly)."""
        path = os.path.join(_REPO_ROOT, "BENCH_PR3.json")
        with open(path, "r", encoding="utf-8") as fp:
            baseline = json.load(fp)
        ok, lines = bench_report.evaluate_gate(baseline, baseline)
        assert ok, lines
        app8 = [e for e in baseline["apps"] if e["app_id"] == "App-8"]
        assert app8 and app8[0]["resolve_speedup"] >= 2.0

    def test_cli_gate_exit_codes(self, tmp_path, monkeypatch):
        """--gate returns 1 on regression, 0 otherwise (smoke the CLI
        wiring without running benchmarks by faking run_suite)."""
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(BASELINE))

        slow = _suite([("App-2", 1.0, 1.000), ("App-8", 1.0, 1.000)])
        monkeypatch.setattr(
            bench_report, "run_suite", lambda *a, **k: dict(slow)
        )
        rc = bench_report.main(
            [
                "--output", str(tmp_path / "out.json"),
                "--baseline", str(baseline_path),
                "--gate",
            ]
        )
        assert rc == 1

        fast = _suite([("App-2", 2.5, 0.009), ("App-8", 2.5, 0.018)])
        monkeypatch.setattr(
            bench_report, "run_suite", lambda *a, **k: dict(fast)
        )
        rc = bench_report.main(
            [
                "--output", str(tmp_path / "out.json"),
                "--baseline", str(baseline_path),
                "--gate",
            ]
        )
        assert rc == 0

    def test_gate_requires_baseline(self, capsys):
        with pytest.raises(SystemExit):
            bench_report.main(["--gate"])
