"""Unit tests for the CI perf gate in ``tools/bench_report.py``.

``evaluate_gate`` is a pure function over two BENCH suite dicts, so the
gating semantics — the App-8 re-solve speedup floor, the 25% total
solve-time regression budget, the small-tier aggregate revised/dense
cold-solve ratio, and the scale-tier cold-solve checks — are tested
without running any benchmark.  Also covers the ``safe_ratio``
denominator clamp in ``benchmarks/bench_fastpath.py`` that keeps
``inf``/``nan`` out of the BENCH json.
"""

import importlib.util
import json
import os

import pytest

_REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _load_bench_report():
    spec = importlib.util.spec_from_file_location(
        "bench_report", os.path.join(_REPO_ROOT, "tools", "bench_report.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


bench_report = _load_bench_report()


def _suite(entries):
    return {
        "benchmark": "fastpath",
        "apps": [
            {
                "app_id": app_id,
                "extract_speedup": 1.0,
                "resolve_speedup": speedup,
                "resolve_incremental_s": solve_s,
            }
            for app_id, speedup, solve_s in entries
        ],
    }


def _scale_entry(
    app_id,
    rounds,
    revised_s=None,
    dense_s=None,
    revised_capped=False,
    dense_capped=False,
):
    backends = {}
    if revised_s is not None:
        backends["revised"] = {
            "backend": "revised-simplex",
            "solve_s": revised_s,
            "capped": revised_capped,
        }
    if dense_s is not None:
        backends["dense_tableau"] = {
            "backend": "dense-tableau",
            "solve_s": dense_s,
            "capped": dense_capped,
        }
    return {
        "app_id": app_id,
        "tier": "scale",
        "rounds": rounds,
        "seed": 0,
        "backends": backends,
    }


BASELINE = _suite([("App-2", 1.8, 0.010), ("App-8", 3.0, 0.020)])


class TestEvaluateGate:
    def test_passes_when_fast_and_not_regressed(self):
        suite = _suite([("App-2", 1.9, 0.010), ("App-8", 3.1, 0.019)])
        ok, lines = bench_report.evaluate_gate(suite, BASELINE)
        assert ok
        assert all(line.startswith(("PASS", "SKIP")) for line in lines)

    def test_fails_when_app8_speedup_below_floor(self):
        suite = _suite([("App-2", 1.9, 0.010), ("App-8", 1.9, 0.019)])
        ok, lines = bench_report.evaluate_gate(suite, BASELINE)
        assert not ok
        assert any("FAIL" in line and "App-8" in line for line in lines)

    def test_passes_at_exactly_the_speedup_floor(self):
        suite = _suite([("App-8", 2.0, 0.020)])
        ok, _ = bench_report.evaluate_gate(suite, BASELINE)
        assert ok

    def test_fails_when_total_solve_time_regresses_past_25_percent(self):
        # Baseline common total = 30ms; 38ms > 1.25 * 30ms = 37.5ms.
        suite = _suite([("App-2", 2.5, 0.013), ("App-8", 2.5, 0.025)])
        ok, lines = bench_report.evaluate_gate(suite, BASELINE)
        assert not ok
        assert any("FAIL" in line and "re-solve" in line for line in lines)

    def test_passes_just_inside_the_regression_budget(self):
        # 37ms <= 37.5ms limit.
        suite = _suite([("App-2", 2.5, 0.013), ("App-8", 2.5, 0.024)])
        ok, _ = bench_report.evaluate_gate(suite, BASELINE)
        assert ok

    def test_total_compares_common_apps_only(self):
        # App-9 exists only in the new suite: its (huge) solve time must
        # not count against the baseline-relative budget.
        suite = _suite(
            [("App-2", 2.5, 0.010), ("App-8", 2.5, 0.020),
             ("App-9", 1.0, 9.000)]
        )
        ok, _ = bench_report.evaluate_gate(suite, BASELINE)
        assert ok

    def test_missing_app8_is_skipped_not_failed(self):
        suite = _suite([("App-2", 1.9, 0.010)])
        ok, lines = bench_report.evaluate_gate(suite, BASELINE)
        assert ok
        assert any(line.startswith("SKIP") for line in lines)

    def test_no_common_apps_fails_loudly(self):
        suite = _suite([("App-9", 5.0, 0.001)])
        ok, lines = bench_report.evaluate_gate(suite, BASELINE)
        assert not ok
        assert any("no apps in common" in line for line in lines)


class TestSmallTierAggregateGate:
    def test_aggregate_ratio_over_limit_fails(self):
        suite = _suite([("App-2", 2.5, 0.010), ("App-8", 2.5, 0.019)])
        for entry in suite["apps"]:
            entry["solve_revised_s"] = 0.030
            entry["solve_dense_tableau_s"] = 0.020  # ratio 1.5 > 1.15
        ok, lines = bench_report.evaluate_gate(suite, BASELINE)
        assert not ok
        assert any(
            "FAIL" in line and "revised cold solve" in line
            for line in lines
        )

    def test_aggregate_tolerates_a_per_app_outlier(self):
        # App-2's revised solve is 5x dense — a few ms of scheduler
        # noise — but the aggregate is well under 1.15x, so no failure.
        suite = _suite([("App-2", 2.5, 0.010), ("App-8", 2.5, 0.019)])
        suite["apps"][0]["solve_revised_s"] = 0.005
        suite["apps"][0]["solve_dense_tableau_s"] = 0.001
        suite["apps"][1]["solve_revised_s"] = 0.010
        suite["apps"][1]["solve_dense_tableau_s"] = 0.050
        ok, lines = bench_report.evaluate_gate(suite, BASELINE)
        assert ok
        assert any(
            "PASS" in line and "revised cold solve" in line
            for line in lines
        )

    def test_suites_without_solve_timings_skip_the_check(self):
        ok, lines = bench_report.evaluate_gate(BASELINE, BASELINE)
        assert ok
        assert not any("revised cold solve over" in line for line in lines)


class TestScaleGate:
    BASE = dict(
        BASELINE,
        scale_apps=[
            _scale_entry(
                "App-XL1", 3, revised_s=90.0, dense_s=900.0,
                dense_capped=True,
            )
        ],
    )

    def test_revised_beating_dense_passes(self):
        suite = dict(
            BASELINE,
            scale_apps=[_scale_entry("App-XL1", 3, 90.0, dense_s=500.0)],
        )
        ok, lines = bench_report.evaluate_gate(suite, self.BASE)
        assert ok, lines

    def test_revised_slower_than_dense_fails(self):
        suite = dict(
            BASELINE,
            scale_apps=[_scale_entry("App-XL1", 3, 120.0, dense_s=100.0)],
        )
        ok, lines = bench_report.evaluate_gate(suite, self.BASE)
        assert not ok
        assert any("FAIL" in line and "App-XL1" in line for line in lines)

    def test_capped_revised_fails(self):
        suite = dict(
            BASELINE,
            scale_apps=[
                _scale_entry("App-XL1", 3, 900.0, revised_capped=True)
            ],
        )
        ok, lines = bench_report.evaluate_gate(suite, self.BASE)
        assert not ok
        assert any("blew its" in line for line in lines)

    def test_dense_reference_falls_back_to_baseline(self):
        # A revised-only fresh run (the CI smoke) compares against the
        # baseline's capped dense measurement.
        suite = dict(
            BASELINE, scale_apps=[_scale_entry("App-XL1", 3, 90.0)]
        )
        ok, lines = bench_report.evaluate_gate(suite, self.BASE)
        assert ok, lines
        assert any("baseline dense" in line for line in lines)

    def test_no_dense_reference_anywhere_skips(self):
        suite = dict(
            BASELINE, scale_apps=[_scale_entry("App-XL9", 3, 90.0)]
        )
        ok, lines = bench_report.evaluate_gate(suite, self.BASE)
        assert ok
        assert any(
            line.startswith("SKIP") and "App-XL9" in line for line in lines
        )

    def test_revised_regression_against_baseline_fails(self):
        # 150s > 1.5 * 90s = 135s.
        suite = dict(
            BASELINE,
            scale_apps=[_scale_entry("App-XL1", 3, 150.0, dense_s=500.0)],
        )
        ok, lines = bench_report.evaluate_gate(suite, self.BASE)
        assert not ok
        assert any(
            "FAIL" in line and "vs baseline" in line for line in lines
        )

    def test_baseline_entries_match_on_rounds(self):
        # A rounds=1 smoke entry must not be compared against the
        # baseline's rounds=3 measurement of the same app.
        suite = dict(
            BASELINE, scale_apps=[_scale_entry("App-XL1", 1, 500.0)]
        )
        ok, lines = bench_report.evaluate_gate(suite, self.BASE)
        assert ok, lines
        assert not any("vs baseline" in line for line in lines)

    def test_scale_only_suite_passes_without_small_apps(self):
        suite = {
            "benchmark": "fastpath",
            "apps": [],
            "scale_apps": [_scale_entry("App-XL1", 1, 10.0, dense_s=50.0)],
        }
        ok, lines = bench_report.evaluate_gate(suite, self.BASE)
        assert ok, lines
        assert any("scale-only run" in line for line in lines)

    def test_missing_revised_run_fails(self):
        suite = dict(
            BASELINE,
            scale_apps=[_scale_entry("App-XL1", 3, dense_s=500.0)],
        )
        ok, lines = bench_report.evaluate_gate(suite, self.BASE)
        assert not ok
        assert any("no revised-simplex run" in line for line in lines)


class TestCappedBaselineAndDedup:
    BASE = dict(
        BASELINE,
        scale_apps=[
            _scale_entry(
                "App-XL1", 3, revised_s=90.0, dense_s=900.0,
                dense_capped=True,
            )
        ],
    )

    def test_revised_above_capped_baseline_dense_skips_not_fails(self):
        # S1: a capped dense time only bounds the true dense solve from
        # below — revised landing *above* the cap is unknowable, so the
        # check is skipped with the reason recorded, not failed.  (A
        # baseline without a revised entry isolates the dense check.)
        base = dict(
            BASELINE,
            scale_apps=[
                _scale_entry("App-XL1", 3, dense_s=900.0, dense_capped=True)
            ],
        )
        suite = dict(
            BASELINE, scale_apps=[_scale_entry("App-XL1", 3, 950.0)]
        )
        ok, lines = bench_report.evaluate_gate(suite, base)
        assert ok, lines
        assert any(
            line.startswith("SKIP") and "capped" in line for line in lines
        )
        assert not any(
            "FAIL" in line and "dense" in line for line in lines
        )

    def test_duplicate_scale_entries_dedupe_on_app_and_rounds(self):
        # S2: two measurements of the same (app_id, rounds) gate once,
        # last wins — the stale first entry (which would fail) must not
        # trip the gate.
        suite = dict(
            BASELINE,
            scale_apps=[
                _scale_entry("App-XL1", 3, 500.0, dense_s=400.0),
                _scale_entry("App-XL1", 3, 85.0, dense_s=400.0),
            ],
        )
        ok, lines = bench_report.evaluate_gate(suite, self.BASE)
        assert ok, lines
        assert (
            sum("App-XL1 (rounds=3) revised cold solve" in ln for ln in lines)
            == 2  # dense check + baseline-regression check, once each
        )


class TestWarmGates:
    BASE = dict(
        BASELINE,
        scale_apps=[_scale_entry("App-XL1", 3, 90.0, dense_s=500.0)],
    )

    def test_small_tier_warm_phase1_must_be_zero(self):
        suite = _suite([("App-2", 2.5, 0.010), ("App-8", 2.5, 0.019)])
        for entry in suite["apps"]:
            entry["warm_phase1_iterations"] = 0
        ok, lines = bench_report.evaluate_gate(suite, BASELINE)
        assert ok, lines
        assert any(
            "PASS" in line and "warm-round phase-1" in line
            for line in lines
        )
        suite["apps"][0]["warm_phase1_iterations"] = 3
        ok, lines = bench_report.evaluate_gate(suite, BASELINE)
        assert not ok
        assert any(
            "FAIL" in line and "warm-round phase-1" in line
            for line in lines
        )

    def test_scale_warm_leg_requires_a_skipped_round(self):
        entry = _scale_entry("App-XL1", 3, 88.0, dense_s=500.0)
        entry["warm"] = {
            "phase1_skipped": 2,
            "phase1_iterations": 0,
            "dual_iterations": 17,
        }
        suite = dict(BASELINE, scale_apps=[entry])
        ok, lines = bench_report.evaluate_gate(suite, self.BASE)
        assert ok, lines
        assert any(
            "PASS" in line and "skipped phase 1" in line for line in lines
        )
        entry["warm"]["phase1_skipped"] = 0
        ok, lines = bench_report.evaluate_gate(suite, self.BASE)
        assert not ok


class TestScaleSpeedupGate:
    BASE = dict(
        BASELINE,
        scale_apps=[
            _scale_entry("App-XL2", 3, 393.3, dense_s=900.0,
                         dense_capped=True),
            _scale_entry("App-XL3", 3, 348.6, dense_s=900.0,
                         dense_capped=True),
        ],
    )

    def test_speedup_met_on_one_flagship_app_passes(self):
        suite = dict(
            BASELINE,
            scale_apps=[
                _scale_entry("App-XL2", 3, 400.0),  # ratio > 1: no help
                _scale_entry("App-XL3", 3, 200.0),  # 0.57x <= 0.67x
            ],
        )
        ok, lines = bench_report.evaluate_gate(
            suite, self.BASE, require_scale_speedup=True
        )
        assert ok, lines
        assert any(
            "PASS" in line and "scale cold-solve ratio" in line
            for line in lines
        )

    def test_speedup_missed_everywhere_fails(self):
        suite = dict(
            BASELINE,
            scale_apps=[
                _scale_entry("App-XL2", 3, 380.0),
                _scale_entry("App-XL3", 3, 340.0),
            ],
        )
        ok, lines = bench_report.evaluate_gate(
            suite, self.BASE, require_scale_speedup=True
        )
        assert not ok
        assert any(
            "FAIL" in line and "scale cold-solve ratio" in line
            for line in lines
        )

    def test_requirement_with_no_comparable_entries_fails(self):
        suite = dict(
            BASELINE, scale_apps=[_scale_entry("App-XL1", 1, 30.0)]
        )
        ok, lines = bench_report.evaluate_gate(
            suite, self.BASE, require_scale_speedup=True
        )
        assert not ok
        assert any("no comparable" in line for line in lines)

    def test_not_required_by_default(self):
        suite = dict(
            BASELINE,
            scale_apps=[_scale_entry("App-XL2", 3, 380.0,
                                     dense_s=500.0)],
        )
        ok, lines = bench_report.evaluate_gate(suite, self.BASE)
        assert ok, lines
        assert not any("scale cold-solve ratio" in line for line in lines)


class TestSafeRatio:
    """The denominator clamp that keeps inf/nan out of the BENCH json
    (division by a ~0 timing on a fast machine used to emit ``inf``,
    which ``json.dump(..., allow_nan=False)`` now rejects)."""

    def test_ordinary_division(self):
        from benchmarks.bench_fastpath import safe_ratio

        assert safe_ratio(10.0, 2.0) == 5.0

    def test_zero_denominator_is_finite(self):
        import math

        from benchmarks.bench_fastpath import (
            MIN_TIMING_DENOMINATOR_S,
            safe_ratio,
        )

        value = safe_ratio(1.0, 0.0)
        assert math.isfinite(value)
        assert value == 1.0 / MIN_TIMING_DENOMINATOR_S

    def test_clamped_ratio_survives_strict_json(self):
        from benchmarks.bench_fastpath import safe_ratio

        payload = {"speedup": safe_ratio(0.002, 0.0)}
        json.dumps(payload, allow_nan=False)  # must not raise


class TestGateAgainstCommittedBaseline:
    def test_committed_baseline_is_gateable(self):
        """The checked-in BENCH_PR3.json must satisfy its own gate (the
        CI job compares fresh numbers against it, so it has to parse and
        self-compare cleanly)."""
        path = os.path.join(_REPO_ROOT, "BENCH_PR3.json")
        with open(path, "r", encoding="utf-8") as fp:
            baseline = json.load(fp)
        ok, lines = bench_report.evaluate_gate(baseline, baseline)
        assert ok, lines
        app8 = [e for e in baseline["apps"] if e["app_id"] == "App-8"]
        assert app8 and app8[0]["resolve_speedup"] >= 2.0

    def test_committed_pr5_baseline_is_gateable(self):
        """BENCH_PR5.json — the baseline both CI bench jobs gate against
        — must self-gate cleanly, carry all three scale apps plus the
        rounds=1 smoke entry, and hold an uncapped revised run that
        beats dense on every scale entry."""
        path = os.path.join(_REPO_ROOT, "BENCH_PR5.json")
        with open(path, "r", encoding="utf-8") as fp:
            baseline = json.load(fp)
        ok, lines = bench_report.evaluate_gate(baseline, baseline)
        assert ok, lines
        keys = {
            (e["app_id"], e["rounds"]) for e in baseline["scale_apps"]
        }
        assert {
            ("App-XL1", 3),
            ("App-XL2", 3),
            ("App-XL3", 3),
            ("App-XL1", 1),
        } <= keys
        for entry in baseline["scale_apps"]:
            revised = entry["backends"]["revised"]
            assert not revised["capped"], entry["app_id"]
            dense = entry["backends"]["dense_tableau"]
            assert revised["solve_s"] <= dense["solve_s"]

    def test_committed_pr10_baseline_is_gateable(self):
        """BENCH_PR10.json — the baseline both CI bench jobs now gate
        against — must self-gate cleanly, carry all three scale apps
        plus the rounds=1 smoke entry (revised-only: dense at scale is
        covered by PR5's capped measurements), warm legs whose warm
        rounds all skipped phase 1, and zero warm-round phase-1
        iterations on the small tier."""
        path = os.path.join(_REPO_ROOT, "BENCH_PR10.json")
        with open(path, "r", encoding="utf-8") as fp:
            baseline = json.load(fp)
        ok, lines = bench_report.evaluate_gate(baseline, baseline)
        assert ok, lines
        keys = {
            (e["app_id"], e["rounds"]) for e in baseline["scale_apps"]
        }
        assert {
            ("App-XL1", 3),
            ("App-XL2", 3),
            ("App-XL3", 3),
            ("App-XL1", 1),
        } <= keys
        for entry in baseline["scale_apps"]:
            revised = entry["backends"]["revised"]
            assert not revised["capped"], entry["app_id"]
            warm = entry.get("warm")
            if warm is not None:
                assert warm["phase1_iterations"] == 0, entry["app_id"]
                assert warm["phase1_skipped"] == entry["rounds"] - 1
        for entry in baseline["apps"]:
            assert entry["warm_phase1_iterations"] == 0, entry["app_id"]

    def test_pr10_hits_the_scale_speedup_target_vs_pr5(self):
        """The presolve + dual re-solve portfolio's headline acceptance
        gate, CI-enforced: BENCH_PR10's cold solve must run at or below
        0.67x BENCH_PR5's revised time on App-XL2 or App-XL3
        (rounds=3), via the same ``evaluate_gate`` code path the CI
        uses with ``--require-scale-speedup``.  Scoped to the scale
        tier: the two baselines were measured in different sessions, so
        their small-tier ~10ms wall-clock numbers only compare machine
        load (CI's small-tier gates rerun fresh against BENCH_PR10
        itself), whereas the scale solves differ by >10x — far outside
        environmental noise."""
        with open(
            os.path.join(_REPO_ROOT, "BENCH_PR10.json"), encoding="utf-8"
        ) as fp:
            pr10 = json.load(fp)
        with open(
            os.path.join(_REPO_ROOT, "BENCH_PR5.json"), encoding="utf-8"
        ) as fp:
            pr5 = json.load(fp)
        current = {"apps": [], "scale_apps": pr10["scale_apps"]}
        base = {"apps": [], "scale_apps": pr5["scale_apps"]}
        ok, lines = bench_report.evaluate_gate(
            current, base, require_scale_speedup=True
        )
        assert ok, lines
        assert any(
            "PASS" in line and "scale cold-solve ratio" in line
            for line in lines
        )

    def test_cli_gate_exit_codes(self, tmp_path, monkeypatch):
        """--gate returns 1 on regression, 0 otherwise (smoke the CLI
        wiring without running benchmarks by faking run_suite)."""
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(BASELINE))

        slow = _suite([("App-2", 1.0, 1.000), ("App-8", 1.0, 1.000)])
        monkeypatch.setattr(
            bench_report, "run_suite", lambda *a, **k: dict(slow)
        )
        rc = bench_report.main(
            [
                "--output", str(tmp_path / "out.json"),
                "--baseline", str(baseline_path),
                "--gate",
            ]
        )
        assert rc == 1

        fast = _suite([("App-2", 2.5, 0.009), ("App-8", 2.5, 0.018)])
        monkeypatch.setattr(
            bench_report, "run_suite", lambda *a, **k: dict(fast)
        )
        rc = bench_report.main(
            [
                "--output", str(tmp_path / "out.json"),
                "--baseline", str(baseline_path),
                "--gate",
            ]
        )
        assert rc == 0

    def test_gate_requires_baseline(self, capsys):
        with pytest.raises(SystemExit):
            bench_report.main(["--gate"])
