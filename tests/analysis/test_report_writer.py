"""Tests for the markdown report writer."""

import io

from repro.analysis.report_writer import report_markdown, write_report


def test_write_report_covers_all_sections():
    buffer = io.StringIO()
    sections = write_report(buffer, app_ids=["App-2"])
    text = buffer.getvalue()
    assert len(sections) == 11
    for title in sections:
        assert title in text
    assert text.startswith("# SherLock reproduction report")


def test_report_markdown_contains_tables():
    text = report_markdown(app_ids=["App-2"])
    assert "Table 2" in text
    assert "App-2" in text
