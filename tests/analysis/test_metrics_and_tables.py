"""Tests for scoring, table rendering, and experiment regenerators."""

import pytest

from repro.analysis import TableResult, classify, precision, unique_sync_count
from repro.analysis.metrics import missed_by_category
from repro.apps.registry import get_application
from repro.core import Sherlock, SherlockConfig
from repro.trace import Role, SyncOp, read_of, write_of


@pytest.fixture(scope="module")
def app2_scored():
    app = get_application("App-2")
    report = Sherlock(app, SherlockConfig(rounds=3, seed=0)).run()
    return app, report, classify(app, report)


def test_classify_app2_all_correct(app2_scored):
    app, report, result = app2_scored
    assert len(result.correct) == 6
    assert not result.data_racy
    assert not result.instr_errors
    assert not result.not_sync
    assert result.inferred_total == 6


def test_classify_data_racy_bucket():
    app = get_application("App-7")
    report = Sherlock(app, SherlockConfig(rounds=3, seed=0)).run()
    result = classify(app, report)
    assert all(
        s.op.name in app.ground_truth.racy_fields for s in result.data_racy
    )


def test_unique_sync_count_dedupes():
    a = {SyncOp(read_of("C::f"), Role.ACQUIRE)}
    b = {SyncOp(read_of("C::f"), Role.ACQUIRE),
         SyncOp(write_of("C::f"), Role.RELEASE)}
    assert unique_sync_count([a, b]) == 2


def test_precision_helper(app2_scored):
    _, _, result = app2_scored
    correct, total, prec = precision([result])
    assert correct == total == 6
    assert prec == pytest.approx(1.0)


def test_missed_by_category(app2_scored):
    app, _, result = app2_scored
    buckets = missed_by_category(app, result)
    assert sum(buckets.values()) == len(result.missed)


def test_table_result_rendering():
    table = TableResult("Demo", ["a", "bb"])
    table.add_row(1, "xyz")
    table.notes.append("a note")
    text = table.render()
    assert "Demo" in text
    assert "xyz" in text
    assert "a note" in text


class TestExperimentRegenerators:
    """Smoke-run every regenerator on a small app subset."""

    APPS = ["App-2", "App-7"]

    def test_table1(self):
        from repro.analysis.experiments import table1

        result = table1.run(self.APPS)
        assert len(result.rows) == 2

    def test_table2(self):
        from repro.analysis.experiments import table2

        result, classified = table2.run(self.APPS)
        assert len(classified) == 2
        assert result.rows[-1][0] == "Sum"

    def test_table3(self):
        from repro.analysis.experiments import table3

        result, per_app = table3.run(self.APPS)
        manual, sherlock = per_app["App-7"]
        assert manual.spec_name == "Manual_dr"
        assert sherlock.spec_name == "SherLock_dr"

    def test_table4(self):
        from repro.analysis.experiments import table4

        result = table4.run(self.APPS)
        assert result.rows[-1][0] == "Total"

    def test_table5_mostly_protected_indispensable(self):
        from repro.analysis.experiments import table5

        result = table5.run(self.APPS)
        rows = {row[0]: row for row in result.rows}
        assert rows["w/o Mostly are Protected"][1] == 0
        assert rows["SherLock"][1] > 0

    def test_table6_lambda_shrinks_inference(self):
        from repro.analysis.experiments import table6

        result = table6.run(self.APPS, lambdas=(0.2, 100.0))
        by_lam = {row[0]: row for row in result.rows}
        assert by_lam[100.0][2] <= by_lam[0.2][2]

    def test_table7_small_near_misses_syncs(self):
        from repro.analysis.experiments import table7

        result = table7.run(self.APPS, nears=(0.01, 1.0))
        by_near = {row[0]: row for row in result.rows}
        assert by_near[0.01][1] <= by_near[1.0][1]

    def test_figure4_settings(self):
        from repro.analysis.experiments import figure4

        result = figure4.run(self.APPS, rounds=2)
        assert len(result.rows) == 4

    def test_table89_listing(self):
        from repro.analysis.experiments import table89

        result = table89.run(["App-2"])
        assert any("GetOrAdd" in str(row[2]) for row in result.rows)

    def test_tsvd_enhancement(self):
        from repro.analysis.experiments import tsvd_enhance

        result = tsvd_enhance.run(self.APPS)
        total = result.rows[-1]
        assert total[2] >= total[1]
