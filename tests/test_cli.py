"""CLI smoke tests."""

import json

import pytest

from repro.cli import main


def test_apps_command(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    assert "App-1" in out and "App-8" in out
    # The grown family tier is listed, and labelled as its own tier.
    assert "App-9" in out and "App-10" in out
    assert out.count("[family tier]") == 2


def test_infer_command(capsys):
    assert main(["--rounds", "2", "infer", "App-2"]) == 0
    out = capsys.readouterr().out
    assert "GetOrAdd" in out
    assert "true" in out


def test_races_command(capsys):
    assert main(["--rounds", "2", "races", "App-7"]) == 0
    out = capsys.readouterr().out
    assert "Manual_dr" in out and "SherLock_dr" in out


def test_table_command(capsys):
    assert main(["--apps", "App-2,App-7", "table", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out


def test_fuzz_command(tmp_path, capsys):
    out_path = tmp_path / "fuzz_report.json"
    assert main([
        "--rounds", "1", "fuzz",
        "--app", "app7_statsd",
        "--schedules", "2",
        "--replay-every", "2",
        "--no-oracles",
        "--out", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "fuzz campaign" in out and "RESULT: OK" in out
    blob = json.loads(out_path.read_text(encoding="utf-8"))
    assert blob["totals"]["schedules"] == 2
    assert blob["totals"]["violations"] == 0
    assert blob["totals"]["ok"] is True
    assert "App-7" in blob["apps"]


def test_predict_command(tmp_path, capsys):
    out_path = tmp_path / "power.json"
    assert main([
        "--rounds", "2", "predict",
        "--app", "App-7",
        "--spec", "both",
        "--out", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "Detection power" in out
    assert "Manual_pr" in out and "SherLock_pr" in out
    blob = json.loads(out_path.read_text(encoding="utf-8"))
    assert blob["totals"]["supersets_ok"] is True
    assert blob["totals"]["invalid_witnesses"] == 0
    assert {r["spec_name"] for r in blob["rows"]} == {
        "Manual_pr", "SherLock_pr"
    }


def test_predict_unknown_spec_rejected():
    with pytest.raises(SystemExit):
        main(["predict", "--spec", "lockset"])


def test_fuzz_unknown_policy_rejected():
    with pytest.raises(SystemExit):
        main(["fuzz", "--policy", "roundrobin"])


def test_unknown_table_rejected():
    with pytest.raises(SystemExit):
        main(["table", "table42"])


def test_command_required():
    with pytest.raises(SystemExit):
        main([])


# -- convert error paths ------------------------------------------------------


def test_convert_malformed_directed_seed_rejected():
    """A non-numeric seed in a directed: spec is an argparse error."""
    with pytest.raises(SystemExit):
        main(["convert", "--policy", "directed:notanint|A::x"])


def test_convert_empty_directed_target_rejected():
    """`directed:0|` carries an empty target — rejected at parse time."""
    with pytest.raises(SystemExit):
        main(["convert", "--policy", "directed:0|"])


def test_convert_bad_target_access_kind_rejected():
    """Unknown access kinds in a target's bracket suffix are rejected."""
    with pytest.raises(SystemExit):
        main(["convert", "--policy", "directed:0|A::x[jump]"])


def test_convert_unknown_app_rejected_before_any_run():
    """Unknown app ids fail config validation (no baselines are run)."""
    with pytest.raises(KeyError):
        main(["convert", "--app", "App-99", "--schedules", "1"])


def test_convert_command_family_planted_gate(tmp_path, capsys):
    """The convert-smoke CI leg: App-10 with --require-planted exits 0
    and reports no planted race unconverted."""
    out = tmp_path / "conversion.json"
    code = main([
        "convert", "--app", "App-10", "--schedules", "2",
        "--require-planted", "--out", str(out),
    ])
    assert code == 0
    blob = json.loads(out.read_text())
    assert blob["totals"]["planted_unconverted"] == []
    assert blob["totals"]["targets"] == blob["totals"]["converted"] + (
        blob["totals"]["flagged"]
    )
