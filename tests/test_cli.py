"""CLI smoke tests."""

import json

import pytest

from repro.cli import main


def test_apps_command(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    assert "App-1" in out and "App-8" in out


def test_infer_command(capsys):
    assert main(["--rounds", "2", "infer", "App-2"]) == 0
    out = capsys.readouterr().out
    assert "GetOrAdd" in out
    assert "true" in out


def test_races_command(capsys):
    assert main(["--rounds", "2", "races", "App-7"]) == 0
    out = capsys.readouterr().out
    assert "Manual_dr" in out and "SherLock_dr" in out


def test_table_command(capsys):
    assert main(["--apps", "App-2,App-7", "table", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out


def test_fuzz_command(tmp_path, capsys):
    out_path = tmp_path / "fuzz_report.json"
    assert main([
        "--rounds", "1", "fuzz",
        "--app", "app7_statsd",
        "--schedules", "2",
        "--replay-every", "2",
        "--no-oracles",
        "--out", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "fuzz campaign" in out and "RESULT: OK" in out
    blob = json.loads(out_path.read_text(encoding="utf-8"))
    assert blob["totals"]["schedules"] == 2
    assert blob["totals"]["violations"] == 0
    assert blob["totals"]["ok"] is True
    assert "App-7" in blob["apps"]


def test_predict_command(tmp_path, capsys):
    out_path = tmp_path / "power.json"
    assert main([
        "--rounds", "2", "predict",
        "--app", "App-7",
        "--spec", "both",
        "--out", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "Detection power" in out
    assert "Manual_pr" in out and "SherLock_pr" in out
    blob = json.loads(out_path.read_text(encoding="utf-8"))
    assert blob["totals"]["supersets_ok"] is True
    assert blob["totals"]["invalid_witnesses"] == 0
    assert {r["spec_name"] for r in blob["rows"]} == {
        "Manual_pr", "SherLock_pr"
    }


def test_predict_unknown_spec_rejected():
    with pytest.raises(SystemExit):
        main(["predict", "--spec", "lockset"])


def test_fuzz_unknown_policy_rejected():
    with pytest.raises(SystemExit):
        main(["fuzz", "--policy", "roundrobin"])


def test_unknown_table_rejected():
    with pytest.raises(SystemExit):
        main(["table", "table42"])


def test_command_required():
    with pytest.raises(SystemExit):
        main([])
