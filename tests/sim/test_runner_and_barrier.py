"""Tests for the test-harness runner, the Barrier primitive, and the
kernel's thread-local clocks."""

import pytest

from repro.sim import (
    AppContext,
    AppInfo,
    Application,
    GroundTruth,
    Kernel,
    Method,
    RunOptions,
    Runtime,
    UnitTest,
    run_application,
    run_unit_test,
)
from repro.sim.primitives import Barrier, SystemThread
from repro.trace import OpType, TraceLog


def simple_app(tests, test_initialize=None):
    return Application(
        info=AppInfo("T", "TestApp", "0K", 0, len(tests)),
        make_context=lambda rt: AppContext(),
        tests=tests,
        ground_truth=GroundTruth(),
        test_initialize=test_initialize,
    )


class TestRunner:
    def test_runs_each_test_on_fresh_kernel(self):
        seen = []

        def body(rt, ctx):
            obj = rt.new_object("C", x=0)
            yield from rt.write(obj, "x", 1)
            seen.append(obj.id)

        app = simple_app([
            UnitTest("T::one", body), UnitTest("T::two", body),
        ])
        executions = run_application(app, RunOptions(seed=0))
        assert len(executions) == 2
        assert all(e.error is None for e in executions)
        assert seen[0] != seen[1]  # fresh objects per execution

    def test_test_method_events_traced(self):
        def body(rt, ctx):
            yield from rt.sched_yield()

        app = simple_app([UnitTest("Suite::MyTest", body)])
        execution = run_unit_test(app, app.tests[0], RunOptions(seed=0))
        names = [e.name for e in execution.log]
        assert names.count("Suite::MyTest") == 2  # ENTER + EXIT

    def test_test_initialize_runs_on_other_thread_first(self):
        order = []

        def init_body(rt, obj):
            order.append("init")
            yield from rt.write(obj, "ready", True)

        def body(rt, ctx):
            order.append("test")
            yield from rt.sched_yield()

        init = Method("Suite::TestInitialize", init_body)
        app = simple_app([UnitTest("Suite::T", body)], test_initialize=init)
        app.make_context = lambda rt: AppContext(
            rt.new_object("Suite", ready=False)
        )
        execution = run_unit_test(app, app.tests[0], RunOptions(seed=0))
        assert execution.error is None
        assert order == ["init", "test"]
        init_events = [
            e for e in execution.log if e.name == "Suite::TestInitialize"
        ]
        test_events = [e for e in execution.log if e.name == "Suite::T"]
        assert init_events[0].thread_id != test_events[0].thread_id
        assert init_events[-1].timestamp < test_events[0].timestamp

    def test_error_reported_not_raised(self):
        def body(rt, ctx):
            yield from rt.sched_yield()
            raise AssertionError("test failure")

        app = simple_app([UnitTest("T::failing", body)])
        execution = run_unit_test(app, app.tests[0], RunOptions(seed=0))
        assert execution.error is not None
        assert "AssertionError" in execution.error

    def test_seed_mixing_differs_per_test(self):
        def body(rt, ctx):
            obj = rt.new_object("C", x=0)
            for _ in range(5):
                yield from rt.write(obj, "x", 0)

        app = simple_app([
            UnitTest("T::a", body), UnitTest("T::b", body),
        ])
        a, b = run_application(app, RunOptions(seed=0))
        times_a = [round(e.timestamp, 9) for e in a.log]
        times_b = [round(e.timestamp, 9) for e in b.log]
        assert times_a != times_b


class TestBarrier:
    def test_all_participants_blocked_until_phase(self):
        log = TraceLog()
        kernel = Kernel(seed=3, log=log)
        rt = Runtime(kernel)
        barrier = Barrier(3, "b")
        progress = []

        def participant(i):
            def body(rt_, obj):
                yield from rt_.sleep(0.01 * i)
                yield from barrier.signal_and_wait(rt_)
                progress.append(i)

            return Method(f"T::P{i}", body)

        threads = [
            SystemThread(participant(i), name=f"p{i}") for i in range(3)
        ]

        def main():
            for t in threads:
                yield from t.start(rt)
            for t in threads:
                yield from t.join(rt)

        kernel.spawn(main(), "main")
        kernel.run()
        assert sorted(progress) == [0, 1, 2]
        # No participant passed before the last arrived: all EXITs of
        # SignalAndWait come after all ENTERs.
        enters = [
            e.timestamp for e in log
            if "SignalAndWait" in e.name and e.optype is OpType.ENTER
        ]
        exits = [
            e.timestamp for e in log
            if "SignalAndWait" in e.name and e.optype is OpType.EXIT
        ]
        assert max(enters) < min(exits)

    def test_barrier_is_reusable(self):
        kernel = Kernel(seed=1, log=TraceLog())
        rt = Runtime(kernel)
        barrier = Barrier(2)
        phases = []

        def worker(tag):
            def body():
                for phase in range(3):
                    yield from barrier.signal_and_wait(rt)
                    phases.append((tag, phase))

            return body

        kernel.spawn(worker("a")(), "a")
        kernel.spawn(worker("b")(), "b")
        kernel.run()
        assert len(phases) == 6
        assert barrier.phase == 3

    def test_invalid_participant_count(self):
        with pytest.raises(ValueError):
            Barrier(0)


class TestLocalClocks:
    def test_blocked_time_charged_to_local_clock(self):
        kernel = Kernel(seed=0, log=TraceLog())
        rt = Runtime(kernel)
        from repro.sim.thread import WaitSet

        ws = WaitSet("gate")
        flag = [False]

        def waiter():
            while not flag[0]:
                yield from rt.wait_on(ws)
            yield from rt.sched_yield()

        def setter():
            yield from rt.sleep(0.5)
            flag[0] = True
            rt.notify_all(ws)

        t_wait = kernel.spawn(waiter(), "w")
        kernel.spawn(setter(), "s")
        kernel.run()
        # The waiter was blocked ~0.5 s and that time is on its clock.
        assert t_wait.local_clock >= 0.5
