"""Golden seed-stability regression: pinned seed-0 trace hashes.

Every app's seed-0, round-0 trace under the default config must hash to
the value pinned in ``tests/sim/golden_hashes.json``.  A mismatch means
kernel/scheduler/primitive/app behavior changed for *default* runs —
which silently invalidates every cached trace and every paper-table
expectation downstream.
"""

import json
import os

import pytest

from repro.apps.registry import app_ids, family_app_ids, get_application
from repro.core.config import SherlockConfig
from repro.core.observer import Observer
from repro.fuzz import trace_digest

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_hashes.json")

with open(GOLDEN_PATH, encoding="utf-8") as fp:
    GOLDEN = json.load(fp)


def test_golden_file_covers_all_apps():
    assert sorted(GOLDEN) == sorted(app_ids() + family_app_ids())


@pytest.mark.parametrize("app_id", sorted(GOLDEN))
def test_seed0_trace_hash_is_stable(app_id):
    observer = Observer(SherlockConfig())
    executions = observer.observe_round(get_application(app_id), 0, {})
    digest = trace_digest(executions)
    assert digest == GOLDEN[app_id], (
        f"{app_id}: seed-0 trace hash changed "
        f"({digest} != pinned {GOLDEN[app_id]}).\n"
        "The default-config trace of this app is no longer what it was "
        "when the hash was pinned. If the change is INTENTIONAL (new "
        "primitive semantics, scheduler fix, app edit), regenerate the "
        "pins with:\n"
        "    PYTHONPATH=src python -m repro.fuzz.golden "
        "tests/sim/golden_hashes.json\n"
        "and mention the trace change in the PR description. If it is "
        "NOT intentional, you broke seed stability — every trace cache "
        "and pinned expectation downstream is invalidated."
    )
