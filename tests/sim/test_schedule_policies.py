"""Scheduling-policy tests: spec parsing, policy semantics, kernel wiring."""

import random

import pytest

from repro.apps.registry import get_application
from repro.core.config import SherlockConfig
from repro.fuzz import trace_digest
from repro.sim.runner import RunOptions, run_unit_test
from repro.sim.schedule import (
    DEFAULT_PCT_CHANGE_PROB,
    DirectedPolicy,
    PCTPolicy,
    RandomPolicy,
    SchedulePolicy,
    build_policy,
    directed_spec,
    format_target,
    parse_target,
    policy_names,
)
from repro.trace.optypes import OpType


class FakeThread:
    def __init__(self, tid):
        self.tid = tid


class ExplodingRandom(random.Random):
    """RNG that fails on any draw — proves a code path consumes nothing."""

    def random(self):
        raise AssertionError("RNG consumed")

    def choice(self, seq):
        raise AssertionError("RNG consumed")


class TestBuildPolicy:
    def test_random_spec(self):
        policy = build_policy("random")
        assert isinstance(policy, RandomPolicy)
        assert policy.spec == "random"

    def test_pct_spec_default_arg(self):
        policy = build_policy("pct")
        assert isinstance(policy, PCTPolicy)
        assert policy.change_prob == DEFAULT_PCT_CHANGE_PROB
        assert policy.spec == "pct"

    def test_pct_spec_with_arg(self):
        policy = build_policy("pct:0.05")
        assert policy.change_prob == 0.05
        assert policy.spec == "pct:0.05"

    def test_instance_passes_through(self):
        policy = PCTPolicy()
        assert build_policy(policy) is policy

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="known"):
            build_policy("roundrobin")

    def test_bad_pct_arg_rejected(self):
        with pytest.raises(ValueError, match="pct:2.0"):
            build_policy("pct:2.0")
        with pytest.raises(ValueError, match="pct:xyz"):
            build_policy("pct:xyz")

    def test_policy_names_sorted(self):
        assert policy_names() == ["directed", "pct", "random"]

    def test_directed_spec_round_trips(self):
        spec = "directed:7|Cls::flag|Cls::field[read/write]"
        policy = build_policy(spec)
        assert isinstance(policy, DirectedPolicy)
        assert policy.seed == 7
        assert policy.targets == (
            "Cls::field[read/write]",
            "Cls::flag",
        )
        # The canonical spec reparses to an identical policy.
        again = build_policy(policy.spec)
        assert again.spec == policy.spec
        assert again.targets == policy.targets

    def test_directed_spec_helper_is_canonical(self):
        # Duplicate / unsorted targets normalize to one stable spec
        # (cache keys and cross-process determinism depend on it).
        a = directed_spec(3, ["B::y", "A::x", "B::y"])
        b = directed_spec(3, ["A::x", "B::y"])
        assert a == b == "directed:3|A::x|B::y"

    def test_directed_change_prob_in_spec(self):
        policy = build_policy("directed:2@0.5|A::x")
        assert policy.change_prob == 0.5
        assert policy.spec == "directed:2@0.5|A::x"

    def test_bad_directed_arg_rejected(self):
        with pytest.raises(ValueError, match="directed:x"):
            build_policy("directed:x|A::f")
        with pytest.raises(ValueError, match="access kind"):
            build_policy("directed:0|A::f[jump]")


class TestTargetParsing:
    def test_bare_field(self):
        assert parse_target("Cls::field") == ("Cls::field", frozenset())

    def test_field_with_kinds(self):
        name, kinds = parse_target("Cls::field[read/write]")
        assert name == "Cls::field"
        assert kinds == {"read", "write"}

    def test_format_round_trip(self):
        for target in ("A::x", "A::x[read]", "A::x[read/write]"):
            assert format_target(parse_target(target)) == target

    def test_empty_target_rejected(self):
        with pytest.raises(ValueError):
            parse_target("  ")


class TestRandomPolicy:
    def test_single_runnable_consumes_no_rng(self):
        """The historic kernel drew from the RNG only on real choices;
        seed-0 golden traces depend on this staying true."""
        policy = RandomPolicy()
        policy.reset(ExplodingRandom())
        only = FakeThread(1)
        assert policy.choose([only], step=0) is only

    def test_choice_matches_raw_rng(self):
        threads = [FakeThread(t) for t in (1, 2, 3)]
        policy = RandomPolicy()
        policy.reset(random.Random(7))
        picked = [policy.choose(threads, step=i) for i in range(20)]
        reference = random.Random(7)
        assert picked == [reference.choice(threads) for _ in range(20)]


class TestPCTPolicy:
    def test_highest_priority_always_runs_without_change_points(self):
        policy = PCTPolicy(change_prob=0.0)
        policy.reset(random.Random(3))
        threads = [FakeThread(t) for t in (1, 2, 3)]
        picks = {policy.choose(threads, step=i).tid for i in range(10)}
        assert len(picks) == 1  # no demotion -> one thread monopolizes

    def test_demotion_lets_other_threads_overtake(self):
        policy = PCTPolicy(change_prob=1.0)
        policy.reset(random.Random(3))
        threads = [FakeThread(t) for t in (1, 2, 3)]
        picks = {policy.choose(threads, step=i).tid for i in range(30)}
        assert len(picks) > 1

    def test_reset_restores_determinism(self):
        threads = [FakeThread(t) for t in (1, 2, 3)]

        def schedule():
            policy = PCTPolicy()
            policy.reset(random.Random(11))
            return [policy.choose(threads, step=i).tid for i in range(50)]

        assert schedule() == schedule()

    def test_change_prob_validated(self):
        with pytest.raises(ValueError):
            PCTPolicy(change_prob=-0.1)
        with pytest.raises(ValueError):
            PCTPolicy(change_prob=1.5)


class TestDirectedPolicy:
    def test_defers_target_access_once_per_thread(self):
        policy = DirectedPolicy(seed=0, targets=["A::x"])
        policy.reset(random.Random(0))
        thread = FakeThread(1)
        assert policy.defer(thread, OpType.WRITE, "A::x")
        # Second encounter proceeds: the parked syscall must make
        # progress on re-dispatch.
        assert not policy.defer(thread, OpType.WRITE, "A::x")
        # A different thread gets its own deferral at the same site.
        assert policy.defer(FakeThread(2), OpType.WRITE, "A::x")

    def test_kind_filter_respected(self):
        policy = DirectedPolicy(seed=0, targets=["A::x[write]"])
        policy.reset(random.Random(0))
        assert not policy.defer(FakeThread(1), OpType.READ, "A::x")
        assert policy.defer(FakeThread(1), OpType.WRITE, "A::x")

    def test_non_target_fields_never_defer(self):
        policy = DirectedPolicy(seed=0, targets=["A::x"])
        policy.reset(random.Random(0))
        assert not policy.defer(FakeThread(1), OpType.WRITE, "B::y")
        # Method events are never memory accesses, even at a target name.
        assert not policy.defer(FakeThread(1), OpType.ENTER, "A::x")

    def test_deferred_thread_drops_below_everyone(self):
        policy = DirectedPolicy(seed=5, targets=["A::x"])
        policy.reset(random.Random(0))
        threads = [FakeThread(t) for t in (1, 2, 3)]
        policy.choose(threads, step=0)
        toucher = threads[0]
        policy.defer(toucher, OpType.WRITE, "A::x")
        assert policy.choose(threads, step=1) is not toucher

    def test_uses_private_rng_not_kernel_rng(self):
        """Directed priorities must never consume the kernel RNG, or
        undirected golden traces would shift under a directed run."""
        policy = DirectedPolicy(seed=3, targets=["A::x"])
        policy.reset(ExplodingRandom())
        threads = [FakeThread(t) for t in (1, 2)]
        policy.choose(threads, step=0)  # would raise on kernel RNG use
        policy.defer(threads[0], OpType.WRITE, "A::x")


class TestKernelWiring:
    def run_first_test(self, policy):
        app = get_application("App-7")
        options = RunOptions(seed=0, schedule_policy=policy)
        return run_unit_test(app, app.tests[0], options)

    def test_policy_spec_reaches_kernel_and_is_deterministic(self):
        a = trace_digest([self.run_first_test("pct")])
        b = trace_digest([self.run_first_test("pct")])
        assert a == b

    def test_pct_differs_from_random(self):
        a = trace_digest([self.run_first_test("random")])
        b = trace_digest([self.run_first_test("pct")])
        assert a != b

    def test_config_validates_policy_spec(self):
        with pytest.raises(ValueError, match="schedule policy"):
            SherlockConfig(schedule_policy="bogus")

    def test_custom_policy_instance_accepted_by_kernel(self):
        """build_policy passes instances through, so tests can inject
        bespoke schedulers without registering a spec string."""

        class FirstRunnable(SchedulePolicy):
            spec = "first"

            def choose(self, runnable, step):
                return runnable[0]

        app = get_application("App-7")
        options = RunOptions(seed=0, schedule_policy=FirstRunnable())
        first = run_unit_test(app, app.tests[0], options)
        second = run_unit_test(app, app.tests[0], options)
        assert trace_digest([first]) == trace_digest([second])
