"""Property-based kernel invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Kernel, Runtime
from repro.trace import TraceLog


def run_random_program(seed, thread_ops, sleeps):
    """Run a random multi-threaded program; return (kernel, log, threads)."""
    log = TraceLog()
    kernel = Kernel(seed=seed, log=log)
    rt = Runtime(kernel)
    obj = rt.new_object("P", x=0)
    threads = []

    def body(ops, sleep_every):
        def gen():
            for i in range(ops):
                yield from rt.write(obj, "x", i)
                if sleep_every and i % sleep_every == 0:
                    yield from rt.sleep(0.01)

        return gen()

    for i, ops in enumerate(thread_ops):
        threads.append(
            kernel.spawn(body(ops, sleeps[i % len(sleeps)]), f"t{i}")
        )
    kernel.run()
    return kernel, log, threads


@given(
    seed=st.integers(0, 1000),
    thread_ops=st.lists(st.integers(1, 15), min_size=1, max_size=4),
    sleeps=st.lists(st.integers(0, 3), min_size=1, max_size=3),
)
@settings(max_examples=40, deadline=None)
def test_timestamps_strictly_increase(seed, thread_ops, sleeps):
    _, log, _ = run_random_program(seed, thread_ops, sleeps)
    times = [e.timestamp for e in log]
    assert all(a < b for a, b in zip(times, times[1:]))


@given(
    seed=st.integers(0, 1000),
    thread_ops=st.lists(st.integers(1, 15), min_size=1, max_size=4),
    sleeps=st.lists(st.integers(0, 3), min_size=1, max_size=3),
)
@settings(max_examples=40, deadline=None)
def test_local_clock_never_exceeds_global(seed, thread_ops, sleeps):
    kernel, _, threads = run_random_program(seed, thread_ops, sleeps)
    for thread in threads:
        assert thread.local_clock <= kernel.clock + 1e-9


@given(
    seed=st.integers(0, 1000),
    thread_ops=st.lists(st.integers(1, 15), min_size=1, max_size=4),
)
@settings(max_examples=40, deadline=None)
def test_all_events_emitted(seed, thread_ops):
    _, log, _ = run_random_program(seed, thread_ops, [0])
    assert len(log) == sum(thread_ops)


@given(seed=st.integers(0, 200))
@settings(max_examples=25, deadline=None)
def test_determinism_property(seed):
    def trace(s):
        _, log, _ = run_random_program(s, [5, 7], [2])
        return [(e.thread_id, round(e.timestamp, 12)) for e in log]

    assert trace(seed) == trace(seed)
