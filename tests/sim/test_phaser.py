"""Phaser primitive: semantics, trace shape, HB soundness, properties.

The unit tests pin the collective-sync semantics (dynamic parties,
split-phase signal/wait, deregistration completing a phase) and the
kernel-level interaction between directed-schedule deferrals and phase
waits.  The hypothesis block locks two invariants under arbitrary
``SchedulePolicy`` interleavings: phase counters are monotone, and every
``Arrive`` of a phase is matched by (ordered before) all of that
phase's ``AwaitAdvance`` returns.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.racedet import HappensBeforeSpec, analyze_run
from repro.sim import Kernel, Runtime
from repro.sim.errors import DeadlockError
from repro.sim.primitives import Phaser
from repro.sim.primitives.phaser import (
    ARRIVE_API,
    AWAIT_ADVANCE_API,
    DEREGISTER_API,
    PHASER_ACQUIRE_APIS,
    PHASER_RELEASE_APIS,
    REGISTER_API,
)
from repro.sim.schedule import DirectedPolicy
from repro.trace import OpType, TraceLog
from repro.trace.optypes import begin_of, end_of


def run_threads(bodies, seed=0, policy="random"):
    """Spawn one thread per body generator-factory; return the log."""
    log = TraceLog()
    kernel = Kernel(seed=seed, log=log, schedule_policy=policy)
    rt = Runtime(kernel)
    for i, body in enumerate(bodies):
        kernel.spawn(body(rt), f"t{i}")
    kernel.run()
    return kernel, log, rt


def phaser_spec():
    """A Manual-style HB spec knowing only the phaser vocabulary."""
    spec = HappensBeforeSpec(name="phaser-only")
    for name in PHASER_ACQUIRE_APIS:
        spec.acquires.add(begin_of(name))
    for name in PHASER_RELEASE_APIS:
        spec.releases.add(end_of(name))
    spec.collective_releases.update(PHASER_RELEASE_APIS)
    return spec


class TestPhaserSemantics:
    def test_negative_parties_rejected(self):
        with pytest.raises(ValueError):
            Phaser(parties=-1)

    def test_register_grows_quorum_and_returns_phase(self):
        phases = []

        def body(rt):
            phases.append((yield from phaser.register(rt)))
            phases.append((yield from phaser.register(rt)))

        phaser = Phaser()
        run_threads([body])
        assert phaser.parties == 2
        assert phases == [0, 0]

    def test_arrive_without_parties_rejected(self):
        def body(rt):
            yield from phaser.arrive(rt)

        phaser = Phaser(parties=0)
        kernel, _, _ = run_threads([body])
        assert "no unarrived parties" in kernel.threads[0].error.args[0]

    def test_deregister_without_parties_rejected(self):
        def body(rt):
            yield from phaser.arrive_and_deregister(rt)  # parties -> 0
            yield from phaser.arrive_and_deregister(rt)  # nothing left

        phaser = Phaser(parties=1)
        kernel, _, _ = run_threads([body])
        assert kernel.threads[0].error is not None

    def test_classic_barrier_round_trip(self):
        orders = []

        def worker(tag):
            def body(rt):
                for round_no in range(3):
                    orders.append(("before", round_no, tag))
                    yield from phaser.arrive_and_await(rt)
                    orders.append(("after", round_no, tag))

            return body

        phaser = Phaser(parties=3)
        run_threads([worker(t) for t in range(3)], seed=11)
        assert phaser.phase == 3
        for round_no in range(3):
            befores = [
                i for i, (k, r, _) in enumerate(orders)
                if (k, r) == ("before", round_no)
            ]
            afters = [
                i for i, (k, r, _) in enumerate(orders)
                if (k, r) == ("after", round_no)
            ]
            assert max(befores) < min(afters)

    def test_await_advance_past_phase_returns_immediately(self):
        results = []

        def body(rt):
            yield from phaser.arrive(rt)  # phase 0 -> 1
            results.append((yield from phaser.await_advance(rt, 0)))

        phaser = Phaser(parties=1)
        run_threads([body])
        assert results == [1]

    def test_unregistered_waiter_observes_phase(self):
        """Bare waiters (non-parties) may await a phase."""
        seen = []

        def signaler(rt):
            yield from rt.sleep(0.05)
            yield from phaser.arrive(rt)

        def waiter(rt):
            seen.append((yield from phaser.await_advance(rt, 0)))

        phaser = Phaser(parties=1)
        run_threads([signaler, waiter], seed=3)
        assert seen == [1]

    def test_deregister_completes_phase_for_bare_waiters(self):
        """The last party out advances the phase unconditionally."""
        seen = []

        def leaver(rt):
            yield from rt.sleep(0.02)
            yield from phaser.arrive_and_deregister(rt)

        def waiter(rt):
            seen.append((yield from phaser.await_advance(rt, 0)))

        phaser = Phaser(parties=1)
        run_threads([leaver, waiter], seed=7)
        assert phaser.parties == 0
        assert seen == [1]

    def test_unguarded_late_registration_deadlocks(self):
        """Registering after another party already tipped the phase
        strands the late party in the next phase — correct (Java-like)
        phaser behavior, and why apps must guard dynamic registration."""

        def early(rt):
            yield from phaser.arrive_and_await(rt)

        def late(rt):
            yield from rt.sleep(0.1)
            yield from phaser.register(rt)
            yield from phaser.arrive_and_await(rt)

        phaser = Phaser(parties=1)
        with pytest.raises(DeadlockError):
            run_threads([early, late], seed=1)


class TestPhaserTraceShape:
    def test_api_events_paired_and_library(self):
        def body(rt):
            yield from phaser.register(rt)
            yield from phaser.arrive_and_await(rt)
            yield from phaser.arrive_and_deregister(rt)

        phaser = Phaser(parties=0)
        _, log, _ = run_threads([body])
        names = [(e.optype, e.name) for e in log]
        for api in (REGISTER_API, ARRIVE_API, AWAIT_ADVANCE_API,
                    DEREGISTER_API):
            assert (OpType.ENTER, api) in names
            assert (OpType.EXIT, api) in names
        assert all(e.meta.get("library") for e in log)
        addresses = {e.address for e in log}
        assert addresses == {phaser.obj.id}

    def test_arrive_and_await_traces_as_split_pair(self):
        """The fused helper emits Arrive then AwaitAdvance — there is
        no fused API name in the trace (capability rule: one ENTER/EXIT
        pair cannot release before it acquires)."""

        def body(rt):
            yield from phaser.arrive_and_await(rt)

        phaser = Phaser(parties=1)
        _, log, _ = run_threads([body])
        names = [e.name for e in log]
        assert names == [
            ARRIVE_API, ARRIVE_API, AWAIT_ADVANCE_API, AWAIT_ADVANCE_API,
        ]

    def test_signal_exit_precedes_woken_waiter_exit(self):
        """Kernel-step atomicity: the tipping Arrive's EXIT is in the
        log before any woken AwaitAdvance EXIT, so the release is
        visible to FastTrack before the acquire joins it."""

        def waiter(rt):
            yield from phaser.await_advance(rt, 0)

        def signaler(rt):
            yield from rt.sleep(0.03)
            yield from phaser.arrive(rt)

        phaser = Phaser(parties=1)
        for seed in range(6):
            phaser.__init__(parties=1)
            _, log, _ = run_threads([waiter, signaler], seed=seed)
            arrive_exit = next(
                i for i, e in enumerate(log)
                if e.optype is OpType.EXIT and e.name == ARRIVE_API
            )
            await_exit = next(
                i for i, e in enumerate(log)
                if e.optype is OpType.EXIT and e.name == AWAIT_ADVANCE_API
            )
            assert arrive_exit < await_exit


class TestPhaserHappensBefore:
    def test_phase_protected_handoff_is_race_free(self):
        """Data published before Arrive, read after AwaitAdvance: no
        FastTrack race under the phaser-only spec, in any of 10 seeds."""

        def producer(rt):
            obj = objs["o"]
            yield from rt.write(obj, "x", 1)
            yield from phaser_box[0].arrive_and_await(rt)

        def consumer(rt):
            yield from phaser_box[0].arrive_and_await(rt)
            yield from rt.read(objs["o"], "x")

        spec = phaser_spec()
        for seed in range(10):
            phaser_box = [Phaser(parties=2)]
            log = TraceLog()
            kernel = Kernel(seed=seed, log=log)
            rt = Runtime(kernel)
            objs = {"o": rt.new_object("D", x=0)}
            kernel.spawn(producer(rt), "p")
            kernel.spawn(consumer(rt), "c")
            kernel.run()
            assert analyze_run(log, spec).races == [], f"seed {seed}"

    def test_collective_edge_covers_all_signals(self):
        """A waiter is ordered after EVERY arrival of its phase — not
        just the one that tipped the quorum (the n-to-1 edge a pairing
        release would miss)."""

        def producer(tag):
            def body(rt):
                yield from rt.write(objs[tag], "x", 1)
                yield from phaser_box[0].arrive(rt)

            return body

        def consumer(rt):
            yield from phaser_box[0].await_advance(rt, 0)
            for tag in ("a", "b", "c"):
                yield from rt.read(objs[tag], "x")

        spec = phaser_spec()
        for seed in range(10):
            phaser_box = [Phaser(parties=3)]
            log = TraceLog()
            kernel = Kernel(seed=seed, log=log)
            rt = Runtime(kernel)
            objs = {t: rt.new_object("D" + t, x=0) for t in ("a", "b", "c")}
            for tag in ("a", "b", "c"):
                kernel.spawn(producer(tag)(rt), tag)
            kernel.spawn(consumer(rt), "consumer")
            kernel.run()
            assert analyze_run(log, spec).races == [], f"seed {seed}"

    def test_split_phase_window_still_races(self):
        """Accesses between Arrive and AwaitAdvance are NOT ordered
        against the peer phase — the split-phase window is racy (the
        App-10 Masked_Drain_Race mechanic)."""

        def worker(rt):
            my_phase = yield from phaser_box[0].arrive(rt)
            yield from rt.write(objs["o"], "x", 1)  # in the window
            yield from phaser_box[0].await_advance(rt, my_phase)

        def peer(rt):
            yield from rt.write(objs["o"], "x", 2)  # before its arrival
            yield from phaser_box[0].arrive_and_await(rt)

        spec = phaser_spec()
        raced = 0
        for seed in range(10):
            phaser_box = [Phaser(parties=2)]
            log = TraceLog()
            kernel = Kernel(seed=seed, log=log)
            rt = Runtime(kernel)
            objs = {"o": rt.new_object("D", x=0)}
            kernel.spawn(worker(rt), "w")
            kernel.spawn(peer(rt), "p")
            kernel.run()
            raced += bool(analyze_run(log, spec).races)
        assert raced > 0


class TestDeferPhaseWaitInteraction:
    """The kernel consults ``SchedulePolicy.defer`` only when another
    thread is RUNNABLE.  With every sibling blocked in a phase wait, a
    deferral achieves no reordering and would burn the directed
    policy's one-shot at the site — so the kernel skips the policy."""

    def test_phase_blocked_sibling_preserves_one_shot(self):
        """Target accesses made while every sibling is blocked in a
        phase wait never consume the directed one-shot."""

        def lone(rt):
            yield from rt.sleep(0.05)  # let the waiter block first
            yield from rt.write(objs["o"], "x", 1)  # sibling is blocked
            yield from phaser_box[0].arrive(rt)  # release the waiter

        def waiter(rt):
            yield from phaser_box[0].await_advance(rt, 0)

        policy = DirectedPolicy(seed=0, targets=["D::x"])
        phaser_box = [Phaser(parties=1)]
        log = TraceLog()
        kernel = Kernel(seed=0, log=log, schedule_policy=policy)
        rt = Runtime(kernel)
        objs = {"o": rt.new_object("D", x=0)}
        kernel.spawn(waiter(rt), "w")
        kernel.spawn(lone(rt), "lone")
        kernel.run()
        # The only D::x access ran with its sibling blocked in the
        # phase wait: the kernel never consulted the policy, so the
        # directed one-shot is intact.
        assert policy._deferred == set()
        writes = [e for e in log if e.optype is OpType.WRITE]
        assert len(writes) == 1

    def test_defer_skipped_when_no_other_runnable(self):
        """Direct kernel check: with a single thread the policy's defer
        is never consulted (a consulted DirectedPolicy would consume
        its one-shot and demote the thread)."""

        def body(rt):
            yield from rt.write(obj, "x", 1)
            yield from rt.write(obj, "x", 2)

        policy = DirectedPolicy(seed=5, targets=["D::x"])
        log = TraceLog()
        kernel = Kernel(seed=0, log=log, schedule_policy=policy)
        rt = Runtime(kernel)
        obj = rt.new_object("D", x=0)
        kernel.spawn(body(rt), "solo")
        kernel.run()
        assert policy._deferred == set()  # one-shot intact
        assert len([e for e in log if e.optype is OpType.WRITE]) == 2

    def test_defer_consumed_when_sibling_runnable(self):
        """Contrast: with a runnable sibling the deferral fires."""

        def toucher(rt):
            yield from rt.write(obj, "x", 1)

        def sibling(rt):
            for _ in range(50):  # stay runnable alongside the toucher
                yield from rt.sched_yield()

        policy = DirectedPolicy(seed=5, targets=["D::x"])
        log = TraceLog()
        kernel = Kernel(seed=0, log=log, schedule_policy=policy)
        rt = Runtime(kernel)
        obj = rt.new_object("D", x=0)
        kernel.spawn(toucher(rt), "t")
        kernel.spawn(sibling(rt), "s")
        kernel.run()
        toucher_tid = kernel.threads[0].tid
        assert (toucher_tid, "D::x") in policy._deferred


# -- hypothesis properties ----------------------------------------------------


def run_phaser_rounds(seed, parties, rounds, policy):
    """`parties` workers × `rounds` arrive_and_await; return records."""
    phaser = Phaser(parties=parties, name="prop")
    order = []          # interleaving-ordered (kind, phase, tid) marks
    observed = {}       # tid -> [my_phase per round]

    def worker(tag):
        def body(rt):
            observed[tag] = []
            for _ in range(rounds):
                my_phase = yield from phaser.arrive(rt)
                order.append(("arrive", my_phase, tag))
                observed[tag].append(my_phase)
                yield from phaser.await_advance(rt, my_phase)
                order.append(("resume", my_phase, tag))

        return body

    kernel, log, _ = run_threads(
        [worker(t) for t in range(parties)], seed=seed, policy=policy
    )
    assert all(t.error is None for t in kernel.threads)
    return phaser, order, observed, log


@given(
    seed=st.integers(0, 10_000),
    parties=st.integers(2, 4),
    rounds=st.integers(1, 4),
    policy=st.sampled_from(["random", "pct", "pct:0.3"]),
)
@settings(max_examples=40, deadline=None)
def test_phase_counter_monotone(seed, parties, rounds, policy):
    """Every worker observes phases 0,1,2,… in order; the phaser ends
    at exactly `rounds`."""
    phaser, _, observed, _ = run_phaser_rounds(seed, parties, rounds, policy)
    assert phaser.phase == rounds
    assert phaser.arrived == 0
    for phases in observed.values():
        assert phases == list(range(rounds))


@given(
    seed=st.integers(0, 10_000),
    parties=st.integers(2, 4),
    rounds=st.integers(1, 3),
    policy=st.sampled_from(["random", "pct"]),
)
@settings(max_examples=40, deadline=None)
def test_every_signal_matched_by_phase_waits(seed, parties, rounds, policy):
    """For every phase p: all `parties` Arrive EXITs of p precede every
    AwaitAdvance EXIT of p, in true trace order, under arbitrary policy
    interleavings.  (Each thread signals and waits exactly once per
    phase, so its r-th Arrive/AwaitAdvance EXIT belongs to phase r.)"""
    _, _, _, log = run_phaser_rounds(seed, parties, rounds, policy)
    arrive_exits = {}  # phase -> log positions of its Arrive EXITs
    await_exits = {}   # phase -> log positions of its AwaitAdvance EXITs
    per_thread = {}    # (thread, api) -> how many EXITs seen so far
    for pos, event in enumerate(log):
        if event.optype is not OpType.EXIT:
            continue
        if event.name not in (ARRIVE_API, AWAIT_ADVANCE_API):
            continue
        key = (event.thread_id, event.name)
        phase = per_thread.get(key, 0)
        per_thread[key] = phase + 1
        bucket = arrive_exits if event.name == ARRIVE_API else await_exits
        bucket.setdefault(phase, []).append(pos)
    for p in range(rounds):
        assert len(arrive_exits[p]) == parties
        assert len(await_exits[p]) == parties
        assert max(arrive_exits[p]) < min(await_exits[p]), f"phase {p}"


@given(seed=st.integers(0, 2_000))
@settings(max_examples=25, deadline=None)
def test_phaser_runs_deterministic(seed):
    def trace(s):
        _, log, _ = runs(s)
        return [(e.thread_id, e.optype, e.name) for e in log]

    def runs(s):
        phaser = Phaser(parties=3)

        def worker(rt):
            for _ in range(2):
                yield from phaser.arrive_and_await(rt)

        return run_threads([worker] * 3, seed=s)

    assert trace(seed) == trace(seed)
