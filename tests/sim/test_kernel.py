"""Kernel scheduling, tracing, determinism, and delay-injection tests."""

import pytest

from repro.sim import (
    DeadlockError,
    Kernel,
    Runtime,
    SimObject,
    StepLimitExceeded,
    ThreadState,
    WaitSet,
)
from repro.trace import OpRef, OpType, TraceLog


def make_kernel(seed=0, **kwargs):
    log = TraceLog(run_id=0)
    kernel = Kernel(seed=seed, log=log, **kwargs)
    return kernel, Runtime(kernel), log


def test_single_thread_runs_to_completion():
    kernel, rt, log = make_kernel()
    obj = rt.new_object("C", x=0)

    def body():
        yield from rt.write(obj, "x", 5)
        value = yield from rt.read(obj, "x")
        assert value == 5

    kernel.spawn(body(), "t")
    kernel.run()
    assert len(log) == 2
    assert log[0].optype is OpType.WRITE
    assert log[1].optype is OpType.READ
    assert log[0].name == "C::x"
    assert log[0].address == obj.id


def test_clock_monotonic_and_timestamps_increase():
    kernel, rt, log = make_kernel()
    obj = rt.new_object("C", x=0)

    def body():
        for i in range(10):
            yield from rt.write(obj, "x", i)

    kernel.spawn(body(), "t")
    kernel.run()
    times = [e.timestamp for e in log]
    assert times == sorted(times)
    assert len(set(times)) == len(times)  # strictly increasing


def test_same_seed_same_trace():
    def build(seed):
        kernel, rt, log = make_kernel(seed=seed)
        obj = rt.new_object("C", x=0)

        def writer(val):
            for _ in range(5):
                yield from rt.write(obj, "x", val)

        kernel.spawn(writer(1), "a")
        kernel.spawn(writer(2), "b")
        kernel.run()
        return [(e.thread_id, e.name, round(e.timestamp, 9)) for e in log]

    assert build(7) == build(7)
    # Different seeds give a different interleaving with high probability.
    assert build(7) != build(8)


def test_interleaving_mixes_threads():
    kernel, rt, log = make_kernel(seed=3)
    obj = rt.new_object("C", x=0)

    def writer():
        for _ in range(20):
            yield from rt.write(obj, "x", 0)

    kernel.spawn(writer(), "a")
    kernel.spawn(writer(), "b")
    kernel.run()
    tids = {e.thread_id for e in log}
    assert len(tids) == 2
    # Not strictly sequential: thread ids alternate somewhere.
    sequence = [e.thread_id for e in log]
    assert any(a != b for a, b in zip(sequence, sequence[1:]))


def test_sleep_orders_events():
    kernel, rt, log = make_kernel()
    obj = rt.new_object("C", x=0)

    def early():
        yield from rt.write(obj, "x", 1)

    def late():
        yield from rt.sleep(1.0)
        yield from rt.write(obj, "x", 2)

    kernel.spawn(late(), "late")
    kernel.spawn(early(), "early")
    kernel.run()
    assert [e.thread_id for e in log] == [2, 1]
    assert log[1].timestamp >= 1.0


def test_wait_and_notify():
    kernel, rt, log = make_kernel()
    obj = rt.new_object("C", flag=False, data=0)
    ws = WaitSet("flag")
    state = {"flag": False}

    def waiter():
        while not state["flag"]:
            yield from rt.wait_on(ws)
        yield from rt.write(obj, "data", 1)

    def setter():
        yield from rt.sleep(0.5)
        state["flag"] = True
        rt.notify_all(ws)

    kernel.spawn(waiter(), "w")
    kernel.spawn(setter(), "s")
    kernel.run()
    assert log[0].timestamp >= 0.5


def test_deadlock_detected():
    kernel, rt, _ = make_kernel()
    ws = WaitSet("never")

    def stuck():
        while True:
            yield from rt.wait_on(ws)

    kernel.spawn(stuck(), "stuck")
    with pytest.raises(DeadlockError):
        kernel.run()


def test_step_limit():
    kernel, rt, _ = make_kernel(max_steps=100)

    def spin():
        while True:
            yield from rt.sched_yield()

    kernel.spawn(spin(), "spin")
    with pytest.raises(StepLimitExceeded):
        kernel.run()


def test_thread_exception_captured():
    kernel, rt, _ = make_kernel()

    def bad():
        yield from rt.sched_yield()
        raise ValueError("boom")

    thread = kernel.spawn(bad(), "bad")
    kernel.run()
    assert thread.state is ThreadState.FAILED
    assert isinstance(thread.error, ValueError)


@pytest.mark.parametrize("exc_type", [KeyboardInterrupt, SystemExit])
def test_control_flow_exceptions_abort_the_run(exc_type):
    """Ctrl-C (or sys.exit) inside a simulated thread must abort the
    simulation, not be swallowed as an app failure while the run
    grinds on."""
    kernel, rt, _ = make_kernel()

    def interrupted():
        yield from rt.sched_yield()
        raise exc_type()

    thread = kernel.spawn(interrupted(), "interrupted")
    with pytest.raises(exc_type):
        kernel.run()
    # Not recorded as an app bug: the thread neither FAILED nor
    # captured the exception.
    assert thread.state is not ThreadState.FAILED
    assert thread.error is None


def test_directed_deferral_reorders_but_loses_no_events():
    """A directed policy parks the first target access and demotes its
    thread; the op must still execute exactly once and the run stays
    deterministic for the same spec."""

    def run(policy):
        log = TraceLog(run_id=0)
        kernel = Kernel(seed=0, log=log, schedule_policy=policy)
        rt = Runtime(kernel)
        obj = rt.new_object("C", x=0, y=0)

        def writer():
            yield from rt.write(obj, "x", 1)
            yield from rt.write(obj, "y", 1)

        def reader():
            yield from rt.read(obj, "x")
            yield from rt.read(obj, "y")

        kernel.spawn(writer(), "w")
        kernel.spawn(reader(), "r")
        kernel.run()
        return [(e.thread_id, e.optype, e.name) for e in log]

    directed = run("directed:0|C::x")
    assert sorted(directed) == sorted(run("random"))  # nothing dropped
    assert directed == run("directed:0|C::x")         # deterministic


def test_directed_deferral_of_sole_runnable_thread_makes_progress():
    def run():
        log = TraceLog(run_id=0)
        kernel = Kernel(seed=0, log=log, schedule_policy="directed:0|C::x")
        rt = Runtime(kernel)
        obj = rt.new_object("C", x=0)

        def solo():
            yield from rt.write(obj, "x", 1)

        kernel.spawn(solo(), "solo")
        kernel.run()
        return [e.name for e in log]

    assert run() == ["C::x"]


def test_delay_injection_stalls_thread_and_records_interval():
    site = OpRef("C::x", OpType.WRITE)
    log = TraceLog()
    kernel = Kernel(seed=0, log=log, delay_plan={site: 0.1})
    rt = Runtime(kernel)
    obj = rt.new_object("C", x=0)

    def body():
        yield from rt.write(obj, "x", 1)

    kernel.spawn(body(), "t")
    kernel.run()
    assert len(kernel.delays) == 1
    delay = kernel.delays[0]
    assert delay.site == site
    assert delay.duration == pytest.approx(0.1)
    # The event itself is emitted after the delay.
    assert log[0].timestamp >= delay.end - 1e-9
    assert log.delays == [delay]


def test_delay_applies_per_dynamic_instance():
    site = OpRef("C::x", OpType.WRITE)
    kernel = Kernel(seed=0, log=TraceLog(), delay_plan={site: 0.05})
    rt = Runtime(kernel)
    obj = rt.new_object("C", x=0)

    def body():
        yield from rt.write(obj, "x", 1)
        yield from rt.write(obj, "x", 2)

    kernel.spawn(body(), "t")
    kernel.run()
    assert len(kernel.delays) == 2


def test_event_filter_drops_events():
    log = TraceLog()
    kernel = Kernel(
        seed=0, log=log, event_filter=lambda e: e.name != "C::hidden"
    )
    rt = Runtime(kernel)
    obj = rt.new_object("C", hidden=0, shown=0)

    def body():
        yield from rt.write(obj, "hidden", 1)
        yield from rt.write(obj, "shown", 1)

    kernel.spawn(body(), "t")
    kernel.run()
    assert [e.name for e in log] == ["C::shown"]


def test_rand_and_now_syscalls():
    kernel, rt, _ = make_kernel(seed=42)
    seen = {}

    def body():
        seen["r"] = yield from rt.rand()
        seen["t0"] = yield from rt.now()
        yield from rt.sleep(0.25)
        seen["t1"] = yield from rt.now()

    kernel.spawn(body(), "t")
    kernel.run()
    assert 0.0 <= seen["r"] < 1.0
    assert seen["t1"] - seen["t0"] >= 0.25


def test_spawn_returns_thread_and_join():
    kernel, rt, log = make_kernel()
    obj = rt.new_object("C", x=0)

    def child():
        yield from rt.write(obj, "x", 1)

    def parent():
        thread = yield from rt.spawn_raw(child(), "child")
        yield from rt.join_raw(thread)
        yield from rt.write(obj, "x", 2)

    kernel.spawn(parent(), "parent")
    kernel.run()
    assert [e.thread_id for e in log] == [2, 1]
