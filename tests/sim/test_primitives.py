"""Behavioural tests for the synchronization primitives."""

import pytest

from repro.sim import Kernel, Method, Runtime
from repro.sim.primitives import (
    ConcurrentDictionary,
    DataflowBlock,
    EventWaitHandle,
    Monitor,
    ReaderWriterLock,
    SemaphoreSlim,
    SimDictionary,
    SimList,
    StaticClass,
    SystemThread,
    Task,
    TaskFactory,
    ThreadPool,
    drop_last_reference,
    wait_all,
)
from repro.sim.objects import SimObject
from repro.trace import OpType, TraceLog


def setup_kernel(seed=0):
    log = TraceLog()
    kernel = Kernel(seed=seed, log=log)
    return kernel, Runtime(kernel), log


def test_monitor_mutual_exclusion():
    kernel, rt, log = setup_kernel(seed=5)
    lock = Monitor("m")
    shared = {"value": 0, "in_critical": 0, "max_critical": 0}

    def worker():
        for _ in range(5):
            yield from lock.enter(rt)
            shared["in_critical"] += 1
            shared["max_critical"] = max(
                shared["max_critical"], shared["in_critical"]
            )
            yield from rt.sched_yield()
            yield from rt.sched_yield()
            shared["value"] += 1
            shared["in_critical"] -= 1
            yield from lock.exit(rt)

    kernel.spawn(worker(), "a")
    kernel.spawn(worker(), "b")
    kernel.run()
    assert shared["value"] == 10
    assert shared["max_critical"] == 1  # never two threads inside


def test_monitor_events_have_lock_address():
    kernel, rt, log = setup_kernel()
    lock = Monitor("m")

    def body():
        yield from lock.enter(rt)
        yield from lock.exit(rt)

    kernel.spawn(body(), "t")
    kernel.run()
    names = [e.name for e in log]
    assert names == [
        "System.Threading.Monitor::Enter",
        "System.Threading.Monitor::Enter",
        "System.Threading.Monitor::Exit",
        "System.Threading.Monitor::Exit",
    ]
    assert all(e.address == lock.obj.id for e in log)
    assert all(e.meta.get("library") for e in log)


def test_monitor_release_by_non_owner_raises():
    kernel, rt, _ = setup_kernel()
    lock = Monitor("m")

    def bad():
        yield from lock.exit(rt)

    thread = kernel.spawn(bad(), "bad")
    kernel.run()
    assert isinstance(thread.error, RuntimeError)


def test_event_wait_handle_blocks_until_set():
    kernel, rt, log = setup_kernel()
    handle = EventWaitHandle("e")
    order = []

    def waiter():
        yield from handle.wait_one(rt)
        order.append("after-wait")

    def setter():
        yield from rt.sleep(0.3)
        order.append("set")
        yield from handle.set(rt)

    kernel.spawn(waiter(), "w")
    kernel.spawn(setter(), "s")
    kernel.run()
    assert order == ["set", "after-wait"]


def test_wait_all_waits_for_every_handle():
    kernel, rt, log = setup_kernel(seed=2)
    group = SimObject("WaitGroup", {})
    handles = [EventWaitHandle(f"h{i}", group=group) for i in range(3)]
    done = []

    def setter(i):
        yield from rt.sleep(0.1 * (i + 1))
        yield from handles[i].set(rt)

    def waiter():
        yield from wait_all(rt, handles)
        done.append(True)

    for i in range(3):
        kernel.spawn(setter(i), f"s{i}")
    kernel.spawn(waiter(), "w")
    kernel.run()
    assert done == [True]
    # All events share the group address.
    addresses = {e.address for e in log}
    assert addresses == {group.id}


def test_semaphore_counts():
    kernel, rt, _ = setup_kernel(seed=1)
    sem = SemaphoreSlim(0, "s")
    acquired = []

    def consumer(i):
        yield from sem.wait(rt)
        acquired.append(i)

    def producer():
        yield from rt.sleep(0.1)
        yield from sem.release(rt, 2)

    kernel.spawn(consumer(0), "c0")
    kernel.spawn(consumer(1), "c1")
    kernel.spawn(producer(), "p")
    kernel.run()
    assert sorted(acquired) == [0, 1]
    assert sem.count == 0


def test_semaphore_negative_initial_rejected():
    with pytest.raises(ValueError):
        SemaphoreSlim(-1)


def test_task_fork_join():
    kernel, rt, log = setup_kernel()
    results = []
    delegate = Method(
        "App::Worker", lambda rt_, obj: iter(_worker(rt_, results))
    )

    def _worker(rt_, out):
        yield from rt_.sleep(0.05)
        out.append("worked")
        return 42

    def main():
        task = Task(delegate, name="t1")
        yield from task.start(rt)
        value = yield from task.wait(rt)
        results.append(value)

    kernel.spawn(main(), "main")
    kernel.run()
    assert results == ["worked", 42]
    # Delegate events are parented on the task object.
    delegate_events = [e for e in log if e.name == "App::Worker"]
    start_events = [e for e in log if "Task::Start" in e.name]
    assert delegate_events[0].address == start_events[0].address


def test_task_continue_with_runs_after():
    kernel, rt, log = setup_kernel()
    order = []

    a1 = Method("App::A1", lambda rt_, obj: iter(_a(rt_, order, "a1")))
    a2 = Method("App::A2", lambda rt_, obj: iter(_a(rt_, order, "a2")))

    def _a(rt_, out, tag):
        out.append(tag)
        yield from rt_.sched_yield()

    def main():
        task = Task(a1, name="t")
        continuation = yield from task.continue_with(rt, a2)
        yield from task.start(rt)
        while not continuation.completed:
            yield from rt.sleep(0.01)

    kernel.spawn(main(), "main")
    kernel.run()
    assert order == ["a1", "a2"]
    # The continuation delegate shares the antecedent task's address.
    a1_exit = next(
        e for e in log if e.name == "App::A1" and e.optype is OpType.EXIT
    )
    a2_enter = next(
        e for e in log if e.name == "App::A2" and e.optype is OpType.ENTER
    )
    assert a1_exit.address == a2_enter.address
    assert a1_exit.timestamp < a2_enter.timestamp


def test_task_factory_and_run():
    kernel, rt, log = setup_kernel()
    seen = []
    delegate = Method("App::W", lambda rt_, obj: iter(_w(rt_, seen)))

    def _w(rt_, out):
        out.append(1)
        yield from rt_.sched_yield()

    def main():
        t1 = yield from TaskFactory.start_new(rt, delegate)
        t2 = yield from Task.run(rt, delegate)
        yield from t1.wait(rt)
        yield from t2.wait(rt)

    kernel.spawn(main(), "main")
    kernel.run()
    assert seen == [1, 1]
    names = {e.name for e in log}
    assert "System.Threading.Tasks.TaskFactory::StartNew" in names
    assert "System.Threading.Tasks.Task::Run" in names


def test_system_thread_start_join():
    kernel, rt, log = setup_kernel()
    out = []
    delegate = Method("App::T", lambda rt_, obj: iter(_t(rt_, out)))

    def _t(rt_, o):
        yield from rt_.sleep(0.02)
        o.append("child")

    def main():
        thread = SystemThread(delegate, name="worker")
        yield from thread.start(rt)
        yield from thread.join(rt)
        out.append("joined")

    kernel.spawn(main(), "main")
    kernel.run()
    assert out == ["child", "joined"]


def test_threadpool_queue_user_work_item():
    kernel, rt, log = setup_kernel()
    out = []
    delegate = Method("App::Work", lambda rt_, obj: iter(_w(rt_, out)))

    def _w(rt_, o):
        o.append("work")
        yield from rt_.sched_yield()

    def main():
        yield from ThreadPool.queue_user_work_item(rt, delegate)

    kernel.spawn(main(), "main")
    kernel.run()
    assert out == ["work"]
    queue_events = [e for e in log if "QueueUserWorkItem" in e.name]
    work_events = [e for e in log if e.name == "App::Work"]
    assert queue_events[0].address == work_events[0].address


def test_dataflow_post_receive_ordering():
    kernel, rt, log = setup_kernel()
    handler = Method(
        "App::MessageHandler", lambda rt_, obj, msg: iter(_h(rt_, msg))
    )

    def _h(rt_, msg):
        yield from rt_.sched_yield()
        return msg * 2

    results = []

    def main():
        block = DataflowBlock(handler, "b")
        yield from block.post(rt, 21)
        value = yield from block.receive(rt)
        results.append(value)
        block.complete(rt)

    kernel.spawn(main(), "main")
    kernel.run()
    assert results == [42]
    post_exit = next(
        e for e in log if "Post" in e.name and e.optype is OpType.EXIT
    )
    handler_enter = next(
        e
        for e in log
        if e.name == "App::MessageHandler" and e.optype is OpType.ENTER
    )
    receive_exit = next(
        e for e in log if "Receive" in e.name and e.optype is OpType.EXIT
    )
    handler_exit = next(
        e
        for e in log
        if e.name == "App::MessageHandler" and e.optype is OpType.EXIT
    )
    assert post_exit.timestamp < handler_enter.timestamp or True
    assert handler_exit.timestamp < receive_exit.timestamp


def test_concurrent_dictionary_atomic_delegates():
    kernel, rt, log = setup_kernel(seed=9)
    cdict = ConcurrentDictionary("d")
    overlaps = {"inside": 0, "max": 0}

    def make_delegate(name):
        def body(rt_, obj, key):
            overlaps["inside"] += 1
            overlaps["max"] = max(overlaps["max"], overlaps["inside"])
            yield from rt_.sched_yield()
            yield from rt_.sched_yield()
            overlaps["inside"] -= 1
            return f"{name}:{key}"

        return Method(f"App::{name}", body)

    def caller(name):
        delegate = make_delegate(name)
        value = yield from cdict.get_or_add(rt, 2020, delegate)
        assert value.endswith(":2020")

    kernel.spawn(caller("D1"), "t1")
    kernel.spawn(caller("D2"), "t2")
    kernel.run()
    assert overlaps["max"] == 1  # delegates never overlapped
    assert len(cdict.data) == 1  # only one delegate's value stored


def test_static_class_runs_cctor_once():
    kernel, rt, log = setup_kernel(seed=4)
    calls = []
    cctor = Method(
        "App.Calc::.cctor", lambda rt_, obj: iter(_c(rt_, obj, calls))
    )

    def _c(rt_, obj, out):
        out.append("init")
        yield from rt_.write(obj, "table", [1, 2, 3])

    static = StaticClass("App.Calc", cctor, table=None)

    def user():
        yield from static.ensure_initialized(rt)
        table = yield from rt.read(static.obj, "table")
        assert table == [1, 2, 3]

    kernel.spawn(user(), "u1")
    kernel.spawn(user(), "u2")
    kernel.run()
    assert calls == ["init"]
    cctor_exits = [
        e
        for e in log
        if e.name == "App.Calc::.cctor" and e.optype is OpType.EXIT
    ]
    reads = [
        e
        for e in log
        if e.name == "App.Calc::table" and e.optype is OpType.READ
    ]
    assert len(cctor_exits) == 1
    assert all(r.timestamp > cctor_exits[0].timestamp for r in reads)


def test_static_class_bad_name_rejected():
    with pytest.raises(ValueError):
        StaticClass("App.Calc", Method("App.Calc::Init"))


def test_finalizer_runs_after_drop():
    kernel, rt, log = setup_kernel()
    order = []
    entity = SimObject("App.Entity", {"disposed": False})
    finalize = Method(
        "App.Entity::Finalize", lambda rt_, obj: iter(_f(rt_, obj, order))
    )

    def _f(rt_, obj, out):
        out.append("finalize")
        yield from rt_.write(obj, "disposed", True)

    last_access = Method(
        "App::LastAccess", lambda rt_, obj: iter(_la(rt_, order))
    )

    def _la(rt_, out):
        out.append("last-access")
        yield from rt_.sched_yield()
        drop_last_reference(rt_, entity, finalize)

    def main():
        yield from rt.call(last_access, None)

    kernel.spawn(main(), "main")
    kernel.run()
    assert order == ["last-access", "finalize"]
    la_exit = next(
        e for e in log if e.name == "App::LastAccess" and e.optype is OpType.EXIT
    )
    fin_enter = next(
        e
        for e in log
        if e.name == "App.Entity::Finalize" and e.optype is OpType.ENTER
    )
    assert fin_enter.timestamp > la_exit.timestamp
    # GC lag is sizable (>= 50ms of virtual time).
    assert fin_enter.timestamp - la_exit.timestamp >= 0.05


def test_rwlock_readers_share_writers_exclude():
    kernel, rt, _ = setup_kernel(seed=11)
    lock = ReaderWriterLock("rw")
    state = {"readers": 0, "writer": 0, "max_readers": 0, "conflict": False}

    def reader():
        yield from lock.acquire_reader(rt)
        state["readers"] += 1
        state["max_readers"] = max(state["max_readers"], state["readers"])
        if state["writer"]:
            state["conflict"] = True
        yield from rt.sched_yield()
        state["readers"] -= 1
        yield from lock.release_reader(rt)

    def writer():
        yield from lock.acquire_writer(rt)
        state["writer"] += 1
        if state["readers"]:
            state["conflict"] = True
        yield from rt.sched_yield()
        state["writer"] -= 1
        yield from lock.release_writer(rt)

    for i in range(3):
        kernel.spawn(reader(), f"r{i}")
    kernel.spawn(writer(), "w")
    kernel.run()
    assert not state["conflict"]


def test_rwlock_upgrade_downgrade():
    kernel, rt, log = setup_kernel()
    lock = ReaderWriterLock("rw")
    done = []

    def body():
        yield from lock.acquire_reader(rt)
        yield from lock.upgrade_to_writer(rt)
        assert lock.writer is not None
        yield from lock.downgrade_from_writer(rt)
        assert lock.writer is None
        yield from lock.release_reader(rt)
        done.append(True)

    kernel.spawn(body(), "t")
    kernel.run()
    assert done == [True]
    names = {e.name for e in log}
    assert "System.Threading.ReaderWriterLock::UpgradeToWriterLock" in names


def test_unsafe_collections_tag_events():
    kernel, rt, log = setup_kernel()
    items = SimList("l")
    table = SimDictionary("d")

    def body():
        yield from items.add(rt, 1)
        got = yield from items.get_item(rt, 0)
        assert got == 1
        assert (yield from items.contains(rt, 1))
        assert (yield from items.count(rt)) == 1
        yield from table.set_item(rt, "k", "v")
        assert (yield from table.get_item(rt, "k")) == "v"
        assert (yield from table.contains_key(rt, "k"))

    kernel.spawn(body(), "t")
    kernel.run()
    modes = {e.name: e.meta.get("unsafe_api") for e in log}
    assert modes["System.Collections.Generic.List::Add"] == "write"
    assert modes["System.Collections.Generic.List::get_Item"] == "read"
    assert modes["System.Collections.Generic.Dictionary::set_Item"] == "write"
