"""The shipped examples must run end-to-end and reach their conclusions."""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_quickstart_finds_all_canonical_syncs():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "Canonical syncs found: 4/4" in result.stdout


def test_custom_sync_infers_gate_flag():
    result = run_example("custom_sync.py")
    assert result.returncode == 0, result.stderr
    assert "Custom gate flag inferred: yes" in result.stdout


def test_race_detection_compares_detectors():
    result = run_example("race_detection.py", "App-7")
    assert result.returncode == 0, result.stderr
    assert "Manual_dr" in result.stdout
    assert "SherLock_dr" in result.stdout


def test_feedback_demo_rejects_noise():
    result = run_example("feedback_demo.py")
    assert result.returncode == 0, result.stderr
    assert "Noise (Touch-End) rejected: True" in result.stdout
    assert "Custom ack release (AckBatch-End) inferred: True" in result.stdout
