"""Unit tests for the trace event model."""

import io

import pytest

from repro.trace import (
    CAPABLE_ROLES,
    DelayInterval,
    OpRef,
    OpType,
    Role,
    SyncOp,
    TraceEvent,
    TraceLog,
    begin_of,
    end_of,
    read_of,
    write_of,
)


def ev(t, tid, op, name, addr=1, **meta):
    return TraceEvent(
        timestamp=t, thread_id=tid, optype=op, name=name, address=addr,
        meta=meta,
    )


class TestOpRef:
    def test_class_and_member_split(self):
        ref = read_of("Namespace.Class::field")
        assert ref.class_name == "Namespace.Class"
        assert ref.member_name == "field"

    def test_member_without_class(self):
        ref = begin_of("bare")
        assert ref.class_name == "bare"
        assert ref.member_name == "bare"

    def test_display_formats(self):
        assert read_of("C::f").display() == "Read-C::f"
        assert write_of("C::f").display() == "Write-C::f"
        assert begin_of("C::m").display() == "C::m-Begin"
        assert end_of("C::m").display() == "C::m-End"

    def test_capabilities(self):
        assert read_of("C::f").can_play(Role.ACQUIRE)
        assert not read_of("C::f").can_play(Role.RELEASE)
        assert write_of("C::f").can_play(Role.RELEASE)
        assert not write_of("C::f").can_play(Role.ACQUIRE)
        assert begin_of("C::m").can_play(Role.ACQUIRE)
        assert end_of("C::m").can_play(Role.RELEASE)

    def test_capable_roles_table_is_total(self):
        assert set(CAPABLE_ROLES) == set(OpType)

    def test_sync_op_display(self):
        sync = SyncOp(read_of("C::f"), Role.ACQUIRE)
        assert "[acq]" in sync.display()

    def test_role_opposite(self):
        assert Role.ACQUIRE.opposite is Role.RELEASE
        assert Role.RELEASE.opposite is Role.ACQUIRE


class TestTraceEvent:
    def test_conflict_requires_different_threads(self):
        a = ev(0.1, 1, OpType.WRITE, "C::x")
        b = ev(0.2, 1, OpType.READ, "C::x")
        assert not a.conflicts_with(b)

    def test_conflict_requires_a_write(self):
        a = ev(0.1, 1, OpType.READ, "C::x")
        b = ev(0.2, 2, OpType.READ, "C::x")
        assert not a.conflicts_with(b)
        c = ev(0.3, 2, OpType.WRITE, "C::x")
        assert a.conflicts_with(c)

    def test_conflict_requires_same_field_and_address(self):
        a = ev(0.1, 1, OpType.WRITE, "C::x", addr=1)
        assert not a.conflicts_with(ev(0.2, 2, OpType.READ, "C::x", addr=2))
        assert not a.conflicts_with(ev(0.2, 2, OpType.READ, "C::y", addr=1))

    def test_round_trip_serialization(self):
        event = ev(0.5, 3, OpType.ENTER, "C::m", addr=9, library=True)
        back = TraceEvent.from_dict(event.to_dict())
        assert back.name == "C::m"
        assert back.optype is OpType.ENTER
        assert back.meta["library"] is True

    def test_ref_and_location(self):
        event = ev(0.5, 3, OpType.EXIT, "C::m")
        assert event.ref == OpRef("C::m", OpType.EXIT)
        assert event.location.name == "C::m"


class TestTraceLog:
    def make_log(self):
        log = TraceLog(run_id=2)
        log.append(ev(0.1, 1, OpType.ENTER, "C::m"))
        log.append(ev(0.2, 1, OpType.WRITE, "C::x"))
        log.append(ev(0.3, 2, OpType.READ, "C::x"))
        log.append(ev(0.4, 1, OpType.EXIT, "C::m"))
        return log

    def test_append_stamps_seq_and_run(self):
        log = self.make_log()
        assert [e.seq for e in log] == [0, 1, 2, 3]
        assert all(e.run_id == 2 for e in log)

    def test_queries(self):
        log = self.make_log()
        assert log.threads() == (1, 2)
        assert len(log.memory_events()) == 2
        assert len(log.events_of(OpRef("C::x", OpType.WRITE))) == 1
        assert log.duration == pytest.approx(0.3)

    def test_between_is_exclusive(self):
        log = self.make_log()
        middle = log.between(0.1, 0.4)
        assert [e.name for e in middle] == ["C::x", "C::x"]
        only_t2 = log.between(0.1, 0.4, thread_id=2)
        assert len(only_t2) == 1

    def test_method_durations_pairs_enter_exit(self):
        log = self.make_log()
        durations = log.method_durations()
        assert durations["C::m"][0] == pytest.approx(0.3)

    def test_method_durations_prefers_local_time(self):
        log = TraceLog()
        log.append(
            TraceEvent(0.1, 1, OpType.ENTER, "C::m", 1, local_time=0.0)
        )
        log.append(
            TraceEvent(0.9, 1, OpType.EXIT, "C::m", 1, local_time=0.2)
        )
        assert log.method_durations()["C::m"][0] == pytest.approx(0.2)

    def test_jsonl_round_trip(self):
        log = self.make_log()
        log.add_delay(
            DelayInterval(1, 0.15, 0.25, OpRef("C::x", OpType.WRITE), 2)
        )
        buffer = io.StringIO()
        log.dump_jsonl(buffer)
        buffer.seek(0)
        loaded = TraceLog.load_jsonl(buffer)
        assert len(loaded) == len(log)
        assert loaded.run_id == 2
        assert len(loaded.delays) == 1
        assert loaded.delays[0].site == OpRef("C::x", OpType.WRITE)
        assert loaded.delays[0].duration == pytest.approx(0.1)

    def test_repr(self):
        assert "TraceLog" in repr(self.make_log())
