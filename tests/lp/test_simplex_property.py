"""Property-based cross-check: from-scratch simplex vs scipy/HiGHS.

Random small LPs in the shape SherLock generates (unit-box variables,
covering constraints, non-negative objective) must produce the same optimal
objective value from both backends.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import Model, SolveStatus, solve_scipy, solve_simplex


def _build_random_model(n_vars, cover_sets, costs, ub_rows):
    m = Model("prop")
    xs = [m.add_variable(f"x{i}", 0, 1) for i in range(n_vars)]
    for idx_set in cover_sets:
        members = [xs[i % n_vars] for i in idx_set]
        if members:
            expr = members[0] * 0
            seen = set()
            for v in members:
                if v.name not in seen:
                    expr = expr + v
                    seen.add(v.name)
            m.add_constraint(expr >= 1)
    for idx_set, cap in ub_rows:
        members = {xs[i % n_vars].name: xs[i % n_vars] for i in idx_set}
        if members:
            expr = None
            for v in members.values():
                expr = v if expr is None else expr + v
            m.add_constraint(expr <= cap + len(members))
    for x, c in zip(xs, costs):
        m.add_objective_term(x, c)
    return m


@settings(max_examples=40, deadline=None)
@given(
    n_vars=st.integers(2, 6),
    cover_sets=st.lists(
        st.lists(st.integers(0, 9), min_size=1, max_size=4), max_size=4
    ),
    costs=st.lists(st.floats(0.01, 5.0), min_size=6, max_size=6),
    ub_rows=st.lists(
        st.tuples(
            st.lists(st.integers(0, 9), min_size=1, max_size=3),
            st.floats(0.0, 2.0),
        ),
        max_size=3,
    ),
)
def test_backends_agree_on_objective(n_vars, cover_sets, costs, ub_rows):
    model = _build_random_model(n_vars, cover_sets, costs, ub_rows)
    scipy_sol = solve_scipy(model)
    simplex_sol = solve_simplex(model)
    assert scipy_sol.status is SolveStatus.OPTIMAL
    assert simplex_sol.status is SolveStatus.OPTIMAL
    assert simplex_sol.objective == pytest.approx(
        scipy_sol.objective, abs=1e-5
    )
    # The simplex assignment must itself satisfy all constraints.
    for con in model.constraints:
        assert con.is_satisfied(simplex_sol.values, tol=1e-5)


@settings(max_examples=30, deadline=None)
@given(
    n_vars=st.integers(2, 5),
    cover_sets=st.lists(
        st.lists(st.integers(0, 9), min_size=1, max_size=3), max_size=3
    ),
    costs=st.lists(st.floats(0.01, 3.0), min_size=5, max_size=5),
    unbounded_mask=st.lists(st.booleans(), min_size=5, max_size=5),
)
def test_backends_agree_with_infinite_upper_bounds(
    n_vars, cover_sets, costs, unbounded_mask
):
    """Variables without an upper bound (the aux-variable shape) must not
    perturb agreement: with non-negative costs the LP stays bounded."""
    m = Model("prop-inf")
    xs = [
        m.add_variable(f"x{i}", 0, None if unbounded_mask[i] else 1)
        for i in range(n_vars)
    ]
    for idx_set in cover_sets:
        members = {xs[i % n_vars].name: xs[i % n_vars] for i in idx_set}
        expr = None
        for v in members.values():
            expr = v if expr is None else expr + v
        if expr is not None:
            m.add_constraint(expr >= 1)
    for x, c in zip(xs, costs):
        m.add_objective_term(x, c)
    scipy_sol = solve_scipy(m)
    simplex_sol = solve_simplex(m)
    assert scipy_sol.status is SolveStatus.OPTIMAL
    assert simplex_sol.status is SolveStatus.OPTIMAL
    assert simplex_sol.objective == pytest.approx(
        scipy_sol.objective, abs=1e-5
    )
    for con in m.constraints:
        assert con.is_satisfied(simplex_sol.values, tol=1e-5)


@settings(max_examples=30, deadline=None)
@given(
    costs=st.lists(st.floats(0.0, 1e-10), min_size=3, max_size=3),
)
def test_backends_agree_on_near_zero_costs(costs):
    """Near-zero costs with covering constraints: the objective is tiny
    but both backends must stay OPTIMAL and feasible."""
    m = Model("prop-tiny")
    xs = [m.add_variable(f"x{i}", 0, 1) for i in range(3)]
    m.add_constraint(xs[0] + xs[1] >= 1)
    m.add_constraint(xs[1] + xs[2] >= 1)
    for x, c in zip(xs, costs):
        m.add_objective_term(x, c)
    scipy_sol = solve_scipy(m)
    simplex_sol = solve_simplex(m)
    assert scipy_sol.status is SolveStatus.OPTIMAL
    assert simplex_sol.status is SolveStatus.OPTIMAL
    assert simplex_sol.objective == pytest.approx(
        scipy_sol.objective, abs=1e-5
    )
    for con in m.constraints:
        assert con.is_satisfied(simplex_sol.values, tol=1e-5)


class TestUnconstrainedBranchEdgeCases:
    """The no-constraints fast path must use one epsilon and one
    finiteness test for both the unboundedness check and the value rule
    (regression: a cost in (-eps, 0) against an infinite upper bound used
    to be declared unbounded / leak a non-finite value)."""

    def test_negative_cost_infinite_upper_is_unbounded(self):
        m = Model("unc")
        x = m.add_variable("x", 0, None)
        m.add_objective_term(x, -1.0)
        assert solve_simplex(m).status is SolveStatus.UNBOUNDED
        assert solve_scipy(m).status is SolveStatus.UNBOUNDED

    def test_negative_cost_numpy_inf_upper_is_unbounded(self):
        import numpy as np

        m = Model("unc-inf")
        x = m.add_variable("x", 0, np.inf)
        m.add_objective_term(x, -1.0)
        assert solve_simplex(m).status is SolveStatus.UNBOUNDED

    def test_near_zero_negative_cost_stays_at_lower_bound(self):
        m = Model("unc-eps")
        x = m.add_variable("x", 0.5, None)
        m.add_objective_term(x, -1e-12)
        sol = solve_simplex(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.values[x] == pytest.approx(0.5)

    def test_zero_cost_infinite_upper_stays_at_lower_bound(self):
        m = Model("unc-zero")
        x = m.add_variable("x", 0.25, None)
        m.add_variable("y", 0, None)  # never enters the objective
        m.add_objective_term(x, 0.0)
        sol = solve_simplex(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.values[x] == pytest.approx(0.25)
        assert sol.objective == pytest.approx(0.0)


@settings(max_examples=30, deadline=None)
@given(
    weights=st.lists(st.floats(0.05, 3.0), min_size=3, max_size=3),
    target=st.floats(0.1, 1.0),
)
def test_max0_terms_agree(weights, target):
    """SherLock-shaped objective: coverage max0 terms + regularization."""
    model = Model("prop-max0")
    xs = [model.add_variable(f"v{i}", 0, 1) for i in range(3)]
    model.add_max0_term(target - (xs[0] + xs[1]))
    model.add_max0_term(target - (xs[1] + xs[2]))
    for x, w in zip(xs, weights):
        model.add_objective_term(x, w)
    scipy_sol = solve_scipy(model)
    simplex_sol = solve_simplex(model)
    assert simplex_sol.objective == pytest.approx(
        scipy_sol.objective, abs=1e-5
    )
