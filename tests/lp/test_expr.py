"""Unit tests for linear expressions and constraints."""

import pytest

from repro.lp import EQ, GE, LE, LinExpr, Model, as_expr
from repro.lp.variable import Variable


@pytest.fixture
def model():
    return Model("t")


def test_variable_bounds_validation():
    with pytest.raises(ValueError):
        Variable("x", lower=2.0, upper=1.0)


def test_as_expr_coercions(model):
    x = model.add_variable("x")
    expr = as_expr(x)
    assert expr.terms == {x: 1.0}
    assert as_expr(3).constant == 3.0
    assert as_expr(expr) is expr
    with pytest.raises(TypeError):
        as_expr("nope")


def test_addition_and_subtraction(model):
    x = model.add_variable("x")
    y = model.add_variable("y")
    expr = x + 2 * y - 3
    assert expr.terms[x] == 1.0
    assert expr.terms[y] == 2.0
    assert expr.constant == -3.0
    back = expr - x - 2 * y + 3
    assert back.terms == {}
    assert back.constant == 0.0


def test_scalar_multiplication(model):
    x = model.add_variable("x")
    expr = (x + 1) * 2.5
    assert expr.terms[x] == 2.5
    assert expr.constant == 2.5
    zero = expr * 0
    assert zero.terms == {}
    with pytest.raises(TypeError):
        _ = expr * expr  # noqa: F841


def test_rsub_and_neg(model):
    x = model.add_variable("x")
    expr = 5 - x
    assert expr.terms[x] == -1.0
    assert expr.constant == 5.0
    neg = -(x + 1)
    assert neg.terms[x] == -1.0
    assert neg.constant == -1.0


def test_total_sums_duplicates(model):
    x = model.add_variable("x")
    y = model.add_variable("y")
    expr = LinExpr.total([x, y, x])
    assert expr.terms[x] == 2.0
    assert expr.terms[y] == 1.0


def test_constraint_senses(model):
    x = model.add_variable("x")
    le = x <= 5
    ge = x >= 1
    eq = (x + 0) == 2
    assert le.sense == LE and le.rhs == 5.0
    assert ge.sense == GE and ge.rhs == 1.0
    assert eq.sense == EQ and eq.rhs == 2.0


def test_constraint_satisfaction(model):
    x = model.add_variable("x")
    con = x <= 5
    assert con.is_satisfied({x: 5.0})
    assert not con.is_satisfied({x: 6.0})
    con_eq = (x + 0) == 2
    assert con_eq.is_satisfied({x: 2.0})
    assert not con_eq.is_satisfied({x: 2.1})


def test_expression_value(model):
    x = model.add_variable("x")
    y = model.add_variable("y")
    expr = 2 * x - y + 4
    assert expr.value({x: 1.0, y: 3.0}) == pytest.approx(3.0)
    # Missing variables default to zero.
    assert expr.value({}) == pytest.approx(4.0)


def test_variable_repr_and_binary_like(model):
    x = model.add_variable("x", 0.0, 1.0)
    y = model.add_variable("y")
    assert x.is_binary_like()
    assert not y.is_binary_like()
    assert "x" in repr(x)
    assert "LinExpr" in repr(x + 1)
