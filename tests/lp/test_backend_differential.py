"""Differential test suite: revised simplex vs dense tableau vs scipy.

Hypothesis generates random LPs well outside the SherLock shape — mixed
``<=``/``>=``/``==`` rows (including zero rows and duplicated rows, which
force degenerate pivots and leftover phase-1 artificials), negative lower
bounds, fixed variables (``lo == hi``), variables without an upper bound,
negative costs (so unbounded cases arise), and contradictory rows (so
infeasible cases arise).  Every generated LP is solved by all three
backends and they must agree on

* status (OPTIMAL / INFEASIBLE / UNBOUNDED),
* the optimal objective to 1e-9, and
* feasibility of each backend's own returned point.

The built-ins make one promise beyond that: whenever they report the same
optimal *basis*, their values and objective are bit-identical (the shared
:func:`~repro.lp.simplex.finalize_basic_solution` re-solve), which is what
makes full pipeline reports byte-comparable across backends.

A source-scan guard pins the tentpole's core constraint: the revised
simplex never densifies the constraint matrix in its hot path.
"""

import inspect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import (
    Model,
    SolveStatus,
    solve_revised,
    solve_scipy,
    solve_simplex,
)

_BUILTINS = {"revised": solve_revised, "dense-tableau": solve_simplex}
_ALL = dict(_BUILTINS, scipy=solve_scipy)


# ---------------------------------------------------------------------------
# Random-LP generation
# ---------------------------------------------------------------------------

_SENSES = ["<=", ">=", "=="]


@st.composite
def lp_specs(draw):
    """A random LP spec: per-variable bounds/costs plus constraint rows."""
    n = draw(st.integers(1, 5))
    bounds = []
    for _ in range(n):
        lo = draw(st.sampled_from([0.0, 0.0, 0.0, -1.5, 1.0]))
        kind = draw(st.sampled_from(["bounded", "bounded", "free-above", "fixed"]))
        if kind == "free-above":
            hi = None
        elif kind == "fixed":
            hi = lo
        else:
            hi = lo + draw(st.sampled_from([0.5, 1.0, 3.0]))
        bounds.append((lo, hi))
    costs = [
        draw(st.sampled_from([-2.0, -0.5, 0.0, 0.0, 0.25, 1.0, 3.0]))
        for _ in range(n)
    ]
    n_rows = draw(st.integers(0, 4))
    rows = []
    for _ in range(n_rows):
        coeffs = [
            draw(st.sampled_from([-2.0, -1.0, 0.0, 0.0, 1.0, 1.0, 2.0]))
            for _ in range(n)
        ]
        sense = draw(st.sampled_from(_SENSES))
        rhs = draw(st.sampled_from([-2.0, -1.0, 0.0, 0.5, 1.0, 2.0, 4.0]))
        rows.append((coeffs, sense, rhs))
    # Duplicate one row sometimes: redundant rows are the degenerate case
    # that leaves a phase-1 artificial basic on a dependent row.
    if rows and draw(st.booleans()):
        rows.append(rows[draw(st.integers(0, len(rows) - 1))])
    return bounds, costs, rows


def _build(spec, name="diff"):
    bounds, costs, rows = spec
    m = Model(name)
    xs = [
        m.add_variable(f"x{i}", lo, hi)
        for i, (lo, hi) in enumerate(bounds)
    ]
    for x, c in zip(xs, costs):
        m.add_objective_term(x, c)
    for coeffs, sense, rhs in rows:
        expr = xs[0] * 0
        for x, a in zip(xs, coeffs):
            if a:
                expr = expr + a * x
        if sense == "<=":
            m.add_constraint(expr <= rhs)
        elif sense == ">=":
            m.add_constraint(expr >= rhs)
        else:
            m.add_constraint(expr == rhs)
    return m, xs


def _check_feasible(model, sol, tol=1e-7):
    for con in model.constraints:
        assert con.is_satisfied(sol.values, tol=tol)
    for var in model.variables:
        value = sol.values[var]
        assert value >= var.lower - tol
        if var.upper is not None:
            assert value <= var.upper + tol


# ---------------------------------------------------------------------------
# The three-way differential property
# ---------------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(spec=lp_specs())
def test_three_backends_agree(spec):
    """Status, objective (1e-9), and own-point feasibility must match
    across revised, dense-tableau, and scipy on arbitrary LPs."""
    model, _ = _build(spec)
    sols = {name: fn(model) for name, fn in _ALL.items()}

    statuses = {name: sol.status for name, sol in sols.items()}
    assert len(set(statuses.values())) == 1, statuses

    if sols["scipy"].status is SolveStatus.OPTIMAL:
        reference = sols["scipy"].objective
        for name, sol in sols.items():
            assert sol.objective == pytest.approx(
                reference, rel=1e-9, abs=1e-9
            ), name
            _check_feasible(model, sol)


@settings(max_examples=60, deadline=None)
@given(spec=lp_specs())
def test_builtins_bit_identical_on_shared_basis(spec):
    """The built-ins' cross-backend contract: same optimal basis ⇒
    bit-identical values and objective (the shared finalization re-solve
    erases each algorithm's accumulated roundoff)."""
    model, _ = _build(spec, name="diff-bits")
    revised = solve_revised(model)
    dense = solve_simplex(model)
    assert revised.status is dense.status
    if revised.status is SolveStatus.OPTIMAL and revised.basis == dense.basis:
        assert revised.objective == dense.objective
        assert {v.name: x for v, x in revised.values.items()} == {
            v.name: x for v, x in dense.values.items()
        }


@settings(max_examples=40, deadline=None)
@given(spec=lp_specs())
def test_sherlock_shape_agrees(spec):
    """Unit-box covering LPs (the shape the encoder emits: ``x ∈ [0,1]``,
    ``sum >= 1`` rows, non-negative costs): always solvable, and the
    built-ins — which run identical Bland pivot sequences from identical
    cold starts — must be bit-identical whenever they settle on the same
    basis (they may differ only in redundant-row bookkeeping: a pinned
    artificial in the revised simplex vs a driven-out slack in the
    tableau, which still denotes the same vertex)."""
    bounds, costs, rows = spec
    boxed = [(0.0, 1.0) for _ in bounds]
    covering = [
        ([abs(a) for a in coeffs], ">=", 1.0)
        for coeffs, _, _ in rows
        if any(coeffs)
    ]
    model, _ = _build((boxed, [abs(c) for c in costs], covering), "cover")
    sols = {name: fn(model) for name, fn in _ALL.items()}
    assert all(s.status is SolveStatus.OPTIMAL for s in sols.values())
    assert sols["revised"].objective == pytest.approx(
        sols["scipy"].objective, rel=1e-9, abs=1e-9
    )
    if sols["revised"].basis == sols["dense-tableau"].basis:
        assert sols["revised"].objective == sols["dense-tableau"].objective
    else:
        assert sols["revised"].objective == pytest.approx(
            sols["dense-tableau"].objective, rel=1e-12, abs=1e-12
        )
    for sol in sols.values():
        _check_feasible(model, sol)


@settings(max_examples=30, deadline=None)
@given(
    free_mask=st.lists(st.booleans(), min_size=2, max_size=4),
    costs=st.lists(st.floats(0.1, 2.0), min_size=4, max_size=4),
)
def test_free_variables_error_consistently(free_mask, costs):
    """Truly free variables (lower bound ``-inf``) are outside both
    built-ins' ``x >= 0`` rewrite; they must *both* report ERROR (never
    crash, never silently mis-solve) while scipy still solves the
    model."""
    import numpy as np

    if not any(free_mask):
        free_mask = [True] + list(free_mask[1:])
    m = Model("free")
    xs = [
        m.add_variable(f"x{i}", -np.inf if free else 0.0, 1.0)
        for i, free in enumerate(free_mask)
    ]
    expr = xs[0] * 0
    for x in xs:
        expr = expr + x
    m.add_constraint(expr >= 1)
    for x, c in zip(xs, costs):
        m.add_objective_term(x, c)
    for fn in _BUILTINS.values():
        assert fn(m).status is SolveStatus.ERROR
    assert solve_scipy(m).status is SolveStatus.OPTIMAL


# ---------------------------------------------------------------------------
# Hot-path densification guard
# ---------------------------------------------------------------------------


def test_revised_hot_path_never_densifies_constraint_matrix():
    """Source-scan guard for the tentpole's core constraint: neither
    ``revised.py``, ``factor.py``, ``presolve.py``, nor ``dual.py`` may
    densify the constraint matrix (``toarray``/``todense``/``.A``).  The
    only dense objects allowed are m-vectors (ftran/btran right-hand
    sides, one entering column) and the final m×m basis re-solve in
    extraction; presolve works on CSR/CSC index arrays directly."""
    import repro.lp.dual as dual
    import repro.lp.factor as factor
    import repro.lp.presolve as presolve
    import repro.lp.revised as revised

    for module in (revised, factor, presolve, dual):
        source = inspect.getsource(module)
        assert "toarray" not in source, module.__name__
        assert "todense" not in source, module.__name__
        assert ".A]" not in source and ".A " not in source, module.__name__


# ---------------------------------------------------------------------------
# Presolve differential + round-trip (force-on at paper sizes)
# ---------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(spec=lp_specs())
def test_presolve_matches_no_presolve(spec):
    """Forcing presolve below its gate must not change the verdict:
    same status as the un-presolved solve, same objective to 1e-9, and
    the postsolved point feasible on the *original* model."""
    from repro.lp import backends

    model, _ = _build(spec, name="presolve-diff")
    forced = backends.solve(
        model, backend="revised-simplex", presolve="force"
    )
    plain = backends.solve(
        model, backend="revised-simplex", presolve=False
    )
    assert forced.status is plain.status, (forced.status, plain.status)
    if plain.status is SolveStatus.OPTIMAL:
        assert forced.objective == pytest.approx(
            plain.objective, rel=1e-9, abs=1e-9
        )
        _check_feasible(model, forced)
        assert set(forced.values) == set(plain.values)


@settings(max_examples=120, deadline=None)
@given(spec=lp_specs())
def test_presolve_postsolve_round_trip(spec):
    """S3: ``postsolve(presolve(P))`` restores a full exact solution —
    every original variable valued, objective recomputed from the
    original costs, and any reconstructed basis labels *resolve*: they
    warm-start the un-presolved problem straight to the same optimum."""
    from repro.lp import backends

    model, _ = _build(spec, name="presolve-rt")
    forced = backends.solve(
        model, backend="revised-simplex", presolve="force"
    )
    if forced.status is not SolveStatus.OPTIMAL:
        return
    assert len(forced.values) == len(model.variables)
    _check_feasible(model, forced)
    if forced.basis is None:
        return
    warm = solve_revised(model, warm_basis=forced.basis)
    assert warm.status is SolveStatus.OPTIMAL
    assert warm.objective == pytest.approx(
        forced.objective, rel=1e-9, abs=1e-9
    )


def test_prepare_sparse_keeps_matrix_sparse():
    """The assembled phase-1/2 matrix is sparse even when the standard
    form arrives dense (the uncached ``to_standard_form`` path)."""
    from scipy import sparse

    from repro.lp.revised import _prepare_sparse

    m = Model("sparse-check")
    xs = [m.add_variable(f"x{i}", 0, 1) for i in range(4)]
    m.add_constraint(xs[0] + xs[1] >= 1)
    m.add_constraint(xs[2] + xs[3] == 1)
    m.add_constraint(xs[0] + xs[3] <= 1.5)
    for x in xs:
        m.add_objective_term(x, 1.0)
    problem = _prepare_sparse(m.to_standard_form())
    assert sparse.issparse(problem.matrix)
    assert sparse.issparse(problem.matrix_t)
