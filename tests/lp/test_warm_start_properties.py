"""Warm-start contract tests for the built-in simplex family.

``Solution.basis`` is a tuple of backend-independent labels; the contract
locked down here is:

* a basis emitted by either built-in backend is *accepted* by the other
  (warm phase 2 verifies optimality in zero pivots instead of re-running
  the cold two-phase solve);
* any stale or invalid basis — wrong length, unknown label kind, unknown
  variable, out-of-range slack, duplicates, singular column set, or a
  ``("a", row)`` artificial marker — makes the solver *fall back cleanly*
  to a cold start, never crash and never return a wrong answer.

These are the regression seeds for the warm-start fallback path that
:class:`~repro.core.encoder.IncrementalEncoder` leans on round over
round.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import Model, SolveStatus, solve_revised, solve_simplex

_BUILTINS = {"revised": solve_revised, "dense-tableau": solve_simplex}


def _cover_model(name="warm"):
    """A small covering LP that needs real pivots to solve."""
    m = Model(name)
    xs = [m.add_variable(f"x{i}", 0, 1) for i in range(4)]
    m.add_constraint(xs[0] + xs[1] >= 1)
    m.add_constraint(xs[1] + xs[2] >= 1)
    m.add_constraint(xs[2] + xs[3] >= 1)
    for i, x in enumerate(xs):
        m.add_objective_term(x, 1.0 + 0.25 * i)
    return m


@st.composite
def cover_specs(draw):
    n = draw(st.integers(2, 5))
    rows = draw(
        st.lists(
            st.lists(st.integers(0, 9), min_size=1, max_size=3),
            min_size=1,
            max_size=4,
        )
    )
    costs = [
        draw(st.sampled_from([0.25, 0.5, 1.0, 1.5, 3.0])) for _ in range(n)
    ]
    return n, rows, costs


def _build_cover(spec, name):
    n, rows, costs = spec
    m = Model(name)
    xs = [m.add_variable(f"x{i}", 0, 1) for i in range(n)]
    for row in rows:
        members = {i % n for i in row}
        expr = xs[0] * 0
        for i in members:
            expr = expr + xs[i]
        m.add_constraint(expr >= 1)
    for x, c in zip(xs, costs):
        m.add_objective_term(x, c)
    return m


@settings(max_examples=50, deadline=None)
@given(spec=cover_specs())
def test_cross_backend_basis_acceptance(spec):
    """A basis from either built-in warm-starts the other: the warm solve
    stays OPTIMAL, matches the cold objective, and — because the basis is
    already optimal — needs zero pivots whenever it is accepted."""
    for emitter_name, emitter in _BUILTINS.items():
        for acceptor_name, acceptor in _BUILTINS.items():
            model = _build_cover(spec, f"{emitter_name}->{acceptor_name}")
            cold = emitter(model)
            assert cold.status is SolveStatus.OPTIMAL
            warm = acceptor(model, warm_basis=cold.basis)
            assert warm.status is SolveStatus.OPTIMAL
            assert warm.objective == pytest.approx(
                cold.objective, rel=1e-12, abs=1e-12
            )


def test_warm_start_skips_pivots_entirely():
    """Accepting an optimal basis means verifying optimality, not
    re-solving: zero iterations, in both directions."""
    for emitter in _BUILTINS.values():
        for acceptor in _BUILTINS.values():
            model = _cover_model()
            cold = emitter(model)
            assert cold.iterations > 0
            warm = acceptor(model, warm_basis=cold.basis)
            assert warm.status is SolveStatus.OPTIMAL
            assert warm.iterations == 0
            assert warm.objective == cold.objective


@pytest.mark.parametrize("backend", list(_BUILTINS), ids=str)
@pytest.mark.parametrize(
    "stale_basis",
    [
        (),  # wrong length: empty
        (("v", "x0"),),  # wrong length: too short
        (("v", "x0"), ("v", "x1"), ("v", "x2"), ("v", "x3")),  # too long
        (("z", 0), ("s", 0), ("s", 1)),  # unknown kind
        (("v", "nope"), ("s", 0), ("s", 1)),  # unknown variable name
        (("s", 999), ("s", 0), ("s", 1)),  # slack index out of range
        (("b", "nope"), ("s", 0), ("s", 1)),  # unknown bound-row variable
        (("s", 0), ("s", 0), ("s", 1)),  # duplicate labels
        (("a", 0), ("s", 0), ("s", 1)),  # artificial marker
    ],
    ids=[
        "empty",
        "short",
        "long",
        "unknown-kind",
        "unknown-var",
        "slack-range",
        "unknown-bound",
        "duplicate",
        "artificial",
    ],
)
def test_invalid_basis_falls_back_cleanly(backend, stale_basis):
    """Every malformed basis degrades to the cold-start answer."""
    model = _cover_model(f"stale-{backend}")
    cold = _BUILTINS[backend](model)
    warm = _BUILTINS[backend](model, warm_basis=stale_basis)
    assert warm.status is SolveStatus.OPTIMAL
    assert warm.objective == cold.objective
    assert warm.values == cold.values


@pytest.mark.parametrize("backend", list(_BUILTINS), ids=str)
def test_singular_resolvable_basis_falls_back(backend):
    """Labels that all resolve but select linearly dependent columns (a
    singular basis matrix) must also fall back, not crash the LU."""
    m = Model(f"singular-{backend}")
    x0 = m.add_variable("x0", 0, None)
    x1 = m.add_variable("x1", 0, None)
    m.add_constraint(x0 + x1 <= 2)
    m.add_constraint(2 * x0 + 2 * x1 <= 4)  # dependent row
    m.add_objective_term(x0, 1.0)
    m.add_objective_term(x1, 2.0)
    cold = _BUILTINS[backend](m)
    assert cold.status is SolveStatus.OPTIMAL
    # Columns of x0 and x1 are [1,2] and [1,2]: singular as a basis.
    warm = _BUILTINS[backend](m, warm_basis=(("v", "x0"), ("v", "x1")))
    assert warm.status is SolveStatus.OPTIMAL
    assert warm.objective == cold.objective


@pytest.mark.parametrize("backend", list(_BUILTINS), ids=str)
def test_basis_from_older_smaller_model_falls_back(backend):
    """The IncrementalEncoder shape: the model grew since the basis was
    emitted (new variables and constraints), so the old basis no longer
    has the right length and the solver cold-starts."""
    old = _cover_model("old")
    basis = _BUILTINS[backend](old).basis

    grown = Model("grown")
    xs = [grown.add_variable(f"x{i}", 0, 1) for i in range(6)]
    grown.add_constraint(xs[0] + xs[1] >= 1)
    grown.add_constraint(xs[1] + xs[2] >= 1)
    grown.add_constraint(xs[2] + xs[3] >= 1)
    grown.add_constraint(xs[4] + xs[5] >= 1)
    for i, x in enumerate(xs):
        grown.add_objective_term(x, 1.0 + 0.1 * i)
    cold = _BUILTINS[backend](grown)
    warm = _BUILTINS[backend](grown, warm_basis=basis)
    assert warm.status is SolveStatus.OPTIMAL
    assert warm.objective == cold.objective


def test_leftover_artificial_emits_a_label_and_both_backends_reject_it():
    """A redundant equality row can leave a phase-1 artificial basic (at
    zero) in the revised simplex, which labels it ``("a", row)``.  That
    label is deliberately rejected by *both* backends' resolvers — the
    next round cold-starts instead of importing a basis that only means
    something to one backend's internal bookkeeping."""
    m = Model("redundant-eq")
    x0 = m.add_variable("x0", 0, 1)
    x1 = m.add_variable("x1", 0, 1)
    m.add_constraint(x0 + x1 == 1)
    m.add_constraint(x0 + x1 == 1)  # redundant copy
    m.add_objective_term(x0, 1.0)
    m.add_objective_term(x1, 2.0)
    sol = solve_revised(m)
    assert sol.status is SolveStatus.OPTIMAL
    kinds = {kind for kind, _ in sol.basis}
    assert "a" in kinds
    for fn in _BUILTINS.values():
        warm = fn(m, warm_basis=sol.basis)
        assert warm.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(sol.objective, abs=1e-12)
