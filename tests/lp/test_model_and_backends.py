"""Model construction and backend cross-checking tests."""

import numpy as np
import pytest

from repro.lp import Model, SolveStatus, solve, solve_scipy, solve_simplex
from repro.lp.backends import available_backends


def test_duplicate_variable_names_rejected():
    m = Model()
    m.add_variable("x")
    with pytest.raises(ValueError):
        m.add_variable("x")


def test_foreign_variable_rejected():
    m1, m2 = Model(), Model()
    x = m1.add_variable("x")
    with pytest.raises(ValueError):
        m2.add_constraint(x <= 1)


def test_unknown_backend_rejected():
    m = Model()
    with pytest.raises(ValueError):
        solve(m, backend="nope")
    assert "scipy" in available_backends()
    assert "simplex" in available_backends()


@pytest.mark.parametrize("backend", [solve_scipy, solve_simplex])
def test_simple_minimization(backend):
    # minimize x + y  s.t.  x + y >= 1, x,y in [0,1]
    m = Model()
    x = m.add_variable("x", 0, 1)
    y = m.add_variable("y", 0, 1)
    m.add_constraint(x + y >= 1)
    m.add_objective_term(x + y)
    sol = backend(m)
    assert sol.is_optimal
    assert sol.objective == pytest.approx(1.0, abs=1e-6)


@pytest.mark.parametrize("backend", [solve_scipy, solve_simplex])
def test_prefers_cheap_variable(backend):
    # Two ways to cover a constraint; the cheaper one must be picked.
    m = Model()
    x = m.add_variable("x", 0, 1)
    y = m.add_variable("y", 0, 1)
    m.add_constraint(x + y >= 1)
    m.add_objective_term(x * 1.0 + y * 3.0)
    sol = backend(m)
    assert sol.is_optimal
    assert sol.values[x] == pytest.approx(1.0, abs=1e-6)
    assert sol.values[y] == pytest.approx(0.0, abs=1e-6)


@pytest.mark.parametrize("backend", [solve_scipy, solve_simplex])
def test_equality_constraints(backend):
    m = Model()
    x = m.add_variable("x", 0, 10)
    y = m.add_variable("y", 0, 10)
    m.add_constraint((x + y) == 4)
    m.add_constraint((x - y) == 2)
    m.add_objective_term(x)
    sol = backend(m)
    assert sol.is_optimal
    assert sol.values[x] == pytest.approx(3.0, abs=1e-6)
    assert sol.values[y] == pytest.approx(1.0, abs=1e-6)


@pytest.mark.parametrize("backend", [solve_scipy, solve_simplex])
def test_infeasible_detected(backend):
    m = Model()
    x = m.add_variable("x", 0, 1)
    m.add_constraint(x >= 2)
    m.add_objective_term(x)
    sol = backend(m)
    assert sol.status is SolveStatus.INFEASIBLE


@pytest.mark.parametrize("backend", [solve_scipy, solve_simplex])
def test_unbounded_detected(backend):
    m = Model()
    x = m.add_variable("x", 0, None)
    m.add_objective_term(-1.0 * x)
    sol = backend(m)
    assert sol.status is SolveStatus.UNBOUNDED


@pytest.mark.parametrize("backend", [solve_scipy, solve_simplex])
def test_max0_lowering(backend):
    # minimize max(0, 1 - x) + 0.5 x  -> optimum at x = 1, value 0.5.
    m = Model()
    x = m.add_variable("x", 0, 1)
    m.add_max0_term(1 - x)
    m.add_objective_term(x, 0.5)
    sol = backend(m)
    assert sol.is_optimal
    assert sol.values[x] == pytest.approx(1.0, abs=1e-6)
    assert sol.objective == pytest.approx(0.5, abs=1e-6)


@pytest.mark.parametrize("backend", [solve_scipy, solve_simplex])
def test_max0_prefers_zero_when_costly(backend):
    # minimize max(0, 1 - x) + 2 x -> optimum at x = 0, value 1.
    m = Model()
    x = m.add_variable("x", 0, 1)
    m.add_max0_term(1 - x)
    m.add_objective_term(x, 2.0)
    sol = backend(m)
    assert sol.is_optimal
    assert sol.values[x] == pytest.approx(0.0, abs=1e-6)
    assert sol.objective == pytest.approx(1.0, abs=1e-6)


@pytest.mark.parametrize("backend", [solve_scipy, solve_simplex])
def test_abs_lowering(backend):
    # minimize |x - y| + y  s.t. x = 1  -> y = 1 costs 1, y = 0 costs 1;
    # adding a slight preference for pairing picks y to balance.
    m = Model()
    x = m.add_variable("x", 0, 1)
    y = m.add_variable("y", 0, 1)
    m.add_constraint((x + 0) == 1)
    m.add_abs_term(x - y, weight=2.0)
    m.add_objective_term(y, 1.0)
    sol = backend(m)
    assert sol.is_optimal
    # Pairing dominates: y pulled up to x.
    assert sol.values[y] == pytest.approx(1.0, abs=1e-6)


@pytest.mark.parametrize("backend", [solve_scipy, solve_simplex])
def test_objective_offset_carried(backend):
    m = Model()
    x = m.add_variable("x", 0, 1)
    m.add_objective_term(x + 7.0)
    sol = backend(m)
    assert sol.is_optimal
    assert sol.objective == pytest.approx(7.0, abs=1e-6)


def test_solution_helpers():
    m = Model()
    x = m.add_variable("x", 0, 1)
    m.add_constraint(x >= 0.25)
    m.add_objective_term(x)
    sol = m.solve()
    assert sol.value(x) == pytest.approx(0.25, abs=1e-6)
    assert sol.by_name()["x"] == pytest.approx(0.25, abs=1e-6)
    assert "optimal" in repr(sol)


def test_empty_model_solves():
    m = Model()
    sol = solve_scipy(m)
    assert sol.is_optimal
    sol2 = solve_simplex(m)
    assert sol2.is_optimal


def test_model_without_constraints_simplex():
    m = Model()
    x = m.add_variable("x", 0, 5)
    m.add_objective_term(-1.0 * x)
    sol = solve_simplex(m)
    assert sol.is_optimal
    assert sol.values[x] == pytest.approx(5.0)


def test_standard_form_shapes():
    m = Model()
    x = m.add_variable("x", 0, 1)
    y = m.add_variable("y")
    m.add_constraint(x + y <= 3)
    m.add_constraint(x - y >= -1)
    m.add_constraint((x + 2 * y) == 2)
    m.add_objective_term(x + y)
    form = m.to_standard_form()
    assert form.a_ub.shape == (2, 2)
    assert form.a_eq.shape == (1, 2)
    # >= row was flipped into <=.
    assert np.allclose(form.a_ub[1], [-1.0, 1.0])
    assert form.b_ub[1] == pytest.approx(1.0)


def test_auto_backend_matches_named():
    m = Model()
    x = m.add_variable("x", 0, 1)
    m.add_constraint(x >= 0.5)
    m.add_objective_term(x)
    assert m.solve("auto").objective == pytest.approx(
        m.solve("scipy").objective
    )


def test_model_repr_and_stats():
    m = Model("demo")
    x = m.add_variable("x")
    m.add_constraint(x <= 1)
    m.add_objective_term(x)
    assert m.stats()["variables"] == 1
    assert "demo" in repr(m)
    assert m.get_variable("x") is x
    assert m.has_variable("x")
    assert not m.has_variable("y")
