"""Campaign-level tests: job determinism, aggregation, validation."""

import json

import pytest

from repro.fuzz import CampaignConfig, run_campaign
from repro.fuzz.campaign import run_schedule_job
from repro.runtime import ExecutionRuntime


def job(app_id="App-7", seed=0, rounds=2, policy="random",
        lam_tolerance=0.01, oracles=False):
    return (app_id, seed, rounds, policy, lam_tolerance, oracles)


class TestScheduleJob:
    def test_same_job_reproduces_digests(self):
        first = run_schedule_job(job())
        second = run_schedule_job(job())
        assert first.trace_digest == second.trace_digest
        assert first.report_digest == second.report_digest
        assert first.inferred == second.inferred

    def test_different_seeds_differ(self):
        a = run_schedule_job(job(seed=0))
        b = run_schedule_job(job(seed=1))
        assert a.trace_digest != b.trace_digest

    def test_policy_changes_trace(self):
        a = run_schedule_job(job(policy="random"))
        b = run_schedule_job(job(policy="pct"))
        assert a.trace_digest != b.trace_digest

    def test_oracles_pass_at_paper_defaults(self):
        result = run_schedule_job(job(rounds=3, oracles=True))
        assert result.violations == []
        names = {o["name"] for o in result.oracles}
        assert names == {
            "ground-truth",
            "lambda-stability",
            "predicted-unwitnessed",
        }
        assert result.oracle_failures == []

    def test_predicted_unwitnessed_oracle_reports_targets(self):
        result = run_schedule_job(job(rounds=3, oracles=True))
        (oracle,) = [
            o for o in result.oracles
            if o["name"] == "predicted-unwitnessed"
        ]
        assert oracle["passed"]  # fails only on invalid witnesses
        assert oracle["data"]["invalid_witnesses"] == 0
        assert oracle["data"]["predicted"] >= oracle["data"]["unwitnessed"]
        assert oracle["data"]["targets"] == sorted(
            oracle["data"]["targets"]
        )

    def test_result_is_json_serializable(self):
        result = run_schedule_job(job())
        restored = json.loads(json.dumps(result.to_dict()))
        assert restored["app_id"] == "App-7"
        assert restored["executions"] > 0
        assert restored["events_observed"] > 0


class TestCampaignConfigValidate:
    def test_resolves_aliases(self):
        config = CampaignConfig(app_ids=["app7_statsd", "app-2"])
        config.validate()
        assert config.app_ids == ["App-7", "App-2"]

    def test_rejects_unknown_app(self):
        with pytest.raises(KeyError, match="app9_nope"):
            CampaignConfig(app_ids=["app9_nope"]).validate()

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="polic"):
            CampaignConfig(
                app_ids=["App-7"], policy="roundrobin"
            ).validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"schedules": 0},
            {"rounds": 0},
            {"workers": 0},
            {"replay_every": -1},
            {"app_ids": []},
        ],
    )
    def test_rejects_bad_numbers(self, kwargs):
        base = {"app_ids": ["App-7"]}
        base.update(kwargs)
        with pytest.raises(ValueError):
            CampaignConfig(**base).validate()


class TestRunCampaign:
    def test_small_campaign_end_to_end(self):
        config = CampaignConfig(
            app_ids=["app7_statsd"],
            schedules=3,
            rounds=2,
            oracles=False,
            replay_every=2,
        )
        report = run_campaign(config)
        assert len(report.results) == 3
        assert [r.seed for r in report.results] == [0, 1, 2]
        assert all(r.app_id == "App-7" for r in report.results)
        assert report.total_violations == 0
        # replay_every=2 over 3 jobs samples jobs 0 and 2.
        assert report.permutation_sampled == 2
        assert report.permutation_mismatches == []
        assert report.ok

        per_app = report.per_app()["App-7"]
        assert per_app["schedules"] == 3
        assert per_app["violations"] == 0
        assert 1 <= per_app["distinct_traces"] <= 3

        blob = json.loads(json.dumps(report.to_dict()))
        assert blob["totals"]["schedules"] == 3
        assert blob["totals"]["ok"] is True
        assert len(blob["schedules"]) == 3
        assert "fuzz campaign" in report.summary()
        assert "RESULT: OK" in report.summary()

    def test_replay_disabled(self):
        config = CampaignConfig(
            app_ids=["App-7"],
            schedules=2,
            rounds=1,
            oracles=False,
            replay_every=0,
        )
        report = run_campaign(config)
        assert report.permutation_sampled == 0
        assert report.permutation_mismatches == []

    def test_campaign_on_shared_runtime(self):
        config = CampaignConfig(
            app_ids=["App-7"],
            schedules=2,
            rounds=1,
            oracles=False,
            replay_every=0,
        )
        with ExecutionRuntime(workers=1) as rt:
            report = run_campaign(config, runtime=rt)
        assert len(report.results) == 2
        assert report.ok

    def test_base_seed_offsets_schedules(self):
        config = CampaignConfig(
            app_ids=["App-7"],
            schedules=2,
            base_seed=10,
            rounds=1,
            oracles=False,
            replay_every=0,
        )
        report = run_campaign(config)
        assert [r.seed for r in report.results] == [10, 11]
