"""Campaign-level tests: job determinism, aggregation, validation."""

import json

import pytest

from repro.fuzz import CampaignConfig, run_campaign
from repro.fuzz.campaign import run_schedule_job
from repro.runtime import ExecutionRuntime


def job(app_id="App-7", seed=0, rounds=2, policy="random",
        lam_tolerance=0.01, oracles=False):
    return (app_id, seed, rounds, policy, lam_tolerance, oracles)


class TestScheduleJob:
    def test_same_job_reproduces_digests(self):
        first = run_schedule_job(job())
        second = run_schedule_job(job())
        assert first.trace_digest == second.trace_digest
        assert first.report_digest == second.report_digest
        assert first.inferred == second.inferred

    def test_different_seeds_differ(self):
        a = run_schedule_job(job(seed=0))
        b = run_schedule_job(job(seed=1))
        assert a.trace_digest != b.trace_digest

    def test_policy_changes_trace(self):
        a = run_schedule_job(job(policy="random"))
        b = run_schedule_job(job(policy="pct"))
        assert a.trace_digest != b.trace_digest

    def test_oracles_pass_at_paper_defaults(self):
        result = run_schedule_job(job(rounds=3, oracles=True))
        assert result.violations == []
        names = {o["name"] for o in result.oracles}
        assert names == {
            "ground-truth",
            "lambda-stability",
            "predicted-unwitnessed",
        }
        assert result.oracle_failures == []

    def test_predicted_unwitnessed_oracle_reports_targets(self):
        result = run_schedule_job(job(rounds=3, oracles=True))
        (oracle,) = [
            o for o in result.oracles
            if o["name"] == "predicted-unwitnessed"
        ]
        assert oracle["passed"]  # fails only on invalid witnesses
        assert oracle["data"]["invalid_witnesses"] == 0
        assert oracle["data"]["predicted"] >= oracle["data"]["unwitnessed"]
        assert oracle["data"]["targets"] == sorted(
            oracle["data"]["targets"]
        )

    def test_result_is_json_serializable(self):
        result = run_schedule_job(job())
        restored = json.loads(json.dumps(result.to_dict()))
        assert restored["app_id"] == "App-7"
        assert restored["executions"] > 0
        assert restored["events_observed"] > 0


class TestCampaignConfigValidate:
    def test_validate_is_read_only(self):
        """validate() must not rewrite app_ids: the caller's config
        serializes exactly as passed, and double-validation is a no-op
        by inspection."""
        config = CampaignConfig(app_ids=["app7_statsd", "app-2"])
        config.validate()
        assert config.app_ids == ["app7_statsd", "app-2"]
        config.validate()  # idempotent: still the caller's spelling
        assert config.app_ids == ["app7_statsd", "app-2"]

    def test_resolved_is_pure(self):
        config = CampaignConfig(app_ids=["app7_statsd", "app-2"])
        resolved = config.resolved()
        assert resolved.app_ids == ["App-7", "App-2"]
        assert config.app_ids == ["app7_statsd", "app-2"]
        # Resolution is stable: resolving a resolved config changes
        # nothing further.
        assert resolved.resolved().app_ids == resolved.app_ids

    def test_rejects_unknown_app(self):
        with pytest.raises(KeyError, match="app9_nope"):
            CampaignConfig(app_ids=["app9_nope"]).validate()

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="polic"):
            CampaignConfig(
                app_ids=["App-7"], policy="roundrobin"
            ).validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"schedules": 0},
            {"rounds": 0},
            {"workers": 0},
            {"replay_every": -1},
            {"app_ids": []},
        ],
    )
    def test_rejects_bad_numbers(self, kwargs):
        base = {"app_ids": ["App-7"]}
        base.update(kwargs)
        with pytest.raises(ValueError):
            CampaignConfig(**base).validate()


def _result(app_id="App-7", seed=0, violations=(), oracles=()):
    from repro.fuzz.campaign import ScheduleResult

    return ScheduleResult(
        app_id=app_id,
        seed=seed,
        policy="random",
        trace_digest="t",
        report_digest="r",
        inferred=[],
        events_observed=1,
        executions=1,
        violations=list(violations),
        oracles=list(oracles),
    )


def _report(**kwargs):
    from repro.fuzz.campaign import CampaignReport

    kwargs.setdefault("config", CampaignConfig(app_ids=["App-7"]))
    kwargs.setdefault("results", [])
    return CampaignReport(**kwargs)


class TestCampaignVerdicts:
    """ok/exit_code semantics: oracle failures and permutation
    mismatches are distinct counters with distinct strictness."""

    def test_clean_report_passes_both_verdicts(self):
        report = _report(results=[_result()])
        assert report.ok() and report.ok(strict=True)
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 0

    def test_oracle_failure_only_fails_strict_verdict(self):
        failed = {"name": "ground-truth", "passed": False, "data": {}}
        report = _report(results=[_result(oracles=[failed])])
        assert report.total_oracle_failures == 1
        assert report.total_permutation_mismatches == 0
        assert report.ok()              # non-strict: oracles advisory
        assert not report.ok(strict=True)
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_permutation_mismatch_only_fails_both_verdicts(self):
        mismatch = {"app_id": "App-7", "seed": 0}
        report = _report(
            results=[_result()],
            permutation_mismatches=[mismatch],
            permutation_sampled=1,
        )
        assert not report.ok()
        assert not report.ok(strict=True)
        assert report.exit_code() == 1

    def test_mismatches_not_double_counted_as_oracle_failures(self):
        mismatch = {"app_id": "App-7", "seed": 0}
        report = _report(
            results=[_result()],
            permutation_mismatches=[mismatch],
            permutation_sampled=1,
        )
        assert report.total_oracle_failures == 0
        assert report.total_permutation_mismatches == 1

    def test_sanitizer_violation_fails_both_verdicts(self):
        violation = {"kind": "order", "detail": "x"}
        report = _report(results=[_result(violations=[violation])])
        assert not report.ok()
        assert not report.ok(strict=True)

    def test_to_dict_reports_both_verdicts(self):
        failed = {"name": "lambda-stability", "passed": False, "data": {}}
        totals = _report(results=[_result(oracles=[failed])]).to_dict()[
            "totals"
        ]
        assert totals["ok"] is True
        assert totals["strict_ok"] is False
        assert totals["oracle_failures"] == 1
        assert totals["permutation_mismatches"] == 0


class TestRunCampaign:
    def test_small_campaign_end_to_end(self):
        config = CampaignConfig(
            app_ids=["app7_statsd"],
            schedules=3,
            rounds=2,
            oracles=False,
            replay_every=2,
        )
        report = run_campaign(config)
        assert len(report.results) == 3
        assert [r.seed for r in report.results] == [0, 1, 2]
        assert all(r.app_id == "App-7" for r in report.results)
        assert report.total_violations == 0
        # replay_every=2 over 3 jobs samples jobs 0 and 2.
        assert report.permutation_sampled == 2
        assert report.permutation_mismatches == []
        assert report.ok()
        # run_campaign resolved a copy; the caller's config is intact.
        assert config.app_ids == ["app7_statsd"]
        assert report.config.app_ids == ["App-7"]

        per_app = report.per_app()["App-7"]
        assert per_app["schedules"] == 3
        assert per_app["violations"] == 0
        assert 1 <= per_app["distinct_traces"] <= 3

        blob = json.loads(json.dumps(report.to_dict()))
        assert blob["totals"]["schedules"] == 3
        assert blob["totals"]["ok"] is True
        assert len(blob["schedules"]) == 3
        assert "fuzz campaign" in report.summary()
        assert "RESULT: OK" in report.summary()

    def test_replay_disabled(self):
        config = CampaignConfig(
            app_ids=["App-7"],
            schedules=2,
            rounds=1,
            oracles=False,
            replay_every=0,
        )
        report = run_campaign(config)
        assert report.permutation_sampled == 0
        assert report.permutation_mismatches == []

    def test_campaign_on_shared_runtime(self):
        config = CampaignConfig(
            app_ids=["App-7"],
            schedules=2,
            rounds=1,
            oracles=False,
            replay_every=0,
        )
        with ExecutionRuntime(workers=1) as rt:
            report = run_campaign(config, runtime=rt)
        assert len(report.results) == 2
        assert report.ok()

    def test_base_seed_offsets_schedules(self):
        config = CampaignConfig(
            app_ids=["App-7"],
            schedules=2,
            base_seed=10,
            rounds=1,
            oracles=False,
            replay_every=0,
        )
        report = run_campaign(config)
        assert [r.seed for r in report.results] == [10, 11]
