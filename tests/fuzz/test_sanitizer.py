"""Unit tests for the trace sanitizer: each invariant fires on a
hand-corrupted trace and stays quiet on genuine kernel output."""

import pytest

from repro.apps.registry import get_application
from repro.core.config import SherlockConfig
from repro.core.observer import Observer
from repro.fuzz import TraceSanitizer, sanitize_execution, trace_digest
from repro.sim.runner import TestExecution as Execution
from repro.trace import OpType, TraceEvent, TraceLog
from repro.trace.events import DelayInterval
from repro.trace.optypes import OpRef


def make_log(events, run_id=0):
    log = TraceLog(run_id=run_id)
    for e in events:
        log.append(e)
    return log


def ev(t, tid, op, name, addr=1, **meta):
    return TraceEvent(
        timestamp=t, thread_id=tid, optype=op, name=name, address=addr,
        local_time=t, meta=meta,
    )


def execution(log, error=None):
    return Execution("T::test", log, steps=len(log), error=error)


def codes(violations):
    return sorted({v.code for v in violations})


class TestCleanTraces:
    def test_real_kernel_output_is_clean(self):
        observer = Observer(SherlockConfig())
        for execution_ in observer.observe_round(
            get_application("App-7"), 0, {}
        ):
            assert sanitize_execution(execution_) == []

    def test_empty_log_is_clean(self):
        assert sanitize_execution(execution(make_log([]))) == []


class TestBalance:
    def test_unmatched_exit(self):
        log = make_log([ev(0.1, 1, OpType.EXIT, "C::m")])
        assert codes(sanitize_execution(execution(log))) == ["balance"]

    def test_mismatched_exit_name(self):
        log = make_log([
            ev(0.1, 1, OpType.ENTER, "C::outer"),
            ev(0.2, 1, OpType.ENTER, "C::inner"),
            ev(0.3, 1, OpType.EXIT, "C::outer"),
        ])
        assert "balance" in codes(sanitize_execution(execution(log)))

    def test_unclosed_enter(self):
        log = make_log([ev(0.1, 1, OpType.ENTER, "C::m")])
        assert codes(sanitize_execution(execution(log))) == ["balance"]

    def test_unclosed_enter_tolerated_on_failed_execution(self):
        log = make_log([ev(0.1, 1, OpType.ENTER, "C::m")])
        violations = sanitize_execution(
            execution(log, error="thread t: KeyError")
        )
        assert violations == []

    def test_balanced_nesting_is_clean(self):
        log = make_log([
            ev(0.1, 1, OpType.ENTER, "C::outer"),
            ev(0.2, 1, OpType.ENTER, "C::inner"),
            ev(0.3, 1, OpType.EXIT, "C::inner"),
            ev(0.4, 1, OpType.EXIT, "C::outer"),
        ])
        assert sanitize_execution(execution(log)) == []


class TestMonotoneTime:
    def test_backwards_timestamp(self):
        log = make_log([
            ev(0.5, 1, OpType.READ, "C::f"),
            ev(0.1, 1, OpType.READ, "C::f"),
        ])
        assert "monotone-time" in codes(sanitize_execution(execution(log)))

    def test_non_dense_seq(self):
        log = make_log([ev(0.1, 1, OpType.READ, "C::f")])
        object.__setattr__(log.events[0], "seq", 7)
        assert "monotone-time" in codes(sanitize_execution(execution(log)))

    def test_backwards_local_time(self):
        log = make_log([
            TraceEvent(0.1, 1, OpType.READ, "C::f", 1, local_time=0.5),
            TraceEvent(0.2, 1, OpType.READ, "C::f", 1, local_time=0.1),
        ])
        assert "monotone-time" in codes(sanitize_execution(execution(log)))


class TestAttribution:
    def test_nonpositive_thread_id(self):
        log = make_log([ev(0.1, 0, OpType.READ, "C::f")])
        assert "attribution" in codes(sanitize_execution(execution(log)))

    def test_foreign_run_id(self):
        log = TraceLog(run_id=2)
        log.append(ev(0.1, 1, OpType.READ, "C::f"))
        log.events[0] = TraceEvent(
            0.1, 1, OpType.READ, "C::f", 1, run_id=9, seq=0
        )
        assert "attribution" in codes(sanitize_execution(execution(log)))


class TestFrozenDelays:
    def test_event_inside_delay_interval(self):
        log = make_log([
            ev(0.1, 1, OpType.WRITE, "C::f"),
            ev(0.5, 1, OpType.WRITE, "C::f"),
        ])
        log.add_delay(DelayInterval(
            thread_id=1, start=0.3, end=0.8,
            site=OpRef("C::f", OpType.WRITE),
        ))
        assert "frozen-delay" in codes(sanitize_execution(execution(log)))

    def test_non_positive_duration(self):
        log = make_log([])
        log.add_delay(DelayInterval(
            thread_id=1, start=0.3, end=0.3,
            site=OpRef("C::f", OpType.WRITE),
        ))
        assert "frozen-delay" in codes(sanitize_execution(execution(log)))

    def test_other_thread_may_run_during_delay(self):
        log = make_log([
            ev(0.1, 1, OpType.WRITE, "C::f"),
            ev(0.5, 2, OpType.READ, "C::f"),
        ])
        log.add_delay(DelayInterval(
            thread_id=1, start=0.3, end=0.8,
            site=OpRef("C::f", OpType.WRITE),
        ))
        assert sanitize_execution(execution(log)) == []


class TestConflictingWindows:
    def test_genuine_conflict_is_clean(self):
        log = make_log([
            ev(0.1, 1, OpType.WRITE, "C::f", addr=5),
            ev(0.2, 2, OpType.READ, "C::f", addr=5),
        ])
        assert sanitize_execution(execution(log)) == []

    def test_same_thread_pair_produces_no_window(self):
        log = make_log([
            ev(0.1, 1, OpType.WRITE, "C::f", addr=5),
            ev(0.2, 1, OpType.READ, "C::f", addr=5),
        ])
        assert sanitize_execution(execution(log)) == []


class TestTraceDigest:
    def test_digest_ignores_absolute_addresses(self):
        def run(addr_base):
            log = make_log([
                ev(0.1, 1, OpType.WRITE, "C::f", addr=addr_base),
                ev(0.2, 2, OpType.READ, "C::f", addr=addr_base),
            ])
            return execution(log)

        assert trace_digest([run(100)]) == trace_digest([run(424242)])

    def test_digest_sensitive_to_interleaving(self):
        a = execution(make_log([
            ev(0.1, 1, OpType.WRITE, "C::f"),
            ev(0.2, 2, OpType.READ, "C::f"),
        ]))
        b = execution(make_log([
            ev(0.1, 2, OpType.READ, "C::f"),
            ev(0.2, 1, OpType.WRITE, "C::f"),
        ]))
        assert trace_digest([a]) != trace_digest([b])

    def test_digest_distinguishes_address_aliasing(self):
        """Two objects vs one object is a semantic difference even under
        renumbering."""
        two = execution(make_log([
            ev(0.1, 1, OpType.WRITE, "C::f", addr=1),
            ev(0.2, 2, OpType.READ, "C::f", addr=2),
        ]))
        one = execution(make_log([
            ev(0.1, 1, OpType.WRITE, "C::f", addr=1),
            ev(0.2, 2, OpType.READ, "C::f", addr=1),
        ]))
        assert trace_digest([two]) != trace_digest([one])


class TestSanitizerConfig:
    def test_near_is_honored_for_window_checks(self):
        sanitizer = TraceSanitizer(near=0.05)
        log = make_log([
            ev(0.1, 1, OpType.WRITE, "C::f", addr=5),
            ev(1.0, 2, OpType.READ, "C::f", addr=5),
        ])
        assert sanitizer.sanitize(execution(log)) == []

    def test_violations_carry_test_name_and_run(self):
        log = TraceLog(run_id=3)
        log.append(ev(0.1, 1, OpType.EXIT, "C::m"))
        violations = sanitize_execution(
            Execution("T::mytest", log, steps=1, error=None)
        )
        assert violations and violations[0].test == "T::mytest"
        assert violations[0].run_id == 3
        assert violations[0].to_dict()["code"] == "balance"


@pytest.mark.parametrize("app_id", ["App-2", "App-5"])
def test_delay_rounds_stay_clean(app_id):
    """Rounds with injected delays (the Perturber active) sanitize clean."""
    from repro.core.pipeline import Sherlock

    collected = []
    Sherlock(
        get_application(app_id),
        SherlockConfig(rounds=3, seed=1),
        round_listener=lambda _i, execs: collected.extend(execs),
    ).run()
    assert any(e.log.delays for e in collected)  # Perturber actually ran
    for execution_ in collected:
        assert sanitize_execution(execution_) == []
