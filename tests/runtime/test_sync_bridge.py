"""The ``_run_sync`` bridge: synchronous entry points over async cores.

``repro.run()`` must stay callable from plain synchronous code *and*
from inside a running event loop (e.g. a Jupyter cell or an async web
handler); in the latter case the pipeline runs on a private loop in a
helper thread rather than raising ``RuntimeError: asyncio.run() cannot
be called from a running event loop``.
"""

import asyncio

import pytest

import repro
from repro.core import SherlockConfig
from repro.runtime import _run_sync


class TestRunSyncNoLoop:
    def test_returns_coroutine_value(self):
        async def forty_two():
            return 42

        assert _run_sync(forty_two()) == 42

    def test_runs_real_async_work(self):
        async def gather_some():
            async def one(i):
                await asyncio.sleep(0)
                return i

            return sum(await asyncio.gather(*(one(i) for i in range(5))))

        assert _run_sync(gather_some()) == 10

    def test_propagates_exceptions(self):
        async def boom():
            raise ValueError("async failure")

        with pytest.raises(ValueError, match="async failure"):
            _run_sync(boom())


class TestRunSyncInsideRunningLoop:
    def test_bridges_via_helper_thread(self):
        async def inner():
            return "nested"

        async def outer():
            # A running loop exists here; _run_sync must not try
            # asyncio.run() on this thread.
            return _run_sync(inner())

        assert asyncio.run(outer()) == "nested"

    def test_propagates_exceptions_across_threads(self):
        async def boom():
            raise KeyError("lost")

        async def outer():
            with pytest.raises(KeyError, match="lost"):
                _run_sync(boom())
            return True

        assert asyncio.run(outer())


class TestRunStaysSynchronous:
    def test_repro_run_works_without_event_loop(self):
        report = repro.run("App-5", SherlockConfig(rounds=1, seed=0))
        assert report.app_id == "App-5"

    def test_repro_run_works_inside_running_loop(self):
        async def call_run():
            return repro.run("App-5", SherlockConfig(rounds=1, seed=0))

        report = asyncio.run(call_run())
        assert report.app_id == "App-5"
        assert len(report.rounds) == 1
