"""Property-based tests (hypothesis) for the trace cache.

Covers the three behaviors the cache's correctness rests on: delay-plan
freeze/thaw is a faithful round-trip, execution (de)serialization loses
nothing the analyses read, and the in-memory LRU evicts in true
least-recently-used order under arbitrary get/put interleavings.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import trace_digest
from repro.runtime.cache import (
    TraceCache,
    execution_from_dict,
    execution_to_dict,
    freeze_delay_plan,
    round_key,
    thaw_delay_plan,
)
from repro.sim.kernel import DelaySpec
from repro.sim.runner import TestExecution as Execution
from repro.trace import OpType, TraceEvent, TraceLog
from repro.trace.events import DelayInterval
from repro.trace.optypes import OpRef

NAMES = ["C::a", "C::b", "D::m"]
OPTYPES = [OpType.READ, OpType.WRITE, OpType.ENTER, OpType.EXIT]

oprefs = st.builds(OpRef, st.sampled_from(NAMES), st.sampled_from(OPTYPES))

delay_specs = st.one_of(
    st.floats(0.001, 5.0),  # bare-float plans are accepted by the kernel
    st.builds(DelaySpec, st.floats(0.001, 5.0), oprefs),
)

delay_plans = st.dictionaries(oprefs, delay_specs, max_size=6)


@st.composite
def executions(draw):
    log = TraceLog(run_id=draw(st.integers(0, 5)))
    t = 0.0
    for _ in range(draw(st.integers(0, 25))):
        t += draw(st.floats(0.001, 0.05))
        log.append(
            TraceEvent(
                timestamp=t,
                thread_id=draw(st.integers(1, 3)),
                optype=draw(st.sampled_from(OPTYPES)),
                name=draw(st.sampled_from(NAMES)),
                address=draw(st.integers(1, 4)),
                local_time=t,
            )
        )
    for _ in range(draw(st.integers(0, 3))):
        start = draw(st.floats(0.0, 1.0))
        log.add_delay(
            DelayInterval(
                thread_id=draw(st.integers(1, 3)),
                start=start,
                end=start + draw(st.floats(0.001, 1.0)),
                site=draw(oprefs),
                run_id=log.run_id,
            )
        )
    return Execution(
        test_name=draw(st.sampled_from(["T::t1", "T::t2"])),
        log=log,
        steps=len(log),
        error=draw(st.one_of(st.none(), st.just("thread t: boom"))),
    )


class TestFreezeThaw:
    @given(delay_plans)
    @settings(max_examples=80, deadline=None)
    def test_round_trip_is_identity_on_canonical_form(self, plan):
        frozen = freeze_delay_plan(plan)
        assert freeze_delay_plan(thaw_delay_plan(frozen)) == frozen

    @given(delay_plans)
    @settings(max_examples=80, deadline=None)
    def test_thaw_preserves_semantics(self, plan):
        thawed = thaw_delay_plan(freeze_delay_plan(plan))
        assert set(thawed) == set(plan)
        for trigger, spec in plan.items():
            if isinstance(spec, DelaySpec):
                duration, site = spec.duration, spec.site
            else:  # bare float: the trigger is its own site
                duration, site = spec, trigger
            assert thawed[trigger].duration == duration
            assert thawed[trigger].site == site

    @given(delay_plans)
    @settings(max_examples=50, deadline=None)
    def test_key_independent_of_plan_insertion_order(self, plan):
        reordered = dict(reversed(list(plan.items())))

        def key(p):
            return round_key(
                app_id="App-7", seed=0, op_cost=0.01, max_steps=1000,
                delay_plan=p, round_index=1, schedule_policy="random",
            )

        assert key(plan) == key(reordered)


class TestExecutionSerialization:
    @given(executions())
    @settings(max_examples=80, deadline=None)
    def test_dict_round_trip_is_stable(self, execution):
        data = execution_to_dict(execution)
        assert execution_to_dict(execution_from_dict(data)) == data

    @given(executions())
    @settings(max_examples=80, deadline=None)
    def test_round_trip_preserves_trace_digest(self, execution):
        restored = execution_from_dict(execution_to_dict(execution))
        assert trace_digest([restored]) == trace_digest([execution])
        assert restored.test_name == execution.test_name
        assert restored.error == execution.error
        assert restored.steps == execution.steps


class TestLRUOrder:
    @given(
        st.integers(1, 4),
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 7)), max_size=60
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_eviction_matches_reference_lru(self, capacity, ops):
        """Drive the cache and a reference OrderedDict-LRU with the same
        get/put sequence; resident keys must match after every step."""
        cache = TraceCache(memory_entries=capacity)
        model = OrderedDict()
        for is_put, key_index in ops:
            key = f"k{key_index}"
            if is_put:
                cache.put(key, [])
                model[key] = True
                model.move_to_end(key)
                while len(model) > capacity:
                    model.popitem(last=False)
            else:
                hit = cache.get(key) is not None
                assert hit == (key in model)
                if hit:
                    model.move_to_end(key)
            assert list(cache._lru) == list(model)
        assert cache.hits + cache.misses == sum(
            1 for is_put, _ in ops if not is_put
        )
