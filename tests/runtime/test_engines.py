"""The pluggable engine layer: spec parsing, the ``engine=`` redesign,
the async engine's bounded fan-out and cooperative cancellation, legacy
kwarg shims, and runtime lifecycle guarantees.

The byte-identity matrix (serial == process == async == cached) lives in
``test_runtime_determinism.py``; this file covers the API surface and
the engine-specific semantics around it.
"""

import asyncio
import json
import threading
import time
import warnings

import pytest

import repro
from repro.api import _shim_legacy_kwargs
from repro.core import SherlockConfig
from repro.core.serialize import report_to_dict
from repro.runtime import (
    AsyncEngine,
    Engine,
    ExecutionRuntime,
    ProcessEngine,
    SerialEngine,
    TraceCache,
    coerce_engine,
    parse_engine_spec,
)


def canonical(report) -> str:
    return json.dumps(report_to_dict(report), sort_keys=True)


# -- spec parsing ------------------------------------------------------------


class TestParseEngineSpec:
    @pytest.mark.parametrize(
        "spec, expected",
        [
            ("auto", ("auto", None)),
            ("serial", ("serial", None)),
            ("process", ("process", None)),
            ("process:4", ("process", 4)),
            ("async", ("async", None)),
            ("async:8", ("async", 8)),
        ],
    )
    def test_valid_specs(self, spec, expected):
        assert parse_engine_spec(spec) == expected

    @pytest.mark.parametrize(
        "spec",
        ["threads", "process:0", "process:-1", "process:x", "serial:2",
         "auto:4", ""],
    )
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_engine_spec(spec)

    def test_non_string_raises_type_error(self):
        with pytest.raises(TypeError):
            parse_engine_spec(4)


class TestCoerceEngine:
    def test_default_is_serial(self):
        assert isinstance(coerce_engine(None), SerialEngine)
        assert isinstance(coerce_engine("auto"), SerialEngine)

    def test_auto_with_workers_picks_process_pool(self):
        engine = coerce_engine("auto", default_workers=3)
        assert isinstance(engine, ProcessEngine)
        assert engine.concurrency == 3

    def test_sized_specs(self):
        assert coerce_engine("process:5").concurrency == 5
        assert coerce_engine("async:7").concurrency == 7

    def test_unsized_specs_size_from_default_workers(self):
        assert coerce_engine("process", default_workers=6).concurrency == 6
        assert coerce_engine("async", default_workers=6).concurrency == 6

    def test_unsized_specs_fall_back_to_cpu_count(self):
        assert coerce_engine("async").concurrency >= 1

    def test_engine_instance_passes_through(self):
        engine = SerialEngine()
        assert coerce_engine(engine) is engine

    def test_config_rejects_bad_spec_at_construction(self):
        with pytest.raises(ValueError, match="engine spec"):
            SherlockConfig(engine="threads")
        assert SherlockConfig(engine="async:2").engine == "async:2"


# -- legacy kwarg shims ------------------------------------------------------


class TestLegacyKwargShims:
    def test_workers_one_maps_to_serial(self):
        with pytest.warns(DeprecationWarning, match="workers"):
            assert _shim_legacy_kwargs(None, 1, None) == "serial"

    def test_workers_n_maps_to_process_pool(self):
        with pytest.warns(DeprecationWarning, match="process:N"):
            assert _shim_legacy_kwargs(None, 4, None) == "process:4"

    def test_runtime_maps_to_engine(self):
        rt = ExecutionRuntime()
        with pytest.warns(DeprecationWarning, match="engine="):
            assert _shim_legacy_kwargs(None, None, rt) is rt
        rt.close()

    def test_engine_plus_workers_conflict(self):
        with pytest.raises(TypeError, match="workers"):
            _shim_legacy_kwargs("serial", 4, None)

    def test_engine_plus_runtime_conflict(self):
        rt = ExecutionRuntime()
        with pytest.raises(TypeError, match="runtime"):
            _shim_legacy_kwargs("serial", None, rt)
        rt.close()

    def test_run_with_legacy_workers_still_works(self):
        config = SherlockConfig(rounds=1, seed=0)
        baseline = repro.run("App-5", config)
        with pytest.warns(DeprecationWarning, match="engine="):
            legacy = repro.run("App-5", config, workers=1)
        assert canonical(legacy) == canonical(baseline)

    def test_new_api_emits_no_deprecation_warning(self):
        config = SherlockConfig(rounds=1, seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.run("App-5", config, engine="serial", cache="memory")


# -- the async engine --------------------------------------------------------


class TestAsyncEngine:
    def test_concurrency_is_bounded_by_semaphore(self):
        engine = AsyncEngine(concurrency=2)

        def job(i):
            time.sleep(0.02)
            return i * i

        results = engine.map_jobs(job, list(range(8)))
        assert results == [i * i for i in range(8)]
        assert 1 <= engine.metrics.concurrency_hwm <= 2
        assert engine.metrics.jobs_completed == 8
        assert engine.metrics.await_s > 0.0

    def test_jobs_actually_overlap(self):
        # A two-party barrier only releases when two jobs are inside it
        # simultaneously; the 5 s timeout turns a serialized engine into
        # a loud BrokenBarrierError instead of a hang.
        engine = AsyncEngine(concurrency=2)
        barrier = threading.Barrier(2, timeout=5.0)

        def job(i):
            barrier.wait()
            return i

        assert engine.map_jobs(job, [0, 1]) == [0, 1]
        assert engine.metrics.concurrency_hwm == 2

    def test_failure_cancels_queued_jobs_and_propagates(self):
        engine = AsyncEngine(concurrency=1)

        def job(i):
            if i == 0:
                raise ValueError("job 0 failed")
            time.sleep(0.2)
            return i

        with pytest.raises(ValueError, match="job 0 failed"):
            engine.map_jobs(job, [0, 1, 2])
        assert engine.metrics.jobs_cancelled >= 1
        # The engine stays usable after a failed batch.
        assert engine.map_jobs(lambda i: i + 1, [1, 2]) == [2, 3]

    def test_invalid_concurrency_rejected(self):
        with pytest.raises(ValueError):
            AsyncEngine(concurrency=0)

    def test_amap_jobs_runs_on_caller_loop(self):
        engine = AsyncEngine(concurrency=2)

        async def fan_out():
            return await engine.amap_jobs(lambda i: i * 10, [1, 2, 3])

        assert asyncio.run(fan_out()) == [10, 20, 30]


class TestAsyncEngineRounds:
    def test_round_metrics_surface_in_report(self):
        config = SherlockConfig(rounds=2, seed=0)
        report = repro.run("App-7", config, engine="async:4")
        assert report.metrics.engine_concurrency_hwm >= 1
        assert report.metrics.engine_jobs_cancelled == 0
        assert report.metrics.engine_await_s > 0.0
        assert "engine:" in report.metrics.describe()

    def test_arun_matches_sync_run(self):
        config = SherlockConfig(rounds=2, seed=0)
        baseline = repro.run("App-7", config)
        report = asyncio.run(repro.arun("App-7", config))
        assert canonical(report) == canonical(baseline)

    def test_arun_with_memory_cache_replays_identically(self):
        config = SherlockConfig(rounds=2, seed=0)
        cache = TraceCache()

        async def twice():
            cold = await repro.arun("App-7", config, cache=cache)
            warm = await repro.arun("App-7", config, cache=cache)
            return cold, warm

        cold, warm = asyncio.run(twice())
        assert canonical(cold) == canonical(warm)
        assert warm.metrics.cache_hits == 2
        assert warm.metrics.engine_concurrency_hwm == 0  # nothing ran


# -- runtime lifecycle -------------------------------------------------------


class TestRuntimeLifecycle:
    def test_close_is_idempotent(self):
        rt = ExecutionRuntime(engine="async:2")
        rt.close()
        rt.close()
        assert rt.closed

    def test_closed_runtime_rejects_work(self):
        rt = ExecutionRuntime()
        rt.close()
        with pytest.raises(RuntimeError, match="closed"):
            rt.map_jobs(lambda x: x, [1])
        with pytest.raises(RuntimeError, match="closed"):
            rt.observe_round(
                repro.get_application("App-5"), SherlockConfig(), 0
            )

    def test_engine_close_is_idempotent(self):
        for engine in (SerialEngine(), ProcessEngine(2), AsyncEngine(2)):
            engine.close()
            engine.close()

    def test_interrupt_tears_runtime_down(self):
        rt = ExecutionRuntime()

        def interrupt(_):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            rt.map_jobs(interrupt, [1])
        assert rt.closed

    def test_ordinary_exception_leaves_runtime_open(self):
        rt = ExecutionRuntime()

        def boom(_):
            raise ValueError("job failed")

        with pytest.raises(ValueError):
            rt.map_jobs(boom, [1])
        assert not rt.closed
        assert rt.map_jobs(lambda x: x * 2, [3]) == [6]
        rt.close()

    def test_runtime_reports_engine_name_in_outcome(self):
        config = SherlockConfig(rounds=1, seed=0)
        app = repro.get_application("App-5")
        with ExecutionRuntime(engine="async:2") as rt:
            outcome = rt.observe_round(app, config, 0)
        assert outcome.engine == "async"
        assert outcome.concurrency_hwm >= 1

    def test_cache_hit_skips_engine(self):
        config = SherlockConfig(rounds=1, seed=0)
        app = repro.get_application("App-5")
        cache = TraceCache()
        with ExecutionRuntime(engine="serial", cache=cache) as rt:
            rt.observe_round(app, config, 0)
            outcome = rt.observe_round(app, config, 0)
        assert outcome.cache_hit
        assert outcome.engine == "cache"
        assert outcome.concurrency_hwm == 0


class TestEngineAbstractInterface:
    def test_engine_cannot_be_instantiated(self):
        with pytest.raises(TypeError):
            Engine()

    def test_sync_facade_bridges_custom_async_engine(self):
        class EchoEngine(Engine):
            name = "echo"

            async def aexecute_round(self, app, config, round_index, plan):
                raise NotImplementedError

            async def amap_jobs(self, fn, payloads):
                await asyncio.sleep(0)
                return [fn(p) for p in payloads]

        engine = EchoEngine()
        # The inherited sync façade drives the async implementation.
        assert engine.map_jobs(lambda x: x + 1, [1, 2]) == [2, 3]
