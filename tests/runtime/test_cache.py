"""Unit tests for the content-addressed trace cache and its keying."""

import pytest

from repro.apps.registry import get_application
from repro.core import SherlockConfig
from repro.core.observer import Observer
from repro.runtime import (
    ExecutionRuntime,
    TraceCache,
    freeze_delay_plan,
    round_key,
    thaw_delay_plan,
)
from repro.runtime.cache import execution_from_dict, execution_to_dict
from repro.sim.kernel import DelaySpec
from repro.trace.optypes import OpRef, OpType


def _plan(name="C::m", duration=0.1):
    trigger = OpRef(name, OpType.ENTER)
    site = OpRef(name, OpType.EXIT)
    return {trigger: DelaySpec(duration=duration, site=site)}


def _key(**overrides):
    base = dict(
        app_id="App-2",
        seed=0,
        op_cost=0.002,
        max_steps=2_000_000,
        delay_plan=_plan(),
        round_index=1,
    )
    base.update(overrides)
    return round_key(**base)


class TestRoundKey:
    def test_stable_for_identical_inputs(self):
        assert _key() == _key()

    def test_plan_order_is_canonicalized(self):
        a = {**_plan("A::m"), **_plan("B::m")}
        b = {**_plan("B::m"), **_plan("A::m")}
        assert _key(delay_plan=a) == _key(delay_plan=b)

    @pytest.mark.parametrize(
        "change",
        [
            {"app_id": "App-3"},
            {"seed": 1},
            {"op_cost": 0.004},
            {"max_steps": 1000},
            {"round_index": 2},
            {"delay_plan": {}},
            {"delay_plan": _plan(duration=0.2)},
            {"delay_plan": _plan(name="Other::m")},
        ],
    )
    def test_any_trace_determining_change_misses(self, change):
        assert _key(**change) != _key()

    def test_freeze_thaw_round_trip(self):
        plan = {**_plan("A::m"), **_plan("B::m", duration=0.3)}
        assert thaw_delay_plan(freeze_delay_plan(plan)) == plan

    def test_bare_float_plans_freeze(self):
        trigger = OpRef("C::f", OpType.WRITE)
        frozen = freeze_delay_plan({trigger: 0.1})
        thawed = thaw_delay_plan(frozen)
        assert thawed[trigger].duration == pytest.approx(0.1)
        assert thawed[trigger].site == trigger


class TestTraceCache:
    def _one_round(self, app_id="App-5"):
        app = get_application(app_id)
        config = SherlockConfig(rounds=1, seed=0)
        return Observer(config).observe_round(app, 0, {})

    def test_memory_round_trip(self):
        cache = TraceCache()
        executions = self._one_round()
        assert cache.get("k") is None
        cache.put("k", executions)
        got = cache.get("k")
        assert got is not None
        assert [e.test_name for e in got] == [
            e.test_name for e in executions
        ]
        assert cache.stats() == {"hits": 1, "misses": 1, "memory_entries": 1}

    def test_lru_evicts_oldest(self):
        cache = TraceCache(memory_entries=2)
        executions = self._one_round()
        cache.put("a", executions)
        cache.put("b", executions)
        cache.put("c", executions)
        assert cache.get("a") is None  # evicted
        assert cache.get("b") is not None
        assert cache.get("c") is not None

    def test_disk_store_survives_new_instance(self, tmp_path):
        executions = self._one_round()
        TraceCache(tmp_path).put("k", executions)
        fresh = TraceCache(tmp_path)
        got = fresh.get("k")
        assert got is not None
        assert fresh.hits == 1
        original = executions[0]
        loaded = got[0]
        assert loaded.steps == original.steps
        assert loaded.log.events == original.log.events

    def test_execution_dict_round_trip_preserves_trace(self):
        for original in self._one_round("App-7"):
            loaded = execution_from_dict(execution_to_dict(original))
            assert loaded.test_name == original.test_name
            assert loaded.steps == original.steps
            assert loaded.error == original.error
            assert loaded.log.run_id == original.log.run_id
            assert loaded.log.events == original.log.events
            assert loaded.log.delays == original.log.delays
            # meta is excluded from TraceEvent equality; check explicitly.
            assert [e.meta for e in loaded.log.events] == [
                e.meta for e in original.log.events
            ]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            TraceCache(memory_entries=0)


class TestAliasing:
    """Regression: get/put used to share TestExecution/TraceLog objects
    with callers, so mutating a returned round (the trace sanitizer does)
    corrupted the cached copy for every later hit."""

    def _one_round(self, app_id="App-5"):
        app = get_application(app_id)
        config = SherlockConfig(rounds=1, seed=0)
        return Observer(config).observe_round(app, 0, {})

    def test_mutating_get_result_does_not_corrupt_cache(self):
        cache = TraceCache()
        cache.put("k", self._one_round())
        first = cache.get("k")
        baseline = [execution_to_dict(e) for e in first]
        # Mutate everything a consumer could touch (events are frozen,
        # but the lists holding them are not).
        first[0].log.events.pop()
        first[0].log.events.reverse()
        del first[1:]
        second = cache.get("k")
        assert [execution_to_dict(e) for e in second] == baseline

    def test_mutating_put_input_does_not_corrupt_cache(self):
        cache = TraceCache()
        executions = self._one_round()
        baseline = [execution_to_dict(e) for e in executions]
        cache.put("k", executions)
        executions[0].log.events.clear()
        executions[0].error = "mutated"
        got = cache.get("k")
        assert [execution_to_dict(e) for e in got] == baseline

    def test_distinct_objects_per_hit(self):
        cache = TraceCache()
        cache.put("k", self._one_round())
        a = cache.get("k")
        b = cache.get("k")
        assert a[0] is not b[0]
        assert a[0].log is not b[0].log
        assert a[0].log.events[0] is not b[0].log.events[0]


class TestRuntimeCacheIntegration:
    def test_changed_seed_misses_warm_cache(self):
        cache = TraceCache()
        app = get_application("App-5")
        runtime = ExecutionRuntime(cache=cache)
        cfg = SherlockConfig(rounds=1, seed=0)
        runtime.observe_round(app, cfg, 0, {})
        assert cache.misses == 1
        outcome = runtime.observe_round(app, cfg, 0, {})
        assert outcome.cache_hit and cache.hits == 1
        reseeded = runtime.observe_round(
            app, cfg.without(seed=7), 0, {}
        )
        assert not reseeded.cache_hit
        assert cache.misses == 2

    def test_changed_delay_plan_misses_warm_cache(self):
        cache = TraceCache()
        app = get_application("App-5")
        runtime = ExecutionRuntime(cache=cache)
        cfg = SherlockConfig(rounds=1, seed=0)
        runtime.observe_round(app, cfg, 1, {})
        outcome = runtime.observe_round(app, cfg, 1, _plan())
        assert not outcome.cache_hit
        assert cache.misses == 2

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ExecutionRuntime(workers=0)
