"""Pool-failure semantics of the execution engine.

Regression for the pool-poisoning bug: a *task-level* exception (one
payload raising) used to be swallowed by the serial fallback and mark the
pool broken for the rest of the process.  Only pool-level failures
(``BrokenProcessPool``, ``OSError``) may trigger the fallback; task
exceptions propagate and the pool stays healthy.
"""

import pytest

from repro.runtime import ExecutionRuntime


def _double(x):
    return 2 * x


def _boom(x):
    if x == 2:
        raise ValueError(f"payload {x} failed")
    return x


class _ExplodingPool:
    """Stands in for a pool whose workers died (pool-level failure)."""

    def map(self, fn, payloads):
        raise OSError("worker processes are gone")

    def shutdown(self, wait=True):
        pass


class TestTaskExceptions:
    def test_task_exception_propagates(self):
        with ExecutionRuntime(workers=2) as runtime:
            with pytest.raises(ValueError, match="payload 2 failed"):
                runtime.map_jobs(_boom, [1, 2, 3])

    def test_task_exception_does_not_poison_pool(self):
        with ExecutionRuntime(workers=2) as runtime:
            with pytest.raises(ValueError):
                runtime.map_jobs(_boom, [1, 2, 3])
            assert not runtime.engine._pool_broken
            # The pool still serves parallel work afterwards.
            assert runtime.map_jobs(_double, [1, 2, 3]) == [2, 4, 6]

    def test_task_exception_emits_no_warning(self):
        import warnings

        with ExecutionRuntime(workers=2) as runtime:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                with pytest.raises(ValueError):
                    runtime.map_jobs(_boom, [1, 2, 3])


class TestPoolFailures:
    def test_pool_failure_falls_back_to_serial(self):
        runtime = ExecutionRuntime(workers=2)
        runtime.engine._pool = _ExplodingPool()
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = runtime.map_jobs(_double, [1, 2, 3])
        assert result == [2, 4, 6]
        assert runtime.engine._pool_broken
        runtime.close()

    def test_broken_pool_stays_serial(self):
        runtime = ExecutionRuntime(workers=2)
        runtime.engine._pool = _ExplodingPool()
        with pytest.warns(RuntimeWarning):
            runtime.map_jobs(_double, [1, 2])
        # No new pool is spun up once broken.
        assert runtime.map_jobs(_double, [4, 5]) == [8, 10]
        assert runtime.engine._pool is None
        runtime.close()
