"""Tests for the unified ``repro.run()`` entry point, the ``run_sherlock``
deprecation, config construction-time validation, and report metrics."""

import json
import warnings

import pytest

import repro
from repro.api import coerce_cache
from repro.apps.registry import get_application
from repro.core import SherlockConfig, run_sherlock
from repro.runtime import RunMetrics, TraceCache
from repro.runtime.cache import DEFAULT_CACHE_DIR


class TestRunEntryPoint:
    def test_accepts_app_id_string(self):
        report = repro.run("App-5", SherlockConfig(rounds=1, seed=0))
        assert report.app_id == "App-5"
        assert len(report.rounds) == 1

    def test_accepts_application_instance(self):
        app = get_application("App-5")
        report = repro.run(app, SherlockConfig(rounds=1, seed=0))
        assert report.app_id == "App-5"

    def test_unknown_app_id_raises(self):
        with pytest.raises(KeyError):
            repro.run("App-99")

    def test_rounds_override_reflected_in_report_config(self):
        report = repro.run(
            "App-5", SherlockConfig(rounds=3, seed=0), rounds=1
        )
        assert len(report.rounds) == 1
        assert report.config.rounds == 1

    def test_sherlock_rounds_override_reflected_in_report_config(self):
        app = get_application("App-5")
        sherlock = repro.Sherlock(app, SherlockConfig(rounds=3, seed=0))
        report = sherlock.run(rounds=2)
        assert len(report.rounds) == 2
        assert report.config.rounds == 2
        assert sherlock.config.rounds == 3  # caller's config untouched

    def test_coerce_cache_variants(self, tmp_path):
        assert coerce_cache(None) is None
        assert coerce_cache(False) is None
        assert coerce_cache(True).path == DEFAULT_CACHE_DIR
        assert coerce_cache(tmp_path).path == str(tmp_path)
        cache = TraceCache()
        assert coerce_cache(cache) is cache

    def test_coerce_cache_memory_is_lru_only(self):
        cache = coerce_cache("memory")
        assert isinstance(cache, TraceCache)
        assert cache.path is None


class TestRunSherlockDeprecation:
    def test_emits_future_warning_with_removal_note(self):
        app = get_application("App-5")
        with pytest.warns(FutureWarning, match="removed in repro 2.0"):
            report = run_sherlock(app, SherlockConfig(rounds=1, seed=0))
        assert report.app_id == "App-5"

    def test_emits_exactly_one_warning(self):
        app = get_application("App-5")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_sherlock(app, SherlockConfig(rounds=1, seed=0))
        futures = [
            w for w in caught
            if issubclass(w.category, FutureWarning)
        ]
        assert len(futures) == 1
        assert "repro.run" in str(futures[0].message)

    def test_returns_same_report_as_repro_run(self):
        from repro.core.serialize import report_to_dict

        config = SherlockConfig(rounds=2, seed=0)
        with pytest.warns(FutureWarning):
            legacy = run_sherlock(get_application("App-5"), config)
        modern = repro.run("App-5", config)
        assert json.dumps(
            report_to_dict(legacy), sort_keys=True
        ) == json.dumps(report_to_dict(modern), sort_keys=True)


class TestConfigConstructionValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"near": 0.0},
            {"window_cap": 0},
            {"lam": -1.0},
            {"threshold": 1.5},
            {"rounds": 0},
            {"delay": -0.1},
        ],
    )
    def test_invalid_fields_fail_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            SherlockConfig(**kwargs)

    def test_without_revalidates(self):
        config = SherlockConfig()
        with pytest.raises(ValueError):
            config.without(rounds=0)


class TestReportMetrics:
    @pytest.fixture(scope="class")
    def report(self):
        return repro.run("App-7", SherlockConfig(rounds=2, seed=0))

    def test_each_round_carries_metrics(self, report):
        for round_result in report.rounds:
            assert isinstance(round_result.metrics, RunMetrics)
            assert round_result.metrics.tests_executed > 0

    def test_aggregate_sums_rounds(self, report):
        total = report.metrics
        assert total.tests_executed == sum(
            r.metrics.tests_executed for r in report.rounds
        )
        assert total.events_observed == sum(
            r.metrics.events_observed for r in report.rounds
        )
        assert total.cache_misses == len(report.rounds)
        assert total.lp_variables == max(
            r.metrics.lp_variables for r in report.rounds
        )
        assert total.total_s > 0.0

    def test_describe_mentions_cache_and_phases(self, report):
        text = report.metrics.describe()
        assert "cache:" in text and "phases:" in text and "lp:" in text

    def test_report_describe_computes_stats_once(self, report, monkeypatch):
        calls = {"n": 0}
        real_stats = report.store.stats

        def counting_stats():
            calls["n"] += 1
            return real_stats()

        monkeypatch.setattr(report.store, "stats", counting_stats)
        text = report.describe()
        assert "App-7" in text
        assert calls["n"] == 1
