"""Determinism guarantee of the execution runtime.

Serial cold runs, process-pool runs, async-engine runs, and warm-cache
replays must serialize byte-identically: the runtime may change *how
fast* traces are produced, never *what* is inferred.
"""

import json

import pytest

import repro
from repro.core import SherlockConfig
from repro.core.serialize import report_to_dict
from repro.runtime import ExecutionRuntime, TraceCache

APPS = ["App-2", "App-5", "App-7", "App-9", "App-10"]


def canonical(report) -> str:
    return json.dumps(report_to_dict(report), sort_keys=True)


@pytest.fixture(scope="module")
def serial_baselines():
    config = SherlockConfig(rounds=2, seed=0)
    return {
        app_id: canonical(repro.run(app_id, config)) for app_id in APPS
    }


@pytest.mark.parametrize("app_id", APPS)
def test_parallel_matches_serial(app_id, serial_baselines):
    config = SherlockConfig(rounds=2, seed=0)
    report = repro.run(app_id, config, engine="process:4")
    assert canonical(report) == serial_baselines[app_id]


@pytest.mark.parametrize("app_id", APPS)
def test_async_engine_matches_serial(app_id, serial_baselines):
    config = SherlockConfig(rounds=2, seed=0)
    report = repro.run(app_id, config, engine="async:4")
    assert canonical(report) == serial_baselines[app_id]


@pytest.mark.parametrize("app_id", APPS)
def test_warm_cache_matches_serial(app_id, serial_baselines):
    config = SherlockConfig(rounds=2, seed=0)
    cache = TraceCache()
    cold = repro.run(app_id, config, cache=cache)
    warm = repro.run(app_id, config, cache=cache)
    assert canonical(cold) == serial_baselines[app_id]
    assert canonical(warm) == serial_baselines[app_id]
    assert warm.metrics.cache_hits == 2  # both rounds replayed
    assert warm.metrics.cache_misses == 0


@pytest.mark.parametrize("app_id", APPS)
def test_disk_cache_matches_serial(app_id, serial_baselines, tmp_path):
    """A fresh cache instance on the same directory (second process)."""
    config = SherlockConfig(rounds=2, seed=0)
    repro.run(app_id, config, cache=TraceCache(tmp_path))
    warm = repro.run(app_id, config, cache=TraceCache(tmp_path))
    assert canonical(warm) == serial_baselines[app_id]
    assert warm.metrics.cache_hits == 2


def test_parallel_and_cached_compose(serial_baselines):
    """workers>1 with a shared cache: cold parallel then warm replay."""
    config = SherlockConfig(rounds=2, seed=0)
    cache = TraceCache()
    with ExecutionRuntime(workers=4, cache=cache) as runtime:
        cold = repro.run("App-7", config, engine=runtime)
        warm = repro.run("App-7", config, engine=runtime)
    assert canonical(cold) == serial_baselines["App-7"]
    assert canonical(warm) == serial_baselines["App-7"]
    assert warm.metrics.cache_hits == 2
