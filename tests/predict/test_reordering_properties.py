"""Property tests for witness reorderings over generated traces.

Hypothesis generates small multi-threaded traces mixing plain and
volatile field accesses (volatile writes release, volatile reads
acquire — the channel-pairing machinery the closure is built on).  For
every predicted conflicting pair, the constructed witness must:

* be a (sub-)permutation of the original events — an injective mapping
  back to source events with identical content;
* preserve per-thread program order, as a program-order-closed prefix
  of each thread's original sequence;
* pair each acquire with the same release (and each post-publish access
  with the same static publish) as the source trace;
* end with the predicted pair as its final two, conflicting, events.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predict import (
    SyncPreservingClosure,
    WITNESS_OF,
    build_witness,
    sync_pairings,
    validate_witness,
)
from repro.racedet import HappensBeforeSpec
from repro.trace.events import TraceEvent
from repro.trace.log import TraceLog
from repro.trace.optypes import OpType

VOLATILE = "Gen.Obj::flag"
PLAIN = ("Gen.Obj::data", "Gen.Obj::count")

SPEC = HappensBeforeSpec(name="gen", volatile_fields={VOLATILE})

#: One trace step: (thread, field, is_write, address choice).
_step = st.tuples(
    st.integers(min_value=1, max_value=3),
    st.sampled_from((VOLATILE,) + PLAIN),
    st.booleans(),
    st.integers(min_value=0, max_value=1),
)

traces = st.lists(_step, min_size=2, max_size=28)


def _build_log(steps):
    log = TraceLog(run_id=0)
    local = {}
    for i, (tid, name, is_write, addr) in enumerate(steps):
        local[tid] = local.get(tid, 0.0) + 0.25
        log.append(TraceEvent(
            timestamp=(i + 1) * 0.5,
            thread_id=tid,
            optype=OpType.WRITE if is_write else OpType.READ,
            name=name,
            address=1000 + addr,
            local_time=local[tid],
        ))
    return log


def _predicted_witnesses(steps):
    """All (log, a, b, witness) for predicted pairs of a generated log."""
    log = _build_log(steps)
    closure = SyncPreservingClosure(log, SPEC)
    out = []
    events = log.memory_events()
    for j in range(len(events)):
        for i in range(j):
            a, b = events[i], events[j]
            if not a.conflicts_with(b):
                continue
            ideal = closure.predicts(a.seq, b.seq)
            if ideal is None:
                continue
            witness = build_witness(
                log, SPEC, closure, a.seq, b.seq, ideal
            )
            if witness is not None:
                out.append((log, a.seq, b.seq, witness))
    return out


@settings(max_examples=60, deadline=None, derandomize=True)
@given(traces)
def test_witness_is_injective_subpermutation(steps):
    for log, _, _, witness in _predicted_witnesses(steps):
        origins = [e.meta[WITNESS_OF] for e in witness.events]
        assert len(set(origins)) == len(origins)
        for event, origin in zip(witness.events, origins):
            source = log[origin]
            assert (
                event.thread_id, event.optype, event.name, event.address
            ) == (
                source.thread_id, source.optype, source.name,
                source.address,
            )


@settings(max_examples=60, deadline=None, derandomize=True)
@given(traces)
def test_witness_preserves_program_order(steps):
    for log, _, _, witness in _predicted_witnesses(steps):
        kept = {}
        for event in witness.events:
            kept.setdefault(event.thread_id, []).append(
                event.meta[WITNESS_OF]
            )
        for tid, seqs in kept.items():
            original = [
                e.seq for e in log.events if e.thread_id == tid
            ]
            # A program-order-closed prefix, in order: the witness keeps
            # exactly the first len(seqs) events of the thread.
            assert seqs == original[: len(seqs)]


@settings(max_examples=60, deadline=None, derandomize=True)
@given(traces)
def test_witness_keeps_source_sync_pairings(steps):
    for log, _, _, witness in _predicted_witnesses(steps):
        seq_of = {id(e): e.meta[WITNESS_OF] for e in witness.events}
        original = sync_pairings(log.events, SPEC)
        reordered = sync_pairings(witness.events, SPEC, seq_of=seq_of)
        for acquire, release in reordered.acquires.items():
            assert original.acquires[acquire] == release
        for access, publish in reordered.statics.items():
            assert original.statics[access] == publish


@settings(max_examples=60, deadline=None, derandomize=True)
@given(traces)
def test_witness_ends_with_the_racy_pair_and_validates(steps):
    for log, a_seq, b_seq, witness in _predicted_witnesses(steps):
        assert len(witness) >= 2
        tail = witness.events[-2:]
        assert {e.meta[WITNESS_OF] for e in tail} == {a_seq, b_seq}
        assert tail[0].conflicts_with(tail[1])
        assert validate_witness(log, witness, SPEC, a_seq, b_seq) == []
