"""Differential soundness suite: predictive ⊇ FastTrack, valid witnesses.

On every benchmark app's golden seed-0 traces, under the same
happens-before spec:

* the predictive detector's race set is a superset of FastTrack's
  first-race reports (the §5.4-sound subset FastTrack is counted on);
* every predicted race ships a witness reordering that passes the
  ``TraceSanitizer`` and preserves the source trace's sync pairings;
* the whole analysis is deterministic — byte-stable across two runs
  (addresses renumbered by first appearance, as heap object ids are
  process-dependent).
"""

import json

import pytest

from repro.apps.registry import app_ids, family_app_ids, get_application
from repro.core import Sherlock, SherlockConfig
from repro.predict import PredictiveDetector, predict_app, validate_witness
from repro.racedet import analyze_run, manual_spec, sherlock_spec
from repro.sim.runner import RunOptions, run_application

#: The full lockdown corpus: 8 paper apps + the grown family tier.
ALL_APPS = app_ids() + family_app_ids()


def _analyses(app, spec, seed=0):
    executions = run_application(
        app, RunOptions(seed=seed, run_id=0)
    )
    detector = PredictiveDetector(spec)
    return [(ex, detector.analyze(ex.log)) for ex in executions]


@pytest.fixture(scope="module")
def sherlock_specs():
    """Inferred specs for the CI smoke apps (one pipeline run each)."""
    specs = {}
    for app_id in ("App-2", "App-7"):
        app = get_application(app_id)
        report = Sherlock(app, SherlockConfig(rounds=3, seed=0)).run()
        specs[app_id] = sherlock_spec(report.final)
    return specs


@pytest.mark.parametrize("app_id", ALL_APPS)
def test_predictive_superset_of_fasttrack_manual(app_id):
    app = get_application(app_id)
    spec = manual_spec(app)
    for execution, analysis in _analyses(app, spec):
        assert analysis.invalid_witnesses == 0
        first = analyze_run(execution.log, spec).first
        if first is not None:
            assert first.key() in analysis.keys(), (
                f"{app_id}/{execution.test_name}: FastTrack race "
                f"{first.key()} not predicted"
            )


@pytest.mark.parametrize("app_id", ALL_APPS)
def test_witnesses_sanitize_with_identical_pairings(app_id):
    app = get_application(app_id)
    spec = manual_spec(app)
    for execution, analysis in _analyses(app, spec):
        for race in analysis.races:
            assert race.validated
            assert race.witness is not None
            problems = validate_witness(
                execution.log, race.witness, spec,
                race.a_seq, race.b_seq,
            )
            assert problems == [], (app_id, execution.test_name)


@pytest.mark.parametrize("app_id", ["App-2", "App-7"])
def test_predictive_superset_under_sherlock_spec(app_id, sherlock_specs):
    """Same invariants with the *inferred* sync set (SherLock_pr)."""
    app = get_application(app_id)
    spec = sherlock_specs[app_id]
    for execution, analysis in _analyses(app, spec):
        assert analysis.invalid_witnesses == 0
        first = analyze_run(execution.log, spec).first
        if first is not None:
            assert first.key() in analysis.keys()
        for race in analysis.races:
            assert validate_witness(
                execution.log, race.witness, spec,
                race.a_seq, race.b_seq,
            ) == []


def _canonical(analyses):
    """Process-stable serialization of a full predictive analysis."""
    payload = []
    for execution, analysis in analyses:
        renumber = {}

        def addr(a):
            return renumber.setdefault(a, len(renumber))

        races = []
        for r in analysis.races:
            races.append({
                "field": r.field_name,
                "addr": addr(r.address),
                "kinds": [r.first_access, r.second_access],
                "threads": [r.first_thread, r.second_thread],
                "pair": [r.a_seq, r.b_seq],
                "witness": [
                    [
                        e.thread_id, e.optype.value, e.name,
                        addr(e.address), e.meta["witness_of"],
                    ]
                    for e in r.witness.events
                ],
            })
        payload.append({
            "test": execution.test_name,
            "races": races,
            "counters": [
                analysis.pairs_checked,
                analysis.pairs_predicted,
                analysis.unwitnessed_pairs,
                analysis.invalid_witnesses,
            ],
        })
    return json.dumps(payload, sort_keys=True)


@pytest.mark.parametrize("app_id", ALL_APPS)
def test_analysis_byte_stable_across_two_runs(app_id):
    app = get_application(app_id)
    spec = manual_spec(app)
    first = _canonical(_analyses(app, spec))
    second = _canonical(_analyses(app, spec))
    assert first == second


def test_predicts_planted_race_fasttrack_misses():
    """Acceptance case: on App-5's seed-0 schedule the detector
    predicts planted racy fields whose first-race reports FastTrack
    misses in the observed order (they only race under a reordering)."""
    app = get_application("App-5")
    report = predict_app(app, manual_spec(app), seed=0)
    racy = set(app.ground_truth.racy_fields)
    planted_missed = set(report.predicted_only_fields) & racy
    assert "Radical.Messaging.MessageBroker/Stats::dispatchCount" in (
        planted_missed
    )
    assert report.superset_ok


def test_prediction_report_shape():
    app = get_application("App-7")
    report = predict_app(app, manual_spec(app), seed=0)
    assert report.spec_name == "Manual_pr"
    assert len(report.ft_first) == len(app.tests)
    assert report.per_test.keys() == {t.qname for t in app.tests}
    for race in report.races:
        assert race.test_name in report.per_test
        # The racy pair is the witness's final two events.
        tail = {e.meta["witness_of"] for e in race.witness.events[-2:]}
        assert tail == {race.a_seq, race.b_seq}
