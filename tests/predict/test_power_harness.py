"""Detection-power harness tests: jobs, sweeps, tables, serialization."""

import json

import pytest

from repro.predict import PowerConfig, run_power_sweep
from repro.predict.harness import run_predict_job
from repro.runtime import ExecutionRuntime


def test_same_job_reproduces_row():
    job = ("App-7", 0, 2, "random", "manual")
    first = run_predict_job(job)
    second = run_predict_job(job)

    def stable(row):
        blob = row.to_dict()
        blob.pop("elapsed_s")  # wall-clock, the one unstable field
        return blob

    assert stable(first) == stable(second)
    assert first.spec_name == "Manual_pr"
    assert first.superset_ok
    assert first.invalid_witnesses == 0


def test_sherlock_job_uses_inferred_spec():
    row = run_predict_job(("App-7", 0, 2, "random", "sherlock"))
    assert row.spec_name == "SherLock_pr"
    assert row.superset_ok


def test_sweep_table_and_json(capsys):
    config = PowerConfig(
        app_ids=["app7_statsd"], schedules=1, rounds=2, specs=("manual",)
    )
    report = run_power_sweep(config)
    # The sweep resolves a copy; the caller's config keeps its spelling.
    assert config.app_ids == ["app7_statsd"]
    assert config.resolved().app_ids == ["App-7"]
    assert len(report.rows) == 1
    assert report.all_supersets_ok
    assert report.total_invalid_witnesses == 0

    rendered = report.table().render()
    assert "Detection power" in rendered
    assert "Manual_pr" in rendered

    blob = json.loads(json.dumps(report.to_dict()))
    assert blob["totals"]["jobs"] == 1
    assert blob["totals"]["supersets_ok"] is True
    assert blob["rows"][0]["app_id"] == "App-7"


def test_sweep_on_shared_runtime():
    config = PowerConfig(
        app_ids=["App-7"], schedules=2, rounds=1, specs=("manual",)
    )
    with ExecutionRuntime(workers=1) as rt:
        report = run_power_sweep(config, runtime=rt)
    assert [r.seed for r in report.rows] == [0, 1]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"schedules": 0},
        {"rounds": 0},
        {"app_ids": []},
        {"specs": ("lockset",)},
        {"policy": "roundrobin"},
    ],
)
def test_config_rejects_bad_values(kwargs):
    base = {"app_ids": ["App-7"]}
    base.update(kwargs)
    with pytest.raises((ValueError, KeyError)):
        PowerConfig(**base).validate()
