"""Directed schedule-search conversion tests.

The acceptance spine: on App-1, App-5, and App-7, the predicted-only
races pinned by the PR 7 differential suite — planted racy fields
FastTrack's first-race report missed in the observed order — are
converted into observed FastTrack races by directed schedules (kernel
seed 0, default spec), under the rolling soundness horizon.  Plus the
cascade's unit semantics, the candidate-false-prediction signal, and
engine determinism of the conversion jobs (serial == process == async).
"""

import json

import pytest

from repro.api import convert_predictions
from repro.apps.registry import get_application
from repro.predict.convert import (
    ConvertConfig,
    DirectedRun,
    cascade_conversions,
    run_baseline_job,
    run_convert_job,
    run_conversion,
)
from repro.runtime import ExecutionRuntime

#: The planted races the PR 7 differential suite pins as predicted-only
#: on the three acceptance apps (observed seed-0 schedule, Manual_pr).
PLANTED_TARGETS = {
    "App-1": ["Microsoft.ApplicationInsights.Metrics."
              "MetricManager::aggregatedValue"],
    "App-5": ["Radical.Messaging.MessageBroker/Stats::dispatchCount",
              "Radical.Messaging.MessageBroker/Stats::dispatchTag"],
    "App-7": ["Statsd.Metrics::statsSent"],
}


class TestCascade:
    def run_seq(self, *sequences, seed=0):
        return DirectedRun(
            app_id="App-X",
            spec_kind="manual",
            directed_seed=seed,
            policy_spec=f"directed:{seed}|T::t",
            sequences=[(f"test{i}", list(s)) for i, s in
                       enumerate(sequences)],
        )

    def test_target_after_established_masker_converts(self):
        verdicts = cascade_conversions(
            established=["M::m"],
            targets=["T::t"],
            runs=[self.run_seq(["M::m", "T::t"])],
        )
        (v,) = verdicts
        assert v.converted
        assert v.directed_seed == 0
        assert v.test_name == "test0"

    def test_unestablished_report_blocks_the_horizon(self):
        verdicts = cascade_conversions(
            established=["M::m"],
            targets=["T::t"],
            runs=[self.run_seq(["M::m", "U::u", "T::t"])],
        )
        (v,) = verdicts
        assert not v.converted

    def test_cascade_extends_the_horizon(self):
        # t1 converts first and establishes its field, unblocking t2 —
        # regardless of run order (fixpoint iteration).
        verdicts = cascade_conversions(
            established=["M::m"],
            targets=["T::t1", "T::t2"],
            runs=[
                self.run_seq(["M::m", "T::t1", "T::t2"], seed=1),
                self.run_seq(["M::m", "T::t1"], seed=0),
            ],
        )
        assert all(v.converted for v in verdicts)

    def test_never_witnessed_target_is_flagged(self):
        verdicts = cascade_conversions(
            established=["M::m"],
            targets=["T::never"],
            runs=[self.run_seq(["M::m"])],
        )
        (v,) = verdicts
        assert not v.converted
        assert v.directed_seed is None

    def test_kind_annotated_targets_match_bare_fields(self):
        verdicts = cascade_conversions(
            established=[],
            targets=["T::t[read/write]"],
            runs=[self.run_seq(["T::t"])],
        )
        (v,) = verdicts
        assert v.converted
        assert v.target == "T::t[read/write]"
        assert v.field_name == "T::t"


@pytest.mark.parametrize("app_id", sorted(PLANTED_TARGETS))
def test_planted_predicted_only_races_convert(app_id):
    """Acceptance: every planted race the observed order masked is
    converted by directed schedules (kernel seed 0, default spec)."""
    report = convert_predictions(app_id, schedules=2)
    (row,) = report.rows
    assert row.spec_name == "Manual_pr"
    converted = {v.field_name for v in row.converted}
    for field_name in PLANTED_TARGETS[app_id]:
        assert field_name in converted
    # Evidence points at a real directed run.
    by_field = {v.field_name: v for v in row.verdicts}
    for field_name in PLANTED_TARGETS[app_id]:
        v = by_field[field_name]
        assert v.policy_spec.startswith("directed:")
        assert v.test_name
    assert report.planted_unconverted() == []
    assert report.exit_code(require_planted=True) == 0


#: Family-tier planted races (App-9/App-10): each must be either
#: FastTrack-first-detected in the observed order ("established") or
#: converted by a directed schedule.
FAMILY_PLANTED = {
    "App-9": ["iPOPO.Framework.EventDispatcher::listenerRef",
              "iPOPO.Framework.EventDispatcher::callbackLog"],
    "App-10": ["PyPipeline.Stages.StageRunner/Meter::registrationLog",
               "PyPipeline.Stages.StageRunner/Meter::drainCount"],
}


@pytest.mark.parametrize("app_id", sorted(FAMILY_PLANTED))
def test_family_planted_races_all_accounted(app_id):
    """Acceptance: App-9/App-10 pass the planted gate — every planted
    race is FastTrack-detected or converted (exit 0 under
    ``--require-planted``)."""
    report = convert_predictions(app_id, schedules=3)
    assert report.planted_unconverted() == []
    assert report.exit_code(require_planted=True) == 0
    (row,) = report.rows
    accounted = {v.field_name for v in row.converted}
    accounted.update(row.established)
    for field_name in FAMILY_PLANTED[app_id]:
        assert field_name in accounted, f"{app_id}: {field_name}"


def test_app10_masked_drain_race_converts_by_directed_schedule():
    """The App-10 split-phase drain race is report-order masked at seed
    0: it converts (with directed evidence), it is not established."""
    report = convert_predictions("App-10", schedules=3)
    (row,) = report.rows
    masked = "PyPipeline.Stages.StageRunner/Meter::drainCount"
    assert masked not in row.established
    by_field = {v.field_name: v for v in row.verdicts}
    verdict = by_field[masked]
    assert verdict.converted
    assert verdict.policy_spec.startswith("directed:")
    assert verdict.test_name


def test_impossible_target_is_flagged_candidate_false_prediction():
    """The falsification arm: a target no schedule can ever witness
    (the field never races) must survive N directed schedules
    unconverted and be flagged."""
    config = ConvertConfig(
        app_ids=["App-7"],
        schedules=2,
        targets={"App-7": ["Statsd.Metrics::statsSent",
                           "Statsd.Ghost::neverRaces"]},
    )
    report = run_conversion(config)
    (row,) = report.rows
    flagged = {v.target for v in row.flagged}
    assert flagged == {"Statsd.Ghost::neverRaces"}
    converted = {v.field_name for v in row.converted}
    assert "Statsd.Metrics::statsSent" in converted
    # The ghost is not planted ground truth, so the planted gate passes.
    assert report.exit_code(require_planted=True) == 0


def test_conversion_report_counts_and_serialization():
    report = convert_predictions("App-5", schedules=2)
    assert report.total_targets > 0
    assert report.total_converted + report.total_flagged == (
        report.total_targets
    )
    assert report.metrics.convert_targets == report.total_targets
    assert report.metrics.convert_converted == report.total_converted
    assert report.metrics.convert_runs == 2
    blob = json.loads(json.dumps(report.to_dict()))
    assert blob["totals"]["targets"] == report.total_targets
    assert blob["rows"][0]["app_id"] == "App-5"
    table = report.table().render()
    assert "App-5" in table and "Manual_pr" in table
    assert "RESULT" in report.summary()


def test_explicit_campaign_targets_override_baseline():
    target = "Radical.Messaging.MessageBroker/Stats::dispatchCount[read/write]"
    config = ConvertConfig(
        app_ids=["app5_radical"],  # alias: resolved() must handle it
        schedules=1,
        targets={"app5_radical": [target]},
    )
    report = run_conversion(config)
    (row,) = report.rows
    assert [v.target for v in row.verdicts] == [target]
    # A lone target cannot extend the horizon past its unvalidated
    # maskers, so it stays flagged — which is itself evidence the
    # explicit (single-target) list replaced the 10-field baseline set.
    assert not row.verdicts[0].converted
    assert [v.target for v in row.flagged] == [target]
    # The caller's config was not mutated by resolution.
    assert config.app_ids == ["app5_radical"]
    assert report.config.app_ids == ["App-5"]


class TestConvertConfigValidate:
    def test_validate_is_read_only(self):
        config = ConvertConfig(app_ids=["app5_radical"])
        config.validate()
        assert config.app_ids == ["app5_radical"]

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ConvertConfig(app_ids=[]).validate()
        with pytest.raises(ValueError):
            ConvertConfig(app_ids=["App-5"], schedules=0).validate()
        with pytest.raises(ValueError):
            ConvertConfig(
                app_ids=["App-5"], specs=("bogus",)
            ).validate()
        with pytest.raises(ValueError):
            ConvertConfig(
                app_ids=["App-5"],
                targets={"App-5": ["A::x[jump]"]},
            ).validate()

    def test_rejects_empty_target_spec(self):
        """An empty target string is a spec error, not a no-op."""
        with pytest.raises(ValueError, match="empty directed target"):
            ConvertConfig(
                app_ids=["App-5"], targets={"App-5": [""]}
            ).validate()

    def test_rejects_unknown_app_in_targets_or_ids(self):
        with pytest.raises(KeyError):
            ConvertConfig(app_ids=["App-99"]).validate()

    def test_empty_target_list_falls_back_to_baseline(self):
        """An explicit-but-empty target list is valid config: the app
        derives its targets from the baseline (not an error)."""
        config = ConvertConfig(
            app_ids=["App-5"], targets={"App-5": []}
        )
        config.validate()  # no raise
        resolved = config.resolved()
        assert resolved.targets == {"App-5": []}


class TestDirectedDeterminism:
    """Same directed spec + targets ⇒ byte-identical trace digests,
    across repeated runs and across every engine."""

    JOB = ("App-7", 0, 1, 3, "manual", "random",
           ("Statsd.Metrics::statsSent",))

    def test_convert_job_reproduces(self):
        first = run_convert_job(self.JOB)
        second = run_convert_job(self.JOB)
        assert first.sequences == second.sequences
        assert first.policy_spec == second.policy_spec

    def test_distinct_directed_seeds_explore_distinct_schedules(self):
        app = get_application("App-7")
        base = run_baseline_job(("App-7", 0, 3, "random", "manual"))
        targets = tuple(base.predicted_only)
        specs = {
            run_convert_job(
                ("App-7", 0, dseed, 3, "manual", "random", targets)
            ).policy_spec
            for dseed in range(3)
        }
        assert len(specs) == 3
        assert len(app.tests) > 0  # sanity: the app actually ran

    @staticmethod
    def _stable(report):
        rows = []
        for row in report.rows:
            blob = row.to_dict()
            blob.pop("elapsed_s")  # wall clock differs across engines
            rows.append(blob)
        return rows

    @pytest.mark.parametrize("engine", ["serial", "process:2", "async:2"])
    def test_serial_process_async_agree(self, engine):
        config = ConvertConfig(
            app_ids=["App-5"], schedules=2, engine=engine
        )
        with ExecutionRuntime(engine=engine) as rt:
            report = run_conversion(config, runtime=rt)
        reference = run_conversion(
            ConvertConfig(app_ids=["App-5"], schedules=2)
        )
        assert self._stable(report) == self._stable(reference)
