"""Determinism audit.

Two layers: (1) a source scan asserting the trace-determining packages
(``sim``, ``core``, ``trace``) never reach for ambient entropy — the
module-level ``random`` functions, wall-clock time, or platform hash
seeds; (2) an end-to-end check that running the full pipeline twice
in-process yields byte-identical serialized reports for every app.
"""

import json
import re
from pathlib import Path

import pytest

import repro
from repro.apps.registry import app_ids
from repro.core import SherlockConfig
from repro.core.serialize import report_to_dict

SRC = Path(repro.__file__).resolve().parent

#: Packages whose code determines trace content (and so report bytes).
TRACE_DETERMINING = ("sim", "core", "trace")

#: (pattern, why it is banned).  ``random.Random(seed)`` is fine — only
#: draws from the shared module-level RNG (or ambient clocks) are not.
FORBIDDEN = [
    (
        re.compile(
            r"\brandom\.(random|randint|randrange|choice|choices|"
            r"shuffle|sample|uniform|seed|getrandbits)\("
        ),
        "module-level random draw (seed-independent)",
    ),
    (re.compile(r"\btime\.time\("), "wall-clock read"),
    (re.compile(r"\bdatetime\.(now|utcnow|today)\("), "wall-clock read"),
    (re.compile(r"\bos\.urandom\("), "OS entropy"),
    (re.compile(r"\buuid\.uuid[14]\("), "random/host-derived id"),
    (
        re.compile(r"(?<![.\w])hash\("),
        "builtin hash() is salted per process (PYTHONHASHSEED)",
    ),
]


def trace_determining_sources():
    for package in TRACE_DETERMINING:
        yield from sorted((SRC / package).rglob("*.py"))


def test_no_ambient_entropy_in_trace_determining_code():
    offenders = []
    for path in trace_determining_sources():
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for pattern, why in FORBIDDEN:
                if pattern.search(line):
                    offenders.append(
                        f"{path.relative_to(SRC.parent)}:{lineno}: "
                        f"{why}: {line.strip()}"
                    )
    assert not offenders, (
        "trace-determining code reached for ambient entropy — traces "
        "would differ across runs/processes:\n" + "\n".join(offenders)
    )


def test_audit_actually_scans_files():
    assert len(list(trace_determining_sources())) >= 10


@pytest.mark.parametrize("app_id", app_ids())
def test_double_run_reports_are_byte_identical(app_id):
    """Same (app, config) twice in one process -> identical report bytes.

    Catches leaked module state, dict-order nondeterminism, and anything
    the source scan's pattern list misses.
    """

    def run_once():
        report = repro.run(app_id, SherlockConfig(rounds=2, seed=0))
        return json.dumps(report_to_dict(report), sort_keys=True)

    assert run_once() == run_once()
