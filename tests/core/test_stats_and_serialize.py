"""Unit tests for the observation store and report serialization."""

import io

import pytest

from repro.core import ObservationStore, Sherlock, SherlockConfig
from repro.core.serialize import (
    dump_report,
    load_syncs,
    report_to_dict,
    sync_from_dict,
)
from repro.core.stats import MethodStats
from repro.core.windows import Window
from repro.trace import (
    OpType,
    Role,
    SyncOp,
    TraceEvent,
    TraceLog,
    begin_of,
    end_of,
    read_of,
    write_of,
)


def ev(t, tid, op, name, addr=1, **meta):
    return TraceEvent(
        timestamp=t, thread_id=tid, optype=op, name=name, address=addr,
        meta=meta,
    )


class TestMethodStats:
    def test_cv_requires_two_samples(self):
        stats = MethodStats()
        stats.add(1.0)
        assert stats.coefficient_of_variation() is None
        stats.add(3.0)
        assert stats.coefficient_of_variation() == pytest.approx(0.5)

    def test_cv_zero_mean_is_none(self):
        stats = MethodStats()
        stats.add(0.0)
        stats.add(0.0)
        assert stats.coefficient_of_variation() is None


class TestObservationStore:
    def _window(self, racy=False):
        w = Window(
            pair_key=(write_of("C::x"), read_of("C::x")),
            run_id=0, a_time=0.0, b_time=1.0, racy=racy,
        )
        w.release_side[write_of("C::x")] = 2
        w.acquire_side[read_of("C::x")] = 1
        return w

    def test_ingest_accumulates(self):
        store = ObservationStore()
        store.ingest_run(TraceLog(), [self._window()])
        store.ingest_run(TraceLog(), [self._window()])
        assert len(store.windows) == 2
        assert store.runs_ingested == 2

    def test_racy_pairs_tracked(self):
        store = ObservationStore()
        store.ingest_run(TraceLog(), [self._window(racy=True)])
        assert store.racy_pairs == {(write_of("C::x"), read_of("C::x"))}

    def test_library_names_from_events(self):
        store = ObservationStore()
        log = TraceLog()
        log.append(ev(0.1, 1, OpType.ENTER, "Lib::Api", library=True))
        log.append(ev(0.2, 1, OpType.WRITE, "C::x"))
        store.ingest_run(log, [])
        assert store.library_names == {"Lib::Api"}
        assert len(store.observed_ops) == 2

    def test_average_occurrence_per_side(self):
        store = ObservationStore()
        store.ingest_run(TraceLog(), [self._window(), self._window()])
        rel_avg, acq_avg = store.average_occurrence()
        assert rel_avg[write_of("C::x")] == pytest.approx(2.0)
        assert acq_avg[read_of("C::x")] == pytest.approx(1.0)

    def test_duration_samples_from_log(self):
        store = ObservationStore()
        log = TraceLog()
        log.append(ev(0.1, 1, OpType.ENTER, "C::m"))
        log.append(ev(0.3, 1, OpType.EXIT, "C::m"))
        log.append(ev(0.4, 1, OpType.ENTER, "C::m"))
        log.append(ev(0.5, 1, OpType.EXIT, "C::m"))
        store.ingest_run(log, [])
        assert store.method_stats["C::m"].count == 2
        pcts = store.cv_percentiles()
        assert "C::m" in pcts

    def test_cv_percentiles_skip_single_samples(self):
        store = ObservationStore()
        log = TraceLog()
        log.append(ev(0.1, 1, OpType.ENTER, "C::once"))
        log.append(ev(0.2, 1, OpType.EXIT, "C::once"))
        store.ingest_run(log, [])
        assert "C::once" not in store.cv_percentiles()

    def test_repr_and_stats(self):
        store = ObservationStore()
        assert store.stats()["windows"] == 0
        assert "ObservationStore" in repr(store)


class TestSerialization:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.apps.registry import get_application

        app = get_application("App-2")
        return Sherlock(app, SherlockConfig(rounds=2, seed=0)).run()

    def test_report_round_trip(self, report):
        buffer = io.StringIO()
        dump_report(report, buffer)
        buffer.seek(0)
        syncs = load_syncs(buffer)
        assert syncs == set(report.final.syncs)

    def test_report_dict_shape(self, report):
        data = report_to_dict(report)
        assert data["app_id"] == "App-2"
        assert data["config"]["lam"] == pytest.approx(0.2)
        assert len(data["rounds"]) == 2
        assert data["rounds"][-1]["inference"]["syncs"]

    def test_sync_from_dict(self):
        sync = SyncOp(begin_of("C::m"), Role.ACQUIRE)
        round_tripped = sync_from_dict(
            {"name": "C::m", "op": "enter", "role": "acq"}
        )
        assert round_tripped == sync
