"""Property-based tests for window extraction invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.windows import WindowExtractor
from repro.fuzz import TraceSanitizer
from repro.sim.runner import TestExecution as Execution
from repro.trace import OpType, TraceEvent, TraceLog

FIELDS = ["C::a", "C::b"]


@st.composite
def random_logs(draw):
    """Random two-thread memory traces."""
    n = draw(st.integers(2, 30))
    log = TraceLog()
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(0.001, 0.05))
        log.append(
            TraceEvent(
                timestamp=t,
                thread_id=draw(st.integers(1, 2)),
                optype=draw(st.sampled_from([OpType.READ, OpType.WRITE])),
                name=draw(st.sampled_from(FIELDS)),
                address=draw(st.integers(1, 2)),
            )
        )
    return log


@given(random_logs(), st.floats(0.01, 2.0))
@settings(max_examples=60, deadline=None)
def test_windows_respect_near(log, near):
    windows = WindowExtractor(near=near, window_cap=100).extract(log)
    for window in windows:
        assert window.b_time - window.a_time <= near + 1e-9


@given(random_logs(), st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_window_cap_respected(log, cap):
    windows = WindowExtractor(near=10.0, window_cap=cap).extract(log)
    counts = {}
    for window in windows:
        counts[window.pair_key] = counts.get(window.pair_key, 0) + 1
    assert all(count <= cap for count in counts.values())


@given(random_logs())
@settings(max_examples=60, deadline=None)
def test_pair_keys_are_genuine_conflicts(log):
    windows = WindowExtractor(near=10.0, window_cap=100).extract(log)
    for window in windows:
        a_ref, b_ref = window.pair_key
        assert a_ref.name == b_ref.name  # same field
        assert OpType.WRITE in (a_ref.optype, b_ref.optype)
        assert window.a_time < window.b_time


@given(random_logs())
@settings(max_examples=60, deadline=None)
def test_occurrence_counts_positive(log):
    windows = WindowExtractor(near=10.0, window_cap=100).extract(log)
    for window in windows:
        assert all(c >= 1 for c in window.release_side.values())
        assert all(c >= 1 for c in window.acquire_side.values())
        # Endpoints always join their sides.
        a_ref, b_ref = window.pair_key
        assert a_ref in window.release_side
        assert b_ref in window.acquire_side


@given(random_logs(), st.floats(0.01, 2.0))
@settings(max_examples=60, deadline=None)
def test_sanitizer_cross_validates_extractor(log, near):
    """The fuzz sanitizer re-derives window endpoints independently of
    the extractor's pairing logic; on arbitrary well-formed traces the
    two must agree — every extracted window is a genuine conflict, and
    no other invariant fires either."""
    sanitizer = TraceSanitizer(near=near, window_cap=100)
    execution = Execution("T::prop", log, steps=len(log))
    assert sanitizer.sanitize(execution) == []


@given(random_logs())
@settings(max_examples=60, deadline=None)
def test_racy_windows_lack_capable_side(log):
    windows = WindowExtractor(near=10.0, window_cap=100).extract(log)
    for window in windows:
        rel_capable = any(
            r.optype in (OpType.WRITE, OpType.EXIT)
            for r in window.release_side
        )
        acq_capable = any(
            r.optype in (OpType.READ, OpType.ENTER)
            for r in window.acquire_side
        )
        assert window.racy == (not (rel_capable and acq_capable))
