"""Unit tests for the LP encoder (Eq. 1–8) and solver interpretation,
using hand-built observation stores."""


from repro.core import ObservationStore, SherlockConfig, infer
from repro.core.encoder import build_model
from repro.core.windows import Window
from repro.trace import (
    OpRef,
    OpType,
    Role,
    SyncOp,
    TraceLog,
    begin_of,
    end_of,
    read_of,
    write_of,
)


def make_window(rel_refs, acq_refs, pair=None, run_id=0, racy=False):
    window = Window(
        pair_key=pair or (write_of("C::x"), read_of("C::x")),
        run_id=run_id,
        a_time=0.0,
        b_time=1.0,
        racy=racy,
    )
    for ref in rel_refs:
        window.release_side[ref] = window.release_side.get(ref, 0) + 1
    for ref in acq_refs:
        window.acquire_side[ref] = window.acquire_side.get(ref, 0) + 1
    return window


def make_store(windows):
    store = ObservationStore()
    store.ingest_run(TraceLog(), windows)
    return store


REL = end_of("Lib::Release")
ACQ = begin_of("Lib::Acquire")
CONFIG = SherlockConfig()


def test_single_shared_cover_is_inferred():
    # One release/acquire pair covering three windows must be inferred.
    windows = [make_window([REL], [ACQ]) for _ in range(3)]
    result = infer(make_store(windows), CONFIG)
    assert SyncOp(REL, Role.RELEASE) in result.releases
    assert SyncOp(ACQ, Role.ACQUIRE) in result.acquires


def test_one_window_noise_not_worth_inferring():
    # A variable covering a single window costs more than paying the
    # window's penalty (the sparsity regularizer at work).
    noise = end_of("Lib::Noise")
    windows = [make_window([REL], [ACQ]) for _ in range(3)]
    windows.append(
        make_window([noise], [ACQ], pair=(write_of("C::y"), read_of("C::y")))
    )
    result = infer(make_store(windows), CONFIG)
    assert SyncOp(noise, Role.RELEASE) not in result.releases


def test_racy_windows_removed_from_coverage():
    racy_pair = (write_of("C::r"), write_of("C::r"))
    windows = [
        make_window([write_of("C::r")], [], pair=racy_pair, racy=True)
    ]
    store = make_store(windows)
    assert store.coverage_windows() == []
    result = infer(store, CONFIG)
    assert not result.syncs


def test_race_removal_ablation_restores_pair_windows():
    racy_pair = (write_of("C::r"), write_of("C::r"))
    # One racy window marks the pair; a healthy window of the same pair
    # would normally be removed too.
    windows = [
        make_window([write_of("C::r")], [], pair=racy_pair, racy=True),
        make_window([REL], [ACQ], pair=racy_pair),
    ]
    store = make_store(windows)
    assert len(store.coverage_windows(race_removal=True)) == 0
    assert len(store.coverage_windows(race_removal=False)) == 1


def test_without_mostly_protected_nothing_inferred():
    windows = [make_window([REL], [ACQ]) for _ in range(5)]
    config = CONFIG.without(hyp_mostly_protected=False)
    result = infer(make_store(windows), config)
    assert not result.syncs


def test_rare_hypothesis_penalizes_frequent_ops():
    # A popular op occurring 30x per window loses to a once-per-window op.
    popular = read_of("C::hot")
    windows = []
    for _ in range(4):
        w = make_window([REL], [ACQ])
        w.acquire_side[popular] = 30
        windows.append(w)
    result = infer(make_store(windows), CONFIG)
    assert SyncOp(ACQ, Role.ACQUIRE) in result.acquires
    assert SyncOp(popular, Role.ACQUIRE) not in result.acquires


def test_single_role_constraint_forbids_double_role():
    # A library API demanded as both begin-acquire and end-release can
    # only win one role.
    api = "Lib::Upgrade"
    store = ObservationStore()
    log = TraceLog()
    windows = [
        make_window([end_of(api)], [begin_of(api)]) for _ in range(4)
    ]
    store.ingest_run(log, windows)
    store.library_names.add(api)
    result = infer(store, CONFIG)
    both = (
        SyncOp(begin_of(api), Role.ACQUIRE) in result.acquires
        and SyncOp(end_of(api), Role.RELEASE) in result.releases
    )
    assert not both

    # Without the constraint, both roles are allowed.
    result2 = infer(store, CONFIG.without(prop_single_role=False))
    both2 = (
        SyncOp(begin_of(api), Role.ACQUIRE) in result2.acquires
        and SyncOp(end_of(api), Role.RELEASE) in result2.releases
    )
    assert both2


def test_capability_ablation_lets_reads_release():
    # With Read-Acq & Write-Rel removed, a read may serve as a release.
    only_read = read_of("C::odd")
    windows = [make_window([only_read], [ACQ]) for _ in range(4)]
    strict = infer(make_store(windows), CONFIG)
    assert SyncOp(only_read, Role.RELEASE) not in strict.releases
    loose = infer(
        make_store(windows), CONFIG.without(prop_read_acq_write_rel=False)
    )
    assert SyncOp(only_read, Role.RELEASE) in loose.releases


def test_model_stats_exposed():
    windows = [make_window([REL], [ACQ])]
    result = infer(make_store(windows), CONFIG)
    assert result.n_variables >= 2
    assert result.backend in ("scipy", "revised-simplex", "dense-tableau")
    assert "InferenceResult" in repr(result)


def test_empty_store_gives_empty_inference():
    result = infer(ObservationStore(), CONFIG)
    assert not result.syncs
    assert result.backend == "empty"


def test_build_model_reports_registry():
    windows = [make_window([REL, write_of("C::x")], [ACQ, read_of("C::x")])]
    model, registry = build_model(make_store(windows), CONFIG)
    assert len(registry) == 4
    assert model.stats()["variables"] >= 4
