"""Integration tests for the pipeline's feedback toggles (Figure 4)."""

import pytest

from repro.apps.registry import get_application
from repro.core import Sherlock, SherlockConfig


@pytest.fixture(scope="module")
def app7_full():
    app = get_application("App-7")
    report = Sherlock(app, SherlockConfig(rounds=3, seed=0)).run()
    return app, report


def test_delays_injected_after_first_round(app7_full):
    _, report = app7_full
    assert report.rounds[0].delays_injected == 0  # no plan on round 1
    assert any(r.delays_injected > 0 for r in report.rounds[1:])


def test_no_delay_toggle_never_injects():
    app = get_application("App-7")
    config = SherlockConfig(rounds=2, seed=0, enable_delay_injection=False)
    report = Sherlock(app, config).run()
    assert all(r.delays_injected == 0 for r in report.rounds)


def test_accumulation_grows_windows(app7_full):
    _, report = app7_full
    totals = [r.windows_total for r in report.rounds]
    assert totals == sorted(totals) and totals[-1] > totals[0]


def test_no_accumulation_keeps_windows_per_round():
    app = get_application("App-7")
    config = SherlockConfig(rounds=2, seed=0, accumulate_across_runs=False)
    report = Sherlock(app, config).run()
    # Window counts don't monotonically accumulate across rounds.
    assert report.rounds[1].windows_total < (
        report.rounds[0].windows_total * 2
    )


def test_rounds_override_argument():
    app = get_application("App-2")
    report = Sherlock(app, SherlockConfig(rounds=3, seed=0)).run(rounds=1)
    assert len(report.rounds) == 1


def test_report_accessors(app7_full):
    _, report = app7_full
    assert report.final is report.rounds[-1].inference
    assert report.inferred == frozenset(report.final.syncs)
    assert len(report.inferred_by_round()) == 3
    assert "App-7" in report.describe()


def test_invalid_config_rejected_at_construction():
    app = get_application("App-2")
    with pytest.raises(ValueError):
        Sherlock(app, SherlockConfig(rounds=0))


def test_simplex_backend_end_to_end():
    """The from-scratch simplex can drive the whole pipeline."""
    app = get_application("App-2")
    config = SherlockConfig(rounds=1, seed=0, backend="simplex")
    report = Sherlock(app, config).run()
    gt = app.ground_truth
    correct = sum(1 for s in report.final.syncs if gt.is_true_sync(s))
    assert correct >= 3
