"""Unit tests for acquire/release window extraction and refinement."""


from repro.core.windows import WindowExtractor
from repro.trace import DelayInterval, OpRef, OpType, TraceEvent, TraceLog


def ev(t, tid, op, name, addr=1, **meta):
    return TraceEvent(
        timestamp=t, thread_id=tid, optype=op, name=name, address=addr,
        meta=meta,
    )


def build_log(events, delays=()):
    log = TraceLog(run_id=0)
    for e in sorted(events, key=lambda e: e.timestamp):
        log.append(e)
    for d in delays:
        log.add_delay(d)
    return log


W, R, EN, EX = OpType.WRITE, OpType.READ, OpType.ENTER, OpType.EXIT


def test_basic_conflicting_pair_forms_window():
    log = build_log([
        ev(0.10, 1, W, "C::x"),
        ev(0.12, 1, EX, "C::Release"),
        ev(0.15, 2, EN, "C::Acquire"),
        ev(0.20, 2, R, "C::x"),
    ])
    windows = WindowExtractor(near=1.0, window_cap=15).extract(log)
    assert len(windows) == 1
    w = windows[0]
    assert w.pair_key == (OpRef("C::x", W), OpRef("C::x", R))
    # Endpoints included: the write is a release candidate, the read an
    # acquire candidate.
    assert OpRef("C::x", W) in w.release_side
    assert OpRef("C::Release", EX) in w.release_side
    assert OpRef("C::x", R) in w.acquire_side
    assert OpRef("C::Acquire", EN) in w.acquire_side
    assert not w.racy


def test_same_thread_accesses_do_not_conflict():
    log = build_log([
        ev(0.1, 1, W, "C::x"),
        ev(0.2, 1, R, "C::x"),
    ])
    assert WindowExtractor(1.0, 15).extract(log) == []


def test_different_address_does_not_conflict():
    log = build_log([
        ev(0.1, 1, W, "C::x", addr=1),
        ev(0.2, 2, R, "C::x", addr=2),
    ])
    assert WindowExtractor(1.0, 15).extract(log) == []


def test_read_read_does_not_conflict():
    log = build_log([
        ev(0.1, 1, R, "C::x"),
        ev(0.2, 2, R, "C::x"),
    ])
    assert WindowExtractor(1.0, 15).extract(log) == []


def test_near_filter_excludes_distant_pairs():
    log = build_log([
        ev(0.1, 1, W, "C::x"),
        ev(5.0, 2, R, "C::x"),
    ])
    assert WindowExtractor(near=1.0, window_cap=15).extract(log) == []
    assert len(WindowExtractor(near=10.0, window_cap=15).extract(log)) == 1


def test_window_cap_limits_per_location_pair():
    events = []
    t = 0.0
    for i in range(40):
        events.append(ev(t, 1, W, "C::x"))
        events.append(ev(t + 0.001, 2, R, "C::x"))
        t += 0.01
    log = build_log(events)
    windows = WindowExtractor(near=0.005, window_cap=15).extract(log)
    assert len(windows) == 15


def test_write_write_with_empty_windows_is_racy():
    log = build_log([
        ev(0.1, 1, W, "C::x"),
        ev(0.2, 2, W, "C::x"),
    ])
    windows = WindowExtractor(1.0, 15).extract(log)
    assert len(windows) == 1
    # Release side has the write endpoint (capable) but the acquire side
    # only has a write — provably no acquire: a data race.
    assert windows[0].racy


def test_read_then_write_with_nothing_between_is_racy():
    log = build_log([
        ev(0.1, 1, R, "C::x"),
        ev(0.2, 2, W, "C::x"),
    ])
    windows = WindowExtractor(1.0, 15).extract(log)
    assert windows[0].racy


def test_write_then_read_flag_pair_is_not_racy():
    log = build_log([
        ev(0.1, 1, W, "C::flag"),
        ev(0.2, 2, R, "C::flag"),
    ])
    windows = WindowExtractor(1.0, 15).extract(log)
    assert not windows[0].racy


def test_unsafe_api_calls_form_conflicting_pairs():
    log = build_log([
        ev(0.1, 1, EN, "List::Add", addr=9, unsafe_api="write"),
        ev(0.11, 1, EX, "List::Add", addr=9, unsafe_api="write"),
        ev(0.2, 2, EN, "List::Contains", addr=9, unsafe_api="read"),
    ])
    windows = WindowExtractor(1.0, 15).extract(log)
    assert len(windows) == 1
    assert windows[0].pair_key[0].name == "List::Add"


def test_unsafe_api_list_can_be_disabled():
    log = build_log([
        ev(0.1, 1, EN, "List::Add", addr=9, unsafe_api="write"),
        ev(0.2, 2, EN, "List::Contains", addr=9, unsafe_api="read"),
    ])
    windows = WindowExtractor(
        1.0, 15, use_unsafe_api_list=False
    ).extract(log)
    assert windows == []


def test_occurrence_counts_per_window():
    log = build_log([
        ev(0.10, 1, W, "C::x"),
        ev(0.11, 1, EX, "C::Noise"),
        ev(0.12, 1, EX, "C::Noise"),
        ev(0.13, 1, EX, "C::Noise"),
        ev(0.20, 2, R, "C::x"),
    ])
    w = WindowExtractor(1.0, 15).extract(log)[0]
    assert w.release_side[OpRef("C::Noise", EX)] == 3
    assert w.release_side[OpRef("C::x", W)] == 1


def test_refinement_not_propagated_truncates_release_window():
    # T1: a=write x; TrueRel exits; Noise exits (delayed, no propagation);
    # T2: b=read x at a time *before* the delay would have ended.
    site = OpRef("C::Noise", EX)
    delay = DelayInterval(thread_id=1, start=0.14, end=0.24, site=site)
    log = build_log(
        [
            ev(0.10, 1, W, "C::x"),
            ev(0.12, 1, EX, "C::TrueRel"),
            ev(0.24, 1, EX, "C::Noise"),  # executed after paying delay
            ev(0.18, 2, R, "C::x"),       # b did not stall
        ],
        delays=[delay],
    )
    w = WindowExtractor(1.0, 15).extract(log)[0]
    assert w.refined
    assert site not in w.release_side
    assert OpRef("C::TrueRel", EX) in w.release_side
    assert OpRef("C::x", W) in w.release_side  # endpoint kept


def test_refinement_propagated_shrinks_acquire_window():
    # Delay before the true release propagates: b stalls with it.  The
    # acquire window shrinks to ops at/after the delay's end; completed
    # noise calls from before the delay are dropped.
    site = OpRef("C::TrueRel", EX)
    delay = DelayInterval(thread_id=1, start=0.12, end=0.22, site=site)
    log = build_log(
        [
            ev(0.110, 2, EN, "C::EarlyNoise"),
            ev(0.115, 2, EX, "C::EarlyNoise"),
            ev(0.10, 1, W, "C::x"),
            ev(0.22, 1, EX, "C::TrueRel"),
            ev(0.24, 2, EN, "C::Acquire"),
            ev(0.26, 2, R, "C::x"),
        ],
        delays=[delay],
    )
    w = WindowExtractor(1.0, 15).extract(log)[0]
    assert w.refined
    assert OpRef("C::EarlyNoise", EN) not in w.acquire_side
    assert OpRef("C::Acquire", EN) in w.acquire_side
    assert OpRef("C::x", R) in w.acquire_side


def test_refinement_propagated_recovers_blocked_call():
    # The call b's thread was blocked inside while the delay ran joins the
    # refined acquire window even though its ENTER precedes the release.
    site = OpRef("C::TrueRel", EX)
    delay = DelayInterval(thread_id=1, start=0.12, end=0.22, site=site)
    log = build_log(
        [
            ev(0.10, 1, W, "C::x"),
            ev(0.22, 1, EX, "C::TrueRel"),
            ev(0.11, 2, EN, "C::BlockingAcquire"),  # blocked across delay
            ev(0.24, 2, EX, "C::BlockingAcquire"),
            ev(0.26, 2, R, "C::x"),
        ],
        delays=[delay],
    )
    w = WindowExtractor(1.0, 15).extract(log)[0]
    assert w.refined
    assert OpRef("C::BlockingAcquire", EN) in w.acquire_side


def test_refinement_disabled_keeps_raw_windows():
    site = OpRef("C::Noise", EX)
    delay = DelayInterval(thread_id=1, start=0.14, end=0.24, site=site)
    log = build_log(
        [
            ev(0.10, 1, W, "C::x"),
            ev(0.24, 1, EX, "C::Noise"),
            ev(0.30, 2, R, "C::x"),
        ],
        delays=[delay],
    )
    w = WindowExtractor(1.0, 15, refine=False).extract(log)[0]
    assert not w.refined
    assert site in w.release_side


class TestWindowCapIsPerLog:
    """``window_cap`` scopes to one trace log (one test execution) — the
    documented, validated semantics (``SherlockConfig.window_cap_scope``).
    The counter resets for every log, so k logs may contribute up to
    ``k * cap`` windows for the same static location pair.  The
    incremental encoder's append-only window stream depends on this: a
    cross-log (cross-round) cap would retroactively drop windows that
    earlier rounds already encoded."""

    @staticmethod
    def _noisy_log(run_id, n_pairs=40):
        events = []
        t = 0.0
        for _ in range(n_pairs):
            events.append(ev(t, 1, W, "C::x"))
            events.append(ev(t + 0.001, 2, R, "C::x"))
            t += 0.01
        log = build_log(events)
        log.run_id = run_id
        return log

    def test_each_log_contributes_up_to_cap(self):
        extractor = WindowExtractor(near=0.005, window_cap=15)
        first = extractor.extract(self._noisy_log(0))
        second = extractor.extract(self._noisy_log(1))
        # The second log is NOT throttled by the first log's windows.
        assert len(first) == 15
        assert len(second) == 15

    def test_store_accumulates_cap_per_log(self):
        from repro.core.stats import ObservationStore

        extractor = WindowExtractor(near=0.005, window_cap=15)
        store = ObservationStore()
        for run_id in range(3):
            log = self._noisy_log(run_id)
            store.ingest_run(log, extractor.extract(log))
        assert len(store.windows) == 3 * 15

    def test_cap_still_binds_within_one_log(self):
        extractor = WindowExtractor(near=0.005, window_cap=7)
        assert len(extractor.extract(self._noisy_log(0, n_pairs=40))) == 7

    def test_indexed_and_allpairs_share_the_per_log_scope(self):
        for indexed in (True, False):
            extractor = WindowExtractor(
                near=0.005, window_cap=15, indexed=indexed
            )
            assert len(extractor.extract(self._noisy_log(0))) == 15
            assert len(extractor.extract(self._noisy_log(1))) == 15
