"""Unit tests for SherlockConfig, the candidate registry, and the
delay-plan builder."""

import pytest

from repro.core import CandidateRegistry, SherlockConfig, TABLE5_ABLATIONS
from repro.core.perturber import build_delay_plan
from repro.core.solver import InferenceResult
from repro.lp import Model
from repro.sim.kernel import DelaySpec
from repro.trace import (
    OpRef,
    OpType,
    Role,
    SyncOp,
    begin_of,
    end_of,
    read_of,
    write_of,
)


class TestConfig:
    def test_defaults_match_paper(self):
        config = SherlockConfig()
        assert config.near == 1.0
        assert config.window_cap == 15
        assert config.lam == 0.2
        assert config.rare_coef == 0.1
        assert config.delay == 0.1
        assert config.rounds == 3

    def test_validate_accepts_defaults(self):
        SherlockConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("near", 0.0),
            ("window_cap", 0),
            ("lam", -1.0),
            ("threshold", 0.0),
            ("threshold", 1.5),
            ("rounds", 0),
            ("delay", -0.1),
        ],
    )
    def test_validate_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            SherlockConfig(**{field: value}).validate()

    def test_without_returns_modified_copy(self):
        base = SherlockConfig()
        changed = base.without(lam=5.0, rounds=1)
        assert changed.lam == 5.0 and changed.rounds == 1
        assert base.lam == 0.2 and base.rounds == 3

    def test_table5_ablations_complete(self):
        assert len(TABLE5_ABLATIONS) == 7
        assert TABLE5_ABLATIONS["SherLock"] == {}

    @pytest.mark.parametrize(
        "scope", ["per-round", "per-run", "global", "", "PER-LOG"]
    )
    def test_ambiguous_window_cap_scope_rejected(self, scope):
        """Only the documented per-log cap semantics is implementable
        without retroactively invalidating already-encoded windows; any
        other requested scope fails at construction, not mid-pipeline."""
        with pytest.raises(ValueError, match="window_cap_scope"):
            SherlockConfig(window_cap_scope=scope)

    def test_per_log_window_cap_scope_is_the_default(self):
        assert SherlockConfig().window_cap_scope == "per-log"

    @pytest.mark.parametrize(
        "backend",
        ["auto", "scipy", "highs", "simplex", "revised-simplex",
         "dense-tableau"],
    )
    def test_known_backends_validate(self, backend):
        assert SherlockConfig(backend=backend).backend == backend

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown LP backend"):
            SherlockConfig(backend="cplex")


class TestCandidateRegistry:
    def test_capability_enforced(self):
        registry = CandidateRegistry(Model())
        assert registry.var(read_of("C::f"), Role.RELEASE) is None
        assert registry.var(write_of("C::f"), Role.ACQUIRE) is None
        assert registry.var(begin_of("C::m"), Role.RELEASE) is None
        assert registry.var(end_of("C::m"), Role.ACQUIRE) is None
        assert registry.var(read_of("C::f"), Role.ACQUIRE) is not None

    def test_capability_ablation_allows_everything(self):
        registry = CandidateRegistry(Model(), enforce_capability=False)
        assert registry.var(read_of("C::f"), Role.RELEASE) is not None

    def test_variables_are_cached(self):
        registry = CandidateRegistry(Model())
        a = registry.var(read_of("C::f"), Role.ACQUIRE)
        b = registry.var(read_of("C::f"), Role.ACQUIRE)
        assert a is b
        assert len(registry) == 1

    def test_lookup_never_creates(self):
        registry = CandidateRegistry(Model())
        assert registry.lookup(read_of("C::f"), Role.ACQUIRE) is None
        registry.var(read_of("C::f"), Role.ACQUIRE)
        assert registry.lookup(read_of("C::f"), Role.ACQUIRE) is not None

    def test_side_helpers_filter_incapable(self):
        registry = CandidateRegistry(Model())
        refs = [read_of("C::f"), write_of("C::f"), begin_of("C::m"),
                end_of("C::m")]
        assert len(registry.release_vars(refs)) == 2  # write + end
        assert len(registry.acquire_vars(refs)) == 2  # read + begin

    def test_unit_bounds(self):
        registry = CandidateRegistry(Model())
        var = registry.var(read_of("C::f"), Role.ACQUIRE)
        assert var.lower == 0.0 and var.upper == 1.0


class TestDelayPlan:
    def _inference(self, *releases):
        result = InferenceResult()
        result.releases = set(releases)
        return result

    def test_method_release_triggers_at_call(self):
        inference = self._inference(SyncOp(end_of("C::m"), Role.RELEASE))
        plan = build_delay_plan(inference, SherlockConfig())
        trigger = OpRef("C::m", OpType.ENTER)
        assert trigger in plan
        spec = plan[trigger]
        assert isinstance(spec, DelaySpec)
        assert spec.site == end_of("C::m")
        assert spec.duration == pytest.approx(0.1)

    def test_write_release_triggers_at_write(self):
        inference = self._inference(SyncOp(write_of("C::f"), Role.RELEASE))
        plan = build_delay_plan(inference, SherlockConfig())
        assert OpRef("C::f", OpType.WRITE) in plan

    def test_disabled_injection_gives_empty_plan(self):
        inference = self._inference(SyncOp(write_of("C::f"), Role.RELEASE))
        config = SherlockConfig(enable_delay_injection=False)
        assert build_delay_plan(inference, config) == {}

    def test_zero_delay_gives_empty_plan(self):
        inference = self._inference(SyncOp(write_of("C::f"), Role.RELEASE))
        assert build_delay_plan(inference, SherlockConfig(delay=0.0)) == {}
