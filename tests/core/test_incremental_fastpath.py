"""Differential tests for the analysis fast path.

Two independent equivalence contracts:

* the incremental encoder (``SherlockConfig(incremental=True)``, the
  default) must serialize byte-identically to the rebuild-from-scratch
  escape hatch (``incremental=False``) over full multi-round runs, and
* the indexed window extractor must return exactly the windows (same
  order, same sides) as the historical all-pairs scan on arbitrary logs.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.registry import all_applications
from repro.core import SherlockConfig
from repro.core.encoder import IncrementalEncoder, build_model
from repro.core.pipeline import Sherlock
from repro.core.serialize import report_to_dict
from repro.core.stats import ObservationStore
from repro.core.windows import WindowExtractor
from repro.trace import OpType, TraceEvent, TraceLog

APP_IDS = [app.app_id for app in all_applications()]


def _canonical(report) -> str:
    return json.dumps(report_to_dict(report), sort_keys=True)


@pytest.mark.parametrize("app_id", APP_IDS)
def test_incremental_matches_rebuild_reports(app_id):
    """incremental=True and incremental=False serialize byte-identically
    over a full 3-round run — every round's objective, LP sizes, syncs
    and probabilities."""
    fast = Sherlock(
        _app(app_id), SherlockConfig(rounds=3, incremental=True)
    ).run()
    slow = Sherlock(
        _app(app_id), SherlockConfig(rounds=3, incremental=False)
    ).run()
    assert _canonical(fast) == _canonical(slow)


def _app(app_id):
    from repro.apps.registry import get_application

    return get_application(app_id)


def test_incremental_appends_instead_of_rebuilding():
    """After round 1 the encoder patches the model: subsequent rounds
    report delta sizes strictly below the full LP size."""
    report = Sherlock(
        _app(APP_IDS[-1]), SherlockConfig(rounds=3, incremental=True)
    ).run()
    last = report.rounds[-1].metrics
    assert last.lp_delta_variables < last.lp_variables
    assert last.lp_delta_constraints < last.lp_constraints


def test_incremental_encoder_model_equals_build_model():
    """Direct model-level check: encoding a growing store incrementally
    yields the same variables, constraints and objective as build_model
    on the final store."""
    config = SherlockConfig(rounds=2, incremental=True)
    logs = []
    Sherlock(
        _app(APP_IDS[0]),
        config,
        round_listener=lambda i, execs: logs.append(
            [e.log for e in execs]
        ),
    ).run()
    extractor = WindowExtractor(near=config.near, window_cap=config.window_cap)
    store = ObservationStore()
    encoder = IncrementalEncoder(config)
    for round_logs in logs:
        for log in round_logs:
            store.ingest_run(log, extractor.extract(log))
        model, _ = encoder.encode(store)
    reference, _ = build_model(store, config)
    assert [v.name for v in model.variables] == [
        v.name for v in reference.variables
    ]
    assert len(model.constraints) == len(reference.constraints)
    assert {v.name: c for v, c in model.objective.terms.items()} == {
        v.name: c for v, c in reference.objective.terms.items()
    }


FIELDS = ["C::a", "C::b", "D::x"]
METHODS = ["C::m", "D::n"]


@st.composite
def mixed_logs(draw):
    """Random multi-thread traces mixing memory accesses and calls."""
    n = draw(st.integers(2, 40))
    log = TraceLog()
    t = 0.0
    open_calls = {1: [], 2: [], 3: []}
    for _ in range(n):
        t += draw(st.floats(0.001, 0.05))
        tid = draw(st.integers(1, 3))
        kind = draw(st.integers(0, 3))
        if kind == 2:
            log.append(
                TraceEvent(
                    timestamp=t,
                    thread_id=tid,
                    optype=OpType.ENTER,
                    name=draw(st.sampled_from(METHODS)),
                    address=0,
                )
            )
            open_calls[tid].append(log.events[-1].name)
        elif kind == 3 and open_calls[tid]:
            log.append(
                TraceEvent(
                    timestamp=t,
                    thread_id=tid,
                    optype=OpType.EXIT,
                    name=open_calls[tid].pop(),
                    address=0,
                )
            )
        else:
            log.append(
                TraceEvent(
                    timestamp=t,
                    thread_id=tid,
                    optype=draw(
                        st.sampled_from([OpType.READ, OpType.WRITE])
                    ),
                    name=draw(st.sampled_from(FIELDS)),
                    address=draw(st.integers(1, 2)),
                )
            )
    return log


def _window_key(w):
    return (
        w.pair_key,
        w.a_time,
        w.b_time,
        w.racy,
        tuple(w.release_side.items()),
        tuple(w.acquire_side.items()),
    )


@given(mixed_logs(), st.floats(0.01, 2.0), st.integers(1, 8))
@settings(max_examples=80, deadline=None)
def test_indexed_extraction_equals_allpairs(log, near, cap):
    """The indexed fast path and the historical all-pairs scan must
    produce identical windows — same order, same sides (key order
    included, since downstream float identity depends on it)."""
    indexed = WindowExtractor(near=near, window_cap=cap, indexed=True)
    allpairs = WindowExtractor(near=near, window_cap=cap, indexed=False)
    wi = indexed.extract(log)
    wa = allpairs.extract(log)
    assert [_window_key(w) for w in wi] == [_window_key(w) for w in wa]


@given(mixed_logs(), st.floats(0.01, 1.0))
@settings(max_examples=40, deadline=None)
def test_indexed_extraction_equals_allpairs_with_refinement(log, near):
    indexed = WindowExtractor(
        near=near, window_cap=5, refine=True, indexed=True
    )
    allpairs = WindowExtractor(
        near=near, window_cap=5, refine=True, indexed=False
    )
    assert [_window_key(w) for w in indexed.extract(log)] == [
        _window_key(w) for w in allpairs.extract(log)
    ]
