"""End-to-end backend differential: full pipeline reports must not
depend on which built-in LP backend solved the rounds.

Extends ``test_incremental_fastpath.py``'s byte-identity pattern across
the *backend* axis: for every registered app, a full 3-round run under
``backend="simplex"`` (the sparse revised simplex) serializes
byte-identically to ``backend="dense-tableau"`` (the dense reference),
both with the incremental warm-start path on and with it off.  This
holds because the two built-ins run identical Bland pivot sequences and
share one basis-finalization routine, so they agree on every inferred
sync, every probability bit, and every downstream delay plan.

scipy (HiGHS) is held to the mathematically attainable oracle instead:
these LPs have *alternative optima*, and an external solver may
legitimately return a different optimal vertex (observed on App-1
round 0), after which the perturbation feedback loop diverges by design.
Round 0 always solves the identical LP on identical traces, so there the
objective must match to 1e-9 along with the LP dimensions.
"""

import json

import pytest

from repro.apps.registry import all_applications, get_application
from repro.core import SherlockConfig
from repro.core.pipeline import Sherlock
from repro.core.serialize import report_to_dict

APP_IDS = [app.app_id for app in all_applications()]


def _run(app_id: str, backend: str, incremental: bool, presolve: bool = True):
    config = SherlockConfig(
        rounds=3, backend=backend, incremental=incremental, presolve=presolve
    )
    return Sherlock(get_application(app_id), config).run()


def _canonical(report) -> str:
    return json.dumps(report_to_dict(report), sort_keys=True)


@pytest.mark.parametrize("app_id", APP_IDS)
def test_builtin_backends_byte_identical_reports(app_id):
    """revised vs dense-tableau: byte-identical 3-round reports, with
    warm-start on and off — and warm vs cold byte-identical too (the
    encoder's warm start is a pure fast path, not a semantic change)."""
    revised_warm = _canonical(_run(app_id, "simplex", True))
    dense_warm = _canonical(_run(app_id, "dense-tableau", True))
    assert revised_warm == dense_warm

    revised_cold = _canonical(_run(app_id, "simplex", False))
    dense_cold = _canonical(_run(app_id, "dense-tableau", False))
    assert revised_cold == dense_cold
    assert revised_warm == revised_cold


@pytest.mark.parametrize("app_id", APP_IDS)
def test_scipy_agrees_on_the_round_zero_lp(app_id):
    """Round 0 solves the same LP regardless of backend (no delays have
    been injected yet): scipy and the revised simplex must agree on its
    dimensions and optimal objective to 1e-9.  Later rounds are allowed
    to diverge — an alternative optimal vertex changes the delay plan."""
    scipy_report = _run(app_id, "scipy", True)
    revised_report = _run(app_id, "simplex", True)
    s0 = scipy_report.rounds[0].inference
    r0 = revised_report.rounds[0].inference
    assert s0.n_variables == r0.n_variables
    assert s0.n_constraints == r0.n_constraints
    assert r0.objective == pytest.approx(s0.objective, rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("app_id", APP_IDS)
def test_presolve_flag_byte_identical_below_gate(app_id):
    """``presolve=True`` vs ``presolve=False``: byte-identical 3-round
    reports on every registered app.  Paper-sized LPs sit far below the
    4096-real-column presolve gate, so the default-on flag must be the
    identity there — this is the regression lock on the gate itself."""
    on = _canonical(_run(app_id, "simplex", True, presolve=True))
    off = _canonical(_run(app_id, "simplex", True, presolve=False))
    assert on == off


def test_presolve_and_phase1_counters_flow_to_metrics():
    """The presolve / phase-1 counters flow from the solver through
    InferenceResult to RunMetrics: warm-started incremental rounds skip
    phase 1 entirely, the counters aggregate across rounds, and
    ``describe()`` surfaces them for ``--stats``."""
    report = Sherlock(
        get_application(APP_IDS[1]),
        SherlockConfig(rounds=3, backend="simplex"),
    ).run()
    metrics = report.metrics
    # Warm-started rounds (and paper-sized cold solves, whose crash
    # basis covers every row) do zero phase-1 work.
    assert metrics.lp_phase1_skipped >= 1
    assert metrics.lp_phase1_iterations >= 0
    # Below the gate presolve is the identity: no reductions, no time.
    assert metrics.lp_presolve_rows == 0
    assert metrics.lp_presolve_cols == 0
    described = metrics.describe()
    assert "presolve" in described
    assert "phase-1 skipped" in described


def test_revised_backend_reports_factorization_metrics():
    """The factorization counters flow from the LU all the way to
    RunMetrics (and stay zero for backends without a factorized basis)."""
    report = Sherlock(
        get_application(APP_IDS[1]),
        SherlockConfig(rounds=2, backend="simplex"),
    ).run()
    metrics = report.metrics
    assert metrics.lp_factorizations >= 1
    assert metrics.lp_refactorizations >= 0
    assert "factorizations" in metrics.describe()

    scipy_report = Sherlock(
        get_application(APP_IDS[1]),
        SherlockConfig(rounds=1, backend="scipy"),
    ).run()
    assert scipy_report.metrics.lp_factorizations == 0
