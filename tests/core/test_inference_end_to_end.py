"""End-to-end inference tests on small hand-built applications.

These are the crucial behavioural checks: given traces of a program using
a lock, a flag variable, or a fork edge, the full pipeline must infer the
right acquire/release operations with no prior knowledge.
"""


from repro.core import Sherlock, SherlockConfig
from repro.sim import (
    AppContext,
    AppInfo,
    Application,
    GroundTruth,
    KIND_API,
    KIND_VARIABLE,
    Method,
    UnitTest,
)
from repro.sim.primitives import Monitor, SystemThread, Task
from repro.trace import OpRef, OpType, Role, SyncOp, begin_of, end_of


def make_app(tests, name="Mini"):
    info = AppInfo("App-T", name, "0.1K", 1, len(tests))
    return Application(
        info=info,
        make_context=lambda rt: AppContext(),
        tests=tests,
        ground_truth=GroundTruth(),
    )


def config(rounds=2):
    return SherlockConfig(rounds=rounds, seed=1)


# ---------------------------------------------------------------------------
# Lock inference
# ---------------------------------------------------------------------------

def lock_test_body(rt, ctx):
    # A lock protecting several fields through *heterogeneous* critical
    # sections (different first/last field per code path) — the realistic
    # shape that lets the shared Monitor pair out-compete per-field flag
    # interpretations: only Enter/Exit appear in every window.
    lock = Monitor("m")
    shared = rt.new_object("Mini.Counter", value=0, total=0)

    def worker1(rt_, obj):
        for _ in range(3):
            yield from lock.enter(rt_)
            t = yield from rt_.read(shared, "total")
            yield from rt_.write(shared, "total", t + 1)
            v = yield from rt_.read(shared, "value")
            yield from rt_.write(shared, "value", v + 1)
            yield from lock.exit(rt_)
            pause = yield from rt_.rand()
            yield from rt_.sleep(0.05 + 0.05 * pause)

    def worker2(rt_, obj):
        yield from rt_.sleep(0.04)
        for _ in range(3):
            yield from lock.enter(rt_)
            v = yield from rt_.read(shared, "value")
            yield from rt_.write(shared, "value", v + 1)
            t = yield from rt_.read(shared, "total")
            yield from rt_.write(shared, "total", t + v)
            yield from lock.exit(rt_)
            pause = yield from rt_.rand()
            yield from rt_.sleep(0.05 + 0.05 * pause)

    t1 = SystemThread(Method("Mini::Worker1", worker1), name="w1")
    t2 = SystemThread(Method("Mini::Worker2", worker2), name="w2")
    yield from t1.start(rt)
    yield from t2.start(rt)
    yield from t1.join(rt)
    yield from t2.join(rt)


def test_infers_monitor_enter_exit():
    app = make_app([UnitTest("MiniTests::LockTest", lock_test_body)])
    report = Sherlock(app, config()).run()
    syncs = report.final.syncs
    assert SyncOp(
        begin_of("System.Threading.Monitor::Enter"), Role.ACQUIRE
    ) in syncs
    assert SyncOp(
        end_of("System.Threading.Monitor::Exit"), Role.RELEASE
    ) in syncs


# ---------------------------------------------------------------------------
# Flag-variable inference
# ---------------------------------------------------------------------------

def flag_test_body(rt, ctx):
    state = rt.new_object("Mini.State", ready=False, data=0)

    def producer(rt_, obj):
        yield from rt_.write(state, "data", 99)
        yield from rt_.write(state, "ready", True)

    def consumer(rt_, obj):
        while not (yield from rt_.read(state, "ready")):
            yield from rt_.sleep(0.01)
        value = yield from rt_.read(state, "data")
        assert value == 99

    tp = SystemThread(Method("Mini::Producer", producer), name="p")
    tc = SystemThread(Method("Mini::Consumer", consumer), name="c")
    yield from tp.start(rt)
    yield from tc.start(rt)
    yield from tp.join(rt)
    yield from tc.join(rt)


def test_infers_flag_variable_sync():
    app = make_app([UnitTest("MiniTests::FlagTest", flag_test_body)])
    report = Sherlock(app, config()).run()
    syncs = report.final.syncs
    assert SyncOp(
        OpRef("Mini.State::ready", OpType.WRITE), Role.RELEASE
    ) in syncs
    assert SyncOp(
        OpRef("Mini.State::ready", OpType.READ), Role.ACQUIRE
    ) in syncs
    # The protected data field must NOT be inferred as a sync.
    assert SyncOp(
        OpRef("Mini.State::data", OpType.WRITE), Role.RELEASE
    ) not in syncs


# ---------------------------------------------------------------------------
# Fork/join inference
# ---------------------------------------------------------------------------

def fork_test_body(rt, ctx):
    # The delegate touches several parent-initialized fields, so the fork
    # edge amortizes over many conflicting pairs (as in real task code).
    box = rt.new_object(
        "Mini.Box", input=0, scale=1, label="", output=0, trace=""
    )

    def child(rt_, obj):
        # Heterogeneous read order across invocations, as real delegates
        # with different code paths have.
        if box.fields["scale"] == 2:
            value = yield from rt_.read(box, "input")
            scale = yield from rt_.read(box, "scale")
            label = yield from rt_.read(box, "label")
            yield from rt_.write(box, "output", value * scale)
            yield from rt_.write(box, "trace", f"{label}:{value * scale}")
        else:
            label = yield from rt_.read(box, "label")
            scale = yield from rt_.read(box, "scale")
            value = yield from rt_.read(box, "input")
            yield from rt_.write(box, "trace", f"{label}:{value * scale}")
            yield from rt_.write(box, "output", value * scale)

    yield from rt.write(box, "input", 21)
    yield from rt.write(box, "scale", 2)
    yield from rt.write(box, "label", "run")
    # First round trip: join immediately, so Wait genuinely blocks.
    task = Task(Method("Mini::Child", child), name="child")
    yield from task.start(rt)
    yield from task.wait(rt)
    result = yield from rt.read(box, "output")
    note = yield from rt.read(box, "trace")
    assert result == 42
    assert note == "run:42"
    # Second round trip: do unrelated work first, so Wait returns at once.
    # The variance between the two is the Acquisition-Time-Varies signal.
    yield from rt.write(box, "input", 4)
    yield from rt.write(box, "scale", 10)
    yield from rt.write(box, "label", "again")
    task2 = Task(Method("Mini::Child", child), name="child2")
    yield from task2.start(rt)
    yield from rt.sleep(0.08)
    yield from task2.wait(rt)
    result = yield from rt.read(box, "output")
    assert result == 40


def test_infers_fork_join_edges():
    app = make_app([UnitTest("MiniTests::ForkTest", fork_test_body)])
    report = Sherlock(app, config()).run()
    syncs = report.final.syncs
    # Fork: end of Task::Start releases; begin of the delegate acquires.
    assert SyncOp(
        end_of("System.Threading.Tasks.Task::Start"), Role.RELEASE
    ) in syncs
    assert SyncOp(begin_of("Mini::Child"), Role.ACQUIRE) in syncs
    # Join: end of the delegate releases; begin of Task::Wait acquires.
    assert SyncOp(end_of("Mini::Child"), Role.RELEASE) in syncs
    assert SyncOp(
        begin_of("System.Threading.Tasks.Task::Wait"), Role.ACQUIRE
    ) in syncs


# ---------------------------------------------------------------------------
# Sparsity: protected data and noise are not inferred
# ---------------------------------------------------------------------------

def test_sparse_solution_few_syncs():
    app = make_app([
        UnitTest("MiniTests::LockTest", lock_test_body),
        UnitTest("MiniTests::FlagTest", flag_test_body),
        UnitTest("MiniTests::ForkTest", fork_test_body),
    ])
    report = Sherlock(app, config()).run()
    syncs = report.final.syncs
    # A handful of syncs, not dozens: the rare hypothesis keeps it sparse.
    assert 4 <= len(syncs) <= 18
    names = {s.op.name for s in syncs}
    assert "Mini.Counter::value" not in names
    assert "Mini.Box::output" not in names


def test_without_mostly_protected_nothing_inferred():
    app = make_app([UnitTest("MiniTests::LockTest", lock_test_body)])
    cfg = config().without(hyp_mostly_protected=False)
    report = Sherlock(app, cfg).run()
    assert report.final.syncs == set()


def test_rounds_accumulate_windows():
    app = make_app([UnitTest("MiniTests::LockTest", lock_test_body)])
    report = Sherlock(app, config(rounds=3)).run()
    counts = [r.windows_total for r in report.rounds]
    assert counts == sorted(counts)
    assert counts[-1] > counts[0]


def test_report_describe_mentions_app():
    app = make_app([UnitTest("MiniTests::FlagTest", flag_test_body)])
    report = Sherlock(app, config()).run()
    assert "App-T" in report.describe()
