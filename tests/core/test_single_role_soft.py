"""Tests for the soft Single-Role extension (paper §5.5 future work)."""


from repro.core import ObservationStore, SherlockConfig, infer
from repro.core.windows import Window
from repro.trace import Role, SyncOp, TraceLog, begin_of, end_of, read_of, write_of


def double_role_store(windows_per_role=4):
    """An API demanded as begin-acquire in some windows and end-release
    in others (UpgradeToWriteLock's shape)."""
    api = "Lib::Upgrade"
    store = ObservationStore()
    windows = []
    for i in range(windows_per_role):
        w = Window(
            pair_key=(write_of("C::x"), read_of("C::x")),
            run_id=0, a_time=0.0, b_time=1.0,
        )
        w.release_side[end_of(api)] = 1
        w.acquire_side[read_of("C::x")] = 1
        windows.append(w)
        w2 = Window(
            pair_key=(write_of("C::y"), read_of("C::y")),
            run_id=0, a_time=0.0, b_time=1.0,
        )
        w2.release_side[write_of("C::y")] = 1
        w2.acquire_side[begin_of(api)] = 1
        windows.append(w2)
    store.ingest_run(TraceLog(), windows)
    store.library_names.add(api)
    return store, api


def test_hard_single_role_forbids_both():
    store, api = double_role_store()
    result = infer(store, SherlockConfig())
    both = (
        SyncOp(begin_of(api), Role.ACQUIRE) in result.acquires
        and SyncOp(end_of(api), Role.RELEASE) in result.releases
    )
    assert not both


def test_soft_single_role_allows_both_with_enough_evidence():
    store, api = double_role_store(windows_per_role=6)
    config = SherlockConfig(single_role_soft=True)
    result = infer(store, config)
    assert SyncOp(begin_of(api), Role.ACQUIRE) in result.acquires
    assert SyncOp(end_of(api), Role.RELEASE) in result.releases


def test_soft_single_role_on_app8_recovers_upgrade_release():
    """On the double-role benchmark app, the soft constraint recovers at
    least as many rwlock roles as the hard one."""
    from repro.apps.registry import get_application
    from repro.core import Sherlock

    def rw_roles(config):
        app = get_application("App-8")
        report = Sherlock(app, config).run()
        return {
            s.display()
            for s in report.final.syncs
            if "ReaderWriterLock" in s.op.name
        }

    hard = rw_roles(SherlockConfig(rounds=2, seed=0))
    soft = rw_roles(SherlockConfig(rounds=2, seed=0, single_role_soft=True))
    assert len(soft) >= len(hard)
