"""Regenerate the §5.6 overhead measurements."""

from repro.analysis.experiments import overhead


def test_overhead(benchmark):
    result = benchmark.pedantic(overhead.run, rounds=1, iterations=1)
    print()
    print(result.render())
    assert len(result.rows) == 8
