"""Regenerate Tables 8/9 (inferred synchronization listings)."""

from repro.analysis.experiments import table89


def test_table89(benchmark, full_config):
    result = benchmark.pedantic(
        table89.run, kwargs={"config": full_config}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert len(result.rows) >= 30
