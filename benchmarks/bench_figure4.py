"""Regenerate Figure 4 (Perturber/feedback settings over rounds)."""

from repro.analysis.experiments import figure4


def test_figure4(benchmark):
    result = benchmark.pedantic(
        figure4.run, kwargs={"rounds": 4}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    curves = {row[0]: row[1:] for row in result.rows}
    full = curves["SherLock"]
    # Shape: the full system's curve is non-collapsing over rounds.
    assert full[-1] >= max(1, full[0] // 2)
