"""Analysis fast-path benchmarks: indexed extraction + incremental re-solve.

Measures, per application, the two fast paths this repo's analysis layer
ships against their reference implementations:

* **window extraction** — the indexed conflict-group scan
  (``WindowExtractor(indexed=True)``, the default) vs the historical
  all-pairs scan, over every trace a full multi-round run produces;
* **round-N re-solve** — the final round's ``infer`` with an
  :class:`~repro.core.encoder.IncrementalEncoder` (append + cached
  lowering) vs the rebuild-from-scratch path;
* **backend solve** — the final-round LP solved once per backend
  (scipy, the sparse revised simplex, the dense tableau reference), a
  like-for-like comparison on the identical model.

Both pairs are *equivalence-checked first* (identical windows, identical
solver outputs), so the timings compare implementations of the same
function.  ``tools/bench_report.py`` drives :func:`run_suite` and writes
the results to ``BENCH_PR3.json``.

The **scale tier** (:func:`run_scale_suite`) benchmarks the synthetic
``App-XL1..XL3`` workloads: each backend's cold solve runs in its own
subprocess (clean peak-RSS accounting, and a wall-clock budget the dense
tableau will blow at these sizes — a run that exceeds the budget is
recorded at the budget with ``capped: true``, an honest lower bound).
The scale tier skips scipy (its interior-point path is minutes per solve
here) and skips the extraction/re-solve pairs — it exists to compare the
two built-in simplex backends where their asymptotics separate.

Run directly for a quick look::

    PYTHONPATH=src python benchmarks/bench_fastpath.py App-2 App-8
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from typing import Dict, List, Optional

from repro.apps.registry import all_applications, get_application
from repro.core import SherlockConfig
from repro.core.encoder import IncrementalEncoder, build_model
from repro.core.pipeline import Sherlock
from repro.core.solver import infer
from repro.core.stats import ObservationStore
from repro.core.windows import WindowExtractor

DEFAULT_ROUNDS = 3
DEFAULT_REPEATS = 5

#: Denominator floor for speedup/rate ratios: a sub-nanosecond timing is
#: measurement noise, and dividing by it would write ``inf``/``nan``
#: into the BENCH json (which strict JSON parsers — and the CI gate —
#: reject).
MIN_TIMING_DENOMINATOR_S = 1e-9


def safe_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with the denominator clamped away
    from zero, so fast machines can't push ``inf``/``nan`` into the
    report."""
    return numerator / max(denominator, MIN_TIMING_DENOMINATOR_S)


def collect_round_logs(
    app_id: str, rounds: int = DEFAULT_ROUNDS, seed: int = 0
) -> List[List]:
    """Run the full pipeline once and capture each round's trace logs."""
    logs_by_round: Dict[int, List] = {}
    config = SherlockConfig(rounds=rounds, seed=seed)
    Sherlock(
        get_application(app_id),
        config,
        round_listener=lambda i, execs: logs_by_round.setdefault(
            i, [e.log for e in execs]
        ),
    ).run()
    return [logs_by_round[i] for i in sorted(logs_by_round)]


def bench_extraction(
    logs: List, config: SherlockConfig, repeats: int = DEFAULT_REPEATS
) -> Dict[str, float]:
    """Best-of-N extraction wall-clock, indexed vs all-pairs, plus an
    equivalence check over every log."""
    timings: Dict[str, float] = {}
    window_counts = {}
    for label, indexed in (("indexed", True), ("allpairs", False)):
        extractor = WindowExtractor(
            near=config.near, window_cap=config.window_cap, indexed=indexed
        )
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            count = 0
            for log in logs:
                count += len(extractor.extract(log))
            best = min(best, time.perf_counter() - t0)
        timings[f"extract_{label}_s"] = best
        window_counts[label] = count
    if window_counts["indexed"] != window_counts["allpairs"]:
        raise AssertionError(
            "indexed and all-pairs extraction disagree: "
            f"{window_counts['indexed']} != {window_counts['allpairs']}"
        )
    events = sum(len(log) for log in logs)
    timings["events"] = events
    timings["windows"] = window_counts["indexed"]
    timings["extract_events_per_s"] = safe_ratio(
        events, timings["extract_indexed_s"]
    )
    timings["extract_speedup"] = safe_ratio(
        timings["extract_allpairs_s"], timings["extract_indexed_s"]
    )
    return timings


def bench_resolve(
    logs_by_round: List[List],
    config: SherlockConfig,
    repeats: int = DEFAULT_REPEATS,
) -> Dict[str, float]:
    """Best-of-N wall-clock of the *final* round's ``infer``:
    incremental (append + cached lowering) vs rebuild-from-scratch."""
    extractor = WindowExtractor(
        near=config.near, window_cap=config.window_cap
    )
    windows_by_round = [
        [(log, extractor.extract(log)) for log in round_logs]
        for round_logs in logs_by_round
    ]

    def final_round_time(encoder: Optional[IncrementalEncoder]) -> float:
        store = ObservationStore()
        last = 0.0
        for round_windows in windows_by_round:
            for log, windows in round_windows:
                store.ingest_run(log, windows)
            t0 = time.perf_counter()
            infer(store, config, encoder=encoder)
            last = time.perf_counter() - t0
        return last

    incremental = min(
        final_round_time(IncrementalEncoder(config))
        for _ in range(repeats)
    )
    rebuild = min(final_round_time(None) for _ in range(repeats))
    return {
        "resolve_incremental_s": incremental,
        "resolve_rebuild_s": rebuild,
        "resolve_speedup": safe_ratio(rebuild, incremental),
    }


def bench_warm_phase1(
    logs_by_round: List[List], config: SherlockConfig
) -> Dict[str, int]:
    """Phase-1 work done by the warm-started (incremental) rounds: with
    the carried-basis portfolio in place this must be zero, and the CI
    gate (``tools/bench_report.py``) holds it there.  Runs the built-in
    revised simplex explicitly — the phase-1/dual counters are its
    observability; scipy's are always zero."""
    config = config.without(backend="simplex")
    extractor = WindowExtractor(
        near=config.near, window_cap=config.window_cap
    )
    store = ObservationStore()
    encoder = IncrementalEncoder(config)
    phase1 = 0
    skipped = 0
    for round_index, round_logs in enumerate(logs_by_round):
        for log in round_logs:
            store.ingest_run(log, extractor.extract(log))
        inference = infer(store, config, encoder=encoder)
        if round_index > 0:
            phase1 += inference.lp_phase1_iterations
            skipped += 1 if inference.lp_phase1_skipped else 0
    return {
        "warm_phase1_iterations": phase1,
        "warm_phase1_skipped": skipped,
    }


#: Backends timed by :func:`bench_backends`, keyed by the suffix used in
#: the result dict (``solve_<key>_s``).
BACKENDS = {
    "scipy": "scipy",
    "revised": "revised-simplex",
    "dense_tableau": "dense-tableau",
}


def bench_backends(
    logs_by_round: List[List],
    config: SherlockConfig,
    repeats: int = DEFAULT_REPEATS,
) -> Dict[str, float]:
    """Best-of-N wall-clock of one cold solve of the *final* round's LP,
    per backend, on the identical model built once up front."""
    extractor = WindowExtractor(
        near=config.near, window_cap=config.window_cap
    )
    store = ObservationStore()
    for round_logs in logs_by_round:
        for log in round_logs:
            store.ingest_run(log, extractor.extract(log))
    model, _registry = build_model(store, config)

    timings: Dict[str, float] = {}
    objectives = {}
    for key, backend in BACKENDS.items():
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            solution = model.solve(backend=backend)
            best = min(best, time.perf_counter() - t0)
        timings[f"solve_{key}_s"] = best
        objectives[key] = solution.objective
    spread = max(objectives.values()) - min(objectives.values())
    if spread > 1e-6:
        raise AssertionError(
            f"backends disagree on the final-round objective: {objectives}"
        )
    return timings


def bench_app(
    app_id: str,
    rounds: int = DEFAULT_ROUNDS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = 0,
) -> Dict[str, float]:
    """All fast-path measurements for one application."""
    config = SherlockConfig(rounds=rounds, seed=seed)
    logs_by_round = collect_round_logs(app_id, rounds=rounds, seed=seed)
    flat = [log for round_logs in logs_by_round for log in round_logs]
    result: Dict[str, float] = {"app_id": app_id, "rounds": rounds}
    result.update(bench_extraction(flat, config, repeats))
    result.update(bench_resolve(logs_by_round, config, repeats))
    result.update(bench_backends(logs_by_round, config, repeats))
    result.update(bench_warm_phase1(logs_by_round, config))
    return result


def run_suite(
    app_ids: Optional[List[str]] = None,
    rounds: int = DEFAULT_ROUNDS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = 0,
) -> Dict:
    """Benchmark every requested app (default: all registered apps)."""
    if app_ids is None:
        app_ids = [app.app_id for app in all_applications()]
    apps = [
        bench_app(app_id, rounds=rounds, repeats=repeats, seed=seed)
        for app_id in app_ids
    ]
    return {
        "benchmark": "fastpath",
        "rounds": rounds,
        "repeats": repeats,
        "seed": seed,
        "apps": apps,
    }


# -- scale tier -----------------------------------------------------------------

#: Backends timed on the scale tier.  scipy is deliberately absent: its
#: interior-point solver takes minutes per scale-tier LP, and the tier
#: exists to compare the two built-in simplex backends.
SCALE_BACKENDS = {
    "revised": "revised-simplex",
    "dense_tableau": "dense-tableau",
}

#: Wall-clock budget for one scale-tier cold solve.  A backend that
#: exceeds it is recorded *at* the budget with ``capped: true`` — an
#: honest lower bound on its solve time (the dense tableau needs days,
#: not minutes, on the larger configs).
DEFAULT_SCALE_BUDGET_S = 900.0

#: Extra subprocess wall-clock on top of the solve budget for building
#: the workload (trace generation + ingest + encode + lowering).
_SCALE_BUILD_ALLOWANCE_S = 300.0


def collect_scale_logs(app_id: str, rounds: int, seed: int) -> List:
    """Generate a scale app's unperturbed round traces via the program
    API only (no pipeline: a pipeline run would *solve* every round,
    tripling the cost of producing a workload we only want to solve
    once per backend)."""
    from repro.sim.runner import RunOptions, run_unit_test

    app = get_application(app_id)
    logs = []
    for round_id in range(rounds):
        for test in app.tests:
            execution = run_unit_test(
                app, test, RunOptions(seed=seed, run_id=round_id)
            )
            if execution.error is not None:
                raise RuntimeError(
                    f"{app_id} test failed: {execution.error}"
                )
            logs.append(execution.log)
    return logs


def scale_worker(app_id: str, backend: str, rounds: int, seed: int) -> Dict:
    """Build the scale workload and run one cold solve — the subprocess
    body behind :func:`bench_scale_app`.  Returns (and ``--scale-worker``
    prints) a flat result dict including this process's peak RSS."""
    import resource

    config = SherlockConfig(rounds=rounds, seed=seed)
    t0 = time.perf_counter()
    logs = collect_scale_logs(app_id, rounds, seed)
    extractor = WindowExtractor(
        near=config.near, window_cap=config.window_cap
    )
    store = ObservationStore()
    for log in logs:
        store.ingest_run(log, extractor.extract(log))
    windows = store.stats()["windows"]
    model, _registry = build_model(store, config)
    from repro.lp.model import StandardFormCache

    form = model.to_standard_form_cached(StandardFormCache(), 0)
    build_s = time.perf_counter() - t0

    from repro.lp import backends as lp_backends

    t0 = time.perf_counter()
    solution = lp_backends.solve(model, backend, form=form)
    solve_s = time.perf_counter() - t0
    if not solution.is_optimal:
        raise RuntimeError(
            f"{backend} on {app_id} ended {solution.status.value}"
        )
    stats = model.stats()
    return {
        "app_id": app_id,
        "backend": backend,
        "rounds": rounds,
        "seed": seed,
        "windows": windows,
        "lp_variables": stats["variables"],
        "lp_constraints": stats["constraints"],
        "build_s": build_s,
        "solve_s": solve_s,
        "objective": solution.objective,
        "iterations": solution.iterations,
        "factorizations": solution.factorizations,
        "refactorizations": solution.refactorizations,
        "factorize_s": solution.factorize_s,
        "ftran_btran_s": solution.ftran_btran_s,
        "pricing_s": solution.pricing_s,
        "eta_len": solution.eta_len,
        "presolve_s": solution.presolve_s,
        "presolve_rows": solution.presolve_rows_eliminated,
        "presolve_cols": solution.presolve_cols_eliminated,
        "phase1_iterations": solution.phase1_iterations,
        "phase1_skipped": bool(solution.phase1_skipped),
        "dual_iterations": solution.dual_iterations,
        "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        // 1024,
        "capped": False,
    }


def scale_warm_worker(app_id: str, rounds: int, seed: int) -> Dict:
    """Incremental multi-round solve at scale — the subprocess body
    behind the ``warm`` leg of :func:`bench_scale_app`.  Runs the
    encoder's carried-basis path round by round and reports per-round
    solve time plus the phase-1/dual counters the gate asserts on
    (warm rounds must do zero phase-1 iterations)."""
    import resource

    from repro.sim.runner import RunOptions, run_unit_test

    config = SherlockConfig(rounds=rounds, seed=seed, backend="simplex")
    app = get_application(app_id)
    extractor = WindowExtractor(
        near=config.near,
        window_cap=config.window_cap,
        refine=config.enable_window_refinement,
        indexed=True,
    )
    store = ObservationStore()
    encoder = IncrementalEncoder(config)
    per_round = []
    for round_id in range(rounds):
        for test in app.tests:
            execution = run_unit_test(
                app, test, RunOptions(seed=seed, run_id=round_id)
            )
            if execution.error is not None:
                raise RuntimeError(
                    f"{app_id} test failed: {execution.error}"
                )
            store.ingest_run(
                execution.log, extractor.extract(execution.log)
            )
        t0 = time.perf_counter()
        inference = infer(store, config, encoder=encoder)
        per_round.append(
            {
                "round": round_id,
                "solve_s": time.perf_counter() - t0,
                "iterations": inference.lp_pivots,
                "phase1_iterations": inference.lp_phase1_iterations,
                "phase1_skipped": bool(inference.lp_phase1_skipped),
                "dual_iterations": inference.lp_dual_iterations,
                "presolve_rows": inference.lp_presolve_rows_eliminated,
                "presolve_cols": inference.lp_presolve_cols_eliminated,
            }
        )
    warm_rounds = per_round[1:]
    return {
        "app_id": app_id,
        "rounds": rounds,
        "seed": seed,
        "per_round": per_round,
        "solve_s": sum(r["solve_s"] for r in per_round),
        "phase1_iterations": sum(
            r["phase1_iterations"] for r in warm_rounds
        ),
        "phase1_skipped": sum(
            1 for r in warm_rounds if r["phase1_skipped"]
        ),
        "dual_iterations": sum(r["dual_iterations"] for r in warm_rounds),
        "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        // 1024,
        "capped": False,
    }


def _run_scale_worker(
    app_id: str, backend: str, rounds: int, seed: int, budget_s: float
) -> Dict:
    """One cold solve in a fresh subprocess: clean per-backend peak-RSS
    and a kill switch for solves that blow the budget."""
    repo_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(repo_root, "src"), repo_root]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    command = [
        sys.executable,
        os.path.abspath(__file__),
        "--scale-worker",
        app_id,
        backend,
        "--rounds",
        str(rounds),
        "--seed",
        str(seed),
    ]
    try:
        proc = subprocess.run(
            command,
            capture_output=True,
            text=True,
            timeout=budget_s + _SCALE_BUILD_ALLOWANCE_S,
            env=env,
        )
    except subprocess.TimeoutExpired:
        return {
            "app_id": app_id,
            "backend": backend,
            "rounds": rounds,
            "seed": seed,
            "solve_s": float(budget_s),
            "capped": True,
        }
    if proc.returncode != 0:
        raise RuntimeError(
            f"scale worker {app_id}/{backend} failed:\n{proc.stderr}"
        )
    result = json.loads(proc.stdout.splitlines()[-1])
    if result["solve_s"] > budget_s:
        # Finished, but past the budget: record the cap so the gate
        # treats it like the timeout it effectively was.
        result["capped"] = True
        result["solve_s"] = float(budget_s)
    return result


def _run_scale_warm(
    app_id: str, rounds: int, seed: int, budget_s: float
) -> Dict:
    """The warm leg in a fresh subprocess, budget-capped like a cold
    solve (the whole multi-round incremental run shares one budget)."""
    repo_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(repo_root, "src"), repo_root]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    command = [
        sys.executable,
        os.path.abspath(__file__),
        "--scale-warm-worker",
        app_id,
        "--rounds",
        str(rounds),
        "--seed",
        str(seed),
    ]
    try:
        proc = subprocess.run(
            command,
            capture_output=True,
            text=True,
            timeout=budget_s + _SCALE_BUILD_ALLOWANCE_S,
            env=env,
        )
    except subprocess.TimeoutExpired:
        return {
            "app_id": app_id,
            "rounds": rounds,
            "seed": seed,
            "solve_s": float(budget_s),
            "capped": True,
        }
    if proc.returncode != 0:
        raise RuntimeError(
            f"scale warm worker {app_id} failed:\n{proc.stderr}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


def bench_scale_app(
    app_id: str,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = 0,
    budget_s: float = DEFAULT_SCALE_BUDGET_S,
    backend_keys: Optional[List[str]] = None,
    warm: bool = False,
) -> Dict:
    """Scale-tier measurements for one synthetic app: per-backend cold
    solve (subprocess-isolated, budget-capped), LP shape, peak RSS, and
    with ``warm`` an incremental multi-round leg whose warm rounds the
    gate requires to skip phase 1."""
    keys = list(backend_keys or SCALE_BACKENDS)
    entry: Dict = {
        "app_id": app_id,
        "tier": "scale",
        "rounds": rounds,
        "seed": seed,
        "backends": {},
    }
    if warm:
        warm_result = _run_scale_warm(app_id, rounds, seed, budget_s)
        entry["warm"] = {
            k: v
            for k, v in warm_result.items()
            if k not in ("app_id", "rounds", "seed")
        }
    objectives = {}
    for key in keys:
        result = _run_scale_worker(
            app_id, SCALE_BACKENDS[key], rounds, seed, budget_s
        )
        if not result.get("capped"):
            for field in ("windows", "lp_variables", "lp_constraints"):
                entry.setdefault(field, result[field])
            objectives[key] = result["objective"]
        entry["backends"][key] = {
            k: v
            for k, v in result.items()
            if k not in ("app_id", "rounds", "seed")
        }
    if len(objectives) > 1:
        spread = max(objectives.values()) - min(objectives.values())
        if spread > 1e-6:
            raise AssertionError(
                f"scale backends disagree on {app_id}: {objectives}"
            )
    return entry


def run_scale_suite(
    app_ids: Optional[List[str]] = None,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = 0,
    budget_s: float = DEFAULT_SCALE_BUDGET_S,
    backend_keys: Optional[List[str]] = None,
    warm: bool = False,
) -> List[Dict]:
    """Benchmark the scale tier (default: every registered scale app)."""
    from repro.apps.registry import scale_app_ids

    if app_ids is None:
        app_ids = scale_app_ids()
    return [
        bench_scale_app(
            app_id,
            rounds=rounds,
            seed=seed,
            budget_s=budget_s,
            backend_keys=backend_keys,
            warm=warm,
        )
        for app_id in app_ids
    ]


def main(argv: Optional[List[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("apps", nargs="*", help="app ids (default: all)")
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scale-worker",
        nargs=2,
        metavar=("APP_ID", "BACKEND"),
        default=None,
        help="internal: run one scale cold solve and print JSON",
    )
    parser.add_argument(
        "--scale-warm-worker",
        metavar="APP_ID",
        default=None,
        help="internal: run one incremental warm-round leg and print JSON",
    )
    args = parser.parse_args(argv)
    if args.scale_worker is not None:
        app_id, backend = args.scale_worker
        result = scale_worker(app_id, backend, args.rounds, args.seed)
        print(json.dumps(result))
        return
    if args.scale_warm_worker is not None:
        result = scale_warm_worker(
            args.scale_warm_worker, args.rounds, args.seed
        )
        print(json.dumps(result))
        return
    suite = run_suite(args.apps or None, args.rounds, args.repeats)
    for entry in suite["apps"]:
        print(
            f"{entry['app_id']}: extract {entry['extract_indexed_s']*1e3:.2f}ms "
            f"({entry['extract_speedup']:.1f}x vs all-pairs, "
            f"{entry['extract_events_per_s']:.0f} events/s), "
            f"round-{suite['rounds']} re-solve "
            f"{entry['resolve_incremental_s']*1e3:.2f}ms "
            f"({entry['resolve_speedup']:.1f}x vs rebuild), "
            f"cold solve scipy {entry['solve_scipy_s']*1e3:.2f}ms / "
            f"revised {entry['solve_revised_s']*1e3:.2f}ms / "
            f"dense {entry['solve_dense_tableau_s']*1e3:.2f}ms"
        )


if __name__ == "__main__":
    main()
