"""Analysis fast-path benchmarks: indexed extraction + incremental re-solve.

Measures, per application, the two fast paths this repo's analysis layer
ships against their reference implementations:

* **window extraction** — the indexed conflict-group scan
  (``WindowExtractor(indexed=True)``, the default) vs the historical
  all-pairs scan, over every trace a full multi-round run produces;
* **round-N re-solve** — the final round's ``infer`` with an
  :class:`~repro.core.encoder.IncrementalEncoder` (append + cached
  lowering) vs the rebuild-from-scratch path;
* **backend solve** — the final-round LP solved once per backend
  (scipy, the sparse revised simplex, the dense tableau reference), a
  like-for-like comparison on the identical model.

Both pairs are *equivalence-checked first* (identical windows, identical
solver outputs), so the timings compare implementations of the same
function.  ``tools/bench_report.py`` drives :func:`run_suite` and writes
the results to ``BENCH_PR3.json``.

Run directly for a quick look::

    PYTHONPATH=src python benchmarks/bench_fastpath.py App-2 App-8
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.apps.registry import all_applications, get_application
from repro.core import SherlockConfig
from repro.core.encoder import IncrementalEncoder, build_model
from repro.core.pipeline import Sherlock
from repro.core.solver import infer
from repro.core.stats import ObservationStore
from repro.core.windows import WindowExtractor

DEFAULT_ROUNDS = 3
DEFAULT_REPEATS = 5


def collect_round_logs(
    app_id: str, rounds: int = DEFAULT_ROUNDS, seed: int = 0
) -> List[List]:
    """Run the full pipeline once and capture each round's trace logs."""
    logs_by_round: Dict[int, List] = {}
    config = SherlockConfig(rounds=rounds, seed=seed)
    Sherlock(
        get_application(app_id),
        config,
        round_listener=lambda i, execs: logs_by_round.setdefault(
            i, [e.log for e in execs]
        ),
    ).run()
    return [logs_by_round[i] for i in sorted(logs_by_round)]


def bench_extraction(
    logs: List, config: SherlockConfig, repeats: int = DEFAULT_REPEATS
) -> Dict[str, float]:
    """Best-of-N extraction wall-clock, indexed vs all-pairs, plus an
    equivalence check over every log."""
    timings: Dict[str, float] = {}
    window_counts = {}
    for label, indexed in (("indexed", True), ("allpairs", False)):
        extractor = WindowExtractor(
            near=config.near, window_cap=config.window_cap, indexed=indexed
        )
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            count = 0
            for log in logs:
                count += len(extractor.extract(log))
            best = min(best, time.perf_counter() - t0)
        timings[f"extract_{label}_s"] = best
        window_counts[label] = count
    if window_counts["indexed"] != window_counts["allpairs"]:
        raise AssertionError(
            "indexed and all-pairs extraction disagree: "
            f"{window_counts['indexed']} != {window_counts['allpairs']}"
        )
    events = sum(len(log) for log in logs)
    timings["events"] = events
    timings["windows"] = window_counts["indexed"]
    if timings["extract_indexed_s"] > 0:
        timings["extract_events_per_s"] = (
            events / timings["extract_indexed_s"]
        )
    timings["extract_speedup"] = (
        timings["extract_allpairs_s"] / timings["extract_indexed_s"]
        if timings["extract_indexed_s"] > 0
        else float("inf")
    )
    return timings


def bench_resolve(
    logs_by_round: List[List],
    config: SherlockConfig,
    repeats: int = DEFAULT_REPEATS,
) -> Dict[str, float]:
    """Best-of-N wall-clock of the *final* round's ``infer``:
    incremental (append + cached lowering) vs rebuild-from-scratch."""
    extractor = WindowExtractor(
        near=config.near, window_cap=config.window_cap
    )
    windows_by_round = [
        [(log, extractor.extract(log)) for log in round_logs]
        for round_logs in logs_by_round
    ]

    def final_round_time(encoder: Optional[IncrementalEncoder]) -> float:
        store = ObservationStore()
        last = 0.0
        for round_windows in windows_by_round:
            for log, windows in round_windows:
                store.ingest_run(log, windows)
            t0 = time.perf_counter()
            infer(store, config, encoder=encoder)
            last = time.perf_counter() - t0
        return last

    incremental = min(
        final_round_time(IncrementalEncoder(config))
        for _ in range(repeats)
    )
    rebuild = min(final_round_time(None) for _ in range(repeats))
    return {
        "resolve_incremental_s": incremental,
        "resolve_rebuild_s": rebuild,
        "resolve_speedup": (
            rebuild / incremental if incremental > 0 else float("inf")
        ),
    }


#: Backends timed by :func:`bench_backends`, keyed by the suffix used in
#: the result dict (``solve_<key>_s``).
BACKENDS = {
    "scipy": "scipy",
    "revised": "revised-simplex",
    "dense_tableau": "dense-tableau",
}


def bench_backends(
    logs_by_round: List[List],
    config: SherlockConfig,
    repeats: int = DEFAULT_REPEATS,
) -> Dict[str, float]:
    """Best-of-N wall-clock of one cold solve of the *final* round's LP,
    per backend, on the identical model built once up front."""
    extractor = WindowExtractor(
        near=config.near, window_cap=config.window_cap
    )
    store = ObservationStore()
    for round_logs in logs_by_round:
        for log in round_logs:
            store.ingest_run(log, extractor.extract(log))
    model, _registry = build_model(store, config)

    timings: Dict[str, float] = {}
    objectives = {}
    for key, backend in BACKENDS.items():
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            solution = model.solve(backend=backend)
            best = min(best, time.perf_counter() - t0)
        timings[f"solve_{key}_s"] = best
        objectives[key] = solution.objective
    spread = max(objectives.values()) - min(objectives.values())
    if spread > 1e-6:
        raise AssertionError(
            f"backends disagree on the final-round objective: {objectives}"
        )
    return timings


def bench_app(
    app_id: str,
    rounds: int = DEFAULT_ROUNDS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = 0,
) -> Dict[str, float]:
    """All fast-path measurements for one application."""
    config = SherlockConfig(rounds=rounds, seed=seed)
    logs_by_round = collect_round_logs(app_id, rounds=rounds, seed=seed)
    flat = [log for round_logs in logs_by_round for log in round_logs]
    result: Dict[str, float] = {"app_id": app_id, "rounds": rounds}
    result.update(bench_extraction(flat, config, repeats))
    result.update(bench_resolve(logs_by_round, config, repeats))
    result.update(bench_backends(logs_by_round, config, repeats))
    return result


def run_suite(
    app_ids: Optional[List[str]] = None,
    rounds: int = DEFAULT_ROUNDS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = 0,
) -> Dict:
    """Benchmark every requested app (default: all registered apps)."""
    if app_ids is None:
        app_ids = [app.app_id for app in all_applications()]
    apps = [
        bench_app(app_id, rounds=rounds, repeats=repeats, seed=seed)
        for app_id in app_ids
    ]
    return {
        "benchmark": "fastpath",
        "rounds": rounds,
        "repeats": repeats,
        "seed": seed,
        "apps": apps,
    }


def main(argv: Optional[List[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("apps", nargs="*", help="app ids (default: all)")
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    args = parser.parse_args(argv)
    suite = run_suite(args.apps or None, args.rounds, args.repeats)
    for entry in suite["apps"]:
        print(
            f"{entry['app_id']}: extract {entry['extract_indexed_s']*1e3:.2f}ms "
            f"({entry['extract_speedup']:.1f}x vs all-pairs, "
            f"{entry['extract_events_per_s']:.0f} events/s), "
            f"round-{suite['rounds']} re-solve "
            f"{entry['resolve_incremental_s']*1e3:.2f}ms "
            f"({entry['resolve_speedup']:.1f}x vs rebuild), "
            f"cold solve scipy {entry['solve_scipy_s']*1e3:.2f}ms / "
            f"revised {entry['solve_revised_s']*1e3:.2f}ms / "
            f"dense {entry['solve_dense_tableau_s']*1e3:.2f}ms"
        )


if __name__ == "__main__":
    main()
