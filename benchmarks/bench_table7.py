"""Regenerate Table 7 (Near sensitivity)."""

from repro.analysis.experiments import table7


def test_table7(benchmark):
    result = benchmark.pedantic(table7.run, rounds=1, iterations=1)
    print()
    print(result.render())
    by_near = {row[0]: row for row in result.rows}
    # Shape: a tiny Near misses many syncs vs the 1 s default.
    assert by_near[0.01][1] < by_near[1.0][1]
