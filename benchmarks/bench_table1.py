"""Regenerate Table 1 (application inventory)."""

from repro.analysis.experiments import table1


def test_table1(benchmark):
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    print()
    print(result.render())
    assert len(result.rows) == 8
