"""Regenerate Table 2 (inferred results after 3 rounds, all 8 apps)."""

from repro.analysis.experiments import table2


def test_table2(benchmark, full_config):
    result, classified = benchmark.pedantic(
        table2.run, kwargs={"config": full_config}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    total_correct = sum(len(c.correct) for c in classified.values())
    # Shape: a substantial number of true syncs with few enough FPs.
    assert total_correct >= 30
    assert len(classified) == 8
