"""Regenerate Table 5 (hypothesis ablation)."""

from repro.analysis.experiments import table5


def test_table5(benchmark):
    result = benchmark.pedantic(table5.run, rounds=1, iterations=1)
    print()
    print(result.render())
    rows = {row[0]: row for row in result.rows}
    # Mostly-Protected is indispensable: nothing inferred without it.
    assert rows["w/o Mostly are Protected"][1] == 0
    # Removing Rare inflates the total (precision drops).
    assert rows["w/o Synchronizations are Rare"][2] >= rows["SherLock"][2]
