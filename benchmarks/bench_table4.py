"""Regenerate Table 4 (false positive/negative breakdown)."""

from repro.analysis.experiments import table4


def test_table4(benchmark, full_config):
    result = benchmark.pedantic(
        table4.run, kwargs={"config": full_config}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert len(result.rows) == 6  # 5 buckets + total
