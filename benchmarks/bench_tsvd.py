"""Regenerate the §5.6 TSVD-enhancement comparison."""

from repro.analysis.experiments import tsvd_enhance


def test_tsvd_enhancement(benchmark, full_config):
    result = benchmark.pedantic(
        tsvd_enhance.run, kwargs={"config": full_config}, rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    total_row = result.rows[-1]
    # Shape: SherLock identifies at least as many synchronized pairs.
    assert total_row[2] >= total_row[1]
