"""Regenerate Table 3 (Manual_dr vs SherLock_dr race detection)."""

from repro.analysis.experiments import table3


def test_table3(benchmark, full_config):
    result, per_app = benchmark.pedantic(
        table3.run, kwargs={"config": full_config}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    manual_false = sum(m.false_races for m, s in per_app.values())
    sherlock_false = sum(s.false_races for m, s in per_app.values())
    # Shape: inferred synchronizations eliminate false races.
    assert sherlock_false <= manual_false
