"""Regenerate Table 6 (lambda sensitivity)."""

from repro.analysis.experiments import table6


def test_table6(benchmark):
    result = benchmark.pedantic(table6.run, rounds=1, iterations=1)
    print()
    print(result.render())
    by_lam = {row[0]: row for row in result.rows}
    # Shape: very large lambda infers far fewer syncs than the default.
    assert by_lam[100.0][1] <= by_lam[0.2][1]
