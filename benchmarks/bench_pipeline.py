"""Micro-benchmarks of the pipeline's components."""

from repro.apps.registry import get_application
from repro.core import Sherlock, SherlockConfig, ObservationStore, WindowExtractor, infer
from repro.core.observer import Observer


def test_full_pipeline_one_app(benchmark):
    """End-to-end 3-round SherLock run on App-2."""

    def run():
        app = get_application("App-2")
        return Sherlock(app, SherlockConfig(rounds=3, seed=0)).run()

    report = benchmark(run)
    assert len(report.final.syncs) >= 4


def test_solver_only(benchmark):
    """LP encode+solve on App-1's accumulated observations."""
    app = get_application("App-1")
    config = SherlockConfig(rounds=1, seed=0)
    observer = Observer(config)
    store = ObservationStore()
    extractor = WindowExtractor(config.near, config.window_cap)
    for execution in observer.observe_round(app, 0, {}):
        store.ingest_run(execution.log, extractor.extract(execution.log))

    result = benchmark(lambda: infer(store, config))
    assert result.n_variables > 0


def test_tracing_only(benchmark):
    """One observed round of App-4's test suite."""
    app = get_application("App-4")
    config = SherlockConfig(seed=0)
    observer = Observer(config)

    executions = benchmark(lambda: observer.observe_round(app, 0, {}))
    assert sum(len(e.log) for e in executions) > 100
