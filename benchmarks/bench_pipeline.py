"""Micro-benchmarks of the pipeline's components and execution modes.

The execution-mode trio (serial cold / parallel / warm cache) measures the
runtime layer's wall-clock leverage: on a multi-core box the process pool
beats serial cold, and the warm trace cache beats both by skipping test
execution entirely.  All three produce byte-identical serialized reports.
"""

import json

import repro
from repro.apps.registry import get_application
from repro.core import Sherlock, SherlockConfig, ObservationStore, WindowExtractor, infer
from repro.core.observer import Observer
from repro.core.serialize import report_to_dict
from repro.runtime import ExecutionRuntime, TraceCache


def _canonical(report):
    return json.dumps(report_to_dict(report), sort_keys=True)


def test_full_pipeline_one_app(benchmark):
    """End-to-end 3-round SherLock run on App-2 (serial cold baseline)."""

    def run():
        app = get_application("App-2")
        return Sherlock(app, SherlockConfig(rounds=3, seed=0)).run()

    report = benchmark(run)
    assert len(report.final.syncs) >= 4


def test_full_pipeline_parallel(benchmark):
    """Same run fanned out across a 4-worker process pool.

    The pool is created once (as a long-lived service would) so the
    benchmark measures steady-state parallel execution, not fork cost.
    """
    config = SherlockConfig(rounds=3, seed=0)
    baseline = _canonical(repro.run("App-2", config))
    with ExecutionRuntime(workers=4) as runtime:
        repro.run("App-2", config, engine=runtime)  # warm the pool up

        report = benchmark(lambda: repro.run("App-2", config, engine=runtime))
    assert _canonical(report) == baseline


def test_full_pipeline_warm_cache(benchmark):
    """Same run replayed from a warm in-memory trace cache."""
    config = SherlockConfig(rounds=3, seed=0)
    baseline = _canonical(repro.run("App-2", config))
    cache = TraceCache()
    repro.run("App-2", config, cache=cache)  # cold run populates the cache

    report = benchmark(lambda: repro.run("App-2", config, cache=cache))
    assert _canonical(report) == baseline
    assert report.metrics.cache_hits == 3  # every round served warm


def test_solver_only(benchmark):
    """LP encode+solve on App-1's accumulated observations."""
    app = get_application("App-1")
    config = SherlockConfig(rounds=1, seed=0)
    observer = Observer(config)
    store = ObservationStore()
    extractor = WindowExtractor(config.near, config.window_cap)
    for execution in observer.observe_round(app, 0, {}):
        store.ingest_run(execution.log, extractor.extract(execution.log))

    result = benchmark(lambda: infer(store, config))
    assert result.n_variables > 0


def test_tracing_only(benchmark):
    """One observed round of App-4's test suite."""
    app = get_application("App-4")
    config = SherlockConfig(seed=0)
    observer = Observer(config)

    executions = benchmark(lambda: observer.observe_round(app, 0, {}))
    assert sum(len(e.log) for e in executions) > 100
