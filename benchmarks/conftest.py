"""Shared fixtures for the benchmark harness."""

import pytest


@pytest.fixture(scope="session")
def full_config():
    from repro.core import SherlockConfig

    return SherlockConfig(rounds=3, seed=0)
