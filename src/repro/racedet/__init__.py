"""FastTrack race detection over simulator traces (§5.4)."""

from .annotations import manual_spec, sherlock_spec
from .fasttrack import FastTrack, RaceReport, RunAnalysis, analyze_run
from .report import (
    RaceDetectionResult,
    attribute_false_races,
    classify_first_races,
    detect_races,
)
from .spec import HappensBeforeSpec
from .vectorclock import Epoch, VarState, VectorClock

__all__ = [
    "Epoch",
    "FastTrack",
    "HappensBeforeSpec",
    "RaceDetectionResult",
    "RaceReport",
    "RunAnalysis",
    "VarState",
    "VectorClock",
    "analyze_run",
    "attribute_false_races",
    "classify_first_races",
    "detect_races",
    "manual_spec",
    "sherlock_spec",
]
