"""FastTrack for simulator traces.

A re-implementation of the FastTrack dynamic race detector (Flanagan &
Freund) operating on :class:`~repro.trace.log.TraceLog` events, with the
happens-before vocabulary supplied by a
:class:`~repro.racedet.spec.HappensBeforeSpec` — either manual
annotations (Manual_dr) or SherLock's inference (SherLock_dr).

Per §5.4 of the paper, FastTrack is only sound up to the first reported
race; the harness therefore counts only the *first* race report of each
test run, and classifies it true/false against the app's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..trace.events import TraceEvent
from ..trace.log import TraceLog
from .spec import HappensBeforeSpec
from .vectorclock import VarState, VectorClock


@dataclass(frozen=True)
class RaceReport:
    """One reported data race."""

    field_name: str
    address: int
    first_access: str   # "read"/"write"
    second_access: str
    first_thread: int
    second_thread: int
    timestamp: float

    def key(self) -> Tuple[str, int]:
        return (self.field_name, self.address)


@dataclass
class RunAnalysis:
    """All races FastTrack reported for one test run."""

    races: List[RaceReport] = field(default_factory=list)

    @property
    def first(self) -> Optional[RaceReport]:
        return self.races[0] if self.races else None


class FastTrack:
    """FastTrack over one trace with a happens-before spec."""

    def __init__(self, spec: HappensBeforeSpec) -> None:
        self.spec = spec
        self.thread_vc: Dict[int, VectorClock] = {}
        self.channels: Dict[int, VectorClock] = {}
        #: Channels published by static-init methods (joined on any later
        #: access to the same address).
        self.static_channels: Dict[int, VectorClock] = {}
        self.vars: Dict[Tuple[str, int], VarState] = {}

    def _vc(self, tid: int) -> VectorClock:
        vc = self.thread_vc.get(tid)
        if vc is None:
            vc = VectorClock({tid: 1})
            self.thread_vc[tid] = vc
        return vc

    def analyze(self, log: TraceLog) -> RunAnalysis:
        analysis = RunAnalysis()
        for event in log:
            self._step(event, analysis)
        return analysis

    # -- event processing --------------------------------------------------------

    def _step(self, event: TraceEvent, analysis: RunAnalysis) -> None:
        vc = self._vc(event.thread_id)

        # Acquire side first: joining before checking mirrors the fact
        # that the acquire happened before the protected access.  The
        # event-level classification (including the EXIT of a blocking
        # acquire, whose edge lands at the call's return) lives on the
        # spec so the predictive detector shares it exactly.
        if self.spec.is_acquire_event(event):
            self._join(event, vc)
        if event.address in self.static_channels:
            vc.join(self.static_channels[event.address])

        if event.is_memory:
            self._check_access(event, vc, analysis)

        if self.spec.is_release_event(event):
            channel = self.channels.setdefault(event.address, VectorClock())
            channel.join(vc)
            vc.increment(event.thread_id)
        if self.spec.is_static_publish_event(event):
            published = self.static_channels.setdefault(
                event.address, VectorClock()
            )
            published.join(vc)
            vc.increment(event.thread_id)

    def _join(self, event: TraceEvent, vc: VectorClock) -> None:
        channel = self.channels.get(event.address)
        if channel is not None:
            vc.join(channel)

    def _check_access(
        self, event: TraceEvent, vc: VectorClock, analysis: RunAnalysis
    ) -> None:
        state = self.vars.setdefault(
            (event.name, event.address), VarState()
        )
        if event.is_write:
            if not state.write_ordered_before(vc):
                self._report(event, "write", "write", state, analysis)
            elif not state.reads_ordered_before(vc):
                self._report(event, "read", "write", state, analysis)
            state.record_write(event.thread_id, vc)
        else:
            if not state.write_ordered_before(vc):
                self._report(event, "write", "read", state, analysis)
            state.record_read(event.thread_id, vc)

    def _report(
        self,
        event: TraceEvent,
        first_kind: str,
        second_kind: str,
        state: VarState,
        analysis: RunAnalysis,
    ) -> None:
        prior_tid = state.write.tid if state.write is not None else -1
        analysis.races.append(
            RaceReport(
                field_name=event.name,
                address=event.address,
                first_access=first_kind,
                second_access=second_kind,
                first_thread=prior_tid,
                second_thread=event.thread_id,
                timestamp=event.timestamp,
            )
        )


def analyze_run(log: TraceLog, spec: HappensBeforeSpec) -> RunAnalysis:
    """Run FastTrack over one test run's trace."""
    return FastTrack(spec).analyze(log)


__all__ = ["FastTrack", "RaceReport", "RunAnalysis", "analyze_run"]
