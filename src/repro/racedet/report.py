"""Race-detection harness: run both detector variants over an app's test
suite and score true/false races per §5.4."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..sim.program import Application
from ..sim.runner import RunOptions, run_application
from .fasttrack import RaceReport, analyze_run
from .spec import HappensBeforeSpec


def classify_first_races(
    first_races: Iterable[Optional[RaceReport]],
    racy_fields: Set[str],
) -> Tuple[int, int]:
    """``(true, false)`` counts of first-race-per-run reports.

    ``None`` entries (race-free runs) count as neither.  Pure helper so
    the harness's §5.4 counting can be asserted on directly.
    """
    true_races = false_races = 0
    for report in first_races:
        if report is None:
            continue
        if report.field_name in racy_fields:
            true_races += 1
        else:
            false_races += 1
    return true_races, false_races


@dataclass
class RaceDetectionResult:
    """Table-3 style counts for one app under one spec."""

    app_id: str
    spec_name: str
    true_races: int = 0
    false_races: int = 0
    #: First race per test (None when a run was race-free).
    first_races: List[Optional[RaceReport]] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.true_races + self.false_races

    def false_race_fields(self) -> List[str]:
        return [
            r.field_name
            for r in self.first_races
            if r is not None and not self._is_true(r)
        ]

    def _is_true(self, report: RaceReport) -> bool:
        return report.field_name in self._racy_fields

    _racy_fields: frozenset = frozenset()


def detect_races(
    app: Application,
    spec: HappensBeforeSpec,
    seed: int = 0,
    runs: int = 1,
    schedule_policy: str = "random",
) -> RaceDetectionResult:
    """Run all unit tests ``runs`` times; count first-race per test run.

    FastTrack's guarantee holds only until the first report, so only the
    first race of each run is counted and classified (paper Table 3).
    """
    result = RaceDetectionResult(app.app_id, spec.name)
    result._racy_fields = frozenset(app.ground_truth.racy_fields)
    for run_id in range(runs):
        options = RunOptions(
            seed=seed, run_id=run_id, schedule_policy=schedule_policy
        )
        for execution in run_application(app, options):
            result.first_races.append(analyze_run(execution.log, spec).first)
    result.true_races, result.false_races = classify_first_races(
        result.first_races, set(result._racy_fields)
    )
    return result


def attribute_false_races(
    app: Application, result: RaceDetectionResult
) -> Dict[str, int]:
    """Attribute false races to the missed-sync category protecting the
    racy-reported field (Table 4's rightmost column)."""

    gt = app.ground_truth
    by_category: Dict[str, int] = {}
    name_to_info = {s.op.name: info for s, info in gt.syncs.items()}
    for fieldname in result.false_race_fields():
        protector = gt.protected_by.get(fieldname)
        if protector in gt.hidden_sync_methods:
            category = "instr_error"
        elif protector in name_to_info:
            category = name_to_info[protector].subcategory
        else:
            category = "other"
        by_category[category] = by_category.get(category, 0) + 1
    return by_category


__all__ = [
    "RaceDetectionResult",
    "attribute_false_races",
    "classify_first_races",
    "detect_races",
]
