"""Happens-before spec builders: Manual_dr and SherLock_dr (§5.4).

``Manual_dr`` carries the annotations the paper's authors wrote by hand:
classic locks, signal/wait handles, phase barriers, basic threads,
volatile variables and static initialization.  It deliberately does **not** know the numerous
task-creation APIs (``TaskFactory``, ``ThreadPool``, ``Task.Run``,
``ContinueWith``, ``Dataflow`` …), custom application synchronization, the
test framework's ordering, or finalizer edges — exactly the blind spots
the paper blames for its 391 false races.

``SherLock_dr`` uses only SherLock's inferred synchronizations.
"""

from __future__ import annotations


from ..core.solver import InferenceResult
from ..sim.program import Application
from ..trace.optypes import begin_of, end_of
from .spec import HappensBeforeSpec

#: The manually annotated API surface (classic synchronization only).
_MANUAL_ACQUIRES = [
    "System.Threading.Monitor::Enter",
    "System.Threading.WaitHandle::WaitOne",
    "System.Threading.WaitHandle::WaitAll",
    "System.Threading.SemaphoreSlim::Wait",
    "System.Threading.Thread::Join",
    "System.Threading.ReaderWriterLock::AcquireReaderLock",
    "System.Threading.ReaderWriterLock::AcquireWriterLock",
    "System.Threading.ReaderWriterLock::UpgradeToWriterLock",
    "System.Threading.Phaser::AwaitAdvance",
]
_MANUAL_RELEASES = [
    "System.Threading.Monitor::Exit",
    "System.Threading.EventWaitHandle::Set",
    "System.Threading.SemaphoreSlim::Release",
    "System.Threading.Thread::Start",
    "System.Threading.ReaderWriterLock::ReleaseReaderLock",
    "System.Threading.ReaderWriterLock::ReleaseWriterLock",
    "System.Threading.ReaderWriterLock::DowngradeFromWriterLock",
    "System.Threading.Phaser::Register",
    "System.Threading.Phaser::Arrive",
    "System.Threading.Phaser::ArriveAndDeregister",
]

#: Phaser releases are *collective*: a phase's waiter acquires every
#: prior arrival on the channel, not just the pairing one (see
#: ``HappensBeforeSpec.collective_releases``).
_MANUAL_COLLECTIVE = [
    "System.Threading.Phaser::Register",
    "System.Threading.Phaser::Arrive",
    "System.Threading.Phaser::ArriveAndDeregister",
]


def manual_spec(app: Application) -> HappensBeforeSpec:
    """The Manual_dr annotation set for one application."""
    spec = HappensBeforeSpec(name="Manual_dr")
    for name in _MANUAL_ACQUIRES:
        spec.acquires.add(begin_of(name))
    for name in _MANUAL_RELEASES:
        spec.releases.add(end_of(name))
    spec.collective_releases.update(_MANUAL_COLLECTIVE)
    # Volatile fields (annotated in the source).
    spec.volatile_fields.update(app.ground_truth.volatile_fields)
    # Happens-before from static initialization.
    for sync in app.ground_truth.syncs:
        if sync.op.name.endswith("::.cctor"):
            spec.static_init_methods.add(sync.op.name)
    return spec


def sherlock_spec(inference: InferenceResult) -> HappensBeforeSpec:
    """The SherLock_dr spec: only inferred synchronizations."""
    return HappensBeforeSpec.from_syncs("SherLock_dr", inference.syncs)


__all__ = ["manual_spec", "sherlock_spec"]
