"""Vector clocks and epochs for the FastTrack race detector."""

from __future__ import annotations

from typing import Dict, Optional


class VectorClock:
    """A sparse vector clock over thread ids."""

    __slots__ = ("clocks",)

    def __init__(self, clocks: Optional[Dict[int, int]] = None) -> None:
        self.clocks: Dict[int, int] = dict(clocks or {})

    def get(self, tid: int) -> int:
        return self.clocks.get(tid, 0)

    def increment(self, tid: int) -> None:
        self.clocks[tid] = self.clocks.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """In-place least upper bound."""
        for tid, clock in other.clocks.items():
            if clock > self.clocks.get(tid, 0):
                self.clocks[tid] = clock

    def copy(self) -> "VectorClock":
        return VectorClock(self.clocks)

    def happens_before(self, other: "VectorClock") -> bool:
        """self ⊑ other (componentwise)."""
        return all(
            clock <= other.get(tid) for tid, clock in self.clocks.items()
        )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"t{tid}:{c}" for tid, c in sorted(self.clocks.items())
        )
        return f"VC({inner})"


class Epoch:
    """A FastTrack epoch ``c@t`` — one thread's clock component."""

    __slots__ = ("tid", "clock")

    def __init__(self, tid: int, clock: int) -> None:
        self.tid = tid
        self.clock = clock

    def happens_before(self, vc: VectorClock) -> bool:
        return self.clock <= vc.get(self.tid)

    def __repr__(self) -> str:
        return f"{self.clock}@t{self.tid}"


class VarState:
    """FastTrack per-variable state: a write epoch plus an adaptive read
    representation (epoch until concurrent reads force a full VC)."""

    __slots__ = ("write", "read_epoch", "read_vc")

    def __init__(self) -> None:
        self.write: Optional[Epoch] = None
        self.read_epoch: Optional[Epoch] = None
        self.read_vc: Optional[VectorClock] = None

    def record_read(self, tid: int, vc: VectorClock) -> None:
        epoch = Epoch(tid, vc.get(tid))
        if self.read_vc is not None:
            self.read_vc.clocks[tid] = epoch.clock
        elif self.read_epoch is None or self.read_epoch.tid == tid:
            self.read_epoch = epoch
        elif self.read_epoch.happens_before(vc):
            # The previous read is ordered before this one: keep an epoch.
            self.read_epoch = epoch
        else:
            # Concurrent reads: inflate to a read VC.
            self.read_vc = VectorClock(
                {self.read_epoch.tid: self.read_epoch.clock, tid: epoch.clock}
            )
            self.read_epoch = None

    def record_write(self, tid: int, vc: VectorClock) -> None:
        self.write = Epoch(tid, vc.get(tid))
        self.read_epoch = None
        self.read_vc = None

    def reads_ordered_before(self, vc: VectorClock) -> bool:
        if self.read_vc is not None:
            return self.read_vc.happens_before(vc)
        if self.read_epoch is not None:
            return self.read_epoch.happens_before(vc)
        return True

    def write_ordered_before(self, vc: VectorClock) -> bool:
        return self.write is None or self.write.happens_before(vc)


__all__ = ["Epoch", "VarState", "VectorClock"]
