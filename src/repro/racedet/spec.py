"""Happens-before specifications for the race detector.

A spec tells FastTrack which trace operations induce happens-before
edges.  Releases publish the thread's vector clock to a channel keyed by
the event's address (object id); acquires join it.  Method acquires join
both at ENTER (delegate/begin-style acquires) and at the matching EXIT
(blocking acquires like ``Monitor.Enter`` — the edge lands when the call
returns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Set

from ..trace.optypes import OpRef, OpType, Role, SyncOp

if TYPE_CHECKING:  # pragma: no cover
    from ..trace.events import TraceEvent


@dataclass
class HappensBeforeSpec:
    """The synchronization vocabulary a detector variant knows."""

    name: str = "spec"
    #: Ops whose dynamic instances acquire (join their channel).
    acquires: Set[OpRef] = field(default_factory=set)
    #: Ops whose dynamic instances release (publish to their channel).
    releases: Set[OpRef] = field(default_factory=set)
    #: Fields treated as volatile: their reads acquire, writes release.
    volatile_fields: Set[str] = field(default_factory=set)
    #: Method names whose EXIT publishes a channel joined by *any* later
    #: access to the same address (static-initialization semantics).
    static_init_methods: Set[str] = field(default_factory=set)
    #: Method names whose releases are *collective* (phase/barrier
    #: quorums): a waiter on the channel is ordered after **every**
    #: prior release, not just the pairing one, so the sync-preserving
    #: closure accumulates these channels instead of replacing them.
    collective_releases: Set[str] = field(default_factory=set)

    def is_acquire(self, ref: OpRef) -> bool:
        if ref in self.acquires:
            return True
        return (
            ref.optype is OpType.READ and ref.name in self.volatile_fields
        )

    def is_release(self, ref: OpRef) -> bool:
        if ref in self.releases:
            return True
        return (
            ref.optype is OpType.WRITE and ref.name in self.volatile_fields
        )

    #: Names of acquire methods (to join again at their EXIT).
    def acquire_method_names(self) -> Set[str]:
        return {
            ref.name
            for ref in self.acquires
            if ref.optype is OpType.ENTER
        }

    # -- event-level classification ------------------------------------------
    #
    # The dynamic-instance view FastTrack and the predictive detector
    # share: a trace event acquires either because its static op is an
    # acquire (delegate/begin-style and volatile reads) or because it is
    # the EXIT of an acquire method (blocking acquires complete — and
    # take their happens-before edge — at the call's return).

    def is_acquire_event(self, event: "TraceEvent") -> bool:
        if self.is_acquire(event.ref):
            return True
        return (
            event.optype is OpType.EXIT
            and event.name in self.acquire_method_names()
        )

    def is_release_event(self, event: "TraceEvent") -> bool:
        return self.is_release(event.ref)

    def is_collective_release_event(self, event: "TraceEvent") -> bool:
        """Whether this release publishes into a collective (phase)
        channel — one a waiter acquires in its entirety."""
        return (
            event.optype is OpType.EXIT
            and event.name in self.collective_releases
            and self.is_release_event(event)
        )

    def is_static_publish_event(self, event: "TraceEvent") -> bool:
        """Whether this EXIT publishes a static-initialization channel."""
        return (
            event.optype is OpType.EXIT
            and event.name in self.static_init_methods
        )

    @staticmethod
    def from_syncs(name: str, syncs: Iterable[SyncOp]) -> "HappensBeforeSpec":
        """Build a spec from (op, role) pairs — e.g. SherLock's inference."""
        spec = HappensBeforeSpec(name=name)
        for sync in syncs:
            if sync.role is Role.ACQUIRE:
                spec.acquires.add(sync.op)
            else:
                spec.releases.add(sync.op)
        return spec

    def __repr__(self) -> str:
        return (
            f"HappensBeforeSpec({self.name!r}, acquires={len(self.acquires)}, "
            f"releases={len(self.releases)}, "
            f"volatile={len(self.volatile_fields)})"
        )


__all__ = ["HappensBeforeSpec"]
