"""The one-call public entry point: :func:`repro.run`.

``repro.run("App-2", workers=4, cache=True)`` resolves the application,
builds an :class:`~repro.runtime.engine.ExecutionRuntime` (process pool +
trace cache), runs the full multi-round SherLock pipeline, and returns
the :class:`~repro.core.pipeline.SherlockReport`.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from .apps.registry import get_application
from .core.config import SherlockConfig
from .core.pipeline import Sherlock, SherlockReport
from .runtime.cache import DEFAULT_CACHE_DIR, TraceCache
from .runtime.engine import ExecutionRuntime
from .sim.program import Application

CacheSpec = Union[None, bool, str, "os.PathLike[str]", TraceCache]


def coerce_cache(cache: CacheSpec) -> Optional[TraceCache]:
    """Interpret the ``cache=`` argument of :func:`run`.

    ``None``/``False`` → no caching; ``True`` → on-disk store under
    ``.repro_cache/``; a path → on-disk store there; a
    :class:`TraceCache` is used as-is (sharable across calls).
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return TraceCache(DEFAULT_CACHE_DIR)
    if isinstance(cache, TraceCache):
        return cache
    return TraceCache(os.fspath(cache))


def run(
    app_or_id: Union[Application, str],
    config: Optional[SherlockConfig] = None,
    *,
    rounds: Optional[int] = None,
    workers: int = 1,
    cache: CacheSpec = None,
    runtime: Optional[ExecutionRuntime] = None,
) -> SherlockReport:
    """Run SherLock on an application and return its report.

    Parameters
    ----------
    app_or_id:
        An :class:`Application` or a benchmark app id like ``"App-2"``
        (resolved via :func:`repro.get_application`).
    config:
        Pipeline configuration; defaults to the paper's settings.
    rounds:
        Overrides ``config.rounds`` (the report's config reflects what
        actually ran).
    workers:
        Worker processes for test execution; ``1`` runs serially.
        Results are byte-identical either way.
    cache:
        ``True`` / a directory path / a :class:`TraceCache` to memoize
        observed rounds; ``None`` disables caching.
    runtime:
        A pre-built :class:`ExecutionRuntime` to use (and keep open);
        overrides ``workers``/``cache``.  Without one, a runtime is
        created for this call and shut down afterwards.
    """
    app = (
        get_application(app_or_id)
        if isinstance(app_or_id, str)
        else app_or_id
    )
    if runtime is not None:
        return Sherlock(app, config, runtime=runtime).run(rounds=rounds)
    with ExecutionRuntime(workers=workers, cache=coerce_cache(cache)) as rt:
        return Sherlock(app, config, runtime=rt).run(rounds=rounds)


__all__ = ["coerce_cache", "run"]
