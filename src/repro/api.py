"""The one-call public entry points: :func:`repro.run` / :func:`repro.arun`.

``repro.run("App-2", engine="process:4", cache=True)`` resolves the
application, builds an :class:`~repro.runtime.engine.ExecutionRuntime`
(pluggable engine + trace cache), runs the full multi-round SherLock
pipeline, and returns the :class:`~repro.core.pipeline.SherlockReport`.
``repro.arun`` is the asyncio-native twin (``await repro.arun("App-2")``)
and defaults to the async engine; both produce byte-identical reports
for the same inputs regardless of engine.

The legacy ``workers=`` / ``runtime=`` kwargs of :func:`run` are folded
into the ``engine=`` spec (``workers=4`` ≡ ``engine="process:4"``, a
pre-built runtime is passed as ``engine=`` directly); they keep working
for one release and emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, Union

from .apps.registry import get_application
from .core.config import SherlockConfig
from .core.pipeline import Sherlock, SherlockReport
from .racedet.spec import HappensBeforeSpec
from .runtime.cache import DEFAULT_CACHE_DIR, TraceCache
from .runtime.engine import ExecutionRuntime
from .runtime.engines import Engine
from .sim.program import Application

CacheSpec = Union[None, bool, str, "os.PathLike[str]", TraceCache]

#: ``engine=`` accepts a spec string ("serial" | "process[:N]" |
#: "async[:N]"), a live :class:`Engine`, or a caller-owned
#: :class:`ExecutionRuntime` (used as-is and kept open).
RunEngineSpec = Union[None, str, Engine, ExecutionRuntime]


def coerce_cache(cache: CacheSpec) -> Optional[TraceCache]:
    """Interpret the ``cache=`` argument of :func:`run` / :func:`arun`.

    ``None``/``False`` → no caching; ``True`` → on-disk store under
    ``.repro_cache/``; ``"memory"`` → in-process LRU only (no disk
    store); any other path → on-disk store there; a :class:`TraceCache`
    is used as-is (sharable across calls).
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return TraceCache(DEFAULT_CACHE_DIR)
    if isinstance(cache, TraceCache):
        return cache
    if isinstance(cache, str) and cache == "memory":
        return TraceCache()
    return TraceCache(os.fspath(cache))


def _resolve_app(app_or_id: Union[Application, str]) -> Application:
    return (
        get_application(app_or_id)
        if isinstance(app_or_id, str)
        else app_or_id
    )


def _shim_legacy_kwargs(
    engine: RunEngineSpec,
    workers: Optional[int],
    runtime: Optional[ExecutionRuntime],
) -> RunEngineSpec:
    """Map the deprecated ``workers=`` / ``runtime=`` kwargs onto the
    ``engine=`` spec (one release of back-compat, warning once per call
    site)."""
    if runtime is not None:
        if engine is not None:
            raise TypeError(
                "pass either engine= or the deprecated runtime=, not both"
            )
        warnings.warn(
            "repro.run(runtime=...) is deprecated; pass the runtime as "
            "engine= instead (repro.run(..., engine=runtime))",
            DeprecationWarning,
            stacklevel=3,
        )
        engine = runtime
    if workers is not None:
        if engine is not None:
            raise TypeError(
                "pass either engine= or the deprecated workers=, not both"
            )
        warnings.warn(
            "repro.run(workers=N) is deprecated; use "
            "engine='process:N' (or engine='serial') instead",
            DeprecationWarning,
            stacklevel=3,
        )
        engine = "serial" if workers == 1 else f"process:{workers}"
    return engine


def _config_engine_spec(
    engine: RunEngineSpec,
    config: Optional[SherlockConfig],
    default: str = "auto",
) -> Union[str, Engine]:
    """The engine spec to build a runtime from: the explicit ``engine=``
    argument, else ``config.engine``, else ``default``."""
    if engine is not None:
        return engine  # type: ignore[return-value]  (never a runtime here)
    if config is not None and config.engine != "auto":
        return config.engine
    return default


def run(
    app_or_id: Union[Application, str],
    config: Optional[SherlockConfig] = None,
    *,
    rounds: Optional[int] = None,
    engine: RunEngineSpec = None,
    cache: CacheSpec = None,
    workers: Optional[int] = None,
    runtime: Optional[ExecutionRuntime] = None,
) -> SherlockReport:
    """Run SherLock on an application and return its report.

    Fully synchronous for callers — no event loop required (and a
    running one is tolerated: the pipeline then runs on a private loop
    in a helper thread).  Results are byte-identical across engines.

    Parameters
    ----------
    app_or_id:
        An :class:`Application` or a benchmark app id like ``"App-2"``
        (resolved via :func:`repro.get_application`).
    config:
        Pipeline configuration; defaults to the paper's settings.
    rounds:
        Overrides ``config.rounds`` (the report's config reflects what
        actually ran).
    engine:
        How to execute unit-test jobs: ``"serial"`` (default),
        ``"process[:N]"`` (process pool), ``"async[:N]"`` (asyncio
        fan-out with bounded concurrency), a live
        :class:`~repro.runtime.engines.Engine`, or a pre-built
        :class:`ExecutionRuntime` (used as-is and kept open; its cache
        wins over ``cache=``).  ``None`` falls back to
        ``config.engine``.
    cache:
        ``True`` / ``"memory"`` / a directory path / a
        :class:`TraceCache` to memoize observed rounds; ``None``
        disables caching.
    workers:
        Deprecated — ``workers=N`` is ``engine="process:N"``.
    runtime:
        Deprecated — pass the runtime as ``engine=`` instead.
    """
    engine = _shim_legacy_kwargs(engine, workers, runtime)
    app = _resolve_app(app_or_id)
    if isinstance(engine, ExecutionRuntime):
        return Sherlock(app, config, runtime=engine).run(rounds=rounds)
    spec = _config_engine_spec(engine, config)
    with ExecutionRuntime(engine=spec, cache=coerce_cache(cache)) as rt:
        return Sherlock(app, config, runtime=rt).run(rounds=rounds)


async def arun(
    app_or_id: Union[Application, str],
    config: Optional[SherlockConfig] = None,
    *,
    rounds: Optional[int] = None,
    engine: RunEngineSpec = None,
    cache: CacheSpec = None,
) -> SherlockReport:
    """Async-native :func:`run`: ``await repro.arun("App-2")``.

    Runs on the caller's event loop; trace-cache disk I/O and job
    fan-out happen in worker threads so the loop stays responsive.
    Defaults to the async engine (``engine="async"``) when neither the
    ``engine=`` argument nor ``config.engine`` chooses one — byte-for-
    byte the same report either way.
    """
    app = _resolve_app(app_or_id)
    if isinstance(engine, ExecutionRuntime):
        return await Sherlock(app, config, runtime=engine).arun(
            rounds=rounds
        )
    spec = _config_engine_spec(engine, config, default="async")
    rt = ExecutionRuntime(engine=spec, cache=coerce_cache(cache))
    try:
        return await Sherlock(app, config, runtime=rt).arun(rounds=rounds)
    finally:
        rt.close()


def predict_races(
    app_or_id: Union[Application, str],
    *,
    spec: Union[str, HappensBeforeSpec] = "manual",
    seed: int = 0,
    rounds: int = 3,
    schedule_policy: str = "random",
):
    """Predictive (sync-preserving) race detection on one app run.

    Runs the app's unit tests once under ``seed``/``schedule_policy``
    and analyzes every trace with the sync-preserving predictive
    detector (:mod:`repro.predict`) next to FastTrack under the same
    happens-before spec.  Returns a
    :class:`~repro.predict.harness.PredictionReport`: predicted races
    with sanitizer-validated witness reorderings, FastTrack's first
    races, and the per-field detection-power deltas.

    ``spec`` selects the sync vocabulary: ``"manual"`` (Manual_pr, the
    hand annotations), ``"sherlock"`` (SherLock_pr — runs the inference
    pipeline for ``rounds`` first), or any
    :class:`~repro.racedet.spec.HappensBeforeSpec`.
    """
    from .predict.harness import predict_app
    from .racedet.annotations import manual_spec, sherlock_spec

    app = _resolve_app(app_or_id)
    if isinstance(spec, HappensBeforeSpec):
        hb_spec = spec
    elif spec == "manual":
        hb_spec = manual_spec(app)
    elif spec == "sherlock":
        config = SherlockConfig(
            rounds=rounds, seed=seed, schedule_policy=schedule_policy
        )
        hb_spec = sherlock_spec(Sherlock(app, config).run().final)
    else:
        raise ValueError(
            f"spec must be 'manual', 'sherlock', or a HappensBeforeSpec, "
            f"got {spec!r}"
        )
    return predict_app(
        app, hb_spec, seed=seed, policy=schedule_policy
    )


def convert_predictions(
    apps: Union[Application, str, "list[Union[Application, str]]"],
    *,
    spec: str = "manual",
    seed: int = 0,
    schedules: int = 4,
    rounds: int = 3,
    policy: str = "random",
    targets: Optional[dict] = None,
    engine: Optional[str] = None,
    workers: int = 1,
):
    """Directed schedule search over predicted-only races.

    Takes the apps' predicted-but-not-first races (from
    :func:`predict_races` / a campaign's ``schedule_targets()``), fans
    ``schedules`` :class:`~repro.sim.schedule.DirectedPolicy` runs per
    app over the execution engine, and returns a
    :class:`~repro.predict.convert.ConvertReport`: per target, either
    *converted* (the prediction was validated by an observed FastTrack
    race under the rolling soundness horizon) or *flagged* (no directed
    schedule converted it — a candidate false prediction).

    ``targets`` optionally maps app ids to explicit target lists (the
    shape ``CampaignReport.schedule_targets()`` returns); apps not
    listed derive targets from their own prediction baseline.
    """
    from .predict.convert import ConvertConfig, run_conversion

    if isinstance(apps, (str, Application)):
        apps = [apps]
    app_ids = [_resolve_app(a).app_id for a in apps]
    specs = ("manual", "sherlock") if spec == "both" else (spec,)
    config = ConvertConfig(
        app_ids=app_ids,
        schedules=schedules,
        base_seed=seed,
        rounds=rounds,
        policy=policy,
        specs=specs,
        workers=workers,
        engine=engine,
        targets=targets,
    )
    return run_conversion(config)


__all__ = [
    "arun",
    "coerce_cache",
    "convert_predictions",
    "predict_races",
    "run",
]
