"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``infer APP_ID``
    Run the SherLock pipeline on one benchmark app and print the inferred
    synchronizations (scored against ground truth).
``races APP_ID``
    Compare Manual_dr and SherLock_dr race detection on one app.
``table NAME``
    Regenerate one paper table/figure (``table1`` … ``table7``,
    ``table89``, ``figure4``, ``tsvd``, ``overhead``).
``all``
    Regenerate every table and figure.
``apps``
    List the benchmark applications.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.experiments import (
    figure4,
    overhead,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table89,
    tsvd_enhance,
)
from .apps.registry import all_applications, app_ids, get_application
from .core import Sherlock, SherlockConfig
from .racedet import detect_races, manual_spec, sherlock_spec

_TABLES = {
    "table1": lambda a: table1.run(a),
    "table2": lambda a: table2.run(a)[0],
    "table3": lambda a: table3.run(a)[0],
    "table4": lambda a: table4.run(a),
    "table5": lambda a: table5.run(a),
    "table6": lambda a: table6.run(a),
    "table7": lambda a: table7.run(a),
    "table89": lambda a: table89.run(a),
    "figure4": lambda a: figure4.run(a),
    "tsvd": lambda a: tsvd_enhance.run(a),
    "overhead": lambda a: overhead.run(a),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SherLock reproduction (ASPLOS 2021)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="rounds per input (default 3)"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--apps", default=None,
        help="comma-separated app ids to restrict to (default: all 8)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    infer_p = sub.add_parser("infer", help="run SherLock on one app")
    infer_p.add_argument("app_id")

    races_p = sub.add_parser("races", help="Manual_dr vs SherLock_dr")
    races_p.add_argument("app_id")

    table_p = sub.add_parser("table", help="regenerate one table/figure")
    table_p.add_argument("name", choices=sorted(_TABLES))

    report_p = sub.add_parser(
        "report", help="write a full markdown reproduction report"
    )
    report_p.add_argument("path", nargs="?", default="REPRODUCTION_REPORT.md")

    sub.add_parser("all", help="regenerate every table and figure")
    sub.add_parser("apps", help="list the benchmark applications")
    return parser


def _cmd_infer(args) -> int:
    app = get_application(args.app_id)
    config = SherlockConfig(rounds=args.rounds, seed=args.seed)
    report = Sherlock(app, config).run()
    gt = app.ground_truth
    print(report.describe())
    for sync in sorted(report.final.syncs, key=lambda s: s.display()):
        marker = "+" if gt.is_true_sync(sync) else "?"
        print(f"  [{marker}] {sync.display()}")
    correct = sum(1 for s in report.final.syncs if gt.is_true_sync(s))
    print(
        f"{correct} true / {len(report.final.syncs)} inferred; "
        f"{len(set(gt.syncs) - report.final.syncs)} missed"
    )
    return 0


def _cmd_races(args) -> int:
    app = get_application(args.app_id)
    config = SherlockConfig(rounds=args.rounds, seed=args.seed)
    report = Sherlock(app, config).run()
    manual = detect_races(app, manual_spec(app), seed=args.seed)
    inferred = detect_races(app, sherlock_spec(report.final), seed=args.seed)
    print(f"{'detector':12s} {'true':>5s} {'false':>6s}")
    for result in (manual, inferred):
        print(
            f"{result.spec_name:12s} {result.true_races:5d} "
            f"{result.false_races:6d}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if isinstance(args.apps, str):
        args.apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    if args.command == "apps":
        for app in all_applications():
            print(
                f"{app.app_id}: {app.name} "
                f"({len(app.tests)} tests, "
                f"{len(app.ground_truth.syncs)} true syncs)"
            )
        return 0
    if args.command == "infer":
        return _cmd_infer(args)
    if args.command == "races":
        return _cmd_races(args)
    if args.command == "table":
        print(_TABLES[args.name](args.apps).render())
        return 0
    if args.command == "report":
        from .analysis.report_writer import write_report

        with open(args.path, "w") as fp:
            sections = write_report(fp, args.apps)
        print(f"wrote {len(sections)} sections to {args.path}")
        return 0
    if args.command == "all":
        for name, runner in _TABLES.items():
            print(runner(args.apps).render())
            print()
        return 0
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
