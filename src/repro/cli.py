"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``infer APP_ID``
    Run the SherLock pipeline on one benchmark app and print the inferred
    synchronizations (scored against ground truth).
``races APP_ID``
    Compare Manual_dr and SherLock_dr race detection on one app.
``table NAME``
    Regenerate one paper table/figure (``table1`` … ``table7``,
    ``table89``, ``figure4``, ``tsvd``, ``overhead``).
``all``
    Regenerate every table and figure.
``apps``
    List the benchmark applications.
``fuzz``
    Schedule-fuzz one or more apps: sweep scheduler seeds, sanitize every
    trace, run differential inference oracles, write a JSON campaign
    report.  Exit status is non-zero on sanitizer violations (and, with
    ``--strict``, on oracle failures).
``predict``
    Sync-preserving predictive race detection (Manual_pr / SherLock_pr):
    sweep schedule seeds per app, compare FastTrack-first-race vs TSVD
    vs predictive detection power, verify the predictive ⊇ FastTrack
    invariant and every witness reordering.  Exit status is non-zero
    when the superset invariant or a witness validation fails.  With
    ``--convert``, follow up with a directed schedule-search pass over
    the predicted-only races.
``convert``
    Directed schedule search: fan ``directed:<seed>|target|...``
    schedules over the predicted-only races and report, per app × spec
    × target, whether the prediction was converted into an observed
    FastTrack race (validated) or never converted (candidate false
    prediction).  ``--require-planted`` makes the exit status non-zero
    when a ground-truth planted race fails to convert.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis.experiments import (
    common,
    figure4,
    overhead,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table89,
    tsvd_enhance,
)
from .api import coerce_cache, run
from .apps.registry import (
    all_applications,
    app_ids,
    family_app_ids,
    get_application,
)
from .core import SherlockConfig
from .racedet import detect_races, manual_spec, sherlock_spec
from .runtime import DEFAULT_CACHE_DIR, ExecutionRuntime
from .sim.schedule import build_policy, policy_names

_TABLES = {
    "table1": lambda a: table1.run(a),
    "table2": lambda a: table2.run(a)[0],
    "table3": lambda a: table3.run(a)[0],
    "table4": lambda a: table4.run(a),
    "table5": lambda a: table5.run(a),
    "table6": lambda a: table6.run(a),
    "table7": lambda a: table7.run(a),
    "table89": lambda a: table89.run(a),
    "figure4": lambda a: figure4.run(a),
    "tsvd": lambda a: tsvd_enhance.run(a),
    "overhead": lambda a: overhead.run(a),
}


def _policy_spec(value: str) -> str:
    """Validate a schedule-policy spec string (``--policy``).

    Accepts every registered spec shape — ``random``, ``pct[:p]``,
    ``directed:<seed>[@p]|target|...`` — not just the bare names, so
    parameterized specs flow through the CLI unchanged.
    """
    try:
        build_policy(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return value


def _add_shared_options(parser: argparse.ArgumentParser, suppress: bool) -> None:
    """Options valid both before and after the subcommand.

    The subcommand copies use ``SUPPRESS`` defaults so a value given
    before the subcommand isn't clobbered by the subparser's default.
    """

    def default(value):
        return argparse.SUPPRESS if suppress else value

    parser.add_argument(
        "--rounds", type=int, default=default(3),
        help="rounds per input (default 3)",
    )
    parser.add_argument("--seed", type=int, default=default(0))
    parser.add_argument(
        "--apps", default=default(None),
        help="comma-separated app ids to restrict to (default: all 8)",
    )
    parser.add_argument(
        "--workers", type=int, default=default(1),
        help="worker processes for test execution (default 1 = serial)",
    )
    parser.add_argument(
        "--engine", choices=["serial", "process", "async"],
        default=default(None),
        help="execution engine (default: serial, or a process pool when "
        "--workers > 1); --workers sizes process/async concurrency",
    )
    parser.add_argument(
        "--cache", nargs="?", const=DEFAULT_CACHE_DIR, default=default(None),
        metavar="DIR",
        help="memoize observed rounds on disk (default dir: "
        f"{DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--stats", action="store_true", default=default(False),
        help="print per-phase timings and cache hit/miss counters",
    )
    # Paired flags instead of BooleanOptionalAction (Python 3.9 CI).
    parser.add_argument(
        "--presolve", dest="presolve", action="store_true",
        default=default(True),
        help="LP presolve above the 4096-column gate (default on; "
        "identity below the gate either way)",
    )
    parser.add_argument(
        "--no-presolve", dest="presolve", action="store_false",
        default=default(True),
        help="disable LP presolve everywhere (escape hatch)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SherLock reproduction (ASPLOS 2021)",
    )
    _add_shared_options(parser, suppress=False)
    shared = argparse.ArgumentParser(add_help=False)
    _add_shared_options(shared, suppress=True)
    sub = parser.add_subparsers(dest="command", required=True)

    infer_p = sub.add_parser(
        "infer", help="run SherLock on one app", parents=[shared]
    )
    infer_p.add_argument("app_id")

    races_p = sub.add_parser(
        "races", help="Manual_dr vs SherLock_dr", parents=[shared]
    )
    races_p.add_argument("app_id")

    table_p = sub.add_parser(
        "table", help="regenerate one table/figure", parents=[shared]
    )
    table_p.add_argument("name", choices=sorted(_TABLES))

    report_p = sub.add_parser(
        "report",
        help="write a full markdown reproduction report",
        parents=[shared],
    )
    report_p.add_argument("path", nargs="?", default="REPRODUCTION_REPORT.md")

    sub.add_parser(
        "all", help="regenerate every table and figure", parents=[shared]
    )
    sub.add_parser("apps", help="list the benchmark applications")

    fuzz_p = sub.add_parser(
        "fuzz",
        help="schedule-fuzz apps with trace sanitizing and oracles",
        parents=[shared],
    )
    fuzz_p.add_argument(
        "--app", action="append", dest="fuzz_apps", metavar="APP",
        help="app to fuzz (repeatable; ids or module aliases like "
        "'app7_statsd'; default: all 8)",
    )
    fuzz_p.add_argument(
        "--schedules", type=int, default=25,
        help="seeds to sweep per app (default 25)",
    )
    fuzz_p.add_argument(
        "--policy", default="random", type=_policy_spec,
        help="kernel scheduling policy spec "
        f"(one of {policy_names()}, optionally parameterized, e.g. "
        "'pct:0.05' or 'directed:7|Cls::field'; default random)",
    )
    fuzz_p.add_argument(
        "--convert", action="store_true",
        help="after the campaign, run a directed schedule-search pass "
        "over its predicted race targets",
    )
    fuzz_p.add_argument(
        "--out", default="fuzz_report.json", metavar="PATH",
        help="campaign report path (default fuzz_report.json)",
    )
    fuzz_p.add_argument(
        "--replay-every", type=int, default=5,
        help="permutation-replay sample stride; 0 disables (default 5)",
    )
    fuzz_p.add_argument(
        "--no-oracles", action="store_true",
        help="skip differential oracles (sanitize only)",
    )
    fuzz_p.add_argument(
        "--strict", action="store_true",
        help="also fail on oracle failures, not just sanitizer "
        "violations",
    )

    predict_p = sub.add_parser(
        "predict",
        help="predictive (sync-preserving) race detection power sweep",
        parents=[shared],
    )
    predict_p.add_argument(
        "--app", action="append", dest="predict_apps", metavar="APP",
        help="app to analyze (repeatable; ids or module aliases; "
        "default: all 8)",
    )
    predict_p.add_argument(
        "--schedules", type=int, default=1,
        help="schedule seeds to sweep per app × spec (default 1)",
    )
    predict_p.add_argument(
        "--spec", choices=["manual", "sherlock", "both"], default="both",
        help="happens-before vocabulary: manual annotations "
        "(Manual_pr), SherLock's inference (SherLock_pr), or both "
        "(default both)",
    )
    predict_p.add_argument(
        "--policy", default="random", type=_policy_spec,
        help="kernel scheduling policy spec "
        f"(one of {policy_names()}, optionally parameterized; "
        "default random)",
    )
    predict_p.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the sweep as JSON",
    )
    predict_p.add_argument(
        "--convert", action="store_true",
        help="follow up with a directed schedule-search pass over the "
        "predicted-only races",
    )

    convert_p = sub.add_parser(
        "convert",
        help="directed schedule search over predicted-only races",
        parents=[shared],
    )
    convert_p.add_argument(
        "--app", action="append", dest="convert_apps", metavar="APP",
        help="app to convert (repeatable; ids or module aliases; "
        "default: all 8)",
    )
    convert_p.add_argument(
        "--schedules", type=int, default=4,
        help="directed schedules (seeds) per app × spec (default 4)",
    )
    convert_p.add_argument(
        "--spec", choices=["manual", "sherlock", "both"],
        default="manual",
        help="happens-before vocabulary (default manual)",
    )
    convert_p.add_argument(
        "--policy", default="random", type=_policy_spec,
        help="schedule policy of the observed baseline run "
        "(default random)",
    )
    convert_p.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the conversion report as JSON",
    )
    convert_p.add_argument(
        "--require-planted", action="store_true",
        help="exit non-zero when a planted (ground-truth racy) target "
        "fails to convert",
    )
    return parser


def _print_stats(report, runtime: ExecutionRuntime) -> None:
    print("-- stats " + "-" * 31)
    print(report.metrics.describe())
    print(f"engine: {runtime.engine!r}")
    if runtime.cache is not None:
        print(f"trace cache: {runtime.cache!r}")


def _cmd_infer(args, runtime: ExecutionRuntime) -> int:
    app = get_application(args.app_id)
    config = SherlockConfig(
        rounds=args.rounds, seed=args.seed, presolve=args.presolve
    )
    report = run(app, config, engine=runtime)
    gt = app.ground_truth
    print(report.describe())
    for sync in sorted(report.final.syncs, key=lambda s: s.display()):
        marker = "+" if gt.is_true_sync(sync) else "?"
        print(f"  [{marker}] {sync.display()}")
    correct = sum(1 for s in report.final.syncs if gt.is_true_sync(s))
    print(
        f"{correct} true / {len(report.final.syncs)} inferred; "
        f"{len(set(gt.syncs) - report.final.syncs)} missed"
    )
    if args.stats:
        _print_stats(report, runtime)
    return 0


def _cmd_races(args, runtime: ExecutionRuntime) -> int:
    app = get_application(args.app_id)
    config = SherlockConfig(
        rounds=args.rounds, seed=args.seed, presolve=args.presolve
    )
    report = run(app, config, engine=runtime)
    manual = detect_races(app, manual_spec(app), seed=args.seed)
    inferred = detect_races(app, sherlock_spec(report.final), seed=args.seed)
    print(f"{'detector':12s} {'true':>5s} {'false':>6s}")
    for result in (manual, inferred):
        print(
            f"{result.spec_name:12s} {result.true_races:5d} "
            f"{result.false_races:6d}"
        )
    if args.stats:
        _print_stats(report, runtime)
    return 0


def _cmd_fuzz(args, runtime: ExecutionRuntime) -> int:
    from .fuzz import CampaignConfig, run_campaign

    apps = args.fuzz_apps or args.apps or app_ids()
    config = CampaignConfig(
        app_ids=list(apps),
        schedules=args.schedules,
        base_seed=args.seed,
        rounds=args.rounds,
        policy=args.policy,
        workers=args.workers,
        engine=args.engine,
        replay_every=args.replay_every,
        oracles=not args.no_oracles,
    )
    report = run_campaign(config, runtime=runtime)
    with open(args.out, "w", encoding="utf-8") as fp:
        json.dump(report.to_dict(), fp, indent=2)
    print(report.summary())
    print(f"campaign report written to {args.out}")
    if args.convert:
        _convert_followup(
            args, runtime, apps, targets=report.schedule_targets()
        )
    return report.exit_code(strict=args.strict)


def _convert_followup(args, runtime, apps, targets=None, specs=("manual",)):
    """Directed schedule-search pass after a fuzz/predict command."""
    from .predict.convert import ConvertConfig, run_conversion

    config = ConvertConfig(
        app_ids=list(apps),
        base_seed=args.seed,
        rounds=args.rounds,
        specs=tuple(specs),
        workers=args.workers,
        engine=args.engine,
        targets=targets or None,
    )
    report = run_conversion(config, runtime=runtime)
    print(report.table().render())
    print(report.summary())
    return report


def _cmd_predict(args, runtime: ExecutionRuntime) -> int:
    from .predict import PowerConfig, run_power_sweep

    apps = args.predict_apps or args.apps or app_ids()
    specs = (
        ("manual", "sherlock") if args.spec == "both" else (args.spec,)
    )
    config = PowerConfig(
        app_ids=list(apps),
        schedules=args.schedules,
        base_seed=args.seed,
        rounds=args.rounds,
        policy=args.policy,
        specs=specs,
        workers=args.workers,
        engine=args.engine,
    )
    report = run_power_sweep(config, runtime=runtime)
    print(report.table().render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fp:
            json.dump(report.to_dict(), fp, indent=2)
        print(f"power sweep written to {args.out}")
    if args.convert:
        _convert_followup(args, runtime, apps, specs=specs)
    if not report.all_supersets_ok or report.total_invalid_witnesses:
        return 1
    return 0


def _cmd_convert(args, runtime: ExecutionRuntime) -> int:
    from .predict.convert import ConvertConfig, run_conversion

    apps = args.convert_apps or args.apps or app_ids()
    specs = (
        ("manual", "sherlock") if args.spec == "both" else (args.spec,)
    )
    config = ConvertConfig(
        app_ids=list(apps),
        schedules=args.schedules,
        base_seed=args.seed,
        rounds=args.rounds,
        policy=args.policy,
        specs=specs,
        workers=args.workers,
        engine=args.engine,
    )
    report = run_conversion(config, runtime=runtime)
    print(report.table().render())
    print(report.summary())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fp:
            json.dump(report.to_dict(), fp, indent=2)
        print(f"conversion report written to {args.out}")
    if args.stats:
        print("-- stats " + "-" * 31)
        print(report.metrics.describe())
    return report.exit_code(require_planted=args.require_planted)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if isinstance(args.apps, str):
        args.apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    if args.command == "apps":
        for app in all_applications():
            print(
                f"{app.app_id}: {app.name} "
                f"({len(app.tests)} tests, "
                f"{len(app.ground_truth.syncs)} true syncs)"
            )
        for app_id in family_app_ids():
            app = get_application(app_id)
            print(
                f"{app.app_id}: {app.name} "
                f"({len(app.tests)} tests, "
                f"{len(app.ground_truth.syncs)} true syncs) "
                f"[family tier]"
            )
        return 0
    with ExecutionRuntime(
        workers=args.workers,
        cache=coerce_cache(args.cache),
        engine=args.engine,
    ) as runtime:
        # Experiment regenerators pick this runtime up via run_all().
        common.set_default_runtime(runtime)
        try:
            return _dispatch(args, runtime)
        finally:
            common.set_default_runtime(None)


def _dispatch(args, runtime: ExecutionRuntime) -> int:
    if args.command == "infer":
        return _cmd_infer(args, runtime)
    if args.command == "races":
        return _cmd_races(args, runtime)
    if args.command == "fuzz":
        return _cmd_fuzz(args, runtime)
    if args.command == "predict":
        return _cmd_predict(args, runtime)
    if args.command == "convert":
        return _cmd_convert(args, runtime)
    if args.command == "table":
        print(_TABLES[args.name](args.apps).render())
        if args.stats and runtime.cache is not None:
            print(f"trace cache: {runtime.cache!r}")
        return 0
    if args.command == "report":
        from .analysis.report_writer import write_report

        with open(args.path, "w") as fp:
            sections = write_report(fp, args.apps)
        print(f"wrote {len(sections)} sections to {args.path}")
        return 0
    if args.command == "all":
        for name, runner in _TABLES.items():
            print(runner(args.apps).render())
            print()
        if args.stats and runtime.cache is not None:
            print(f"trace cache: {runtime.cache!r}")
        return 0
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
