"""Observation accumulation across runs (§4.3).

The store keeps every window, occurrence statistic, method-duration sample
and observed-data-race mark from all rounds so far.  The encoder rebuilds
the LP from the whole store after each round, exactly as the paper
describes ("SherLock does not throw away any constraints or objective
function terms obtained from previous runs").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import sqrt
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..trace.log import TraceLog
from ..trace.optypes import OpRef
from .windows import PairKey, Window


@dataclass
class MethodStats:
    """Duration samples for one method (Acquisition-Time-Varies input)."""

    durations: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.durations.append(value)

    @property
    def count(self) -> int:
        return len(self.durations)

    def coefficient_of_variation(self) -> Optional[float]:
        """stddev / mean, or None when under two samples or zero mean."""
        if len(self.durations) < 2:
            return None
        mean = sum(self.durations) / len(self.durations)
        if mean <= 0:
            return None
        variance = sum((d - mean) ** 2 for d in self.durations) / len(
            self.durations
        )
        return sqrt(variance) / mean


@dataclass
class IngestDelta:
    """What one :meth:`ObservationStore.ingest_run` call added.

    The incremental encoder consumes this to append only the new
    observations; ``new_racy_pairs`` non-empty means previously encoded
    Mostly-Protected terms are now invalid (race removal reaches back
    into earlier rounds) and the encoder must rebuild.
    """

    windows: List[Window] = field(default_factory=list)
    new_racy_pairs: Set[PairKey] = field(default_factory=set)
    events: int = 0


class ObservationStore:
    """All observations SherLock has accumulated so far."""

    def __init__(self) -> None:
        self.windows: List[Window] = []
        self.racy_pairs: Set[PairKey] = set()
        self.method_stats: Dict[str, MethodStats] = {}
        #: Names of ops observed with library=True metadata (Single Role).
        self.library_names: Set[str] = set()
        #: Op refs ever observed anywhere (for reporting).
        self.observed_ops: Set[OpRef] = set()
        self.runs_ingested: int = 0
        # Running per-op occurrence totals over *all* windows, exactly the
        # integer sums `average_occurrence` recomputes by scanning.  Kept
        # online so the incremental encoder's Eq. (4) lookups are O(1) per
        # round; `average_occurrence()` itself deliberately stays a full
        # rescan (it is the rebuild-from-scratch reference the fast path
        # is differentially tested and benchmarked against).
        self._rel_occ_total: Dict[OpRef, int] = {}
        self._rel_occ_windows: Dict[OpRef, int] = {}
        self._acq_occ_total: Dict[OpRef, int] = {}
        self._acq_occ_windows: Dict[OpRef, int] = {}

    # -- ingestion -----------------------------------------------------------

    def ingest_run(self, log: TraceLog, windows: Iterable[Window]) -> IngestDelta:
        """Add one run's windows and trace-derived statistics.

        Returns the delta this run contributed, for incremental encoding.
        """
        delta = IngestDelta()
        for window in windows:
            self.windows.append(window)
            delta.windows.append(window)
            if window.racy and window.pair_key not in self.racy_pairs:
                self.racy_pairs.add(window.pair_key)
                delta.new_racy_pairs.add(window.pair_key)
            for ref, count in window.release_side.items():
                self._rel_occ_total[ref] = (
                    self._rel_occ_total.get(ref, 0) + count
                )
                self._rel_occ_windows[ref] = (
                    self._rel_occ_windows.get(ref, 0) + 1
                )
            for ref, count in window.acquire_side.items():
                self._acq_occ_total[ref] = (
                    self._acq_occ_total.get(ref, 0) + count
                )
                self._acq_occ_windows[ref] = (
                    self._acq_occ_windows.get(ref, 0) + 1
                )
        for name, samples in log.method_durations().items():
            stats = self.method_stats.setdefault(name, MethodStats())
            for value in samples:
                stats.add(value)
        for event in log:
            self.observed_ops.add(event.ref)
            if event.meta.get("library"):
                self.library_names.add(event.name)
        delta.events = len(log)
        self.runs_ingested += 1
        return delta

    # -- queries ----------------------------------------------------------------

    def coverage_windows(self, race_removal: bool = True) -> List[Window]:
        """Windows that contribute Mostly-Protected terms: non-racy windows
        of pairs never observed racing (when race removal is on)."""
        out = []
        for window in self.windows:
            if window.racy:
                continue
            if race_removal and window.pair_key in self.racy_pairs:
                continue
            out.append(window)
        return out

    def candidate_ops(self) -> Tuple[Set[OpRef], Set[OpRef]]:
        """(release-side ops, acquire-side ops) across all windows."""
        release: Set[OpRef] = set()
        acquire: Set[OpRef] = set()
        for window in self.windows:
            release.update(window.release_side)
            acquire.update(window.acquire_side)
        return release, acquire

    def average_occurrence(self) -> Tuple[Dict[OpRef, float], Dict[OpRef, float]]:
        """Mean dynamic-instance count per window, per op, per side.

        Feeds Eq. (4): an op like a hot logging call or a spin-loop read
        appears many times inside each window it occupies and is penalized.
        """
        rel_total: Dict[OpRef, int] = {}
        rel_windows: Dict[OpRef, int] = {}
        acq_total: Dict[OpRef, int] = {}
        acq_windows: Dict[OpRef, int] = {}
        for window in self.windows:
            for ref, count in window.release_side.items():
                rel_total[ref] = rel_total.get(ref, 0) + count
                rel_windows[ref] = rel_windows.get(ref, 0) + 1
            for ref, count in window.acquire_side.items():
                acq_total[ref] = acq_total.get(ref, 0) + count
                acq_windows[ref] = acq_windows.get(ref, 0) + 1
        rel_avg = {r: rel_total[r] / rel_windows[r] for r in rel_total}
        acq_avg = {r: acq_total[r] / acq_windows[r] for r in acq_total}
        return rel_avg, acq_avg

    def average_occurrence_running(
        self,
    ) -> Tuple[Dict[OpRef, float], Dict[OpRef, float]]:
        """Same values as :meth:`average_occurrence` from the running
        totals — exact, because both sides sum the same integers before
        the one division."""
        rel_avg = {
            r: self._rel_occ_total[r] / self._rel_occ_windows[r]
            for r in self._rel_occ_total
        }
        acq_avg = {
            r: self._acq_occ_total[r] / self._acq_occ_windows[r]
            for r in self._acq_occ_total
        }
        return rel_avg, acq_avg

    def cv_percentiles(self) -> Dict[str, float]:
        """Percentile rank of each method's duration CV among all methods.

        Only methods with enough samples to have a CV are ranked; a method
        never observed twice carries no evidence of constant acquisition
        time and therefore receives no Eq. (5) penalty (it is absent from
        the returned map).  High variation → high percentile → low penalty.
        """
        cvs = {
            name: stats.coefficient_of_variation()
            for name, stats in self.method_stats.items()
        }
        known = sorted(v for v in cvs.values() if v is not None)
        out: Dict[str, float] = {}
        for name, cv in cvs.items():
            if cv is None or not known:
                continue
            rank = sum(1 for v in known if v <= cv)
            out[name] = rank / len(known)
        return out

    def stats(self) -> Mapping[str, int]:
        return {
            "windows": len(self.windows),
            "racy_pairs": len(self.racy_pairs),
            "methods_timed": len(self.method_stats),
            "library_names": len(self.library_names),
            "runs": self.runs_ingested,
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"ObservationStore(windows={s['windows']}, "
            f"racy_pairs={s['racy_pairs']}, runs={s['runs']})"
        )


__all__ = ["IngestDelta", "MethodStats", "ObservationStore"]
