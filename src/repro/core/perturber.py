"""The Perturber (§3, §4.3).

After every round, SherLock injects a delay right before every dynamic
instance of every operation the Solver currently considers a release
synchronization.  The kernel executes the plan; the propagation check and
window refinement live in :class:`~repro.core.windows.WindowExtractor`.

Trigger placement: binary instrumentation can only inject at call
boundaries.  A release that is a field write is delayed right before the
write; a release that is a method exit ``end(m)`` is delayed right before
the *call* (``begin(m)``) — delaying between the API's internal release
action and its return is physically impossible, and would make every true
release look refuted.
"""

from __future__ import annotations

from typing import Dict

from ..sim.kernel import DelaySpec
from ..trace.optypes import OpRef, OpType
from .config import SherlockConfig
from .solver import InferenceResult


def build_delay_plan(
    inference: InferenceResult, config: SherlockConfig
) -> Dict[OpRef, DelaySpec]:
    """Delay plan for the next round: every inferred release gets a delay.

    Keys are trigger operations; each spec carries the release site under
    test.  Empty when delay injection is disabled — and on the first
    round, when there is no inference yet (the caller passes no plan).
    """
    if not config.enable_delay_injection or config.delay <= 0:
        return {}
    plan: Dict[OpRef, DelaySpec] = {}
    for sync in inference.releases:
        site = sync.op
        if site.optype is OpType.EXIT:
            trigger = OpRef(site.name, OpType.ENTER)
        else:
            trigger = site
        plan[trigger] = DelaySpec(duration=config.delay, site=site)
    return plan


__all__ = ["build_delay_plan"]
