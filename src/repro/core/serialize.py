"""JSON serialization for SherLock reports.

Lets a pipeline run be archived and re-scored without re-execution —
the analysis layer and external tools (dashboards, CI diffing) can
consume the same artifact.
"""

from __future__ import annotations

import json
from typing import Any, Dict, TextIO

from ..trace.optypes import OpRef, OpType, Role, SyncOp
from .pipeline import SherlockReport
from .solver import InferenceResult


def _sync_to_dict(sync: SyncOp, probability: float) -> Dict[str, Any]:
    return {
        "name": sync.op.name,
        "op": sync.op.optype.value,
        "role": sync.role.value,
        "probability": probability,
    }


def sync_from_dict(data: Dict[str, Any]) -> SyncOp:
    """Rebuild a :class:`SyncOp` from its serialized form."""
    return SyncOp(OpRef(data["name"], OpType(data["op"])), Role(data["role"]))


def inference_to_dict(result: InferenceResult) -> Dict[str, Any]:
    # Which backend solved the LP is observability (it lives on
    # InferenceResult and RunMetrics) and is deliberately *not*
    # serialized: reports are backend-independent artifacts, and the
    # differential suite asserts the built-in backends produce
    # byte-identical report JSON.
    return {
        "objective": result.objective,
        "n_variables": result.n_variables,
        "n_constraints": result.n_constraints,
        "syncs": [
            _sync_to_dict(s, result.probabilities.get(s, 1.0))
            for s in sorted(result.syncs, key=lambda s: s.display())
        ],
    }


def report_to_dict(report: SherlockReport) -> Dict[str, Any]:
    """Serialize a full report (rounds, store stats, final inference)."""
    return {
        "app_id": report.app_id,
        "app_name": report.app_name,
        "config": {
            "near": report.config.near,
            "lam": report.config.lam,
            "rounds": report.config.rounds,
            "seed": report.config.seed,
            "delay": report.config.delay,
        },
        "store": dict(report.store.stats()),
        "rounds": [
            {
                "round": r.round_index,
                "windows": r.windows_total,
                "racy_pairs": r.racy_pairs_total,
                "events": r.events_observed,
                "delays": r.delays_injected,
                "errors": list(r.test_errors),
                "inference": inference_to_dict(r.inference),
            }
            for r in report.rounds
        ],
    }


def dump_report(report: SherlockReport, fp: TextIO, indent: int = 2) -> None:
    """Write a report as JSON."""
    json.dump(report_to_dict(report), fp, indent=indent)


def load_syncs(fp: TextIO) -> "set[SyncOp]":
    """Read back the final round's inferred syncs from a report JSON."""
    data = json.load(fp)
    final = data["rounds"][-1]["inference"]
    return {sync_from_dict(entry) for entry in final["syncs"]}


__all__ = [
    "dump_report",
    "inference_to_dict",
    "load_syncs",
    "report_to_dict",
    "sync_from_dict",
]
