"""The Observer (§4.1): instrumentation and trace capture.

The Observer decides which events reach SherLock.  Its skip-heuristic for
compiler-generated code is *intentionally* reproduced with the paper's
bug: methods the benchmark apps flag as ``hidden`` are wrongly classified
as compiler-generated and dropped from traces, which is the source of the
"Instr. Errors" false-positive category (§5.5).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.program import Application
from ..sim.runner import RunOptions, TestExecution, run_application
from ..trace.events import TraceEvent
from ..trace.optypes import OpRef
from .config import SherlockConfig


class Observer:
    """Runs an application's test suite with instrumentation applied."""

    def __init__(self, config: SherlockConfig) -> None:
        self.config = config

    def event_filter(self, event: TraceEvent) -> bool:
        """True when the event survives instrumentation.

        The skip-heuristic drops events of methods marked ``hidden`` —
        genuine application methods the heuristic misclassifies.
        """
        return not event.meta.get("hidden")

    def observe_round(
        self,
        app: Application,
        round_index: int,
        delay_plan: Optional[Dict[OpRef, float]] = None,
    ) -> List[TestExecution]:
        """Execute all unit tests once (one round) and return their traces."""
        options = RunOptions(
            seed=self.config.seed,
            run_id=round_index,
            op_cost=self.config.op_cost,
            delay_plan=dict(delay_plan or {}),
            event_filter=self.event_filter,
            max_steps=self.config.max_steps,
            schedule_policy=self.config.schedule_policy,
        )
        return run_application(app, options)


__all__ = ["Observer"]
