"""Solve the encoded LP and interpret the assignment (§4.2).

Variables assigned (approximately) 1 identify acquire and release
synchronizations.  The model has no trivial solution: Mostly-Protected
pushes at least one variable per window up, while the rare/regularizer
terms push everything down, so the optimum is a sparse cover of the
observed windows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..lp import Solution, SolveStatus
from ..trace.optypes import Role, SyncOp
from .config import SherlockConfig
from .encoder import IncrementalEncoder, build_model
from .stats import ObservationStore


class SolverError(RuntimeError):
    """Raised when the LP solve does not reach an optimum."""


@dataclass
class InferenceResult:
    """The solver's verdict after one round."""

    acquires: Set[SyncOp] = field(default_factory=set)
    releases: Set[SyncOp] = field(default_factory=set)
    #: Raw probability per candidate (only candidates with variables).
    probabilities: Dict[SyncOp, float] = field(default_factory=dict)
    objective: float = 0.0
    n_variables: int = 0
    n_constraints: int = 0
    backend: str = ""
    #: Performance observability (never serialized — reports must stay
    #: byte-identical between the incremental and rebuild paths).
    encode_s: float = 0.0
    solve_lp_s: float = 0.0
    lp_pivots: int = 0
    #: Basis LU (re)factorizations of the revised simplex backend.
    lp_factorizations: int = 0
    lp_refactorizations: int = 0
    #: Cold-solve phase breakdown of the revised simplex backend
    #: (seconds factorizing, in ftran/btran solves, and pricing) plus
    #: the packed eta-file length; zero for other backends.
    lp_factorize_s: float = 0.0
    lp_ftran_btran_s: float = 0.0
    lp_pricing_s: float = 0.0
    lp_eta_len: int = 0
    #: Presolve + dual re-solve observability (see
    #: :mod:`repro.lp.presolve` / :mod:`repro.lp.dual`): reduction time
    #: and rows/columns eliminated before the backend solve, dual-simplex
    #: re-solve pivots, primal phase-1 iterations, and whether the round
    #: did zero phase-1 work.
    lp_presolve_s: float = 0.0
    lp_presolve_rows_eliminated: int = 0
    lp_presolve_cols_eliminated: int = 0
    lp_dual_iterations: int = 0
    lp_phase1_iterations: int = 0
    lp_phase1_skipped: bool = False
    #: Variables/constraints actually appended this round (equals the
    #: full model size on a rebuild).
    lp_delta_variables: int = 0
    lp_delta_constraints: int = 0
    incremental: bool = False

    @property
    def syncs(self) -> Set[SyncOp]:
        return self.acquires | self.releases

    def sync_names(self) -> Set[str]:
        return {s.op.name for s in self.syncs}

    def contains(self, sync: SyncOp) -> bool:
        return sync in self.acquires or sync in self.releases

    def __repr__(self) -> str:
        return (
            f"InferenceResult(acquires={len(self.acquires)}, "
            f"releases={len(self.releases)}, objective={self.objective:.4g})"
        )


def infer(
    store: ObservationStore,
    config: SherlockConfig,
    encoder: Optional[IncrementalEncoder] = None,
) -> InferenceResult:
    """Encode the store, solve, and threshold the probabilities.

    With an ``encoder`` (see :class:`~repro.core.encoder.IncrementalEncoder`),
    encoding appends this round's delta onto the encoder's persistent
    model and the solve reuses the cached constraint-prefix lowering;
    without one, the model is rebuilt from the whole store (historical
    path, kept via ``SherlockConfig(incremental=False)``).  Both produce
    byte-identical results.
    """
    t_start = time.perf_counter()
    if encoder is not None:
        model, registry = encoder.encode(store)
    else:
        model, registry = build_model(store, config)
    t_encoded = time.perf_counter()
    if len(registry) == 0:
        return InferenceResult(backend="empty")

    if encoder is not None:
        solution: Solution = encoder.solve(config.backend)
    else:
        solution = model.solve(config.backend, presolve=config.presolve)
    t_solved = time.perf_counter()
    if solution.status is not SolveStatus.OPTIMAL:
        raise SolverError(
            f"LP solve failed with status {solution.status.value} "
            f"({model.stats()})"
        )

    result = InferenceResult(
        objective=solution.objective,
        n_variables=len(model.variables),
        n_constraints=len(model.constraints),
        backend=solution.backend,
        encode_s=t_encoded - t_start,
        solve_lp_s=t_solved - t_encoded,
        lp_pivots=solution.iterations,
        lp_factorizations=solution.factorizations,
        lp_refactorizations=solution.refactorizations,
        lp_factorize_s=solution.factorize_s,
        lp_ftran_btran_s=solution.ftran_btran_s,
        lp_pricing_s=solution.pricing_s,
        lp_eta_len=solution.eta_len,
        lp_presolve_s=solution.presolve_s,
        lp_presolve_rows_eliminated=solution.presolve_rows_eliminated,
        lp_presolve_cols_eliminated=solution.presolve_cols_eliminated,
        lp_dual_iterations=solution.dual_iterations,
        lp_phase1_iterations=solution.phase1_iterations,
        lp_phase1_skipped=solution.phase1_skipped,
        lp_delta_variables=(
            encoder.last_delta_variables
            if encoder is not None
            else len(model.variables)
        ),
        lp_delta_constraints=(
            encoder.last_delta_constraints
            if encoder is not None
            else len(model.constraints)
        ),
        incremental=encoder is not None,
    )
    for sync, variable in registry.items():
        probability = solution.values.get(variable, 0.0)
        result.probabilities[sync] = probability
        if probability >= config.threshold:
            if sync.role is Role.ACQUIRE:
                result.acquires.add(sync)
            else:
                result.releases.add(sync)
    return result


__all__ = ["InferenceResult", "SolverError", "infer"]
