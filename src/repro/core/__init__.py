"""SherLock core: unsupervised synchronization-operation inference.

The paper's primary contribution: the Observer (window extraction over
instrumented traces), the Solver (LP encoding of synchronization
properties and hypotheses), and the Perturber (feedback-based delay
injection), orchestrated over multiple rounds.
"""

from .candidates import CandidateRegistry
from .config import SherlockConfig, TABLE5_ABLATIONS
from .encoder import build_model
from .observer import Observer
from .perturber import build_delay_plan
from .pipeline import RoundResult, Sherlock, SherlockReport, run_sherlock
from .serialize import dump_report, load_syncs, report_to_dict
from .solver import InferenceResult, SolverError, infer
from .stats import MethodStats, ObservationStore
from .windows import PairKey, Window, WindowExtractor

__all__ = [
    "CandidateRegistry",
    "InferenceResult",
    "MethodStats",
    "ObservationStore",
    "Observer",
    "PairKey",
    "RoundResult",
    "Sherlock",
    "SherlockConfig",
    "SherlockReport",
    "SolverError",
    "TABLE5_ABLATIONS",
    "Window",
    "WindowExtractor",
    "build_delay_plan",
    "dump_report",
    "load_syncs",
    "report_to_dict",
    "build_model",
    "infer",
    "run_sherlock",
]
