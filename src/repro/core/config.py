"""SherLock configuration.

Defaults mirror the paper: ``Near`` = 1 s, window cap = 15 per static
location pair, λ = 0.2, rare coefficient 0.1, 100 ms injected delays,
3 rounds per input.  Every hypothesis/property and every Perturber
mechanism has a toggle so the ablations of Table 5 and Figure 4 are plain
config changes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict

from ..sim.kernel import DEFAULT_OP_COST
from ..sim.schedule import build_policy


@dataclass
class SherlockConfig:
    """All knobs of the SherLock pipeline."""

    # -- Observer (§4.1) -----------------------------------------------------
    #: Physical-time filter for conflicting-access pairs, seconds.
    near: float = 1.0
    #: Max windows one static location pair may contribute **per trace
    #: log** (one test execution's trace).  The counter resets for every
    #: log; a pair observed in k logs of a round may contribute up to
    #: ``k * window_cap`` windows to the round.  This per-log scoping is
    #: load-bearing for the incremental encoder: its append-only window
    #: stream relies on a log's window set being independent of any
    #: other log, so already-encoded windows never retroactively fall
    #: out of the cap.
    window_cap: int = 15
    #: Scope of ``window_cap``.  Only ``"per-log"`` is supported; the
    #: field exists so cross-round/cross-run cap semantics are an
    #: explicit, validated choice rather than an ambiguity (requesting
    #: an unimplemented scope fails at construction).
    window_cap_scope: str = "per-log"

    # -- Solver (§4.2) -------------------------------------------------------
    #: Trade-off between Mostly-Protected and all other hypotheses (Eq. 8).
    lam: float = 0.2
    #: Coefficient of the occurrence penalty (Eq. 4).
    rare_coef: float = 0.1
    #: Probability at/above which a variable counts as "assigned 1".
    threshold: float = 0.9
    #: LP backend: "auto" (scipy, falling back to the built-in revised
    #: simplex) | "scipy"/"highs" | "simplex"/"revised-simplex" (sparse
    #: revised simplex, the built-in default) | "dense-tableau" (the
    #: historical dense reference implementation).
    backend: str = "auto"
    #: Use the analysis fast path: indexed window extraction plus the
    #: incremental round-over-round encoder/solver.  ``False`` keeps the
    #: historical all-pairs + rebuild-from-scratch path alive for
    #: differential testing; both produce byte-identical reports.
    incremental: bool = True
    #: LP presolve (:mod:`repro.lp.presolve`): reduce scale-tier-sized
    #: standard forms (duplicate/twin row merging, fixed/empty column
    #: elimination, equilibration scaling) before the backend solves
    #: them, with an exact postsolve.  Identity below the 4096-column
    #: gate, so paper-sized reports are byte-identical either way;
    #: ``False`` is the escape hatch that disables it everywhere.
    presolve: bool = True

    # -- Perturber (§3, §4.3) --------------------------------------------------
    #: Injected delay before each inferred-release instance, seconds.
    delay: float = 0.1
    #: Rounds per input (paper default: 3).
    rounds: int = 3

    # -- execution ---------------------------------------------------------------
    seed: int = 0
    op_cost: float = DEFAULT_OP_COST
    max_steps: int = 2_000_000
    #: Kernel scheduling-policy spec: "random" (uniform, the default) or
    #: "pct"/"pct:<change-prob>" (priority-based schedule exploration).
    schedule_policy: str = "random"
    #: Execution-engine spec used when no runtime/engine is supplied at
    #: the call site: "auto" (serial for ``repro.run``, async for
    #: ``repro.arun``) | "serial" | "process[:N]" | "async[:N]".
    #: Execution-only: engines never change results (byte-identical
    #: reports), so this is not part of trace-cache keys or serialized
    #: reports.
    engine: str = "auto"

    # -- hypothesis & property toggles (Table 5) -----------------------------------
    hyp_mostly_protected: bool = True
    hyp_rare: bool = True
    hyp_acq_time_varies: bool = True
    hyp_mostly_paired: bool = True
    prop_read_acq_write_rel: bool = True
    prop_single_role: bool = True
    #: The paper's §5.5 future-work extension: treat Single-Role as a soft
    #: constraint (a λ-weighted penalty) instead of a hard one, so genuine
    #: double-role APIs like ``UpgradeToWriteLock`` can win both roles.
    single_role_soft: bool = False

    # -- Perturber / feedback toggles (Figure 4) --------------------------------------
    enable_delay_injection: bool = True
    accumulate_across_runs: bool = True
    enable_race_removal: bool = True
    #: Apply Figure 2 (b)/(c) window refinement from observed delays.
    enable_window_refinement: bool = True

    def __post_init__(self) -> None:
        # Invalid configs fail at construction (and after ``without()``,
        # which goes through ``replace`` → ``__init__`` → here), not only
        # when a pipeline eventually touches them.
        self.validate()

    def without(self, **changes: Any) -> "SherlockConfig":
        """A validated copy with the given fields changed (ablation helper)."""
        return replace(self, **changes)

    def validate(self) -> None:
        """Re-check field invariants (kept public for back-compat)."""
        from ..lp.backends import available_backends

        if self.near <= 0:
            raise ValueError("near must be positive")
        if self.window_cap < 1:
            raise ValueError("window_cap must be >= 1")
        if self.window_cap_scope != "per-log":
            raise ValueError(
                f"window_cap_scope {self.window_cap_scope!r} is not "
                "supported: the cap is applied per trace log (see the "
                "window_cap field docs); cross-round or cross-run caps "
                "would retroactively invalidate already-encoded windows"
            )
        if self.backend not in available_backends():
            raise ValueError(
                f"unknown LP backend {self.backend!r}; choose from "
                f"{sorted(available_backends())}"
            )
        if not isinstance(self.presolve, bool):
            raise ValueError(
                f"presolve must be True or False, got {self.presolve!r}"
            )
        if self.lam < 0:
            raise ValueError("lambda must be non-negative")
        if not (0.0 < self.threshold <= 1.0):
            raise ValueError("threshold must be in (0, 1]")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        build_policy(self.schedule_policy)  # raises ValueError when unknown
        # Deferred import: runtime.engines itself imports core modules.
        from ..runtime.engines import validate_engine_spec

        validate_engine_spec(self.engine)  # raises ValueError when unknown


#: Ablation settings used by Table 5, keyed by the paper's row labels.
TABLE5_ABLATIONS: Dict[str, Dict[str, Any]] = {
    "SherLock": {},
    "w/o Mostly are Protected": {"hyp_mostly_protected": False},
    "w/o Synchronizations are Rare": {"hyp_rare": False},
    "w/o Acq-Time Varies": {"hyp_acq_time_varies": False},
    "w/o Mostly are Paired": {"hyp_mostly_paired": False},
    "w/o Read-Acq & Write-Rel": {"prop_read_acq_write_rel": False},
    "w/o Single Role": {"prop_single_role": False},
}


__all__ = ["SherlockConfig", "TABLE5_ABLATIONS"]
