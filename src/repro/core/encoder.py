"""LP encoding of the synchronization properties and hypotheses (§4.2).

Builds, from an :class:`~repro.core.stats.ObservationStore`, the linear
program of Equations (1)–(8):

* **Read-Acquire & Write-Release** (Eq. 1) — enforced structurally by the
  :class:`~repro.core.candidates.CandidateRegistry`.
* **Single Role** — for a library API ``l``:
  ``begin(l)^acq + end(l)^rel <= 1``.  (The paper prints the constraint
  with the roles that Eq. 1 already pins to zero, which would be vacuous;
  we encode the evidently intended capable-role pair, which is what makes
  ``UpgradeToWriteLock``'s double role a real conflict.)
* **Mostly Protected** (Eq. 2) — per window ``w``:
  ``max(0, 1 - sum of release vars)`` + the acquire twin, each variable
  counted once per window regardless of dynamic instances.
* **Synchronizations are Rare** (Eqs. 3, 4) — regularizer ``v`` plus
  ``0.1 * avg_occurrence(v) * v``.
* **Acquisition-Time Mostly Varies** (Eq. 5) —
  ``(1 - percentile(CV(duration(m)))) * begin(m)^acq``.
* **Mostly Paired** (Eqs. 6, 7) — per class ``|Σ acq − Σ rel|`` over its
  method candidates; per field ``|read(f)^acq − write(f)^rel|``.

The overall objective (Eq. 8) weights the Mostly-Protected terms at 1 and
every other hypothesis at λ (default 0.2), matching the paper's described
trade-off (λ up ⇒ fewer inferred synchronizations, Table 6).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..lp import LinExpr, Model, StandardForm, StandardFormCache
from ..lp import solve as lp_solve
from ..lp.solution import Solution
from ..trace.optypes import OpRef, OpType, Role
from .candidates import CandidateRegistry
from .config import SherlockConfig
from .stats import ObservationStore
from .windows import Window

#: (release-side averages, acquire-side averages) — Eq. (4) input.
Occurrence = Tuple[Dict[OpRef, float], Dict[OpRef, float]]


def _append_protected(
    model: Model,
    registry: CandidateRegistry,
    windows: List[Window],
    config: SherlockConfig,
) -> None:
    """Mostly-Protected terms (Eq. 2) plus the variable-ensure pass for
    the given coverage windows.  Appending is order-preserving, so
    calling this once with all windows (rebuild) or repeatedly with each
    round's new windows (incremental) creates identical variables,
    auxiliaries and constraints in identical order."""
    if config.hyp_mostly_protected:
        for window in windows:
            rel_vars = registry.release_vars(window.release_side)
            if rel_vars:
                model.add_max0_term(1 - LinExpr.total(rel_vars), weight=1.0)
            acq_vars = registry.acquire_vars(window.acquire_side)
            if acq_vars:
                model.add_max0_term(1 - LinExpr.total(acq_vars), weight=1.0)

    # Ensure every candidate ever seen in a non-racy window has a variable
    # even when Mostly-Protected is ablated, so downstream terms and the
    # result interpretation stay well-defined.
    for window in windows:
        registry.release_vars(window.release_side)
        registry.acquire_vars(window.acquire_side)


def _append_sections(
    model: Model,
    registry: CandidateRegistry,
    store: ObservationStore,
    config: SherlockConfig,
    occurrence: Optional[Occurrence],
) -> None:
    """The store-global objective sections (Eqs. 3–7 and Single Role).

    These depend on whole-store statistics, so the incremental encoder
    re-appends them after every round (on top of a rolled-back
    checkpoint) rather than patching them in place."""
    lam = config.lam

    # -- Synchronizations are Rare (Eqs. 3 and 4) ------------------------------
    # λ trades Mostly-Protected off against all other hypotheses; the
    # sparsity terms are normalized so the default λ = 0.2 yields a unit
    # regularizer (a variable must cover more than one window to pay for
    # itself), and larger λ shrinks the inferred set as in Table 6.
    sparsity = lam / 0.2
    if config.hyp_rare:
        rel_avg, acq_avg = occurrence
        rare_coef = config.rare_coef
        for sync, variable in registry.items():
            side_avg = rel_avg if sync.role is Role.RELEASE else acq_avg
            occ = side_avg.get(sync.op, 1.0)
            # Eq. 3 regularizer plus the Eq. 4 occurrence weight in one
            # exact add: both start from a zero entry, so
            # ``0 + (a + b) == (0 + a) + b`` bit-for-bit.
            model.add_objective_term(
                variable, sparsity + sparsity * rare_coef * occ
            )

    # -- Acquisition-Time Mostly Varies (Eq. 5) ----------------------------------
    # Weighted by λ like the pair terms: it is a preference nudge, not a
    # sparsity force — otherwise constant-duration true acquires (test
    # begins, one-shot delegates) could never be inferred.
    if config.hyp_acq_time_varies:
        percentiles = store.cv_percentiles()
        for sync, variable in registry.items():
            if sync.role is Role.ACQUIRE and sync.op.optype is OpType.ENTER:
                # Methods with no duration evidence carry no penalty.
                pct = percentiles.get(sync.op.name)
                if pct is not None and pct < 1.0:
                    model.add_objective_term(variable, lam * (1.0 - pct))

    # -- Mostly Paired (Eqs. 6 and 7) ----------------------------------------------
    if config.hyp_mostly_paired:
        _encode_paired(model, registry, lam)

    # -- Single Role ------------------------------------------------------------------
    if config.prop_single_role:
        _encode_single_role(
            model,
            registry,
            store.library_names,
            soft_weight=lam if config.single_role_soft else None,
        )


def build_model(
    store: ObservationStore, config: SherlockConfig
) -> Tuple[Model, CandidateRegistry]:
    """Encode the store's observations into an LP model from scratch.

    This is the historical rebuild path — the reference the incremental
    encoder is differentially tested (and benchmarked) against.
    """
    model = Model("sherlock")
    registry = CandidateRegistry(
        model, enforce_capability=config.prop_read_acq_write_rel
    )
    windows = store.coverage_windows(config.enable_race_removal)
    _append_protected(model, registry, windows, config)
    occurrence = store.average_occurrence() if config.hyp_rare else None
    _append_sections(model, registry, store, config, occurrence)
    return model, registry


class IncrementalEncoder:
    """Round-over-round LP encoding that appends instead of rebuilding.

    The Mostly-Protected terms are the only per-window (and therefore
    monotonically growing) part of the encoding; everything else — Rare,
    CV, Paired, Single-Role — is a store-global section.  The encoder
    keeps one persistent model whose prefix holds the MP terms of every
    window encoded so far, takes a :meth:`~repro.lp.Model.checkpoint`
    after the prefix, and on each round:

    1. rolls the model back to the checkpoint (dropping last round's
       sections),
    2. appends MP terms for the round's *new* coverage windows and moves
       the checkpoint,
    3. re-appends the sections from the store's running statistics.

    Because appends replay the exact operation sequence of a fresh
    :func:`build_model` over the full store (same variable/constraint
    creation order, same auxiliary numbering, same objective
    arithmetic), the encoded model is float-identical to a rebuild and
    serialized reports stay byte-identical.  Two events force a full
    rebuild: a store swap (``accumulate_across_runs=False``) and new
    racy pairs (race removal reaches back into already-encoded windows).

    Solving goes through a :class:`~repro.lp.StandardFormCache` (the
    stable prefix of the constraint matrix is lowered once) and, for the
    simplex backend, a warm start from the previous round's basis.  A
    warm-started simplex still returns an optimal vertex but not
    necessarily the same one as a cold start; the default scipy backend
    is unaffected.
    """

    def __init__(self, config: SherlockConfig) -> None:
        self.config = config
        self.model: Optional[Model] = None
        self.registry: Optional[CandidateRegistry] = None
        self._cp = None
        self._store: Optional[ObservationStore] = None
        self._n_windows_seen = 0
        self._racy_pairs: frozenset = frozenset()
        self._form_cache = StandardFormCache()
        self._warm_basis = None
        #: Observability: whether the last encode() was a full rebuild,
        #: and how many variables/constraints it appended.
        self.last_rebuild = False
        self.last_delta_variables = 0
        self.last_delta_constraints = 0

    def encode(
        self, store: ObservationStore
    ) -> Tuple[Model, CandidateRegistry]:
        """Bring the persistent model up to date with ``store``."""
        config = self.config
        racy = frozenset(store.racy_pairs)
        rebuild = (
            self.model is None
            or store is not self._store
            or (config.enable_race_removal and racy != self._racy_pairs)
        )
        if rebuild:
            self.model = Model("sherlock")
            self.registry = CandidateRegistry(
                self.model,
                enforce_capability=config.prop_read_acq_write_rel,
            )
            self._form_cache.reset()
            self._warm_basis = None
            base_vars = base_cons = 0
            windows = store.coverage_windows(config.enable_race_removal)
        else:
            self.model.rollback(self._cp)
            base_vars = len(self.model.variables)
            base_cons = len(self.model.constraints)
            windows = [
                w
                for w in store.windows[self._n_windows_seen:]
                if not w.racy
                and (
                    not config.enable_race_removal
                    or w.pair_key not in store.racy_pairs
                )
            ]
        _append_protected(self.model, self.registry, windows, config)
        self._cp = self.model.checkpoint()
        self._store = store
        self._n_windows_seen = len(store.windows)
        self._racy_pairs = racy
        occurrence = (
            store.average_occurrence_running() if config.hyp_rare else None
        )
        _append_sections(self.model, self.registry, store, config, occurrence)
        self.last_rebuild = rebuild
        self.last_delta_variables = len(self.model.variables) - base_vars
        self.last_delta_constraints = len(self.model.constraints) - base_cons
        return self.model, self.registry

    def solve(self, backend: Optional[str] = None) -> Solution:
        """Solve the current model, reusing the cached prefix lowering
        and (simplex only) last round's basis."""
        backend = backend if backend is not None else self.config.backend
        form: StandardForm = self.model.to_standard_form_cached(
            self._form_cache, self._cp.n_constraints
        )
        solution = lp_solve(
            self.model,
            backend,
            form=form,
            warm_basis=self._warm_basis,
            presolve=self.config.presolve,
        )
        self._warm_basis = solution.basis
        return solution


def _encode_paired(
    model: Model, registry: CandidateRegistry, lam: float
) -> None:
    # Eq. 6: per class, method acquires and releases should balance.
    by_class: Dict[str, List] = {}
    for sync, variable in registry.items():
        if sync.op.optype.is_method:
            by_class.setdefault(sync.op.class_name, []).append(
                (sync.role, variable)
            )
    for members in by_class.values():
        expr = LinExpr()
        for role, variable in members:
            expr = expr + variable if role is Role.ACQUIRE else expr - variable
        if expr.terms:
            model.add_abs_term(expr, weight=lam)

    # Eq. 7: per field, read-acquire pairs with write-release.
    fields: Set[str] = set()
    for sync, _ in registry.items():
        if sync.op.optype.is_memory:
            fields.add(sync.op.name)
    for name in fields:
        read_var = registry.lookup(OpRef(name, OpType.READ), Role.ACQUIRE)
        write_var = registry.lookup(OpRef(name, OpType.WRITE), Role.RELEASE)
        expr = LinExpr()
        if read_var is not None:
            expr = expr + read_var
        if write_var is not None:
            expr = expr - write_var
        if expr.terms:
            model.add_abs_term(expr, weight=lam)


def _encode_single_role(
    model: Model,
    registry: CandidateRegistry,
    library_names: Set[str],
    soft_weight: float = None,
) -> None:
    """Single-Role for library APIs.

    Hard by default (``begin^acq + end^rel <= 1``); with ``soft_weight``
    set (the paper's §5.5 future-work suggestion) the violation is merely
    penalized, letting genuine double-role APIs win both roles when the
    window evidence is strong enough.
    """
    for name in library_names:
        begin_acq = registry.lookup(OpRef(name, OpType.ENTER), Role.ACQUIRE)
        end_rel = registry.lookup(OpRef(name, OpType.EXIT), Role.RELEASE)
        if begin_acq is None or end_rel is None:
            continue
        if soft_weight is None:
            model.add_constraint(
                begin_acq + end_rel <= 1, name=f"single_role:{name}"
            )
        else:
            model.add_max0_term(
                begin_acq + end_rel - 1, weight=soft_weight
            )


__all__ = ["IncrementalEncoder", "build_model"]
