"""LP encoding of the synchronization properties and hypotheses (§4.2).

Builds, from an :class:`~repro.core.stats.ObservationStore`, the linear
program of Equations (1)–(8):

* **Read-Acquire & Write-Release** (Eq. 1) — enforced structurally by the
  :class:`~repro.core.candidates.CandidateRegistry`.
* **Single Role** — for a library API ``l``:
  ``begin(l)^acq + end(l)^rel <= 1``.  (The paper prints the constraint
  with the roles that Eq. 1 already pins to zero, which would be vacuous;
  we encode the evidently intended capable-role pair, which is what makes
  ``UpgradeToWriteLock``'s double role a real conflict.)
* **Mostly Protected** (Eq. 2) — per window ``w``:
  ``max(0, 1 - sum of release vars)`` + the acquire twin, each variable
  counted once per window regardless of dynamic instances.
* **Synchronizations are Rare** (Eqs. 3, 4) — regularizer ``v`` plus
  ``0.1 * avg_occurrence(v) * v``.
* **Acquisition-Time Mostly Varies** (Eq. 5) —
  ``(1 - percentile(CV(duration(m)))) * begin(m)^acq``.
* **Mostly Paired** (Eqs. 6, 7) — per class ``|Σ acq − Σ rel|`` over its
  method candidates; per field ``|read(f)^acq − write(f)^rel|``.

The overall objective (Eq. 8) weights the Mostly-Protected terms at 1 and
every other hypothesis at λ (default 0.2), matching the paper's described
trade-off (λ up ⇒ fewer inferred synchronizations, Table 6).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..lp import LinExpr, Model
from ..trace.optypes import OpRef, OpType, Role
from .candidates import CandidateRegistry
from .config import SherlockConfig
from .stats import ObservationStore


def build_model(
    store: ObservationStore, config: SherlockConfig
) -> Tuple[Model, CandidateRegistry]:
    """Encode the store's observations into an LP model."""
    model = Model("sherlock")
    registry = CandidateRegistry(
        model, enforce_capability=config.prop_read_acq_write_rel
    )
    lam = config.lam

    windows = store.coverage_windows(config.enable_race_removal)

    # -- Mostly Protected (Eq. 2) -------------------------------------------
    if config.hyp_mostly_protected:
        for window in windows:
            rel_vars = registry.release_vars(window.release_side)
            if rel_vars:
                model.add_max0_term(1 - LinExpr.total(rel_vars), weight=1.0)
            acq_vars = registry.acquire_vars(window.acquire_side)
            if acq_vars:
                model.add_max0_term(1 - LinExpr.total(acq_vars), weight=1.0)

    # Ensure every candidate ever seen in a non-racy window has a variable
    # even when Mostly-Protected is ablated, so downstream terms and the
    # result interpretation stay well-defined.
    for window in windows:
        registry.release_vars(window.release_side)
        registry.acquire_vars(window.acquire_side)

    # -- Synchronizations are Rare (Eqs. 3 and 4) ------------------------------
    # λ trades Mostly-Protected off against all other hypotheses; the
    # sparsity terms are normalized so the default λ = 0.2 yields a unit
    # regularizer (a variable must cover more than one window to pay for
    # itself), and larger λ shrinks the inferred set as in Table 6.
    sparsity = lam / 0.2
    if config.hyp_rare:
        rel_avg, acq_avg = store.average_occurrence()
        for sync, variable in registry.items():
            model.add_objective_term(variable, sparsity)  # Eq. 3
            side_avg = rel_avg if sync.role is Role.RELEASE else acq_avg
            occurrence = side_avg.get(sync.op, 1.0)
            model.add_objective_term(
                variable, sparsity * config.rare_coef * occurrence
            )

    # -- Acquisition-Time Mostly Varies (Eq. 5) ----------------------------------
    # Weighted by λ like the pair terms: it is a preference nudge, not a
    # sparsity force — otherwise constant-duration true acquires (test
    # begins, one-shot delegates) could never be inferred.
    if config.hyp_acq_time_varies:
        percentiles = store.cv_percentiles()
        for sync, variable in registry.items():
            if sync.role is Role.ACQUIRE and sync.op.optype is OpType.ENTER:
                # Methods with no duration evidence carry no penalty.
                pct = percentiles.get(sync.op.name)
                if pct is not None and pct < 1.0:
                    model.add_objective_term(variable, lam * (1.0 - pct))

    # -- Mostly Paired (Eqs. 6 and 7) ----------------------------------------------
    if config.hyp_mostly_paired:
        _encode_paired(model, registry, lam)

    # -- Single Role ------------------------------------------------------------------
    if config.prop_single_role:
        _encode_single_role(
            model,
            registry,
            store.library_names,
            soft_weight=lam if config.single_role_soft else None,
        )

    return model, registry


def _encode_paired(
    model: Model, registry: CandidateRegistry, lam: float
) -> None:
    # Eq. 6: per class, method acquires and releases should balance.
    by_class: Dict[str, List] = {}
    for sync, variable in registry.items():
        if sync.op.optype.is_method:
            by_class.setdefault(sync.op.class_name, []).append(
                (sync.role, variable)
            )
    for members in by_class.values():
        expr = LinExpr()
        for role, variable in members:
            expr = expr + variable if role is Role.ACQUIRE else expr - variable
        if expr.terms:
            model.add_abs_term(expr, weight=lam)

    # Eq. 7: per field, read-acquire pairs with write-release.
    fields: Set[str] = set()
    for sync, _ in registry.items():
        if sync.op.optype.is_memory:
            fields.add(sync.op.name)
    for name in fields:
        read_var = registry.lookup(OpRef(name, OpType.READ), Role.ACQUIRE)
        write_var = registry.lookup(OpRef(name, OpType.WRITE), Role.RELEASE)
        expr = LinExpr()
        if read_var is not None:
            expr = expr + read_var
        if write_var is not None:
            expr = expr - write_var
        if expr.terms:
            model.add_abs_term(expr, weight=lam)


def _encode_single_role(
    model: Model,
    registry: CandidateRegistry,
    library_names: Set[str],
    soft_weight: float = None,
) -> None:
    """Single-Role for library APIs.

    Hard by default (``begin^acq + end^rel <= 1``); with ``soft_weight``
    set (the paper's §5.5 future-work suggestion) the violation is merely
    penalized, letting genuine double-role APIs win both roles when the
    window evidence is strong enough.
    """
    for name in library_names:
        begin_acq = registry.lookup(OpRef(name, OpType.ENTER), Role.ACQUIRE)
        end_rel = registry.lookup(OpRef(name, OpType.EXIT), Role.RELEASE)
        if begin_acq is None or end_rel is None:
            continue
        if soft_weight is None:
            model.add_constraint(
                begin_acq + end_rel <= 1, name=f"single_role:{name}"
            )
        else:
            model.add_max0_term(
                begin_acq + end_rel - 1, weight=soft_weight
            )


__all__ = ["build_model"]
