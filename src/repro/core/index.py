"""Per-log indexes for the window-extraction fast path.

The all-pairs extraction loop in :mod:`repro.core.windows` re-scans the
whole trace for every window it builds: ``log.between`` walks the log
from event 0, ``_innermost_open_call`` replays every thread's call stack
from the start, and the conflicting-pair scan considers every later
access for every endpoint.  :class:`TraceIndex` precomputes, once per
log:

* **conflict groups** — accesses bucketed by the static identity that
  can ever conflict (``(is_memory, address, field)`` for heap accesses,
  ``(is_memory, address)`` for thread-unsafe API calls), so the pair
  scan only visits accesses that share a group;
* **timestamp array** — a bisect-able view of the event list so window
  bodies are slices instead of scans;
* **open-call interval index** — per-thread change points of the
  innermost open ENTER, so "which call was thread T inside at time t?"
  is one bisect;
* **per-thread delay lists** — the Perturber's injected delays sorted
  by start per thread, so refinement stops filtering the global list;
* **ENTER↔EXIT matching** — the same per-thread call-stack pairing the
  extractor always needed, computed in the same pass.

Every query is defined to return *exactly* what the corresponding
linear-scan code in :class:`~repro.core.windows.WindowExtractor` returns
— the indexed and all-pairs extraction paths are differentially tested
for equality.  Logs whose events are not in non-decreasing timestamp
order (which the kernel never produces, but arbitrary hand-built logs
may be) are flagged ``sorted=False`` and the extractor falls back to
the linear scans for them.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from ..trace.events import DelayInterval, TraceEvent
from ..trace.log import TraceLog
from ..trace.optypes import OpRef, OpType

#: Static conflict-group identity of one access event.
GroupKey = Tuple[bool, int, Optional[str]]


def group_key(event: TraceEvent) -> GroupKey:
    """The bucket within which ``_accesses_conflict`` can ever hold.

    Two accesses in different buckets always fail the address /
    memory-vs-API / field checks; thread and write-capability checks
    remain per-pair.
    """
    if event.is_memory:
        return (True, event.address, event.name)
    return (False, event.address, None)


class TraceIndex:
    """Precomputed queries over one run's :class:`TraceLog`."""

    def __init__(self, log: TraceLog) -> None:
        self.log = log
        events = log.events
        self.timestamps: List[float] = [e.timestamp for e in events]
        self.sorted: bool = all(
            self.timestamps[i] <= self.timestamps[i + 1]
            for i in range(len(self.timestamps) - 1)
        )
        #: ``seq`` stamps are the positional indexes ``TraceLog.append``
        #: assigns; hand-built logs that bypassed ``append`` fall back to
        #: the linear-scan path (their ``seq`` cannot key the ref table).
        seq_ok = all(e.seq == i for i, e in enumerate(events))
        #: Whether the fast extraction path may use this index at all.
        self.indexable: bool = self.sorted and seq_ok
        # -- interned static refs (one OpRef per distinct (name, optype)) --
        #: ``ref_ids[event.seq]`` is a dense small-int id of the event's
        #: static op; ``ref_objs[rid]`` the shared OpRef instance.  Lets
        #: the extractor count per-side occurrences with int keys and only
        #: touch OpRef hashing once per distinct op per window.
        self.ref_ids: List[int] = []
        self.ref_objs: List[OpRef] = []
        intern: Dict[Tuple[str, OpType], int] = {}
        # -- per-thread event slices (window bodies bisect these) ---------
        self._thread_times: Dict[int, List[float]] = {}
        self._thread_events: Dict[int, List[TraceEvent]] = {}
        # -- ENTER↔EXIT matching and open-call change points (one pass) --
        stacks: Dict[Tuple[int, str], List[TraceEvent]] = {}
        open_stacks: Dict[int, List[TraceEvent]] = {}
        self.exit_to_enter: Dict[int, TraceEvent] = {}
        #: Per thread: parallel (times, innermost-ENTER-after-event) lists.
        self._open_times: Dict[int, List[float]] = {}
        self._open_states: Dict[int, List[Optional[TraceEvent]]] = {}
        for e in events:
            rid = intern.get((e.name, e.optype))
            if rid is None:
                rid = len(self.ref_objs)
                intern[(e.name, e.optype)] = rid
                self.ref_objs.append(OpRef(e.name, e.optype))
            self.ref_ids.append(rid)
            tt = self._thread_times.get(e.thread_id)
            if tt is None:
                tt = self._thread_times[e.thread_id] = []
                self._thread_events[e.thread_id] = []
            tt.append(e.timestamp)
            self._thread_events[e.thread_id].append(e)
            if e.optype is OpType.ENTER:
                stacks.setdefault((e.thread_id, e.name), []).append(e)
                stack = open_stacks.setdefault(e.thread_id, [])
                stack.append(e)
            elif e.optype is OpType.EXIT:
                matched = stacks.get((e.thread_id, e.name))
                if matched:
                    self.exit_to_enter[e.seq] = matched.pop()
                stack = open_stacks.setdefault(e.thread_id, [])
                # Innermost matching ENTER and everything above it close,
                # mirroring WindowExtractor._innermost_open_call exactly.
                for i in range(len(stack) - 1, -1, -1):
                    if stack[i].name == e.name:
                        del stack[i:]
                        break
            else:
                continue
            self._open_times.setdefault(e.thread_id, []).append(e.timestamp)
            self._open_states.setdefault(e.thread_id, []).append(
                stack[-1] if stack else None
            )
        # -- per-thread delay intervals, ordered by start --------------------
        self._delays_by_thread: Dict[int, List[DelayInterval]] = {}
        for d in log.delays:
            self._delays_by_thread.setdefault(d.thread_id, []).append(d)
        for delays in self._delays_by_thread.values():
            delays.sort(key=lambda d: d.start)  # stable: ties keep log order

    # -- queries ---------------------------------------------------------------

    def between(self, t_start: float, t_end: float) -> Sequence[TraceEvent]:
        """Events with ``t_start < t < t_end``, like ``TraceLog.between``."""
        if not self.sorted:
            return self.log.between(t_start, t_end)
        lo = bisect_right(self.timestamps, t_start)
        hi = bisect_left(self.timestamps, t_end, lo)
        return self.log.events[lo:hi]

    def thread_between(
        self, thread_id: int, t_start: float, t_end: float
    ) -> Sequence[TraceEvent]:
        """``thread_id``'s events with ``t_start < t < t_end``, in log
        order (the thread's events are a subsequence of the log)."""
        times = self._thread_times.get(thread_id)
        if not times:
            return ()
        lo = bisect_right(times, t_start)
        hi = bisect_left(times, t_end, lo)
        return self._thread_events[thread_id][lo:hi]

    def innermost_open_call(
        self, thread_id: int, at_time: float
    ) -> Optional[TraceEvent]:
        """ENTER of the innermost call ``thread_id`` is inside at
        ``at_time`` (events strictly before ``at_time`` considered)."""
        times = self._open_times.get(thread_id)
        if not times:
            return None
        idx = bisect_left(times, at_time)
        if idx == 0:
            return None
        return self._open_states[thread_id][idx - 1]

    def relevant_delay(
        self, thread_id: int, earliest_end: float, before: float
    ) -> Optional[DelayInterval]:
        """Earliest-starting delay of ``thread_id`` with
        ``start < before`` and ``end > earliest_end``."""
        for d in self._delays_by_thread.get(thread_id, ()):
            if d.start >= before:
                break
            if d.end > earliest_end:
                return d
        return None


class ConflictGroup:
    """Events of one conflict group plus parallel scan arrays, so the
    pair scan reads plain floats/ints/bools instead of event attributes."""

    __slots__ = ("events", "times", "threads", "writes")

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.times: List[float] = []
        self.threads: List[int] = []
        self.writes: List[bool] = []

    def add(self, event: TraceEvent, is_write: bool) -> None:
        self.events.append(event)
        self.times.append(event.timestamp)
        self.threads.append(event.thread_id)
        self.writes.append(is_write)

    def __len__(self) -> int:
        return len(self.events)


def _is_write_access(event: TraceEvent) -> bool:
    if event.is_memory:
        return event.is_write
    return event.meta.get("unsafe_api") == "write"


class ConflictGroups:
    """Access events bucketed by conflict group, preserving log order."""

    def __init__(self, accesses: Sequence[TraceEvent]) -> None:
        self._groups: Dict[GroupKey, ConflictGroup] = {}
        #: For each access (in input order): its group and position in it.
        self.membership: List[Tuple[ConflictGroup, int]] = []
        for event in accesses:
            members = self._groups.setdefault(group_key(event), ConflictGroup())
            self.membership.append((members, len(members)))
            members.add(event, _is_write_access(event))

    def __len__(self) -> int:
        return len(self._groups)

    def groups(self) -> List[Tuple[GroupKey, ConflictGroup]]:
        """All groups in first-appearance (log) order."""
        return list(self._groups.items())


__all__ = [
    "ConflictGroup",
    "ConflictGroups",
    "GroupKey",
    "TraceIndex",
    "group_key",
]
