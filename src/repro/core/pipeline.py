"""The SherLock pipeline: Observer → Solver → Perturber, over rounds (§4.3).

One :class:`Sherlock` instance runs an application's test suite for N
rounds.  Observations accumulate across rounds; after each round the
Solver re-infers and the Perturber converts the inferred releases into the
next round's delay plan.  No delay is injected in the first round.

Test execution is delegated to an
:class:`~repro.runtime.engine.ExecutionRuntime`, which may fan tests out
across a process pool or asyncio tasks (``config.engine``) and/or replay
rounds from a trace cache; the default runtime is serial and cache-less,
matching historic behavior.  The pipeline itself is asyncio-native —
:meth:`Sherlock.arun` is the implementation, :meth:`Sherlock.run` a
synchronous façade over it — and per-phase timings and cache counters
land in a :class:`~repro.runtime.metrics.RunMetrics` on every round.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..runtime._sync import _run_sync
from ..runtime.engine import ExecutionRuntime
from ..runtime.metrics import RunMetrics
from ..sim.program import Application
from ..sim.runner import TestExecution
from ..trace.optypes import OpRef
from .config import SherlockConfig
from .encoder import IncrementalEncoder
from .observer import Observer
from .perturber import build_delay_plan
from .solver import InferenceResult, infer
from .stats import ObservationStore
from .windows import WindowExtractor


@dataclass
class RoundResult:
    """Summary of one round."""

    round_index: int
    inference: InferenceResult
    windows_total: int
    racy_pairs_total: int
    events_observed: int
    delays_injected: int
    test_errors: List[str] = field(default_factory=list)
    #: Phase timings and cache counters (observability only; excluded
    #: from serialized reports so runs stay byte-comparable).
    metrics: Optional[RunMetrics] = None


@dataclass
class SherlockReport:
    """Full result of a SherLock run over an application."""

    app_id: str
    app_name: str
    config: SherlockConfig
    rounds: List[RoundResult]
    store: ObservationStore

    @property
    def final(self) -> InferenceResult:
        return self.rounds[-1].inference

    @property
    def inferred(self) -> frozenset:
        return frozenset(self.final.syncs)

    @property
    def metrics(self) -> RunMetrics:
        """Aggregate phase timings and cache counters over all rounds."""
        return RunMetrics.aggregate(
            r.metrics for r in self.rounds if r.metrics is not None
        )

    def inferred_by_round(self) -> List[frozenset]:
        return [frozenset(r.inference.syncs) for r in self.rounds]

    def describe(self) -> str:
        final = self.final
        stats = self.store.stats()
        return (
            f"{self.app_id} ({self.app_name}): "
            f"{len(final.releases)} releases + {len(final.acquires)} "
            f"acquires after {len(self.rounds)} rounds "
            f"({stats['windows']} windows, "
            f"{stats['racy_pairs']} racy pairs)"
        )


class Sherlock:
    """Unsupervised synchronization-operation inference for one app."""

    def __init__(
        self,
        app: Application,
        config: Optional[SherlockConfig] = None,
        runtime: Optional[ExecutionRuntime] = None,
        round_listener: Optional[
            Callable[[int, List[TestExecution]], None]
        ] = None,
    ) -> None:
        self.app = app
        self.config = config or SherlockConfig()
        self.config.validate()
        self.runtime = runtime or ExecutionRuntime(engine=self.config.engine)
        self.observer = Observer(self.config)
        #: Called with ``(round_index, executions)`` after each observed
        #: round — the hook ``repro.fuzz`` uses to sanitize raw traces
        #: without re-running anything.
        self.round_listener = round_listener

    def run(self, rounds: Optional[int] = None) -> SherlockReport:
        """Run the full multi-round pipeline and return the report.

        Synchronous façade over :meth:`arun` — callers need no event
        loop (and may even hold a running one: the pipeline then runs on
        a private loop in a helper thread).  ``rounds`` overrides the
        configured round count by deriving a ``config.without(rounds=...)``
        copy, so ``report.config.rounds`` always matches the number of
        rounds that actually ran.
        """
        return _run_sync(self.arun(rounds=rounds))

    async def arun(self, rounds: Optional[int] = None) -> SherlockReport:
        """Async-native pipeline: awaits round observation (cache I/O
        and job fan-out run off the event loop), keeping the
        CPU-bound extract/solve/perturb stages inline.  Byte-identical
        results to :meth:`run` — it *is* :meth:`run`."""
        config = self.config
        if rounds is not None and rounds != config.rounds:
            config = config.without(rounds=rounds)
        store = ObservationStore()
        delay_plan: Dict[OpRef, float] = {}
        round_results: List[RoundResult] = []
        encoder = IncrementalEncoder(config) if config.incremental else None

        for round_index in range(config.rounds):
            t_start = time.perf_counter()
            outcome = await self.runtime.aobserve_round(
                self.app, config, round_index, delay_plan
            )
            executions = outcome.executions
            if self.round_listener is not None:
                self.round_listener(round_index, executions)
            t_observed = time.perf_counter()
            if not config.accumulate_across_runs:
                store = ObservationStore()
            self._ingest(store, executions, config)
            t_extracted = time.perf_counter()

            inference = infer(store, config, encoder=encoder)
            t_solved = time.perf_counter()
            delay_plan = build_delay_plan(inference, config)
            t_perturbed = time.perf_counter()

            metrics = RunMetrics(
                observe_s=t_observed - t_start,
                extract_s=t_extracted - t_observed,
                encode_s=inference.encode_s,
                solve_s=(t_solved - t_extracted) - inference.encode_s,
                perturb_s=t_perturbed - t_solved,
                cache_hits=1 if outcome.cache_hit else 0,
                cache_misses=0 if outcome.cache_hit else 1,
                tests_executed=len(executions),
                events_observed=outcome.events_observed,
                lp_variables=inference.n_variables,
                lp_constraints=inference.n_constraints,
                lp_pivots=inference.lp_pivots,
                lp_factorizations=inference.lp_factorizations,
                lp_refactorizations=inference.lp_refactorizations,
                lp_factorize_s=inference.lp_factorize_s,
                lp_ftran_btran_s=inference.lp_ftran_btran_s,
                lp_pricing_s=inference.lp_pricing_s,
                lp_eta_len=inference.lp_eta_len,
                lp_presolve_s=inference.lp_presolve_s,
                lp_presolve_rows=inference.lp_presolve_rows_eliminated,
                lp_presolve_cols=inference.lp_presolve_cols_eliminated,
                lp_dual_iterations=inference.lp_dual_iterations,
                lp_phase1_iterations=inference.lp_phase1_iterations,
                lp_phase1_skipped=1 if inference.lp_phase1_skipped else 0,
                lp_delta_variables=inference.lp_delta_variables,
                lp_delta_constraints=inference.lp_delta_constraints,
                workers=outcome.workers_used,
                engine_concurrency_hwm=outcome.concurrency_hwm,
                engine_jobs_cancelled=outcome.jobs_cancelled,
                engine_await_s=outcome.await_s,
            )
            round_results.append(
                RoundResult(
                    round_index=round_index,
                    inference=inference,
                    windows_total=len(store.windows),
                    racy_pairs_total=len(store.racy_pairs),
                    events_observed=sum(len(e.log) for e in executions),
                    delays_injected=sum(
                        len(e.log.delays) for e in executions
                    ),
                    test_errors=[
                        e.error for e in executions if e.error is not None
                    ],
                    metrics=metrics,
                )
            )
        return SherlockReport(
            app_id=self.app.app_id,
            app_name=self.app.name,
            config=config,
            rounds=round_results,
            store=store,
        )

    def _ingest(
        self,
        store: ObservationStore,
        executions: List[TestExecution],
        config: Optional[SherlockConfig] = None,
    ) -> None:
        config = config or self.config
        extractor = WindowExtractor(
            near=config.near,
            window_cap=config.window_cap,
            refine=config.enable_window_refinement,
            indexed=config.incremental,
        )
        for execution in executions:
            windows = extractor.extract(execution.log)
            store.ingest_run(execution.log, windows)


def run_sherlock(
    app: Application, config: Optional[SherlockConfig] = None
) -> SherlockReport:
    """Deprecated one-call entry point; use :func:`repro.run` instead."""
    warnings.warn(
        "run_sherlock() is deprecated and will be removed in repro 2.0; "
        "use repro.run(app_or_id, ...) (or repro.arun) instead",
        FutureWarning,
        stacklevel=2,
    )
    return Sherlock(app, config).run()


__all__ = ["RoundResult", "Sherlock", "SherlockReport", "run_sherlock"]
