"""The SherLock pipeline: Observer → Solver → Perturber, over rounds (§4.3).

One :class:`Sherlock` instance runs an application's test suite for N
rounds.  Observations accumulate across rounds; after each round the
Solver re-infers and the Perturber converts the inferred releases into the
next round's delay plan.  No delay is injected in the first round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.program import Application
from ..sim.runner import TestExecution
from ..trace.optypes import OpRef, SyncOp
from .config import SherlockConfig
from .observer import Observer
from .perturber import build_delay_plan
from .solver import InferenceResult, infer
from .stats import ObservationStore
from .windows import WindowExtractor


@dataclass
class RoundResult:
    """Summary of one round."""

    round_index: int
    inference: InferenceResult
    windows_total: int
    racy_pairs_total: int
    events_observed: int
    delays_injected: int
    test_errors: List[str] = field(default_factory=list)


@dataclass
class SherlockReport:
    """Full result of a SherLock run over an application."""

    app_id: str
    app_name: str
    config: SherlockConfig
    rounds: List[RoundResult]
    store: ObservationStore

    @property
    def final(self) -> InferenceResult:
        return self.rounds[-1].inference

    @property
    def inferred(self) -> frozenset:
        return frozenset(self.final.syncs)

    def inferred_by_round(self) -> List[frozenset]:
        return [frozenset(r.inference.syncs) for r in self.rounds]

    def describe(self) -> str:
        final = self.final
        return (
            f"{self.app_id} ({self.app_name}): "
            f"{len(final.releases)} releases + {len(final.acquires)} "
            f"acquires after {len(self.rounds)} rounds "
            f"({self.store.stats()['windows']} windows, "
            f"{self.store.stats()['racy_pairs']} racy pairs)"
        )


class Sherlock:
    """Unsupervised synchronization-operation inference for one app."""

    def __init__(
        self, app: Application, config: Optional[SherlockConfig] = None
    ) -> None:
        self.app = app
        self.config = config or SherlockConfig()
        self.config.validate()
        self.observer = Observer(self.config)

    def run(self, rounds: Optional[int] = None) -> SherlockReport:
        """Run the full multi-round pipeline and return the report."""
        config = self.config
        n_rounds = rounds if rounds is not None else config.rounds
        store = ObservationStore()
        delay_plan: Dict[OpRef, float] = {}
        round_results: List[RoundResult] = []

        for round_index in range(n_rounds):
            executions = self.observer.observe_round(
                self.app, round_index, delay_plan
            )
            if not config.accumulate_across_runs:
                store = ObservationStore()
            self._ingest(store, executions)

            inference = infer(store, config)
            delay_plan = build_delay_plan(inference, config)
            round_results.append(
                RoundResult(
                    round_index=round_index,
                    inference=inference,
                    windows_total=len(store.windows),
                    racy_pairs_total=len(store.racy_pairs),
                    events_observed=sum(len(e.log) for e in executions),
                    delays_injected=sum(
                        len(e.log.delays) for e in executions
                    ),
                    test_errors=[
                        e.error for e in executions if e.error is not None
                    ],
                )
            )
        return SherlockReport(
            app_id=self.app.app_id,
            app_name=self.app.name,
            config=config,
            rounds=round_results,
            store=store,
        )

    def _ingest(
        self, store: ObservationStore, executions: List[TestExecution]
    ) -> None:
        extractor = WindowExtractor(
            near=self.config.near,
            window_cap=self.config.window_cap,
            refine=self.config.enable_window_refinement,
        )
        for execution in executions:
            windows = extractor.extract(execution.log)
            store.ingest_run(execution.log, windows)


def run_sherlock(
    app: Application, config: Optional[SherlockConfig] = None
) -> SherlockReport:
    """Convenience one-call entry point."""
    return Sherlock(app, config).run()


__all__ = ["RoundResult", "Sherlock", "SherlockReport", "run_sherlock"]
