"""Acquire/release window extraction (§4.1) and refinement (§3).

Given one run's trace, find pairs of conflicting accesses within ``Near``
seconds of each other and extract, for each pair, the *release window*
(operations of the earlier access's thread between the two accesses) and
the *acquire window* (operations of the later access's thread).

The conflicting endpoints themselves join their windows when capable: a
write endpoint is a release candidate and a read endpoint an acquire
candidate — that is how flag-variable synchronizations (Write-f / Read-f)
become inferable at all.

A window is *provably racy* when it cannot contain a release (no
write/exit on the release side) or cannot contain an acquire (no
read/enter on the acquire side); such a pair is remembered as an observed
data race and its Mostly-Protected terms are removed (§4.3).

When the Perturber injected a delay inside a window, Figure 2 (b)/(c)
refinement applies:

* delay at candidate ``r`` did **not** propagate → the real release lies
  between ``a`` and ``r``: truncate the release window before the delay
  and drop ``r``;
* delay **did** propagate → trust ``r`` and shrink the acquire window to
  the operations between the delay's end and ``b``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..trace.events import DelayInterval, TraceEvent
from ..trace.log import TraceLog
from ..trace.optypes import OpRef, OpType
from .index import ConflictGroups, TraceIndex

#: Static identity of a conflicting-access pair: ordered (earlier, later).
PairKey = Tuple[OpRef, OpRef]


@dataclass
class Window:
    """One acquire/release window observation for a conflicting pair."""

    pair_key: PairKey
    run_id: int
    a_time: float
    b_time: float
    #: Dynamic-instance counts per static op on each side.  Keys are the
    #: *candidate* ops (capability filtering happens in the encoder, so
    #: the Read-Acq & Write-Rel ablation can reuse the same windows).
    release_side: Dict[OpRef, int] = field(default_factory=dict)
    acquire_side: Dict[OpRef, int] = field(default_factory=dict)
    racy: bool = False
    refined: bool = False

    def release_ops(self) -> Set[OpRef]:
        return set(self.release_side)

    def acquire_ops(self) -> Set[OpRef]:
        return set(self.acquire_side)


def _is_access(event: TraceEvent) -> bool:
    """Conflicting-access candidates: heap reads/writes, plus call sites of
    thread-unsafe library APIs (the optional API list of §4.1)."""
    if event.is_memory:
        return True
    return (
        event.optype is OpType.ENTER
        and event.meta.get("unsafe_api") in ("read", "write")
    )


def _is_write_access(event: TraceEvent) -> bool:
    if event.is_memory:
        return event.is_write
    return event.meta.get("unsafe_api") == "write"


def _accesses_conflict(a: TraceEvent, b: TraceEvent) -> bool:
    if a.thread_id == b.thread_id:
        return False
    if a.address != b.address:
        return False
    if a.is_memory != b.is_memory:
        return False
    if a.is_memory and a.name != b.name:
        return False  # same field of the same object
    return _is_write_access(a) or _is_write_access(b)


#: Op types that can possibly play a release / acquire role (used for racy
#: detection, which is about *capability*, not about the solver's choice).
_RELEASE_CAPABLE = (OpType.WRITE, OpType.EXIT)
_ACQUIRE_CAPABLE = (OpType.READ, OpType.ENTER)


class WindowExtractor:
    """Extracts windows from one run's log.

    Two equivalent extraction paths exist: the indexed fast path
    (default) buckets accesses into conflict groups and answers all
    trace queries through a per-log :class:`~repro.core.index.TraceIndex`,
    while the historical all-pairs path (``indexed=False``) rescans the
    log per window.  Both return the same windows in the same order;
    the all-pairs path is kept as the reference for differential tests
    and via ``SherlockConfig(incremental=False)``.
    """

    def __init__(
        self,
        near: float,
        window_cap: int,
        use_unsafe_api_list: bool = True,
        refine: bool = True,
        pre_gap: float = 0.02,
        indexed: bool = True,
    ) -> None:
        self.near = near
        self.window_cap = window_cap
        self.use_unsafe_api_list = use_unsafe_api_list
        self.refine = refine
        #: How far before Ta an injected delay still counts as relevant to
        #: the window — a delay ending just before ``a`` postponed ``a``
        #: itself, so the window's timing was manufactured by the Perturber.
        self.pre_gap = pre_gap
        self.indexed = indexed

    def extract(self, log: TraceLog) -> List[Window]:
        accesses = [e for e in log if _is_access(e)]
        if not self.use_unsafe_api_list:
            accesses = [e for e in accesses if e.is_memory]
        if self.indexed:
            index = TraceIndex(log)
            if index.indexable:
                return self._extract_indexed(log, accesses, index)
            # Unsorted logs (never produced by the kernel) keep the
            # linear-scan semantics of the historical path.
        return self._extract_allpairs(log, accesses)

    def _extract_allpairs(
        self, log: TraceLog, accesses: List[TraceEvent]
    ) -> List[Window]:
        """Historical O(n²) reference path."""
        exit_to_enter = self._match_calls(log)
        windows: List[Window] = []
        counts: Dict[PairKey, int] = {}
        for i, a in enumerate(accesses):
            for b in accesses[i + 1:]:
                if b.timestamp - a.timestamp > self.near:
                    break
                if not _accesses_conflict(a, b):
                    continue
                key = (a.ref, b.ref)
                if counts.get(key, 0) >= self.window_cap:
                    continue
                counts[key] = counts.get(key, 0) + 1
                windows.append(
                    self._build_window(log, a, b, exit_to_enter)
                )
        return windows

    def _extract_indexed(
        self,
        log: TraceLog,
        accesses: List[TraceEvent],
        index: TraceIndex,
    ) -> List[Window]:
        """Conflict-group scan: same pairs, same order, no all-pairs pass.

        Iterating accesses in log order and, per endpoint, only that
        endpoint's conflict group reproduces the all-pairs enumeration
        order exactly: group members are a subsequence of the access
        list, and any member past the ``Near`` cutoff would also have
        broken the historical scan (timestamps are non-decreasing).
        """
        groups = ConflictGroups(accesses)
        windows: List[Window] = []
        counts: Dict[Tuple[int, int], int] = {}
        near = self.near
        cap = self.window_cap
        ref_ids = index.ref_ids
        for a, (group, position) in zip(accesses, groups.membership):
            a_time = a.timestamp
            a_thread = a.thread_id
            a_write = group.writes[position]
            a_rid = ref_ids[a.seq]
            times = group.times
            threads = group.threads
            writes = group.writes
            members = group.events
            for j in range(position + 1, len(members)):
                if times[j] - a_time > near:
                    break
                if threads[j] == a_thread:
                    continue
                if not (a_write or writes[j]):
                    continue
                b = members[j]
                key = (a_rid, ref_ids[b.seq])
                seen = counts.get(key, 0)
                if seen >= cap:
                    continue
                counts[key] = seen + 1
                windows.append(self._build_window_indexed(log, a, b, index))
        return windows

    @staticmethod
    def _match_calls(log: TraceLog) -> Dict[int, TraceEvent]:
        """Map each EXIT event's seq to its matching ENTER event (per-thread
        call-stack pairing)."""
        stacks: Dict[Tuple[int, str], List[TraceEvent]] = {}
        matched: Dict[int, TraceEvent] = {}
        for e in log:
            if e.optype is OpType.ENTER:
                stacks.setdefault((e.thread_id, e.name), []).append(e)
            elif e.optype is OpType.EXIT:
                stack = stacks.get((e.thread_id, e.name))
                if stack:
                    matched[e.seq] = stack.pop()
        return matched

    # -- construction -----------------------------------------------------------

    def _build_window(
        self,
        log: TraceLog,
        a: TraceEvent,
        b: TraceEvent,
        exit_to_enter: Dict[int, TraceEvent],
        index: Optional[TraceIndex] = None,
    ) -> Window:
        window = Window(
            pair_key=(a.ref, b.ref),
            run_id=log.run_id,
            a_time=a.timestamp,
            b_time=b.timestamp,
        )
        body: Sequence[TraceEvent] = (
            index.between(a.timestamp, b.timestamp)
            if index is not None
            else log.between(a.timestamp, b.timestamp)
        )
        release_events: List[TraceEvent] = [a]
        acquire_events: List[TraceEvent] = [b]
        for e in body:
            if e.thread_id == a.thread_id:
                release_events.append(e)
            elif e.thread_id == b.thread_id:
                acquire_events.append(e)

        if self.refine:
            release_events, acquire_events = self._apply_delays(
                log, a, b, release_events, acquire_events, window, index
            )

        # A blocking call that was already in progress at Ta (or across an
        # injected delay) but returned inside the window was *executing
        # between Ta and Tb*: its invocation is a legitimate acquire
        # candidate (think Monitor.Enter or Task.Wait blocked across the
        # release).  Re-join the matching ENTER when it is not present.
        present = {e.seq for e in acquire_events}
        spanning: List[TraceEvent] = []
        for e in acquire_events:
            if e.optype is OpType.EXIT:
                enter = exit_to_enter.get(e.seq)
                if enter is not None and enter.seq not in present:
                    spanning.append(enter)
                    present.add(enter.seq)
        acquire_events.extend(spanning)

        for e in release_events:
            window.release_side[e.ref] = window.release_side.get(e.ref, 0) + 1
        for e in acquire_events:
            window.acquire_side[e.ref] = window.acquire_side.get(e.ref, 0) + 1

        window.racy = self._is_provably_racy(window)
        return window

    def _build_window_indexed(
        self,
        log: TraceLog,
        a: TraceEvent,
        b: TraceEvent,
        index: TraceIndex,
    ) -> Window:
        """Index-backed twin of :meth:`_build_window`: the body is two
        per-thread bisected slices (other threads' events never joined a
        side anyway) and per-side occurrence counting runs on interned
        small-int ref ids, converting to :class:`OpRef` keys once per
        distinct op.  First-occurrence key order — which downstream
        encoding order (and hence float identity) depends on — is
        preserved."""
        ref_ids = index.ref_ids
        ref_objs = index.ref_objs
        window = Window(
            pair_key=(ref_objs[ref_ids[a.seq]], ref_objs[ref_ids[b.seq]]),
            run_id=log.run_id,
            a_time=a.timestamp,
            b_time=b.timestamp,
        )
        release_events: List[TraceEvent] = [a]
        release_events.extend(
            index.thread_between(a.thread_id, a.timestamp, b.timestamp)
        )
        acquire_events: List[TraceEvent] = [b]
        acquire_events.extend(
            index.thread_between(b.thread_id, a.timestamp, b.timestamp)
        )

        if self.refine:
            release_events, acquire_events = self._apply_delays(
                log, a, b, release_events, acquire_events, window, index
            )

        # Spanning-call rule, as in _build_window.
        present = {e.seq for e in acquire_events}
        spanning: List[TraceEvent] = []
        for e in acquire_events:
            if e.optype is OpType.EXIT:
                enter = index.exit_to_enter.get(e.seq)
                if enter is not None and enter.seq not in present:
                    spanning.append(enter)
                    present.add(enter.seq)
        acquire_events.extend(spanning)

        rel_counts: Dict[int, int] = {}
        for e in release_events:
            rid = ref_ids[e.seq]
            rel_counts[rid] = rel_counts.get(rid, 0) + 1
        acq_counts: Dict[int, int] = {}
        for e in acquire_events:
            rid = ref_ids[e.seq]
            acq_counts[rid] = acq_counts.get(rid, 0) + 1
        window.release_side = {
            ref_objs[rid]: count for rid, count in rel_counts.items()
        }
        window.acquire_side = {
            ref_objs[rid]: count for rid, count in acq_counts.items()
        }

        window.racy = self._is_provably_racy(window)
        return window

    # -- Figure 2 (b)/(c) refinement ------------------------------------------------

    def _apply_delays(
        self,
        log: TraceLog,
        a: TraceEvent,
        b: TraceEvent,
        release_events: List[TraceEvent],
        acquire_events: List[TraceEvent],
        window: Window,
        index: Optional[TraceIndex] = None,
    ) -> Tuple[List[TraceEvent], List[TraceEvent]]:
        if index is not None:
            delay = index.relevant_delay(
                a.thread_id, a.timestamp - self.pre_gap, b.timestamp
            )
        else:
            delay = self._relevant_delay(log, a, b)
        if delay is None:
            return release_events, acquire_events
        window.refined = True
        if self._propagated(b, delay):
            # Figure 2 (c): trust r; acquire window shrinks to (r, b].
            # Calls blocked across the delay keep their EXITs here and are
            # re-joined by the spanning-call rule in _build_window; the
            # call b's thread is still inside when the delay ends (the one
            # actually blocked on the release) is recovered explicitly.
            refined = [
                e for e in acquire_events if e.timestamp >= delay.end - 1e-12
            ]
            blocked = (
                index.innermost_open_call(b.thread_id, delay.end)
                if index is not None
                else self._innermost_open_call(log, b.thread_id, delay.end)
            )
            if blocked is not None and all(
                e.seq != blocked.seq for e in refined
            ):
                refined.append(blocked)
            if b not in refined:
                refined.append(b)
            acquire_events = refined
        elif delay.start > a.timestamp:
            # Figure 2 (b): the real release is between a and r; drop r and
            # everything at/after the delayed instance.  (When the delay
            # preceded a itself, nothing can be concluded about r.)
            release_events = [
                e
                for e in release_events
                if e.timestamp < delay.start - 1e-12 and e.ref != delay.site
            ]
            if a.ref != delay.site:
                release_events.append(a)
        return release_events, acquire_events

    def _relevant_delay(
        self, log: TraceLog, a: TraceEvent, b: TraceEvent
    ) -> Optional[DelayInterval]:
        """First delay in a's thread that shaped this window: it started
        inside the window, or it ended just before ``a`` (postponing ``a``
        and everything after it)."""
        candidates = [
            d
            for d in log.delays
            if d.thread_id == a.thread_id
            and d.start < b.timestamp
            and d.end > a.timestamp - self.pre_gap
        ]
        return min(candidates, key=lambda d: d.start) if candidates else None

    @staticmethod
    def _innermost_open_call(
        log: TraceLog, thread_id: int, at_time: float
    ) -> Optional[TraceEvent]:
        """ENTER event of the innermost call ``thread_id`` is inside at
        ``at_time`` (per-thread ENTER/EXIT stack scan)."""
        stack: List[TraceEvent] = []
        for e in log:
            if e.timestamp >= at_time:
                break
            if e.thread_id != thread_id:
                continue
            if e.optype is OpType.ENTER:
                stack.append(e)
            elif e.optype is OpType.EXIT:
                for i in range(len(stack) - 1, -1, -1):
                    if stack[i].name == e.name:
                        del stack[i:]
                        break
        return stack[-1] if stack else None

    @staticmethod
    def _propagated(b: TraceEvent, delay: DelayInterval) -> bool:
        """The delay propagated when ``b`` could not execute until it ended
        (the cascading-delay criterion of §3 / TSVD).  ``b`` executing
        *while* the delaying thread was frozen is definitive refutation —
        the delayed candidate cannot be what orders ``a`` before ``b``.

        Thread quietness is deliberately not required: a spin-waiting
        victim keeps polling (and tracing events) during the delay yet is
        still blocked by it.
        """
        return b.timestamp >= delay.end - 1e-12

    # -- racy detection ---------------------------------------------------------------

    @staticmethod
    def _is_provably_racy(window: Window) -> bool:
        has_release_capable = any(
            ref.optype in _RELEASE_CAPABLE for ref in window.release_side
        )
        has_acquire_capable = any(
            ref.optype in _ACQUIRE_CAPABLE for ref in window.acquire_side
        )
        return not (has_release_capable and has_acquire_capable)


__all__ = ["PairKey", "Window", "WindowExtractor"]
