"""Candidate variable registry.

Maps each (static operation, role) pair onto one LP variable in [0, 1]
whose value is the probability of the operation playing that role
(``read(f)^acq``, ``write(f)^rel``, ``begin(m)^acq``, ``end(m)^rel`` …).

The Read-Acquire & Write-Release property (Eq. 1) is enforced here by
construction: incapable combinations simply get no variable, which is
equivalent to pinning them at 0.  When the property is ablated
(Table 5 row "w/o Read-Acq & Write-Rel"), every combination is allowed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..lp import Model, Variable
from ..trace.optypes import OpRef, Role, SyncOp


class CandidateRegistry:
    """Creates and indexes probability variables on demand."""

    def __init__(self, model: Model, enforce_capability: bool = True) -> None:
        self.model = model
        self.enforce_capability = enforce_capability
        self._vars: Dict[SyncOp, Variable] = {}

    @staticmethod
    def var_name(ref: OpRef, role: Role) -> str:
        return f"{role.value}:{ref.optype.value}:{ref.name}"

    def var(self, ref: OpRef, role: Role) -> Optional[Variable]:
        """The variable for (ref, role), or None when the capability
        property rules the combination out."""
        if self.enforce_capability and not ref.can_play(role):
            return None
        key = SyncOp(ref, role)
        existing = self._vars.get(key)
        if existing is not None:
            return existing
        variable = self.model.add_variable(self.var_name(ref, role), 0.0, 1.0)
        self._vars[key] = variable
        return variable

    def release_vars(self, refs: Iterable[OpRef]) -> List[Variable]:
        out = []
        for ref in refs:
            v = self.var(ref, Role.RELEASE)
            if v is not None:
                out.append(v)
        return out

    def acquire_vars(self, refs: Iterable[OpRef]) -> List[Variable]:
        out = []
        for ref in refs:
            v = self.var(ref, Role.ACQUIRE)
            if v is not None:
                out.append(v)
        return out

    def items(self) -> Iterable[Tuple[SyncOp, Variable]]:
        return self._vars.items()

    def lookup(self, ref: OpRef, role: Role) -> Optional[Variable]:
        """Existing variable or None; never creates."""
        return self._vars.get(SyncOp(ref, role))

    def __len__(self) -> int:
        return len(self._vars)


__all__ = ["CandidateRegistry"]
