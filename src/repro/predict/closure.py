"""Sync-preserving closure over one trace.

The model follows "Optimal Prediction of Synchronization-Preserving
Races" (Mathur, Pavlogiannis, Viswanathan, POPL 2021), instantiated on
our :class:`~repro.racedet.spec.HappensBeforeSpec` vocabulary: a
*correct reordering* of a trace is **sync-preserving** when every
acquire pairs with the *same* release as in the original trace (and
every event on a statically-initialized address sees the same
static-init publish).  Two conflicting accesses are a predicted race
when some sync-preserving correct reordering ends with both of them
co-enabled.

The key relation is the **sync-preserving happens-before** (SPHB)
partial order: the transitive closure of

* program order per thread,
* ``pair(a) → a`` for every acquire ``a`` (only the *pairing* release —
  the last release on the acquire's channel — not every earlier release
  on the channel, which is where prediction power over the observed-order
  FastTrack relation comes from: FastTrack's channels accumulate, so an
  acquire is ordered after *all* prior releases on its address), and
* ``pub(e) → e`` for every event ``e`` on an address with a prior
  static-initialization publish.

SPHB is computed with vector clocks indexed by per-thread event counts
(``tick``): at a release the channel is *replaced* with the releasing
event's clock; at an acquire the thread joins the channel.  Releases the
spec marks *collective* (``collective_releases`` — phaser/barrier phase
quorums) accumulate their channel instead: a phase's waiter is ordered
after **all** of the phase's arrivals, so reorderings that move an
arrival past its phase's waits are never sync-preserving.  Because
every SPHB edge points forward in trace order, SPHB is a suborder of the
trace order and of the FastTrack happens-before relation for the same
spec.

The closure (the *trace ideal* of a conflicting pair) is then a plain
clock join: the set of events that must execute before the pair can be
co-enabled is a per-thread prefix vector, obtained by joining the clocks
of both events' program-order predecessors and their own pairing
releases/publishes.  The pair is predictable iff that merged clock
includes neither event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..racedet.spec import HappensBeforeSpec
from ..trace.events import TraceEvent
from ..trace.log import TraceLog

#: A per-thread prefix vector: thread id -> number of that thread's
#: first events included.  The ideal of a predicted pair always has this
#: shape because SPHB contains program order.
PrefixVector = Dict[int, int]


@dataclass(frozen=True)
class SyncPairings:
    """Which release/publish every constrained event observed.

    Both maps are keyed by event ``seq``; values are the ``seq`` of the
    observed release / static publish (``None`` when the acquire ran
    before any release on its channel).  ``sync_pairings`` recomputes
    these maps for arbitrary event sequences, so the witness validator
    can require them to be *identical* between the source trace and a
    reordering.
    """

    #: acquire seq -> pairing release seq (or None).
    acquires: Dict[int, Optional[int]]
    #: event seq -> last static-init publish seq on its address (or None
    #: when the address has publishes but none preceded the event).
    statics: Dict[int, Optional[int]]


def sync_pairings(
    events: List[TraceEvent],
    spec: HappensBeforeSpec,
    seq_of: Optional[Dict[int, int]] = None,
) -> SyncPairings:
    """Pairing maps of an event sequence under ``spec``.

    ``seq_of`` maps ``id(event) -> identity`` when the events carry
    foreign ``seq`` stamps (witness logs re-stamp ``seq``); by default an
    event's own ``seq`` is its identity.  Events on an address that ever
    carries a static publish are all recorded in ``statics`` (with
    ``None`` before the first publish) so a reordering cannot move an
    access from after the publish to before it unnoticed.
    """
    ident = (
        (lambda e: seq_of[id(e)]) if seq_of is not None else (lambda e: e.seq)
    )
    acquires: Dict[int, Optional[int]] = {}
    statics: Dict[int, Optional[int]] = {}
    last_release: Dict[int, int] = {}
    last_publish: Dict[int, int] = {}
    static_addrs = {
        e.address for e in events if spec.is_static_publish_event(e)
    }
    for e in events:
        if spec.is_acquire_event(e):
            acquires[ident(e)] = last_release.get(e.address)
        if e.address in static_addrs:
            statics[ident(e)] = last_publish.get(e.address)
        if spec.is_release_event(e):
            last_release[e.address] = ident(e)
        if spec.is_static_publish_event(e):
            last_publish[e.address] = ident(e)
    return SyncPairings(acquires=acquires, statics=statics)


class SyncPreservingClosure:
    """SPHB clocks, pairings, and pair ideals for one trace.

    Requires a log whose events are ``seq``-stamped positionally (the
    kernel's :meth:`~repro.trace.log.TraceLog.append` guarantees this);
    hand-built logs that bypassed ``append`` are rejected.
    """

    def __init__(self, log: TraceLog, spec: HappensBeforeSpec) -> None:
        if any(e.seq != i for i, e in enumerate(log.events)):
            raise ValueError(
                "SyncPreservingClosure needs a positionally seq-stamped "
                "log (build it through TraceLog.append)"
            )
        self.log = log
        self.spec = spec
        events = log.events
        n = len(events)
        #: Per-event thread-local index (0-based position within thread).
        self.ticks: List[int] = [0] * n
        #: Per-event SPHB vector clock: tid -> ticks seen (inclusive of
        #: the event itself).
        self.clocks: List[PrefixVector] = [dict() for _ in range(n)]
        #: Per-thread event seqs in program order.
        self.thread_events: Dict[int, List[int]] = {}
        self.pairings = sync_pairings(events, spec)

        vcs: Dict[int, PrefixVector] = {}
        # Channels hold the *pairing* release's clock: replaced at each
        # release, never accumulated (the sync-preserving weakening).
        channels: Dict[int, PrefixVector] = {}
        static_channels: Dict[int, PrefixVector] = {}
        for e in events:
            tid = e.thread_id
            vc = vcs.setdefault(tid, {})
            if spec.is_acquire_event(e):
                channel = channels.get(e.address)
                if channel is not None:
                    _join(vc, channel)
            static = static_channels.get(e.address)
            if static is not None:
                _join(vc, static)
            order = self.thread_events.setdefault(tid, [])
            self.ticks[e.seq] = len(order)
            order.append(e.seq)
            vc[tid] = len(order)
            self.clocks[e.seq] = dict(vc)
            if spec.is_release_event(e):
                if spec.is_collective_release_event(e):
                    # Collective (phase) channels accumulate: a phase's
                    # waiter is ordered after every arrival, so no
                    # sync-preserving reordering may move an arrival
                    # past its phase's waits.
                    _join(channels.setdefault(e.address, {}), vc)
                else:
                    channels[e.address] = dict(vc)
            if spec.is_static_publish_event(e):
                static_channels[e.address] = dict(vc)

    # -- order queries -------------------------------------------------------

    def ordered(self, first_seq: int, second_seq: int) -> bool:
        """``first ≤SPHB second`` (reflexive)."""
        first = self.log.events[first_seq]
        return (
            self.clocks[second_seq].get(first.thread_id, 0)
            > self.ticks[first_seq]
        )

    def po_predecessor(self, seq: int) -> Optional[int]:
        tick = self.ticks[seq]
        if tick == 0:
            return None
        return self.thread_events[self.log.events[seq].thread_id][tick - 1]

    # -- pair ideals ---------------------------------------------------------

    def ideal(self, a_seq: int, b_seq: int) -> PrefixVector:
        """The SPHB down-closure both events depend on, as a per-thread
        prefix vector: every program-order predecessor of either event,
        their own pairing releases and static publishes, and everything
        SPHB-before any of those."""
        merged: PrefixVector = {}
        for seq in (a_seq, b_seq):
            pred = self.po_predecessor(seq)
            if pred is not None:
                _join(merged, self.clocks[pred])
            for pairing in (
                self.pairings.acquires.get(seq),
                self.pairings.statics.get(seq),
            ):
                if pairing is not None:
                    _join(merged, self.clocks[pairing])
        return merged

    def predicts(
        self, a_seq: int, b_seq: int
    ) -> Optional[PrefixVector]:
        """The pair's ideal when some sync-preserving reordering
        co-enables both events, else ``None``.

        The pair is predictable exactly when the ideal contains neither
        event: an ideal entry at or past an event's own tick means the
        event's thread must run *through* it to satisfy the other
        event's program order or sync pairings — the two can then never
        be simultaneously enabled.
        """
        ideal = self.ideal(a_seq, b_seq)
        a = self.log.events[a_seq]
        b = self.log.events[b_seq]
        if ideal.get(a.thread_id, 0) > self.ticks[a_seq]:
            return None
        if ideal.get(b.thread_id, 0) > self.ticks[b_seq]:
            return None
        return ideal

    def ideal_events(self, ideal: PrefixVector) -> List[int]:
        """The ideal's event seqs in original trace order."""
        out = [
            seq
            for tid, count in ideal.items()
            for seq in self.thread_events[tid][:count]
        ]
        out.sort()
        return out


def _join(target: PrefixVector, other: PrefixVector) -> None:
    for tid, tick in other.items():
        if tick > target.get(tid, 0):
            target[tid] = tick


__all__ = [
    "PrefixVector",
    "SyncPairings",
    "SyncPreservingClosure",
    "sync_pairings",
]
