"""Detection-power harness: FastTrack vs TSVD vs predictive.

Runs the predictive detector next to the observed-order baselines over
the same traces and emits a Table-2/3-style comparison per app × spec
(``repro predict`` on the CLI).  Jobs fan out across an
:class:`~repro.runtime.engine.ExecutionRuntime` engine exactly like the
fuzz campaign: one job per ``(app, spec kind, schedule seed)``, plain
tuples in, picklable :class:`PowerRow` aggregates out.

The interesting deltas per row:

* ``predicted_only`` — fields the predictive detector exposes that
  FastTrack's first-race report *missed in the observed order* (the
  detection-power win; a planted racy field landing here is the
  acceptance case);
* ``unwitnessed`` — predicted fields FastTrack never reported at all
  during the run, even past its first-race soundness horizon: concrete
  schedule-search targets for the fuzz campaign's oracle;
* ``superset_ok`` — the differential soundness invariant (predictive ⊇
  FastTrack first races, per execution, same spec).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..analysis.tables import TableResult
from ..apps.registry import get_application, resolve_app_id
from ..core.config import SherlockConfig
from ..core.pipeline import Sherlock
from ..racedet.annotations import manual_spec, sherlock_spec
from ..racedet.fasttrack import RaceReport, analyze_run
from ..racedet.spec import HappensBeforeSpec
from ..runtime.engine import ExecutionRuntime
from ..sim.program import Application
from ..sim.runner import RunOptions, run_application
from ..tsvd.detector import run_tsvd
from .detector import PredictedRace, PredictionAnalysis, PredictiveDetector

#: One harness job: (app_id, seed, rounds, policy, spec_kind).  Plain
#: data so it crosses the process-pool boundary; ``rounds`` only feeds
#: the SherLock inference for ``spec_kind="sherlock"``.
PredictJob = Tuple[str, int, int, str, str]


def predictive_name(spec: HappensBeforeSpec) -> str:
    """Manual_dr → Manual_pr (mirroring the FastTrack naming)."""
    if spec.name.endswith("_dr"):
        return spec.name[:-3] + "_pr"
    return spec.name + "_pr"


@dataclass
class PredictionReport:
    """Everything the predictive detector found for one app run."""

    app_id: str
    spec_name: str
    seed: int
    policy: str
    #: Deduped predicted races across the run's tests, witnesses kept.
    races: List[PredictedRace] = field(default_factory=list)
    per_test: Dict[str, PredictionAnalysis] = field(default_factory=dict)
    #: FastTrack's first race per test under the same spec.
    ft_first: List[Optional[RaceReport]] = field(default_factory=list)
    #: Per-execution invariant: predicted keys ⊇ FastTrack first race.
    superset_ok: bool = True
    #: Fields predicted but not in FastTrack's *first-race* reports.
    predicted_only_fields: List[str] = field(default_factory=list)
    #: Fields predicted but never reported by FastTrack *at all*.
    unwitnessed_fields: List[str] = field(default_factory=list)


def predict_app(
    app: Application,
    spec: HappensBeforeSpec,
    seed: int = 0,
    policy: str = "random",
    near: float = 1.0,
    window_cap: int = 15,
) -> PredictionReport:
    """Run the predictive detector and FastTrack over one app run."""
    options = RunOptions(seed=seed, run_id=0, schedule_policy=policy)
    executions = run_application(app, options)
    detector = PredictiveDetector(spec, near=near, window_cap=window_cap)
    report = PredictionReport(
        app_id=app.app_id,
        spec_name=predictive_name(spec),
        seed=seed,
        policy=policy,
    )
    predicted_fields = set()
    ft_first_fields = set()
    ft_all_fields = set()
    for execution in executions:
        analysis = detector.analyze(execution.log)
        report.per_test[execution.test_name] = analysis
        report.races.extend(
            replace(race, test_name=execution.test_name)
            for race in analysis.races
        )
        predicted_fields.update(r.field_name for r in analysis.races)
        ft = analyze_run(execution.log, spec)
        first = ft.first
        report.ft_first.append(first)
        ft_all_fields.update(r.field_name for r in ft.races)
        if first is not None:
            ft_first_fields.add(first.field_name)
            if first.key() not in analysis.keys():
                report.superset_ok = False
    report.predicted_only_fields = sorted(
        predicted_fields - ft_first_fields
    )
    report.unwitnessed_fields = sorted(predicted_fields - ft_all_fields)
    return report


@dataclass
class PowerRow:
    """One job's aggregate (picklable): app × spec × schedule seed."""

    app_id: str
    spec_kind: str   # "manual" | "sherlock"
    spec_name: str   # Manual_pr | SherLock_pr
    seed: int
    policy: str
    #: FastTrack first-race counts, classified against ground truth.
    ft_true: int = 0
    ft_false: int = 0
    #: Distinct predicted fields, classified against ground truth.
    predicted_true: int = 0
    predicted_false: int = 0
    predicted_fields: List[str] = field(default_factory=list)
    predicted_only_fields: List[str] = field(default_factory=list)
    unwitnessed_fields: List[str] = field(default_factory=list)
    superset_ok: bool = True
    races: int = 0
    pairs_checked: int = 0
    pairs_predicted: int = 0
    unwitnessed_pairs: int = 0
    invalid_witnesses: int = 0
    #: TSVD baseline over the same seed (spec-independent).
    tsvd_synchronized: int = 0
    tsvd_racy: int = 0
    elapsed_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "app_id": self.app_id,
            "spec_kind": self.spec_kind,
            "spec_name": self.spec_name,
            "seed": self.seed,
            "policy": self.policy,
            "ft_true": self.ft_true,
            "ft_false": self.ft_false,
            "predicted_true": self.predicted_true,
            "predicted_false": self.predicted_false,
            "predicted_fields": self.predicted_fields,
            "predicted_only_fields": self.predicted_only_fields,
            "unwitnessed_fields": self.unwitnessed_fields,
            "superset_ok": self.superset_ok,
            "races": self.races,
            "pairs_checked": self.pairs_checked,
            "pairs_predicted": self.pairs_predicted,
            "unwitnessed_pairs": self.unwitnessed_pairs,
            "invalid_witnesses": self.invalid_witnesses,
            "tsvd_synchronized": self.tsvd_synchronized,
            "tsvd_racy": self.tsvd_racy,
            "elapsed_s": round(self.elapsed_s, 3),
        }


def run_predict_job(job: PredictJob) -> PowerRow:
    """Run one app × spec × seed job (worker-process entry point)."""
    app_id, seed, rounds, policy, spec_kind = job
    t_start = time.perf_counter()
    app = get_application(app_id)
    if spec_kind == "manual":
        spec = manual_spec(app)
    elif spec_kind == "sherlock":
        config = SherlockConfig(
            rounds=rounds, seed=seed, schedule_policy=policy
        )
        spec = sherlock_spec(Sherlock(app, config).run().final)
    else:
        raise ValueError(f"unknown spec kind {spec_kind!r}")
    report = predict_app(app, spec, seed=seed, policy=policy)
    tsvd = run_tsvd(app, seed=seed, runs=1)

    racy = app.ground_truth.racy_fields
    row = PowerRow(
        app_id=app.app_id,
        spec_kind=spec_kind,
        spec_name=report.spec_name,
        seed=seed,
        policy=policy,
        tsvd_synchronized=len(tsvd.synchronized_pairs),
        tsvd_racy=len(tsvd.racy_pairs),
    )
    for first in report.ft_first:
        if first is None:
            continue
        if first.field_name in racy:
            row.ft_true += 1
        else:
            row.ft_false += 1
    fields = sorted({r.field_name for r in report.races})
    row.predicted_fields = fields
    row.predicted_true = sum(1 for f in fields if f in racy)
    row.predicted_false = len(fields) - row.predicted_true
    row.predicted_only_fields = report.predicted_only_fields
    row.unwitnessed_fields = report.unwitnessed_fields
    row.superset_ok = report.superset_ok
    row.races = len(report.races)
    for analysis in report.per_test.values():
        row.pairs_checked += analysis.pairs_checked
        row.pairs_predicted += analysis.pairs_predicted
        row.unwitnessed_pairs += analysis.unwitnessed_pairs
        row.invalid_witnesses += analysis.invalid_witnesses
    row.elapsed_s = time.perf_counter() - t_start
    return row


@dataclass
class PowerConfig:
    """Knobs of one detection-power sweep."""

    app_ids: List[str] = field(default_factory=list)
    schedules: int = 1
    base_seed: int = 0
    #: SherLock inference rounds (spec_kind="sherlock" only).
    rounds: int = 3
    policy: str = "random"
    specs: Tuple[str, ...] = ("manual", "sherlock")
    workers: int = 1
    engine: Optional[str] = None

    def validate(self) -> None:
        """Read-only sanity checks (never mutates the config)."""
        if self.schedules < 1:
            raise ValueError("schedules must be >= 1")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not self.app_ids:
            raise ValueError("power sweep needs at least one app id")
        for kind in self.specs:
            if kind not in ("manual", "sherlock"):
                raise ValueError(f"unknown spec kind {kind!r}")
        if self.engine is not None:
            from ..runtime.engines import validate_engine_spec

            validate_engine_spec(self.engine)
        for app_id in self.app_ids:
            resolve_app_id(app_id)
        SherlockConfig(schedule_policy=self.policy)  # spec check

    def resolved(self) -> "PowerConfig":
        """Validated copy with app aliases resolved (pure)."""
        self.validate()
        return replace(
            self, app_ids=[resolve_app_id(a) for a in self.app_ids]
        )


@dataclass
class PowerReport:
    """Aggregated detection-power sweep."""

    config: PowerConfig
    rows: List[PowerRow]
    elapsed_s: float = 0.0

    @property
    def all_supersets_ok(self) -> bool:
        return all(r.superset_ok for r in self.rows)

    @property
    def total_invalid_witnesses(self) -> int:
        return sum(r.invalid_witnesses for r in self.rows)

    def table(self) -> TableResult:
        """FastTrack vs TSVD vs predictive, per app × spec."""
        table = TableResult(
            title="Detection power: FastTrack (first race) vs TSVD vs "
            "predictive",
            headers=[
                "App", "Spec", "Sched", "FT T/F", "Pred T/F",
                "Pred-only", "Unwitnessed", "⊇FT", "TSVD sync/racy",
            ],
        )
        for app_id in self.config.app_ids:
            for kind in self.config.specs:
                rows = [
                    r
                    for r in self.rows
                    if r.app_id == app_id and r.spec_kind == kind
                ]
                if not rows:
                    continue
                only = sorted(
                    {f for r in rows for f in r.predicted_only_fields}
                )
                unwit = sorted(
                    {f for r in rows for f in r.unwitnessed_fields}
                )
                table.add_row(
                    app_id,
                    rows[0].spec_name,
                    len(rows),
                    f"{sum(r.ft_true for r in rows)}/"
                    f"{sum(r.ft_false for r in rows)}",
                    f"{sum(r.predicted_true for r in rows)}/"
                    f"{sum(r.predicted_false for r in rows)}",
                    len(only),
                    len(unwit),
                    "yes" if all(r.superset_ok for r in rows) else "NO",
                    f"{rows[0].tsvd_synchronized}/{rows[0].tsvd_racy}",
                )
        table.notes.append(
            "FT T/F: first-race-per-run counts classified against "
            "ground truth; Pred T/F: distinct predicted fields"
        )
        table.notes.append(
            "Pred-only: fields FastTrack's first race missed in the "
            "observed order; Unwitnessed: never reported by FastTrack"
        )
        return table

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": {
                "app_ids": self.config.app_ids,
                "schedules": self.config.schedules,
                "base_seed": self.config.base_seed,
                "rounds": self.config.rounds,
                "policy": self.config.policy,
                "specs": list(self.config.specs),
                "workers": self.config.workers,
                "engine": self.config.engine,
            },
            "totals": {
                "jobs": len(self.rows),
                "supersets_ok": self.all_supersets_ok,
                "invalid_witnesses": self.total_invalid_witnesses,
                "predicted_races": sum(r.races for r in self.rows),
                "elapsed_s": round(self.elapsed_s, 3),
            },
            "rows": [r.to_dict() for r in self.rows],
        }


def run_power_sweep(
    config: PowerConfig,
    runtime: Optional[ExecutionRuntime] = None,
) -> PowerReport:
    """Execute a detection-power sweep, optionally on a caller-owned
    runtime (jobs fan out via ``map_jobs`` like the fuzz campaign)."""
    config = config.resolved()
    t_start = time.perf_counter()
    jobs: List[PredictJob] = [
        (app_id, config.base_seed + i, config.rounds, config.policy, kind)
        for app_id in config.app_ids
        for kind in config.specs
        for i in range(config.schedules)
    ]
    owned = runtime is None
    rt = runtime or ExecutionRuntime(
        workers=config.workers, engine=config.engine
    )
    try:
        rows = rt.map_jobs(run_predict_job, jobs)
    finally:
        if owned:
            rt.close()
    return PowerReport(
        config=config,
        rows=rows,
        elapsed_s=time.perf_counter() - t_start,
    )


__all__ = [
    "PowerConfig",
    "PowerReport",
    "PowerRow",
    "PredictJob",
    "PredictionReport",
    "predict_app",
    "predictive_name",
    "run_power_sweep",
    "run_predict_job",
]
