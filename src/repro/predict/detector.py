"""Sync-preserving predictive race detection over one trace.

Runs the closure engine over every conflicting access pair from the
kernel's conflict groups (:class:`~repro.core.index.ConflictGroups` —
the same bucketing the window extractor uses) and reports a
:class:`PredictedRace` for each pair some sync-preserving correct
reordering co-enables.  Every report carries a concrete witness
reordering; a clock-level prediction that cannot be witnessed (the
pair's ideal has an unsatisfiable channel constraint) is counted but
**not** reported — reported races are witness-backed by construction.

The detector is parameterized by a
:class:`~repro.racedet.spec.HappensBeforeSpec`, so it runs against the
manual annotations (Manual_pr) or SherLock's inferred sync set
(SherLock_pr), mirroring the Manual_dr / SherLock_dr FastTrack naming.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..core.index import ConflictGroups
from ..racedet.fasttrack import RaceReport
from ..racedet.spec import HappensBeforeSpec
from ..trace.log import TraceLog
from .closure import SyncPreservingClosure
from .witness import build_witness, validate_witness


@dataclass(frozen=True)
class PredictedRace(RaceReport):
    """A race exposed by a sync-preserving reordering of the trace.

    Extends :class:`~repro.racedet.fasttrack.RaceReport` with the exact
    access pair (``a_seq``/``b_seq`` in the source trace) and the
    witness reordering that co-enables it.  ``first_thread`` is the
    earlier access's *actual* thread (FastTrack reports the prior
    writer's thread or ``-1``; the predictive detector always knows both
    endpoints).
    """

    a_seq: int = -1
    b_seq: int = -1
    #: Timestamp of the earlier access in the *source* trace.
    first_timestamp: float = 0.0
    #: Unit test whose run produced the trace (filled by the harness).
    test_name: str = ""
    #: The reordered trace ending with the racy pair co-enabled.
    witness: Optional[TraceLog] = field(
        default=None, compare=False, repr=False
    )
    #: Whether the witness passed ``validate_witness`` (sanitizer +
    #: pairing-identity + permutation checks).
    validated: bool = False

    def to_dict(self) -> dict:
        return {
            "field": self.field_name,
            "address": self.address,
            "first_access": self.first_access,
            "second_access": self.second_access,
            "first_thread": self.first_thread,
            "second_thread": self.second_thread,
            "timestamp": self.timestamp,
            "first_timestamp": self.first_timestamp,
            "a_seq": self.a_seq,
            "b_seq": self.b_seq,
            "test": self.test_name,
            "validated": self.validated,
            "witness_events": len(self.witness) if self.witness else 0,
        }


@dataclass
class PredictionAnalysis:
    """All predicted races for one test run, with pair-level counters."""

    spec_name: str
    races: List[PredictedRace] = field(default_factory=list)
    #: Conflicting cross-thread pairs examined.
    pairs_checked: int = 0
    #: Pairs the closure's clock test predicted (pre-dedup, pre-witness).
    pairs_predicted: int = 0
    #: Clock-predicted pairs with no constructible witness (channel
    #: constraints unsatisfiable) — counted, never reported.
    unwitnessed_pairs: int = 0
    #: Witnesses that failed post-hoc validation.  Always 0 unless the
    #: builder has a bug; the differential suite asserts on it.
    invalid_witnesses: int = 0

    def keys(self) -> Set[Tuple[str, int]]:
        """``(field, address)`` keys, comparable to FastTrack reports."""
        return {race.key() for race in self.races}


class PredictiveDetector:
    """Predictive detector for one happens-before spec.

    ``validate=True`` (the default) re-checks every witness through
    :func:`~repro.predict.witness.validate_witness` — including a full
    :class:`~repro.fuzz.sanitizer.TraceSanitizer` pass with the given
    ``near``/``window_cap`` — and silently drops any race whose witness
    fails, so reported races are always sanitizer-clean.
    """

    def __init__(
        self,
        spec: HappensBeforeSpec,
        near: float = 1.0,
        window_cap: int = 15,
        validate: bool = True,
    ) -> None:
        self.spec = spec
        self.near = near
        self.window_cap = window_cap
        self.validate = validate

    def analyze(self, log: TraceLog) -> PredictionAnalysis:
        analysis = PredictionAnalysis(spec_name=self.spec.name)
        closure = SyncPreservingClosure(log, self.spec)
        groups = ConflictGroups(log.memory_events())
        #: Dedup key: one representative per (field, address, access
        #: kinds, thread pair) — the earliest pair that witnesses wins.
        reported: Set[Tuple[str, int, str, str, int, int]] = set()
        for key, group in groups.groups():
            _, address, name = key
            for j in range(len(group)):
                for i in range(j):
                    if group.threads[i] == group.threads[j]:
                        continue
                    if not (group.writes[i] or group.writes[j]):
                        continue
                    analysis.pairs_checked += 1
                    dedup = (
                        name,
                        address,
                        "write" if group.writes[i] else "read",
                        "write" if group.writes[j] else "read",
                        group.threads[i],
                        group.threads[j],
                    )
                    if dedup in reported:
                        continue
                    a_seq = group.events[i].seq
                    b_seq = group.events[j].seq
                    ideal = closure.predicts(a_seq, b_seq)
                    if ideal is None:
                        continue
                    analysis.pairs_predicted += 1
                    witness = build_witness(
                        log, self.spec, closure, a_seq, b_seq, ideal
                    )
                    if witness is None:
                        analysis.unwitnessed_pairs += 1
                        continue
                    if self.validate:
                        problems = validate_witness(
                            log, witness, self.spec, a_seq, b_seq,
                            near=self.near, window_cap=self.window_cap,
                        )
                        if problems:
                            analysis.invalid_witnesses += 1
                            continue
                    reported.add(dedup)
                    analysis.races.append(
                        PredictedRace(
                            field_name=name,
                            address=address,
                            first_access=dedup[2],
                            second_access=dedup[3],
                            first_thread=group.threads[i],
                            second_thread=group.threads[j],
                            timestamp=group.times[j],
                            a_seq=a_seq,
                            b_seq=b_seq,
                            first_timestamp=group.times[i],
                            witness=witness,
                            validated=self.validate,
                        )
                    )
        return analysis


def analyze_run_predictive(
    log: TraceLog, spec: HappensBeforeSpec, **kwargs: object
) -> PredictionAnalysis:
    """Run the predictive detector over one test run's trace."""
    return PredictiveDetector(spec, **kwargs).analyze(log)


__all__ = [
    "PredictedRace",
    "PredictionAnalysis",
    "PredictiveDetector",
    "analyze_run_predictive",
]
