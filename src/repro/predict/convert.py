"""Directed schedule search: convert predicted races into observed ones.

PR 7's predictive detector emits *predicted-only* races — fields the
sync-preserving closure proves racy but FastTrack's first-race report
(sound per §5.4 of the paper only up to the first race of a run) missed
in the observed order.  This module closes the loop: it fans
:class:`~repro.sim.schedule.DirectedPolicy` schedules (PCT priorities
with change points pinned to the target fields' static locations) over
an :class:`~repro.runtime.engine.ExecutionRuntime` and checks, per
app × spec × target, whether the prediction is *converted* into an
observed FastTrack race — ground truth the predictive detector got
right.  A target no directed schedule ever converts is flagged a
candidate false prediction.

Conversion verdicts use a **rolling soundness horizon**.  FastTrack is
sound up to a run's first race; a race report further down the run is
trustworthy only if every report before it is itself established ground
truth.  The observed run's first races *are* established (they are the
sound reports), so the harness walks each directed run's report
sequence and accepts a target the moment every report preceding it is
established — and each accepted target joins the established set,
extending the horizon for the remaining targets (the classic
detect → validate → continue loop).  This matters structurally: when
two threads touch a masker field and a target field in the same program
order, the target's report position trails the masker's under *every*
interleaving, so demanding the target be the literal first report of a
run would be unsatisfiable — not because the prediction is wrong but
because report order is pinned by program order.  The rolling horizon
validates exactly what a human would: the target raced in a real
execution, and nothing unvalidated happened before it.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from ..analysis.tables import TableResult
from ..apps.registry import get_application, resolve_app_id
from ..core.config import SherlockConfig
from ..core.pipeline import Sherlock
from ..racedet.annotations import manual_spec, sherlock_spec
from ..racedet.fasttrack import analyze_run
from ..racedet.spec import HappensBeforeSpec
from ..runtime.engine import ExecutionRuntime
from ..runtime.metrics import RunMetrics
from ..sim.runner import RunOptions, run_application
from ..sim.schedule import directed_spec, parse_target
from .harness import predict_app, predictive_name

#: One baseline job: (app_id, kernel_seed, rounds, policy, spec_kind).
BaselineJob = Tuple[str, int, int, str, str]

#: One directed job: (app_id, kernel_seed, directed_seed, rounds,
#: spec_kind, base_policy, targets).  Plain data so it crosses the
#: process-pool boundary like every other runtime job.
ConvertJob = Tuple[str, int, int, int, str, str, Tuple[str, ...]]


def _build_spec(
    app, spec_kind: str, rounds: int, seed: int, policy: str
) -> HappensBeforeSpec:
    """The happens-before vocabulary for one job (worker-side)."""
    if spec_kind == "manual":
        return manual_spec(app)
    if spec_kind == "sherlock":
        config = SherlockConfig(
            rounds=rounds, seed=seed, schedule_policy=policy
        )
        return sherlock_spec(Sherlock(app, config).run().final)
    raise ValueError(f"unknown spec kind {spec_kind!r}")


@dataclass
class ConvertBaseline:
    """Observed-order facts one conversion pass starts from."""

    app_id: str
    spec_kind: str
    spec_name: str
    #: Fields of FastTrack first races in the observed run — the initial
    #: established ground truth (the §5.4-sound reports).
    established: List[str] = field(default_factory=list)
    predicted_only: List[str] = field(default_factory=list)
    unwitnessed: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0


def run_baseline_job(job: BaselineJob) -> ConvertBaseline:
    """Observed-order prediction baseline (worker-process entry point)."""
    app_id, seed, rounds, policy, spec_kind = job
    t_start = time.perf_counter()
    app = get_application(app_id)
    spec = _build_spec(app, spec_kind, rounds, seed, policy)
    report = predict_app(app, spec, seed=seed, policy=policy)
    established = sorted(
        {f.field_name for f in report.ft_first if f is not None}
    )
    return ConvertBaseline(
        app_id=app.app_id,
        spec_kind=spec_kind,
        spec_name=report.spec_name,
        established=established,
        predicted_only=report.predicted_only_fields,
        unwitnessed=report.unwitnessed_fields,
        elapsed_s=time.perf_counter() - t_start,
    )


@dataclass
class DirectedRun:
    """FastTrack's race-report sequences under one directed schedule."""

    app_id: str
    spec_kind: str
    directed_seed: int
    policy_spec: str
    #: Per test: the fields of FastTrack's reports, in report order.
    sequences: List[Tuple[str, List[str]]] = field(default_factory=list)
    elapsed_s: float = 0.0


def run_convert_job(job: ConvertJob) -> DirectedRun:
    """Run one directed schedule (worker-process entry point)."""
    app_id, seed, dseed, rounds, spec_kind, policy, targets = job
    t_start = time.perf_counter()
    app = get_application(app_id)
    spec = _build_spec(app, spec_kind, rounds, seed, policy)
    pspec = directed_spec(dseed, targets)
    options = RunOptions(seed=seed, run_id=0, schedule_policy=pspec)
    executions = run_application(app, options)
    sequences = [
        (
            execution.test_name,
            [r.field_name for r in analyze_run(execution.log, spec).races],
        )
        for execution in executions
    ]
    return DirectedRun(
        app_id=app.app_id,
        spec_kind=spec_kind,
        directed_seed=dseed,
        policy_spec=pspec,
        sequences=sequences,
        elapsed_s=time.perf_counter() - t_start,
    )


@dataclass
class TargetVerdict:
    """Conversion outcome for one schedule-search target."""

    target: str          # as given (may carry "[read/write]" kinds)
    field_name: str      # the bare qualified field
    converted: bool
    #: Evidence of the converting run (None when flagged).
    directed_seed: Optional[int] = None
    policy_spec: Optional[str] = None
    test_name: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def cascade_conversions(
    established: Iterable[str],
    targets: Iterable[str],
    runs: Iterable[DirectedRun],
) -> List[TargetVerdict]:
    """Apply the rolling soundness horizon over directed runs.

    Walks every run's report sequence; a pending target converts when
    each report before its own is established, and immediately joins the
    established set.  Iterates to a fixpoint so conversion order does
    not depend on which run the scheduler happened to finish first.
    """
    field_of = {t: parse_target(t)[0] for t in targets}
    known = set(established)
    verdicts: Dict[str, TargetVerdict] = {}
    ordered_runs = sorted(
        runs, key=lambda r: (r.directed_seed, r.policy_spec)
    )
    changed = True
    while changed:
        changed = False
        for run in ordered_runs:
            for test_name, sequence in run.sequences:
                sound = True
                for field_name in sequence:
                    if field_name in known:
                        continue
                    pending = [
                        t
                        for t, f in field_of.items()
                        if f == field_name and t not in verdicts
                    ]
                    if sound and pending:
                        for t in pending:
                            verdicts[t] = TargetVerdict(
                                target=t,
                                field_name=field_name,
                                converted=True,
                                directed_seed=run.directed_seed,
                                policy_spec=run.policy_spec,
                                test_name=test_name,
                            )
                        known.add(field_name)
                        changed = True
                        continue
                    # An unestablished non-target report: everything
                    # after it in this run is past the sound horizon.
                    break
    return [
        verdicts.get(
            t, TargetVerdict(target=t, field_name=f, converted=False)
        )
        for t, f in sorted(field_of.items())
    ]


@dataclass
class ConvertConfig:
    """Knobs of one conversion pass."""

    app_ids: List[str] = field(default_factory=list)
    #: Directed schedules (seeds) per app × spec.
    schedules: int = 4
    #: Kernel seed of both the observed baseline and the directed runs.
    base_seed: int = 0
    directed_base_seed: int = 0
    #: SherLock inference rounds (spec_kind="sherlock" only).
    rounds: int = 3
    #: Schedule policy of the observed baseline run.
    policy: str = "random"
    specs: Tuple[str, ...] = ("manual",)
    workers: int = 1
    engine: Optional[str] = None
    #: Explicit targets per app id (e.g. from
    #: ``CampaignReport.schedule_targets()``); apps not listed derive
    #: their targets from the baseline's predicted-only + unwitnessed
    #: fields.
    targets: Optional[Dict[str, List[str]]] = None

    def validate(self) -> None:
        """Read-only sanity checks (never mutates the config)."""
        if self.schedules < 1:
            raise ValueError("schedules must be >= 1")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if not self.app_ids:
            raise ValueError("conversion needs at least one app id")
        for kind in self.specs:
            if kind not in ("manual", "sherlock"):
                raise ValueError(f"unknown spec kind {kind!r}")
        if self.engine is not None:
            from ..runtime.engines import validate_engine_spec

            validate_engine_spec(self.engine)
        for app_id in self.app_ids:
            resolve_app_id(app_id)
        for targets in (self.targets or {}).values():
            for target in targets:
                parse_target(target)
        SherlockConfig(schedule_policy=self.policy)  # spec check

    def resolved(self) -> "ConvertConfig":
        """Validated copy with app aliases resolved (pure)."""
        self.validate()
        resolved_targets = (
            {
                resolve_app_id(a): sorted(ts)
                for a, ts in self.targets.items()
            }
            if self.targets is not None
            else None
        )
        return replace(
            self,
            app_ids=[resolve_app_id(a) for a in self.app_ids],
            targets=resolved_targets,
        )


@dataclass
class ConvertRow:
    """One app × spec conversion verdict set."""

    app_id: str
    spec_kind: str
    spec_name: str
    established: List[str] = field(default_factory=list)
    verdicts: List[TargetVerdict] = field(default_factory=list)
    directed_runs: int = 0
    elapsed_s: float = 0.0

    @property
    def converted(self) -> List[TargetVerdict]:
        return [v for v in self.verdicts if v.converted]

    @property
    def flagged(self) -> List[TargetVerdict]:
        """Never-converted targets: candidate false predictions."""
        return [v for v in self.verdicts if not v.converted]

    def to_dict(self) -> Dict[str, object]:
        return {
            "app_id": self.app_id,
            "spec_kind": self.spec_kind,
            "spec_name": self.spec_name,
            "established": self.established,
            "verdicts": [v.to_dict() for v in self.verdicts],
            "converted": len(self.converted),
            "flagged": [v.target for v in self.flagged],
            "directed_runs": self.directed_runs,
            "elapsed_s": round(self.elapsed_s, 3),
        }


@dataclass
class ConvertReport:
    """Aggregated conversion pass."""

    config: ConvertConfig
    rows: List[ConvertRow]
    metrics: RunMetrics = field(default_factory=RunMetrics)
    elapsed_s: float = 0.0

    @property
    def total_targets(self) -> int:
        return sum(len(r.verdicts) for r in self.rows)

    @property
    def total_converted(self) -> int:
        return sum(len(r.converted) for r in self.rows)

    @property
    def total_flagged(self) -> int:
        return sum(len(r.flagged) for r in self.rows)

    def planted_unconverted(self) -> List[Tuple[str, str]]:
        """(app_id, target) pairs planted in ground truth yet never
        converted — the condition CI's convert-smoke gate fails on."""
        out: List[Tuple[str, str]] = []
        for row in self.rows:
            racy = get_application(row.app_id).ground_truth.racy_fields
            out.extend(
                (row.app_id, v.target)
                for v in row.flagged
                if v.field_name in racy
            )
        return out

    def exit_code(self, require_planted: bool = False) -> int:
        """0 unless ``require_planted`` and a planted target is flagged."""
        if require_planted and self.planted_unconverted():
            return 1
        return 0

    def table(self) -> TableResult:
        table = TableResult(
            title="Directed schedule search: predicted race conversion",
            headers=[
                "App", "Spec", "Targets", "Converted", "Flagged",
                "Runs", "Candidate false predictions",
            ],
        )
        for row in self.rows:
            table.add_row(
                row.app_id,
                row.spec_name,
                len(row.verdicts),
                len(row.converted),
                len(row.flagged),
                row.directed_runs,
                ", ".join(v.target for v in row.flagged) or "-",
            )
        table.notes.append(
            "Converted: target raced in a directed run with every "
            "earlier report already established (rolling §5.4 horizon)"
        )
        table.notes.append(
            "Flagged: no directed schedule converted the target — "
            "candidate false prediction"
        )
        return table

    def summary(self) -> str:
        lines = [
            f"conversion pass: {self.total_targets} target(s) over "
            f"{len(self.config.app_ids)} app(s), "
            f"{self.config.schedules} directed schedule(s) each, "
            f"kernel seed {self.config.base_seed}"
        ]
        for row in self.rows:
            lines.append(
                f"  {row.app_id} [{row.spec_name}]: "
                f"{len(row.converted)}/{len(row.verdicts)} converted"
                + (
                    f", flagged: "
                    f"{', '.join(v.target for v in row.flagged)}"
                    if row.flagged
                    else ""
                )
            )
        lines.append(
            f"  RESULT: {self.total_converted} converted, "
            f"{self.total_flagged} candidate false prediction(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": {
                "app_ids": self.config.app_ids,
                "schedules": self.config.schedules,
                "base_seed": self.config.base_seed,
                "directed_base_seed": self.config.directed_base_seed,
                "rounds": self.config.rounds,
                "policy": self.config.policy,
                "specs": list(self.config.specs),
                "workers": self.config.workers,
                "engine": self.config.engine,
                "targets": self.config.targets,
            },
            "totals": {
                "targets": self.total_targets,
                "converted": self.total_converted,
                "flagged": self.total_flagged,
                "planted_unconverted": [
                    list(pair) for pair in self.planted_unconverted()
                ],
                "elapsed_s": round(self.elapsed_s, 3),
            },
            "rows": [r.to_dict() for r in self.rows],
        }


def run_conversion(
    config: ConvertConfig,
    runtime: Optional[ExecutionRuntime] = None,
) -> ConvertReport:
    """Execute a conversion pass, optionally on a caller-owned runtime.

    Stage 1 runs one observed baseline per app × spec (prediction +
    FastTrack first races); stage 2 fans the directed schedules over
    the runtime's engine; the cascade then assigns verdicts.
    """
    config = config.resolved()
    t_start = time.perf_counter()
    baseline_jobs: List[BaselineJob] = [
        (app_id, config.base_seed, config.rounds, config.policy, kind)
        for app_id in config.app_ids
        for kind in config.specs
    ]
    owned = runtime is None
    rt = runtime or ExecutionRuntime(
        workers=config.workers, engine=config.engine
    )
    try:
        baselines = rt.map_jobs(run_baseline_job, baseline_jobs)
        targets_of: Dict[Tuple[str, str], List[str]] = {}
        directed_jobs: List[ConvertJob] = []
        for baseline in baselines:
            explicit = (config.targets or {}).get(baseline.app_id)
            targets = sorted(
                explicit
                if explicit
                else {*baseline.predicted_only, *baseline.unwitnessed}
            )
            targets_of[(baseline.app_id, baseline.spec_kind)] = targets
            if not targets:
                continue
            directed_jobs.extend(
                (
                    baseline.app_id,
                    config.base_seed,
                    config.directed_base_seed + i,
                    config.rounds,
                    baseline.spec_kind,
                    config.policy,
                    tuple(targets),
                )
                for i in range(config.schedules)
            )
        runs = rt.map_jobs(run_convert_job, directed_jobs)
    finally:
        if owned:
            rt.close()

    rows: List[ConvertRow] = []
    for baseline in baselines:
        key = (baseline.app_id, baseline.spec_kind)
        app_runs = [
            r
            for r in runs
            if (r.app_id, r.spec_kind) == key
        ]
        verdicts = cascade_conversions(
            baseline.established, targets_of[key], app_runs
        )
        rows.append(
            ConvertRow(
                app_id=baseline.app_id,
                spec_kind=baseline.spec_kind,
                spec_name=baseline.spec_name,
                established=baseline.established,
                verdicts=verdicts,
                directed_runs=len(app_runs),
                elapsed_s=baseline.elapsed_s
                + sum(r.elapsed_s for r in app_runs),
            )
        )
    report = ConvertReport(
        config=config,
        rows=rows,
        elapsed_s=time.perf_counter() - t_start,
    )
    report.metrics.convert_targets = report.total_targets
    report.metrics.convert_converted = report.total_converted
    report.metrics.convert_flagged = report.total_flagged
    report.metrics.convert_runs = len(runs)
    report.metrics.workers = config.workers
    return report


__all__ = [
    "BaselineJob",
    "ConvertBaseline",
    "ConvertConfig",
    "ConvertJob",
    "ConvertReport",
    "ConvertRow",
    "DirectedRun",
    "TargetVerdict",
    "cascade_conversions",
    "run_baseline_job",
    "run_conversion",
    "run_convert_job",
]
