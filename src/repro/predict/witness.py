"""Witness reorderings for predicted races.

A predicted race is only reported when a concrete **witness reordering**
exists: a new trace, drawn injectively from the original run's events,
that (1) preserves every thread's program order and is program-order
closed, (2) gives every acquire the *same* pairing release — and every
event on a statically-initialized address the same publish — as the
source trace, and (3) ends with the two racy accesses co-enabled (the
final two events).  The witness is materialized as a fresh
:class:`~repro.trace.log.TraceLog` (timestamps re-stamped onto a uniform
grid, original positions kept in ``meta["witness_of"]``) and validated
both structurally and through the fuzz layer's
:class:`~repro.fuzz.sanitizer.TraceSanitizer`.

Construction is a deterministic constraint solve over the pair's ideal:

* program-order edges chain each thread's events;
* each acquire depends on its pairing release (``pair(a) → a``), and
  any *other* release on the same channel is pushed outside the
  ``(pair(a), a)`` span — before the pairing release when the original
  trace had it there, after the acquire otherwise (races whose ideal
  forces a channel conflict that cannot be resolved this way are
  rejected rather than mis-witnessed);
* static-init publishes are constrained identically.

The resulting DAG is linearized by Kahn's algorithm with a min-``seq``
heap (deterministic), the racy pair is appended in whichever order
keeps its own pairings intact, and the witness is re-validated from
scratch — the detector drops any prediction whose witness fails.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from ..racedet.spec import HappensBeforeSpec
from ..trace.events import TraceEvent
from ..trace.log import TraceLog
from .closure import PrefixVector, SyncPreservingClosure, sync_pairings

#: Uniform timestamp grid of witness logs (any positive spacing yields a
#: well-formed log; the sanitizer's window checks are self-consistent).
WITNESS_TIME_STEP = 0.001

#: ``meta`` key carrying each witness event's original ``seq``.
WITNESS_OF = "witness_of"


def build_witness(
    log: TraceLog,
    spec: HappensBeforeSpec,
    closure: SyncPreservingClosure,
    a_seq: int,
    b_seq: int,
    ideal: PrefixVector,
) -> Optional[TraceLog]:
    """A sync-preserving witness reordering exposing ``(a, b)``, or
    ``None`` when the pair's channel constraints are unsatisfiable."""
    body = closure.ideal_events(ideal)
    order = _linearize_body(log, spec, closure, body, (a_seq, b_seq))
    if order is None:
        return None
    tail = _order_tail(log, spec, closure, order, a_seq, b_seq)
    if tail is None:
        return None
    return _materialize(log, order + tail)


# -- constraint graph ----------------------------------------------------------


def _linearize_body(
    log: TraceLog,
    spec: HappensBeforeSpec,
    closure: SyncPreservingClosure,
    body: List[int],
    tail: Tuple[int, int],
) -> Optional[List[int]]:
    """Linearize the ideal under program order + pairing constraints."""
    events = log.events
    member: Set[int] = set(body)
    edges: Set[Tuple[int, int]] = set()

    # Program order within the ideal (each thread's slice is a prefix).
    per_thread: Dict[int, List[int]] = {}
    for seq in body:  # body is in trace order
        per_thread.setdefault(events[seq].thread_id, []).append(seq)
    for chain in per_thread.values():
        for prev, nxt in zip(chain, chain[1:]):
            edges.add((prev, nxt))

    releases_on: Dict[int, List[int]] = {}
    publishes_on: Dict[int, List[int]] = {}
    for seq in body:
        e = events[seq]
        if spec.is_release_event(e):
            releases_on.setdefault(e.address, []).append(seq)
        if spec.is_static_publish_event(e):
            publishes_on.setdefault(e.address, []).append(seq)

    pairings = closure.pairings
    constrained = body + [t for t in tail]
    for seq in constrained:
        e = events[seq]
        is_tail = seq in tail
        if seq in pairings.acquires:
            ok = _channel_edges(
                seq, pairings.acquires[seq],
                releases_on.get(e.address, ()), member, is_tail, edges,
            )
            if not ok:
                return None
        if seq in pairings.statics:
            ok = _channel_edges(
                seq, pairings.statics[seq],
                publishes_on.get(e.address, ()), member, is_tail, edges,
            )
            if not ok:
                return None
    return _toposort(member, edges)


def _channel_edges(
    seq: int,
    pair: Optional[int],
    channel_events: "tuple[int, ...] | List[int]",
    member: Set[int],
    is_tail: bool,
    edges: Set[Tuple[int, int]],
) -> bool:
    """Constrain one event's channel so its observed pairing survives.

    ``channel_events`` are the ideal's releases (or publishes) on the
    event's address.  Everything but the pairing itself must stay out of
    the ``(pair, seq)`` span; a constraint that would have to follow a
    tail event is redirected before the pairing instead (tail events are
    last by construction).  Returns ``False`` when unsatisfiable.
    """
    if pair is None:
        for other in channel_events:
            if other == seq:
                continue  # a publish/release never constrains itself
            if is_tail:
                # Nothing may follow the racy pair, so a channel event
                # inside the ideal would land before ``seq`` and change
                # its never-paired status.
                return False
            edges.add((seq, other))
        return True
    if pair not in member:
        # The closure always pulls the pairing in; a missing pairing
        # would make the witness unsoundly re-pair the event.
        return False
    edges.add((pair, seq))
    for other in channel_events:
        if other == pair or other == seq:
            continue
        if other < pair:
            edges.add((other, pair))
        elif is_tail:
            # ``other`` originally ran after the racy access; it must
            # now slot in before the pairing instead.
            edges.add((other, pair))
        else:
            edges.add((seq, other))
    return True


def _toposort(
    member: Set[int], edges: Set[Tuple[int, int]]
) -> Optional[List[int]]:
    """Kahn's algorithm with a min-seq heap; ``None`` on a cycle."""
    successors: Dict[int, List[int]] = {}
    indegree: Dict[int, int] = {seq: 0 for seq in member}
    for src, dst in edges:
        if src in member and dst in member:
            successors.setdefault(src, []).append(dst)
            indegree[dst] += 1
    ready = [seq for seq, deg in indegree.items() if deg == 0]
    heapq.heapify(ready)
    out: List[int] = []
    while ready:
        seq = heapq.heappop(ready)
        out.append(seq)
        for nxt in successors.get(seq, ()):
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                heapq.heappush(ready, nxt)
    if len(out) != len(member):
        return None  # constraint cycle: no sync-preserving schedule
    return out


def _order_tail(
    log: TraceLog,
    spec: HappensBeforeSpec,
    closure: SyncPreservingClosure,
    body_order: List[int],
    a_seq: int,
    b_seq: int,
) -> Optional[List[int]]:
    """Pick the racy pair's final order so its own pairings hold."""
    events = log.events
    last_release: Dict[int, int] = {}
    last_publish: Dict[int, int] = {}
    for seq in body_order:
        e = events[seq]
        if spec.is_release_event(e):
            last_release[e.address] = seq
        if spec.is_static_publish_event(e):
            last_publish[e.address] = seq
    for tail in ([a_seq, b_seq], [b_seq, a_seq]):
        if _tail_ok(events, spec, closure, tail, last_release, last_publish):
            return tail
    return None


def _tail_ok(
    events: List[TraceEvent],
    spec: HappensBeforeSpec,
    closure: SyncPreservingClosure,
    tail: List[int],
    last_release: Dict[int, int],
    last_publish: Dict[int, int],
) -> bool:
    release_state = dict(last_release)
    pairings = closure.pairings
    for seq in tail:
        e = events[seq]
        if seq in pairings.acquires:
            if release_state.get(e.address) != pairings.acquires[seq]:
                return False
        if seq in pairings.statics:
            if last_publish.get(e.address) != pairings.statics[seq]:
                return False
        if spec.is_release_event(e):
            release_state[e.address] = seq
    return True


def _materialize(log: TraceLog, order: List[int]) -> TraceLog:
    """Emit the chosen order as a fresh, re-stamped trace log."""
    witness = TraceLog(run_id=log.run_id)
    for position, seq in enumerate(order):
        e = log.events[seq]
        witness.append(
            TraceEvent(
                timestamp=position * WITNESS_TIME_STEP,
                thread_id=e.thread_id,
                optype=e.optype,
                name=e.name,
                address=e.address,
                local_time=e.local_time,
                meta={**e.meta, WITNESS_OF: seq},
            )
        )
    return witness


# -- validation ----------------------------------------------------------------


def validate_witness(
    log: TraceLog,
    witness: TraceLog,
    spec: HappensBeforeSpec,
    a_seq: int,
    b_seq: int,
    near: float = 1.0,
    window_cap: int = 15,
) -> List[str]:
    """Check the witness contract from scratch; returns problem strings.

    Independent of the construction: re-derives the permutation mapping,
    program-order closure, sync pairings, and co-enabledness, then runs
    the :class:`~repro.fuzz.sanitizer.TraceSanitizer` over the witness
    (as a truncated execution: the reordering legitimately stops at the
    racy pair, so open calls are allowed, but every other invariant —
    monotone time, attribution, stack discipline, genuinely conflicting
    windows — must hold).
    """
    problems: List[str] = []
    origin: List[int] = []
    for e in witness.events:
        seq = e.meta.get(WITNESS_OF, -1)
        if not isinstance(seq, int) or not 0 <= seq < len(log.events):
            problems.append(f"witness event {e.seq} has no valid origin")
            return problems
        origin.append(seq)
    if len(set(origin)) != len(origin):
        problems.append("witness duplicates original events")
    for e, seq in zip(witness.events, origin):
        src = log.events[seq]
        same = (
            e.thread_id == src.thread_id
            and e.optype is src.optype
            and e.name == src.name
            and e.address == src.address
        )
        if not same:
            problems.append(
                f"witness event {e.seq} does not match original {seq}"
            )

    # Program order: each thread's events form a prefix of its original
    # events, in order (plus the racy access as that thread's last step).
    by_thread: Dict[int, List[int]] = {}
    for seq in origin:
        by_thread.setdefault(log.events[seq].thread_id, []).append(seq)
    original_by_thread: Dict[int, List[int]] = {}
    for e in log.events:
        original_by_thread.setdefault(e.thread_id, []).append(e.seq)
    for tid, seqs in by_thread.items():
        if seqs != original_by_thread[tid][: len(seqs)]:
            problems.append(
                f"thread {tid} order is not a program-order-closed "
                f"prefix of the original trace"
            )

    # Co-enabledness: the racy pair are the witness's final two events.
    if set(origin[-2:]) != {a_seq, b_seq}:
        problems.append("racy pair is not the witness's final two events")
    else:
        a, b = log.events[origin[-2]], log.events[origin[-1]]
        if not a.conflicts_with(b):
            problems.append("witness tail events do not conflict")

    # Sync-preservation: identical pairings, event by event.
    original = sync_pairings(log.events, spec)
    seq_of = {id(e): seq for e, seq in zip(witness.events, origin)}
    reordered = sync_pairings(witness.events, spec, seq_of=seq_of)
    for seq in origin:
        expect = original.acquires.get(seq, _MISSING)
        if expect is not _MISSING:
            if reordered.acquires.get(seq, _MISSING) != expect:
                problems.append(
                    f"acquire at original seq {seq} re-paired "
                    f"({expect} -> {reordered.acquires.get(seq)})"
                )
        expect = original.statics.get(seq, _MISSING)
        if expect is not _MISSING:
            if reordered.statics.get(seq, _MISSING) != expect:
                problems.append(
                    f"event at original seq {seq} observes a different "
                    f"static-init publish"
                )

    from ..fuzz.sanitizer import TraceSanitizer
    from ..sim.runner import TestExecution

    execution = TestExecution(
        test_name="predicted-race-witness",
        log=witness,
        steps=len(witness),
        error="witness: truncated at the predicted race",
    )
    sanitizer = TraceSanitizer(near=near, window_cap=window_cap)
    for violation in sanitizer.sanitize(execution):
        problems.append(f"sanitizer: {violation.code}: {violation.message}")
    return problems


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return "<missing>"


_MISSING = _Missing()


__all__ = [
    "WITNESS_OF",
    "WITNESS_TIME_STEP",
    "build_witness",
    "validate_witness",
]
