"""Predictive (sync-preserving) race detection over inferred syncs.

Where the FastTrack harness (:mod:`repro.racedet`) only witnesses races
in the *observed* schedule, this package predicts races reachable by
reordering the trace without changing which sync operations pair up
(after "Optimal Prediction of Synchronization-Preserving Races" —
Mathur, Pavlogiannis, Viswanathan).  It is parameterized by the same
:class:`~repro.racedet.spec.HappensBeforeSpec` as FastTrack, so it runs
as Manual_pr / SherLock_pr next to Manual_dr / SherLock_dr, and every
predicted race ships a concrete, sanitizer-validated witness reordering.
"""

from .closure import (
    PrefixVector,
    SyncPairings,
    SyncPreservingClosure,
    sync_pairings,
)
from .convert import (
    ConvertConfig,
    ConvertReport,
    ConvertRow,
    TargetVerdict,
    cascade_conversions,
    run_conversion,
)
from .detector import (
    PredictedRace,
    PredictionAnalysis,
    PredictiveDetector,
    analyze_run_predictive,
)
from .harness import (
    PowerConfig,
    PowerReport,
    PowerRow,
    PredictionReport,
    predict_app,
    run_power_sweep,
)
from .witness import WITNESS_OF, build_witness, validate_witness

__all__ = [
    "WITNESS_OF",
    "ConvertConfig",
    "ConvertReport",
    "ConvertRow",
    "PowerConfig",
    "PowerReport",
    "PowerRow",
    "PredictedRace",
    "PredictionAnalysis",
    "PredictionReport",
    "PredictiveDetector",
    "PrefixVector",
    "SyncPairings",
    "SyncPreservingClosure",
    "TargetVerdict",
    "analyze_run_predictive",
    "build_witness",
    "cascade_conversions",
    "predict_app",
    "run_conversion",
    "run_power_sweep",
    "sync_pairings",
    "validate_witness",
]
