"""Schedule-fuzzing campaigns.

A campaign sweeps scheduler seeds for one or more apps: each *schedule*
is one full Observer → Solver → Perturber pipeline run under a distinct
``(seed, policy)``, with every observed trace fed through the
:mod:`~repro.fuzz.sanitizer` and the final report through the
:mod:`~repro.fuzz.oracles`.  Schedules fan out across an
:class:`~repro.runtime.engine.ExecutionRuntime` engine (``workers`` /
``engine``), and a *permutation pass* re-executes a sample of
schedules in reverse order afterwards, checking that trace digests and
serialized reports come back byte-identical (runs must not leak state
into each other, and report content must not depend on campaign order).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..apps.registry import get_application, resolve_app_id
from ..core.config import SherlockConfig
from ..core.pipeline import Sherlock
from ..core.serialize import report_to_dict
from ..runtime.engine import ExecutionRuntime
from ..sim.runner import TestExecution
from .oracles import (
    OracleResult,
    ground_truth_oracle,
    lambda_stability_oracle,
    predicted_unwitnessed_oracle,
)
from .sanitizer import TraceSanitizer, Violation, trace_digest

#: One schedule job: (app_id, seed, rounds, policy, lam_tolerance,
#: run_oracles).  Plain data so it crosses the process-pool boundary.
ScheduleJob = Tuple[str, int, int, str, float, bool]


@dataclass
class CampaignConfig:
    """Knobs of one fuzz campaign."""

    app_ids: List[str] = field(default_factory=list)
    schedules: int = 25
    base_seed: int = 0
    #: Rounds per schedule; 3 is the paper default (App-5 in particular
    #: only converges on true syncs after the third round's feedback).
    rounds: int = 3
    policy: str = "random"
    workers: int = 1
    #: Execution-engine spec for the schedule fan-out ("serial" |
    #: "process[:N]" | "async[:N]"); ``None`` derives from ``workers``
    #: (process pool when > 1).  ``workers`` sizes an unsized spec.
    engine: Optional[str] = None
    #: λ-stability probe half-width (±fraction of config.lam).  ±1% is
    #: the empirically stable band across all 8 apps at rounds=3; App-4
    #: and App-8 carry LP probabilities near the 0.9 threshold, so wider
    #: bands flip borderline candidates (recorded as oracle failures).
    lam_tolerance: float = 0.01
    #: Every Nth schedule joins the permutation replay pass (0 disables).
    replay_every: int = 5
    oracles: bool = True

    def validate(self) -> None:
        """Read-only sanity checks — never mutates the config, so a
        caller's ``CampaignConfig`` serializes exactly as passed and
        ``validate()`` is idempotent by inspection."""
        if self.schedules < 1:
            raise ValueError("schedules must be >= 1")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.replay_every < 0:
            raise ValueError("replay_every must be >= 0")
        if not self.app_ids:
            raise ValueError("campaign needs at least one app id")
        if self.engine is not None:
            from ..runtime.engines import validate_engine_spec

            validate_engine_spec(self.engine)
        # Resolves aliases eagerly so typos fail before any execution
        # (result discarded: resolution itself happens in resolved()).
        for app_id in self.app_ids:
            resolve_app_id(app_id)
        SherlockConfig(schedule_policy=self.policy)  # spec check

    def resolved(self) -> "CampaignConfig":
        """Validated copy with app aliases resolved (pure)."""
        self.validate()
        return replace(
            self, app_ids=[resolve_app_id(a) for a in self.app_ids]
        )


@dataclass
class ScheduleResult:
    """Outcome of one fuzzed schedule (picklable)."""

    app_id: str
    seed: int
    policy: str
    trace_digest: str
    report_digest: str
    inferred: List[str]
    events_observed: int
    executions: int
    violations: List[Dict[str, Any]] = field(default_factory=list)
    oracles: List[Dict[str, Any]] = field(default_factory=list)
    test_errors: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def oracle_failures(self) -> List[Dict[str, Any]]:
        return [o for o in self.oracles if not o["passed"]]

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def run_schedule_job(job: ScheduleJob) -> ScheduleResult:
    """Run one schedule end to end (the worker-process entry point)."""
    app_id, seed, rounds, policy, lam_tolerance, run_oracles = job
    t_start = time.perf_counter()
    app = get_application(app_id)
    config = SherlockConfig(
        rounds=rounds, seed=seed, schedule_policy=policy
    )
    collected: List[TestExecution] = []
    sherlock = Sherlock(
        app,
        config,
        round_listener=lambda _round, execs: collected.extend(execs),
    )
    report = sherlock.run()

    sanitizer = TraceSanitizer(
        near=config.near, window_cap=config.window_cap
    )
    violations: List[Violation] = []
    for execution in collected:
        violations.extend(sanitizer.sanitize(execution))

    oracle_results: List[OracleResult] = []
    if run_oracles:
        oracle_results.append(ground_truth_oracle(app, report))
        oracle_results.append(
            lambda_stability_oracle(report, tolerance=lam_tolerance)
        )
        oracle_results.append(
            predicted_unwitnessed_oracle(app, report, collected)
        )

    report_json = json.dumps(report_to_dict(report), sort_keys=True)
    return ScheduleResult(
        app_id=app_id,
        seed=seed,
        policy=policy,
        trace_digest=trace_digest(collected),
        report_digest=hashlib.sha256(
            report_json.encode("utf-8")
        ).hexdigest(),
        inferred=sorted(s.display() for s in report.final.syncs),
        events_observed=sum(len(e.log) for e in collected),
        executions=len(collected),
        violations=[v.to_dict() for v in violations],
        oracles=[o.to_dict() for o in oracle_results],
        test_errors=sorted(
            {err for r in report.rounds for err in r.test_errors}
        ),
        elapsed_s=time.perf_counter() - t_start,
    )


@dataclass
class CampaignReport:
    """Aggregated result of one campaign."""

    config: CampaignConfig
    results: List[ScheduleResult]
    #: (app_id, seed) pairs whose permuted replay did not reproduce the
    #: original trace digest + report digest.
    permutation_mismatches: List[Dict[str, Any]] = field(
        default_factory=list
    )
    permutation_sampled: int = 0
    elapsed_s: float = 0.0

    # -- aggregate views -----------------------------------------------------

    @property
    def total_violations(self) -> int:
        return sum(len(r.violations) for r in self.results)

    @property
    def total_oracle_failures(self) -> int:
        """Failed oracle checks only — permutation mismatches are a
        separate counter (``total_permutation_mismatches``), never
        folded in here."""
        return sum(len(r.oracle_failures) for r in self.results)

    @property
    def total_permutation_mismatches(self) -> int:
        return len(self.permutation_mismatches)

    def ok(self, strict: bool = False) -> bool:
        """The campaign verdict.

        Non-strict: no sanitizer violations and no permutation-replay
        mismatches.  ``strict=True`` additionally requires every oracle
        to have passed — the single source of truth for the CLI's
        ``--strict`` exit path.
        """
        if self.total_violations or self.permutation_mismatches:
            return False
        if strict and self.total_oracle_failures:
            return False
        return True

    def exit_code(self, strict: bool = False) -> int:
        """Process exit status for this verdict (0 pass, 1 fail)."""
        return 0 if self.ok(strict=strict) else 1

    def schedule_targets(self) -> Dict[str, List[str]]:
        """Predicted-but-unwitnessed races per app: prioritized targets
        for the next campaign's schedule search (field + access kinds,
        stable across worker processes)."""
        out: Dict[str, List[str]] = {}
        for app_id in self.config.app_ids:
            targets = {
                t
                for r in self.results
                if r.app_id == app_id
                for o in r.oracles
                if o["name"] == "predicted-unwitnessed"
                for t in o["data"].get("targets", [])
            }
            if targets:
                out[app_id] = sorted(targets)
        return out

    def per_app(self) -> Dict[str, Dict[str, Any]]:
        out: Dict[str, Dict[str, Any]] = {}
        targets = self.schedule_targets()
        for app_id in self.config.app_ids:
            rows = [r for r in self.results if r.app_id == app_id]
            sync_freq: Dict[str, int] = {}
            for r in rows:
                for sync in r.inferred:
                    sync_freq[sync] = sync_freq.get(sync, 0) + 1
            out[app_id] = {
                "schedules": len(rows),
                "violations": sum(len(r.violations) for r in rows),
                "oracle_failures": sum(
                    len(r.oracle_failures) for r in rows
                ),
                "distinct_inferred_sets": len(
                    {tuple(r.inferred) for r in rows}
                ),
                "distinct_traces": len({r.trace_digest for r in rows}),
                "sync_frequency": dict(
                    sorted(sync_freq.items(), key=lambda kv: -kv[1])
                ),
                "race_targets": targets.get(app_id, []),
            }
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": asdict(self.config),
            "totals": {
                "schedules": len(self.results),
                "violations": self.total_violations,
                "oracle_failures": self.total_oracle_failures,
                "permutation_sampled": self.permutation_sampled,
                "permutation_mismatches": self.total_permutation_mismatches,
                "elapsed_s": round(self.elapsed_s, 3),
                "ok": self.ok(),
                "strict_ok": self.ok(strict=True),
            },
            "apps": self.per_app(),
            "schedule_targets": self.schedule_targets(),
            "schedules": [r.to_dict() for r in self.results],
            "permutation_mismatches": self.permutation_mismatches,
        }

    def summary(self) -> str:
        lines = [
            f"fuzz campaign: {len(self.results)} schedules over "
            f"{len(self.config.app_ids)} app(s), policy="
            f"{self.config.policy}, rounds={self.config.rounds}, "
            f"workers={self.config.workers}, "
            f"engine={self.config.engine or 'auto'}"
        ]
        for app_id, row in self.per_app().items():
            lines.append(
                f"  {app_id}: {row['schedules']} schedules, "
                f"{row['violations']} sanitizer violations, "
                f"{row['oracle_failures']} oracle failures, "
                f"{row['distinct_traces']} distinct traces, "
                f"{row['distinct_inferred_sets']} distinct inferred sets, "
                f"{len(row['race_targets'])} predicted race target(s)"
            )
        lines.append(
            f"  permutation replay: {self.permutation_sampled} sampled, "
            f"{len(self.permutation_mismatches)} mismatches"
        )
        lines.append(
            "  RESULT: "
            + ("OK" if self.ok() else "VIOLATIONS FOUND")
            + (
                f" ({self.total_oracle_failures} oracle failures; "
                "strict verdict FAIL)"
                if self.total_oracle_failures
                else ""
            )
        )
        return "\n".join(lines)


def run_campaign(
    config: CampaignConfig,
    runtime: Optional[ExecutionRuntime] = None,
) -> CampaignReport:
    """Execute a fuzz campaign, optionally on a caller-owned runtime."""
    config = config.resolved()
    t_start = time.perf_counter()
    jobs: List[ScheduleJob] = [
        (
            app_id,
            config.base_seed + i,
            config.rounds,
            config.policy,
            config.lam_tolerance,
            config.oracles,
        )
        for app_id in config.app_ids
        for i in range(config.schedules)
    ]

    owned = runtime is None
    rt = runtime or ExecutionRuntime(
        workers=config.workers, engine=config.engine
    )
    try:
        results = rt.map_jobs(run_schedule_job, jobs)
        # Permutation pass: replay a sample in reverse order; equivalent
        # schedules must reproduce identical traces and reports.
        mismatches: List[Dict[str, Any]] = []
        sample: List[Tuple[ScheduleJob, ScheduleResult]] = []
        if config.replay_every:
            sample = list(zip(jobs, results))[:: config.replay_every]
        replayed = rt.map_jobs(
            run_schedule_job, [job for job, _ in reversed(sample)]
        )
        for (job, original), replay in zip(reversed(sample), replayed):
            if (
                replay.trace_digest != original.trace_digest
                or replay.report_digest != original.report_digest
            ):
                mismatches.append(
                    {
                        "app_id": original.app_id,
                        "seed": original.seed,
                        "trace_match": replay.trace_digest
                        == original.trace_digest,
                        "report_match": replay.report_digest
                        == original.report_digest,
                    }
                )
    finally:
        if owned:
            rt.close()

    return CampaignReport(
        config=config,
        results=results,
        permutation_mismatches=mismatches,
        permutation_sampled=len(sample),
        elapsed_s=time.perf_counter() - t_start,
    )


__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "ScheduleJob",
    "ScheduleResult",
    "run_campaign",
    "run_schedule_job",
]
