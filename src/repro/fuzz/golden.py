"""Golden seed-stability hashes.

``tests/sim/golden_hashes.json`` pins the :func:`trace_digest` of every
app's seed-0, round-0 trace under the default config.  Any change to the
kernel, scheduler, primitives, or apps that alters default traces —
intentionally or not — flips a hash and fails the regression test.

Regenerate (after an *intentional* trace-affecting change) with::

    PYTHONPATH=src python -m repro.fuzz.golden tests/sim/golden_hashes.json
"""

from __future__ import annotations

import json
import sys
from typing import Dict

from ..apps.registry import app_ids, family_app_ids, get_application
from ..core.config import SherlockConfig
from ..core.observer import Observer
from .sanitizer import trace_digest

#: Default location of the pinned hashes, relative to the repo root.
GOLDEN_PATH = "tests/sim/golden_hashes.json"


def compute_golden_hashes() -> Dict[str, str]:
    """Seed-0 round-0 trace digest per app (default config, no delays).

    Covers the 8 paper apps plus the grown family tier (App-9/App-10).
    """
    observer = Observer(SherlockConfig())
    return {
        app_id: trace_digest(
            observer.observe_round(get_application(app_id), 0, {})
        )
        for app_id in app_ids() + family_app_ids()
    }


def write_golden_hashes(path: str = GOLDEN_PATH) -> Dict[str, str]:
    hashes = compute_golden_hashes()
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(hashes, fp, indent=2, sort_keys=True)
        fp.write("\n")
    return hashes


def main(argv: "list[str] | None" = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    path = args[0] if args else GOLDEN_PATH
    hashes = write_golden_hashes(path)
    print(f"pinned {len(hashes)} golden trace hashes to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = [
    "GOLDEN_PATH",
    "compute_golden_hashes",
    "main",
    "write_golden_hashes",
]
