"""Differential inference oracles.

Each oracle checks one *stability claim* about a finished pipeline run:

* **ground-truth** — score the final inferred acquire/release set against
  the app's ground-truth annotations (precision/recall per schedule); the
  oracle fails when the pipeline observed windows yet inferred *no* true
  synchronization at all.
* **lambda-stability** — the paper reports the Solver is insensitive to λ
  near its default; re-solving the *same* observation store with λ
  scaled by ±``tolerance`` (default ±1%, the empirically stable band for
  the 8 apps at rounds=3) must reproduce the identical inferred set.
* **predicted-unwitnessed** — run the sync-preserving predictive
  detector (:mod:`repro.predict`) under the schedule's *inferred* spec
  over every collected trace; races predicted but never reported by
  FastTrack in the observed order are emitted as prioritized
  schedule-search targets for later campaigns.  The oracle only *fails*
  when a predicted race's witness reordering does not validate (a
  detector bug) — unwitnessed predictions themselves are the useful
  signal, not an error.
* **permutation** (campaign-level, see :mod:`repro.fuzz.campaign`) —
  re-executing a sample of schedules in a different order must reproduce
  byte-identical trace digests and serialized reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..analysis.metrics import classify
from ..core.pipeline import SherlockReport
from ..core.solver import infer
from ..sim.program import Application
from ..sim.runner import TestExecution


@dataclass
class OracleResult:
    """Verdict of one oracle on one schedule."""

    name: str
    passed: bool
    detail: str = ""
    data: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "passed": self.passed,
            "detail": self.detail,
            "data": self.data,
        }


def lambda_stability_range(
    lam: float, tolerance: float = 0.01
) -> Tuple[float, float]:
    """The (low, high) λ probe points around a base value."""
    return lam * (1.0 - tolerance), lam * (1.0 + tolerance)


def ground_truth_oracle(
    app: Application, report: SherlockReport
) -> OracleResult:
    """Score the final inference against the app's annotations."""
    classified = classify(app, report)
    inferred = classified.inferred_total
    true_syncs = len(app.ground_truth.syncs)
    recall = len(classified.correct) / true_syncs if true_syncs else 1.0
    precision = len(classified.correct) / inferred if inferred else 0.0
    observed_windows = len(report.store.windows) > 0
    passed = bool(classified.correct) or not observed_windows
    return OracleResult(
        name="ground-truth",
        passed=passed,
        detail=(
            "no true synchronization inferred despite observed windows"
            if not passed
            else f"{len(classified.correct)}/{true_syncs} true syncs "
            f"recovered"
        ),
        data={
            "correct": len(classified.correct),
            "false": classified.false_total,
            "missed": len(classified.missed),
            "precision": round(precision, 4),
            "recall": round(recall, 4),
        },
    )


def lambda_stability_oracle(
    report: SherlockReport, tolerance: float = 0.01
) -> OracleResult:
    """Re-solve the final store with λ nudged ±tolerance."""
    base = frozenset(s.display() for s in report.final.syncs)
    unstable: List[str] = []
    for lam in lambda_stability_range(report.config.lam, tolerance):
        alt = infer(report.store, report.config.without(lam=lam))
        alt_set = frozenset(s.display() for s in alt.syncs)
        if alt_set != base:
            gained = sorted(alt_set - base)
            lost = sorted(base - alt_set)
            unstable.append(
                f"λ={lam:g}: +{gained or '[]'} -{lost or '[]'}"
            )
    return OracleResult(
        name="lambda-stability",
        passed=not unstable,
        detail="; ".join(unstable) if unstable else (
            f"inferred set unchanged for λ ∈ "
            f"±{tolerance:.0%} of {report.config.lam:g}"
        ),
        data={"unstable": unstable},
    )


def predicted_unwitnessed_oracle(
    app: Application,
    report: SherlockReport,
    executions: Sequence[TestExecution],
) -> OracleResult:
    """Predict races over the collected traces; flag schedule targets.

    Targets are keyed by field + access kinds (addresses are heap object
    ids and thus process-dependent), so campaign aggregation across
    worker processes is stable.
    """
    # Imported lazily: repro.predict pulls in the sanitizer, which this
    # package's __init__ is itself mid-importing during campaign runs.
    from ..predict.detector import PredictiveDetector
    from ..racedet.annotations import sherlock_spec
    from ..racedet.fasttrack import analyze_run

    spec = sherlock_spec(report.final)
    detector = PredictiveDetector(spec)
    predicted = 0
    invalid = 0
    targets = set()
    for execution in executions:
        analysis = detector.analyze(execution.log)
        predicted += len(analysis.races)
        invalid += analysis.invalid_witnesses
        witnessed = {
            r.key() for r in analyze_run(execution.log, spec).races
        }
        for race in analysis.races:
            if race.key() not in witnessed:
                targets.add(
                    f"{race.field_name}"
                    f"[{race.first_access}/{race.second_access}]"
                )
    passed = invalid == 0
    return OracleResult(
        name="predicted-unwitnessed",
        passed=passed,
        detail=(
            f"{invalid} predicted race(s) with invalid witness "
            f"reorderings"
            if not passed
            else f"{predicted} predicted race(s), {len(targets)} "
            f"unwitnessed schedule target(s)"
        ),
        data={
            "predicted": predicted,
            "unwitnessed": len(targets),
            "invalid_witnesses": invalid,
            "targets": sorted(targets),
        },
    )


__all__ = [
    "OracleResult",
    "ground_truth_oracle",
    "lambda_stability_oracle",
    "lambda_stability_range",
    "predicted_unwitnessed_oracle",
]
