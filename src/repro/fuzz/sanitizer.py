"""Trace well-formedness sanitizer.

Every trace the kernel emits — under any seed, scheduling policy, or
delay plan — must satisfy structural invariants that the Observer, window
extraction, and race detection all silently rely on:

* **balance** — method ENTER/EXIT events pair up per thread with stack
  discipline; a trace from an error-free execution ends with every call
  closed (failed executions may legitimately leave calls open).
* **monotone-time** — global timestamps are non-decreasing in sequence
  order, ``seq`` is dense (0, 1, 2, …), and each thread's ``local_time``
  never runs backwards.
* **attribution** — every event belongs to a plausible thread (positive
  thread id) and carries its log's ``run_id``.
* **frozen-delay** — a thread the Perturber put to sleep emits *nothing*
  strictly inside its delay interval (a frozen thread cannot execute).
* **conflicting-windows** — every window the extractor would build from
  the trace spans a *genuinely* conflicting access pair: different
  threads, same address, at least one write-capable endpoint, endpoints
  within ``Near`` seconds (checked independently of the extractor's own
  pairing logic).

New simulator primitives must preserve these invariants — the fuzz
campaign (``repro fuzz``) enforces them across hundreds of schedules.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.windows import Window, WindowExtractor
from ..sim.runner import TestExecution
from ..trace.events import TraceEvent
from ..trace.log import TraceLog
from ..trace.optypes import OpType


@dataclass(frozen=True)
class Violation:
    """One sanitizer finding."""

    code: str        # balance | monotone-time | attribution | ...
    message: str
    test: str = ""   # unit-test qname the trace came from
    run_id: int = -1

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "test": self.test,
            "run_id": self.run_id,
        }


class TraceSanitizer:
    """Checks one execution's trace against the invariants above."""

    def __init__(self, near: float = 1.0, window_cap: int = 15) -> None:
        self.near = near
        self.window_cap = window_cap

    # -- entry points --------------------------------------------------------

    def sanitize(self, execution: TestExecution) -> List[Violation]:
        log = execution.log
        out: List[Violation] = []
        out += self._check_monotone(log)
        out += self._check_attribution(log)
        out += self._check_balance(log, failed=execution.error is not None)
        out += self._check_frozen_delays(log)
        out += self._check_windows(log)
        return [
            Violation(v.code, v.message, execution.test_name, log.run_id)
            for v in out
        ]

    # -- invariants ----------------------------------------------------------

    def _check_monotone(self, log: TraceLog) -> List[Violation]:
        out: List[Violation] = []
        last_t = float("-inf")
        local: Dict[int, float] = {}
        for i, e in enumerate(log):
            if e.seq != i:
                out.append(Violation(
                    "monotone-time",
                    f"seq not dense: event {i} has seq {e.seq}",
                ))
            if e.timestamp < last_t - 1e-12:
                out.append(Violation(
                    "monotone-time",
                    f"timestamp ran backwards at seq {e.seq}: "
                    f"{e.timestamp} < {last_t}",
                ))
            last_t = max(last_t, e.timestamp)
            if e.local_time >= 0:
                prev = local.get(e.thread_id, float("-inf"))
                if e.local_time < prev - 1e-12:
                    out.append(Violation(
                        "monotone-time",
                        f"thread {e.thread_id} local_time ran backwards "
                        f"at seq {e.seq}: {e.local_time} < {prev}",
                    ))
                local[e.thread_id] = max(prev, e.local_time)
        return out

    @staticmethod
    def _check_attribution(log: TraceLog) -> List[Violation]:
        out: List[Violation] = []
        for e in log:
            if e.thread_id < 1:
                out.append(Violation(
                    "attribution",
                    f"event at seq {e.seq} has non-thread id "
                    f"{e.thread_id}",
                ))
            if e.run_id != log.run_id:
                out.append(Violation(
                    "attribution",
                    f"event at seq {e.seq} carries run_id {e.run_id}, "
                    f"log is run {log.run_id}",
                ))
        return out

    @staticmethod
    def _check_balance(log: TraceLog, failed: bool) -> List[Violation]:
        out: List[Violation] = []
        stacks: Dict[int, List[TraceEvent]] = {}
        for e in log:
            if e.optype is OpType.ENTER:
                stacks.setdefault(e.thread_id, []).append(e)
            elif e.optype is OpType.EXIT:
                stack = stacks.get(e.thread_id)
                if not stack:
                    out.append(Violation(
                        "balance",
                        f"EXIT {e.name} at seq {e.seq} on thread "
                        f"{e.thread_id} with no open call",
                    ))
                elif stack[-1].name != e.name:
                    out.append(Violation(
                        "balance",
                        f"EXIT {e.name} at seq {e.seq} on thread "
                        f"{e.thread_id} but innermost open call is "
                        f"{stack[-1].name}",
                    ))
                else:
                    stack.pop()
        if not failed:
            for tid, stack in sorted(stacks.items()):
                for enter in stack:
                    out.append(Violation(
                        "balance",
                        f"ENTER {enter.name} at seq {enter.seq} on "
                        f"thread {tid} never exited",
                    ))
        return out

    @staticmethod
    def _check_frozen_delays(log: TraceLog) -> List[Violation]:
        out: List[Violation] = []
        for d in log.delays:
            if d.duration <= 0:
                out.append(Violation(
                    "frozen-delay",
                    f"delay at {d.site.display()} has non-positive "
                    f"duration {d.duration}",
                ))
            for e in log:
                if (
                    e.thread_id == d.thread_id
                    and d.start + 1e-12 < e.timestamp < d.end - 1e-12
                ):
                    out.append(Violation(
                        "frozen-delay",
                        f"thread {d.thread_id} emitted {e.ref.display()} "
                        f"at {e.timestamp} inside its delay "
                        f"[{d.start}, {d.end}]",
                    ))
        return out

    def _check_windows(self, log: TraceLog) -> List[Violation]:
        out: List[Violation] = []
        extractor = WindowExtractor(
            near=self.near, window_cap=self.window_cap
        )
        for window in extractor.extract(log):
            violation = self._verify_window_conflict(log, window)
            if violation is not None:
                out.append(violation)
        return out

    def _verify_window_conflict(
        self, log: TraceLog, window: Window
    ) -> Optional[Violation]:
        """Independently re-derive the endpoints and check they conflict."""
        a_ref, b_ref = window.pair_key
        label = f"window ({a_ref.display()}, {b_ref.display()})"
        candidates: List[Tuple[TraceEvent, TraceEvent]] = [
            (a, b)
            for a in log
            if a.ref == a_ref and abs(a.timestamp - window.a_time) < 1e-12
            for b in log
            if b.ref == b_ref and abs(b.timestamp - window.b_time) < 1e-12
        ]
        if not candidates:
            return Violation(
                "conflicting-windows",
                f"{label} endpoints not found in trace at "
                f"({window.a_time}, {window.b_time})",
            )
        for a, b in candidates:
            writes = self._writes(a) or self._writes(b)
            if (
                a.thread_id != b.thread_id
                and a.address == b.address
                and writes
                and b.timestamp - a.timestamp <= self.near + 1e-9
            ):
                return None
        return Violation(
            "conflicting-windows",
            f"{label} endpoints do not genuinely conflict "
            f"(threads/address/write capability/Near check failed)",
        )

    @staticmethod
    def _writes(e: TraceEvent) -> bool:
        if e.is_memory:
            return e.is_write
        return e.meta.get("unsafe_api") == "write"


def sanitize_execution(
    execution: TestExecution, near: float = 1.0, window_cap: int = 15
) -> List[Violation]:
    """Convenience wrapper: sanitize one execution's trace."""
    return TraceSanitizer(near=near, window_cap=window_cap).sanitize(
        execution
    )


def trace_digest(executions: Iterable[TestExecution]) -> str:
    """Canonical content hash of a set of executions' traces.

    Addresses are process-dependent (heap object ids), so they are
    *renumbered* by first appearance per trace — two runs producing the
    same interleaving digest identically even across processes.
    """
    payload = []
    for execution in executions:
        renumber: Dict[int, int] = {}
        events = []
        for e in execution.log:
            addr = renumber.setdefault(e.address, len(renumber))
            events.append([
                round(e.timestamp, 9), e.thread_id, e.optype.value,
                e.name, addr, round(e.local_time, 9),
            ])
        payload.append({
            "test": execution.test_name,
            "run_id": execution.log.run_id,
            "error": execution.error,
            "events": events,
            "delays": [
                [d.thread_id, round(d.start, 9), round(d.end, 9),
                 d.site.name, d.site.optype.value]
                for d in execution.log.delays
            ],
        })
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


__all__ = [
    "TraceSanitizer",
    "Violation",
    "sanitize_execution",
    "trace_digest",
]
