"""Schedule fuzzing, trace sanitization, and differential oracles.

The fuzz layer answers the question the unit-test suite cannot: does the
pipeline stay *well-formed and stable* across many interleavings, not
just the handful our tests happen to pick?  It sweeps scheduler seeds
(and optionally the kernel's :mod:`~repro.sim.schedule` policy), runs the
full Observer → Solver → Perturber pipeline per schedule, validates every
emitted trace against the sanitizer's well-formedness invariants, and
checks inference quality with differential oracles (ground-truth scoring,
replay determinism, λ-stability).

Entry points::

    python -m repro fuzz --app app7_statsd --schedules 50 --workers 4
    report = repro.fuzz.run_campaign(CampaignConfig(app_ids=["App-7"]))
"""

from .campaign import (
    CampaignConfig,
    CampaignReport,
    ScheduleResult,
    run_campaign,
)
from .oracles import OracleResult, lambda_stability_range
from .sanitizer import TraceSanitizer, Violation, sanitize_execution, trace_digest

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "OracleResult",
    "ScheduleResult",
    "TraceSanitizer",
    "Violation",
    "lambda_stability_range",
    "run_campaign",
    "sanitize_execution",
    "trace_digest",
]
