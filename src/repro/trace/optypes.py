"""Static operation identities.

SherLock reasons about *static* operations: the read/write of a fully
qualified field (``Class::field``) or the entry/exit of a fully qualified
method (``Class::Method``).  All dynamic instances of an operation map onto
one :class:`OpRef`, exactly as in §4.2 of the paper ("SherLock identifies
the variables with the fully-qualified type of the field ... and assumes
that all dynamic instances behave the same").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpType(enum.Enum):
    """Kind of traced operation."""

    READ = "read"
    WRITE = "write"
    ENTER = "enter"  # method entry / invocation
    EXIT = "exit"    # method exit / return

    @property
    def is_memory(self) -> bool:
        return self in (OpType.READ, OpType.WRITE)

    @property
    def is_method(self) -> bool:
        return self in (OpType.ENTER, OpType.EXIT)


class Role(enum.Enum):
    """Synchronization role a candidate may play."""

    ACQUIRE = "acq"
    RELEASE = "rel"

    @property
    def opposite(self) -> "Role":
        return Role.RELEASE if self is Role.ACQUIRE else Role.ACQUIRE


#: Which (OpType, Role) combinations are possible at all, per the paper's
#: Read-Acquire & Write-Release property: a heap read can only acquire, a
#: heap write can only release; a method entry can only acquire, a method
#: exit can only release.
CAPABLE_ROLES = {
    OpType.READ: (Role.ACQUIRE,),
    OpType.WRITE: (Role.RELEASE,),
    OpType.ENTER: (Role.ACQUIRE,),
    OpType.EXIT: (Role.RELEASE,),
}


@dataclass(frozen=True, order=True)
class OpRef:
    """A static operation: a qualified name plus an operation type.

    ``name`` is ``"Class::member"``.  Display strings follow the paper's
    tables: ``Read-Class::field`` / ``Write-Class::field`` for memory ops,
    ``Class::Method-Begin`` / ``Class::Method-End`` for method ops.
    """

    name: str
    optype: OpType

    @property
    def class_name(self) -> str:
        """The ``Class`` part of ``Class::member`` (used by Mostly-Paired)."""
        return self.name.split("::", 1)[0]

    @property
    def member_name(self) -> str:
        parts = self.name.split("::", 1)
        return parts[1] if len(parts) > 1 else parts[0]

    def can_play(self, role: Role) -> bool:
        """Whether this op type is capable of the given role."""
        return role in CAPABLE_ROLES[self.optype]

    def display(self) -> str:
        if self.optype is OpType.READ:
            return f"Read-{self.name}"
        if self.optype is OpType.WRITE:
            return f"Write-{self.name}"
        if self.optype is OpType.ENTER:
            return f"{self.name}-Begin"
        return f"{self.name}-End"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.display()


@dataclass(frozen=True, order=True)
class SyncOp:
    """An operation together with the synchronization role it plays."""

    op: OpRef
    role: Role

    def display(self) -> str:
        return f"{self.op.display()} [{self.role.value}]"

    def __str__(self) -> str:  # pragma: no cover
        return self.display()


def read_of(name: str) -> OpRef:
    return OpRef(name, OpType.READ)


def write_of(name: str) -> OpRef:
    return OpRef(name, OpType.WRITE)


def begin_of(name: str) -> OpRef:
    return OpRef(name, OpType.ENTER)


def end_of(name: str) -> OpRef:
    return OpRef(name, OpType.EXIT)


__all__ = [
    "CAPABLE_ROLES",
    "OpRef",
    "OpType",
    "Role",
    "SyncOp",
    "begin_of",
    "end_of",
    "read_of",
    "write_of",
]
