"""Trace log container with the queries SherLock's analyses need."""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, TextIO, Tuple

from .events import DelayInterval, TraceEvent
from .optypes import OpRef, OpType


class TraceLog:
    """An append-only log of :class:`TraceEvent` for one run.

    Events are appended in timestamp order by the kernel; ``append`` stamps
    each event's ``seq``.  The log also carries the delay intervals injected
    during the run so the window refinement can check delay propagation.
    """

    def __init__(self, run_id: int = 0) -> None:
        self.run_id = run_id
        self.events: List[TraceEvent] = []
        self.delays: List[DelayInterval] = []

    # -- building ------------------------------------------------------------

    def append(self, event: TraceEvent) -> TraceEvent:
        stamped = TraceEvent(
            timestamp=event.timestamp,
            thread_id=event.thread_id,
            optype=event.optype,
            name=event.name,
            address=event.address,
            run_id=self.run_id,
            seq=len(self.events),
            local_time=event.local_time,
            meta=event.meta,
        )
        self.events.append(stamped)
        return stamped

    def add_delay(self, delay: DelayInterval) -> None:
        self.delays.append(delay)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __getitem__(self, idx: int) -> TraceEvent:
        return self.events[idx]

    @property
    def duration(self) -> float:
        if not self.events:
            return 0.0
        return self.events[-1].timestamp - self.events[0].timestamp

    def threads(self) -> Tuple[int, ...]:
        return tuple(sorted({e.thread_id for e in self.events}))

    def memory_events(self) -> List[TraceEvent]:
        return [e for e in self.events if e.is_memory]

    def events_of(self, ref: OpRef) -> List[TraceEvent]:
        return [
            e
            for e in self.events
            if e.name == ref.name and e.optype is ref.optype
        ]

    def between(
        self,
        t_start: float,
        t_end: float,
        thread_id: Optional[int] = None,
    ) -> List[TraceEvent]:
        """Events with ``t_start < t < t_end`` (exclusive), optionally
        restricted to one thread."""
        out = []
        for e in self.events:
            if e.timestamp <= t_start:
                continue
            if e.timestamp >= t_end:
                break
            if thread_id is None or e.thread_id == thread_id:
                out.append(e)
        return out

    def method_durations(self) -> Dict[str, List[float]]:
        """Per-method call durations, matching ENTER/EXIT per thread.

        Uses a per-thread stack, so nested and recursive calls pair up.
        Used by the Acquisition-Time-Mostly-Varies hypothesis.
        """
        stacks: Dict[Tuple[int, str], List[float]] = {}
        durations: Dict[str, List[float]] = {}
        for e in self.events:
            clock = e.local_time if e.local_time >= 0 else e.timestamp
            if e.optype is OpType.ENTER:
                stacks.setdefault((e.thread_id, e.name), []).append(clock)
            elif e.optype is OpType.EXIT:
                stack = stacks.get((e.thread_id, e.name))
                if stack:
                    start = stack.pop()
                    durations.setdefault(e.name, []).append(clock - start)
        return durations

    # -- serialization ---------------------------------------------------------

    def dump_jsonl(self, fp: TextIO) -> None:
        header = {
            "run_id": self.run_id,
            "delays": [
                {
                    "tid": d.thread_id,
                    "start": d.start,
                    "end": d.end,
                    "name": d.site.name,
                    "op": d.site.optype.value,
                }
                for d in self.delays
            ],
        }
        fp.write(json.dumps({"__header__": header}) + "\n")
        for event in self.events:
            fp.write(json.dumps(event.to_dict()) + "\n")

    @staticmethod
    def load_jsonl(fp: TextIO) -> "TraceLog":
        log = TraceLog()
        for line in fp:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if "__header__" in data:
                header = data["__header__"]
                log.run_id = int(header.get("run_id", 0))
                for d in header.get("delays", []):
                    log.add_delay(
                        DelayInterval(
                            thread_id=int(d["tid"]),
                            start=float(d["start"]),
                            end=float(d["end"]),
                            site=OpRef(d["name"], OpType(d["op"])),
                            run_id=log.run_id,
                        )
                    )
            else:
                log.events.append(TraceEvent.from_dict(data))
        return log

    def __repr__(self) -> str:
        return (
            f"TraceLog(run={self.run_id}, events={len(self.events)}, "
            f"threads={len(self.threads())}, delays={len(self.delays)})"
        )


__all__ = ["TraceLog"]
