"""Dynamic trace events.

The Observer records, per §4.1 of the paper: (1) timestamp, (2) thread id,
(3) operation type, (4) field name + memory address for reads/writes, and
(5) method name + parent object id for entries/exits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from .optypes import OpRef, OpType


@dataclass(frozen=True)
class TraceEvent:
    """One dynamic operation instance in an execution trace."""

    timestamp: float
    thread_id: int
    optype: OpType
    name: str
    #: Memory address for field accesses; parent object id for method ops.
    address: int
    #: Which run (round) of the application produced this event.
    run_id: int = 0
    #: Index of the event within its run's trace (set by TraceLog.append).
    seq: int = -1
    #: Thread-local time (run + blocked time, excluding runnable-idle);
    #: used for method-duration statistics so the serialized scheduler does
    #: not inflate durations of non-blocking methods.  -1 when unknown.
    local_time: float = -1.0
    #: Extra signals used by substrates (e.g. thread-unsafe API class).
    meta: Dict[str, Any] = field(default_factory=dict, compare=False, hash=False)

    @property
    def ref(self) -> OpRef:
        """The static operation this event is an instance of."""
        return OpRef(self.name, self.optype)

    @property
    def is_memory(self) -> bool:
        return self.optype.is_memory

    @property
    def is_write(self) -> bool:
        return self.optype is OpType.WRITE

    @property
    def is_read(self) -> bool:
        return self.optype is OpType.READ

    @property
    def location(self) -> "Location":
        return Location(self.name, self.optype)

    def conflicts_with(self, other: "TraceEvent") -> bool:
        """Two memory events conflict when they touch the same field of the
        same object from different threads and at least one writes."""
        return (
            self.is_memory
            and other.is_memory
            and self.thread_id != other.thread_id
            and self.name == other.name
            and self.address == other.address
            and (self.is_write or other.is_write)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t": self.timestamp,
            "tid": self.thread_id,
            "op": self.optype.value,
            "name": self.name,
            "addr": self.address,
            "run": self.run_id,
            "seq": self.seq,
            "lt": self.local_time,
            "meta": self.meta or {},
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "TraceEvent":
        return TraceEvent(
            timestamp=float(data["t"]),
            thread_id=int(data["tid"]),
            optype=OpType(data["op"]),
            name=str(data["name"]),
            address=int(data["addr"]),
            run_id=int(data.get("run", 0)),
            seq=int(data.get("seq", -1)),
            local_time=float(data.get("lt", -1.0)),
            meta=dict(data.get("meta") or {}),
        )


@dataclass(frozen=True, order=True)
class Location:
    """A static code location: operation name + type.

    Used for the per-location-pair window cap (§4.1: at most 15 windows per
    pair of static locations).
    """

    name: str
    optype: OpType


@dataclass(frozen=True)
class DelayInterval:
    """A delay the Perturber injected: which thread stalled, when, and at
    which static operation."""

    thread_id: int
    start: float
    end: float
    site: OpRef
    run_id: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


__all__ = ["DelayInterval", "Location", "TraceEvent"]
