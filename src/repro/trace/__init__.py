"""Trace event model: static operation identities, dynamic events, logs."""

from .events import DelayInterval, Location, TraceEvent
from .log import TraceLog
from .optypes import (
    CAPABLE_ROLES,
    OpRef,
    OpType,
    Role,
    SyncOp,
    begin_of,
    end_of,
    read_of,
    write_of,
)

__all__ = [
    "CAPABLE_ROLES",
    "DelayInterval",
    "Location",
    "OpRef",
    "OpType",
    "Role",
    "SyncOp",
    "TraceEvent",
    "TraceLog",
    "begin_of",
    "end_of",
    "read_of",
    "write_of",
]
