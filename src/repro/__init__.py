"""repro — a reproduction of SherLock: Unsupervised Synchronization-
Operation Inference (Li, Chen, Lu, Musuvathi, Nath — ASPLOS 2021).

Public API tour:

* :func:`repro.run` — the one-call entry point: resolve an app, run the
  multi-round pipeline (optionally across worker processes and against a
  trace cache), return a :class:`~repro.core.SherlockReport`.
* :mod:`repro.runtime` — the execution runtime: process-pool fan-out,
  content-addressed trace caching, per-phase :class:`RunMetrics`.
* :mod:`repro.sim` — the deterministic concurrent-program simulator and
  its .NET-style synchronization primitives.
* :mod:`repro.core` — SherLock itself: :class:`~repro.core.Sherlock`
  (Observer → LP Solver → Perturber over rounds) and
  :class:`~repro.core.SherlockConfig`.
* :mod:`repro.apps` — the 8 benchmark applications.
* :mod:`repro.racedet` — the FastTrack race detector (Manual_dr /
  SherLock_dr).
* :mod:`repro.predict` — sync-preserving *predictive* race detection
  (Manual_pr / SherLock_pr) with witness reorderings; one-call entry
  point :func:`repro.predict_races`; directed schedule search
  via :func:`repro.convert_predictions` (``repro convert``).
* :mod:`repro.tsvd` — the TSVD baseline.
* :mod:`repro.analysis` — per-table experiment regenerators.
* :mod:`repro.lp` — the linear-programming substrate.

Quickstart::

    import repro

    report = repro.run("App-2", engine="process:4", cache=True)
    for sync in sorted(report.final.syncs, key=lambda s: s.display()):
        print(sync.display())
    print(report.metrics.describe())   # phase timings, cache hits

or, from async code (``engine="async"`` fan-out by default)::

    report = await repro.arun("App-2", cache=True)

``engine`` picks how unit-test jobs execute ("serial", "process[:N]"
pool fan-out, "async[:N]" asyncio tasks with bounded concurrency);
``cache`` memoizes observed rounds under ``.repro_cache/`` (or
``"memory"`` for an LRU-only store).  Neither changes results: all
engines and warm-cache runs serialize byte-identically.
"""

from . import fuzz
from .api import arun, convert_predictions, predict_races, run
from .apps import all_applications, app_ids, get_application
from .core import (
    InferenceResult,
    Sherlock,
    SherlockConfig,
    SherlockReport,
    run_sherlock,
)
from .racedet import detect_races, manual_spec, sherlock_spec
from .runtime import (
    AsyncEngine,
    Engine,
    ExecutionRuntime,
    ProcessEngine,
    RunMetrics,
    SerialEngine,
    TraceCache,
)
from .trace import OpRef, OpType, Role, SyncOp, TraceEvent, TraceLog

__version__ = "1.2.0"

__all__ = [
    "AsyncEngine",
    "Engine",
    "ExecutionRuntime",
    "ProcessEngine",
    "SerialEngine",
    "InferenceResult",
    "OpRef",
    "OpType",
    "Role",
    "RunMetrics",
    "Sherlock",
    "SherlockConfig",
    "SherlockReport",
    "SyncOp",
    "TraceCache",
    "TraceEvent",
    "TraceLog",
    "all_applications",
    "app_ids",
    "arun",
    "convert_predictions",
    "detect_races",
    "fuzz",
    "get_application",
    "manual_spec",
    "predict_races",
    "run",
    "run_sherlock",
    "sherlock_spec",
]
