"""repro — a reproduction of SherLock: Unsupervised Synchronization-
Operation Inference (Li, Chen, Lu, Musuvathi, Nath — ASPLOS 2021).

Public API tour:

* :mod:`repro.sim` — the deterministic concurrent-program simulator and
  its .NET-style synchronization primitives.
* :mod:`repro.core` — SherLock itself: :class:`~repro.core.Sherlock`
  (Observer → LP Solver → Perturber over rounds) and
  :class:`~repro.core.SherlockConfig`.
* :mod:`repro.apps` — the 8 benchmark applications.
* :mod:`repro.racedet` — the FastTrack race detector (Manual_dr /
  SherLock_dr).
* :mod:`repro.tsvd` — the TSVD baseline.
* :mod:`repro.analysis` — per-table experiment regenerators.
* :mod:`repro.lp` — the linear-programming substrate.

Quickstart::

    from repro import Sherlock, SherlockConfig, get_application

    app = get_application("App-2")
    report = Sherlock(app, SherlockConfig(rounds=3)).run()
    for sync in sorted(report.final.syncs, key=lambda s: s.display()):
        print(sync.display())
"""

from .apps import all_applications, app_ids, get_application
from .core import (
    InferenceResult,
    Sherlock,
    SherlockConfig,
    SherlockReport,
    run_sherlock,
)
from .racedet import detect_races, manual_spec, sherlock_spec
from .trace import OpRef, OpType, Role, SyncOp, TraceEvent, TraceLog

__version__ = "1.0.0"

__all__ = [
    "InferenceResult",
    "OpRef",
    "OpType",
    "Role",
    "Sherlock",
    "SherlockConfig",
    "SherlockReport",
    "SyncOp",
    "TraceEvent",
    "TraceLog",
    "all_applications",
    "app_ids",
    "detect_races",
    "get_application",
    "manual_spec",
    "run_sherlock",
    "sherlock_spec",
]
