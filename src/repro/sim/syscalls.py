"""Kernel syscalls.

App code and synchronization primitives run as Python generators; every
interaction with the simulated machine is expressed by *yielding* one of
these syscall objects to the kernel.  The kernel executes it, advances the
virtual clock, and resumes the generator with the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, TYPE_CHECKING

from ..trace.optypes import OpType

if TYPE_CHECKING:  # pragma: no cover
    from .objects import SimObject
    from .thread import WaitSet


class Syscall:
    """Marker base class for yieldable kernel operations."""

    __slots__ = ()


@dataclass
class SysRead(Syscall):
    """Read ``obj.field``; returns the value; emits a READ trace event."""

    obj: "SimObject"
    fieldname: str


@dataclass
class SysWrite(Syscall):
    """Write ``obj.field = value``; emits a WRITE trace event."""

    obj: "SimObject"
    fieldname: str
    value: Any


@dataclass
class SysEmit(Syscall):
    """Emit a method ENTER/EXIT (or API before/after) trace event.

    ``address`` is the parent object id.  ``meta`` carries substrate
    signals: ``{"library": True}`` for system APIs, ``{"unsafe_api":
    "read"|"write"}`` for thread-unsafe collection calls.
    """

    optype: OpType
    name: str
    address: int
    meta: Dict[str, Any] = field(default_factory=dict)


@dataclass
class SysSleep(Syscall):
    """Advance this thread's wake time by ``duration`` virtual seconds."""

    duration: float


@dataclass
class SysWait(Syscall):
    """Block until the wait set is notified (condition-variable style;
    callers must re-check their predicate in a loop)."""

    waitset: "WaitSet"


@dataclass
class SysSpawn(Syscall):
    """Create a new thread running ``body`` (a generator); returns it."""

    body: Any
    name: str = "thread"


@dataclass
class SysNow(Syscall):
    """Returns the current virtual clock."""


@dataclass
class SysRand(Syscall):
    """Returns a float in [0, 1) from the kernel's seeded RNG (app jitter
    must come from the kernel so runs stay reproducible)."""


@dataclass
class SysYieldSched(Syscall):
    """A pure scheduling point: costs one step of time, emits nothing."""


__all__ = [
    "Syscall",
    "SysEmit",
    "SysNow",
    "SysRand",
    "SysRead",
    "SysSleep",
    "SysSpawn",
    "SysWait",
    "SysWrite",
    "SysYieldSched",
]
