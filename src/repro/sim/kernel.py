"""The discrete-event scheduling kernel.

The kernel runs simulated threads (generator coroutines) under a *seeded*
random scheduler over a virtual clock.  It is the substitute for the
non-deterministic OS scheduler in the paper's setting and gives us:

* reproducible interleavings (seed → identical trace),
* honest blocking semantics (a blocked thread makes no progress, so an
  injected delay cascades exactly like in the paper's Figure 2),
* virtual timestamps that SherLock's ``Near`` window and delay-propagation
  checks can measure without wall-clock noise, and
* delay injection: before executing any traced operation whose static
  :class:`~repro.trace.optypes.OpRef` is in the delay plan, the executing
  thread is put to sleep for the configured duration and the interval is
  recorded for the propagation analysis.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Union

from ..trace.events import DelayInterval, TraceEvent
from ..trace.log import TraceLog
from ..trace.optypes import OpRef, OpType
from .errors import DeadlockError, IllegalSyscall, StepLimitExceeded
from .schedule import SchedulePolicy, build_policy
from .syscalls import (
    SysEmit,
    SysNow,
    SysRand,
    SysRead,
    SysSleep,
    SysSpawn,
    SysWait,
    SysWrite,
    SysYieldSched,
    Syscall,
)
from .thread import SimThread, ThreadState, WaitSet

#: Default virtual cost of one operation, in seconds.  Chosen so a typical
#: unit test's trace spans a few virtual seconds, making the paper's
#: Near = 1 s and 100 ms delays play the same relative roles.
DEFAULT_OP_COST = 0.002


@dataclass(frozen=True)
class DelaySpec:
    """One delay-plan entry.

    ``site`` is the operation under test (what the Solver called a
    release); the plan key is the *trigger* — the operation the kernel
    stalls before.  They differ for method-exit releases: real call-site
    instrumentation can only inject before the *call*, so a release
    ``end(m)`` is triggered at ``begin(m)``.
    """

    duration: float
    site: OpRef


class Kernel:
    """Deterministic discrete-event scheduler for one simulated run."""

    def __init__(
        self,
        seed: int = 0,
        op_cost: float = DEFAULT_OP_COST,
        log: Optional[TraceLog] = None,
        delay_plan: Optional[Dict[OpRef, float]] = None,
        event_filter: Optional[Callable[[TraceEvent], bool]] = None,
        max_steps: int = 2_000_000,
        schedule_policy: Union[str, SchedulePolicy] = "random",
    ) -> None:
        self.rng = random.Random(seed)
        self.policy = build_policy(schedule_policy)
        self.policy.reset(self.rng)
        self.op_cost = op_cost
        self.clock = 0.0
        self.log = log
        self.delay_plan = dict(delay_plan or {})
        self.event_filter = event_filter
        self.max_steps = max_steps
        self.threads: List[SimThread] = []
        self.steps = 0
        self.delays: List[DelayInterval] = []
        self._next_tid = 1
        #: Queue of generator factories for the lazy finalizer thread.
        self._finalizer_queue: List[Any] = []
        self._finalizer_thread: Optional[SimThread] = None
        #: The thread currently being stepped (for primitive ownership).
        self.current: Optional[SimThread] = None

    # -- thread management ------------------------------------------------------

    def spawn(self, body: Any, name: str = "thread") -> SimThread:
        """Register a new thread running the given generator."""
        thread = SimThread(self._next_tid, body, name)
        self._next_tid += 1
        self.threads.append(thread)
        return thread

    def wake_all(self, waitset: WaitSet) -> None:
        """Move every waiter back to RUNNABLE (spurious-wakeup friendly)."""
        for thread in waitset.waiters:
            if thread.state is ThreadState.BLOCKED:
                thread.state = ThreadState.RUNNABLE
                thread.local_clock += self.clock - thread.park_start
        waitset.waiters.clear()

    # -- garbage collection / finalizers -------------------------------------------

    def enqueue_finalizer(self, body_factory: Callable[[], Any]) -> None:
        """Queue a finalizer to run on the (lazily created) GC thread.

        The happens-before edge "last reference removed → finalizer start"
        holds by construction: the finalizer body is only created and run
        after the enqueue point.
        """
        self._finalizer_queue.append(body_factory)
        if self._finalizer_thread is None or self._finalizer_thread.finished:
            self._finalizer_thread = self.spawn(
                self._finalizer_loop(), "gc-finalizer"
            )

    def _finalizer_loop(self):
        # GC runs "a much later time after" the releasing instruction
        # (§5.5) — model that with a sizable virtual lag before each batch.
        while self._finalizer_queue:
            yield SysSleep(0.05 + 0.2 * self.rng.random())
            batch = list(self._finalizer_queue)
            self._finalizer_queue.clear()
            for factory in batch:
                yield from factory()

    # -- main loop -----------------------------------------------------------------

    def run(self) -> None:
        """Run until every thread has finished.

        Raises :class:`DeadlockError` when live threads remain but none can
        ever be woken, and :class:`StepLimitExceeded` on runaway loops.
        """
        while True:
            self._wake_sleepers()
            runnable = [
                t for t in self.threads if t.state is ThreadState.RUNNABLE
            ]
            if not runnable:
                sleepers = [
                    t for t in self.threads if t.state is ThreadState.SLEEPING
                ]
                if sleepers:
                    self.clock = min(t.wake_at for t in sleepers)
                    continue
                blocked = [
                    t for t in self.threads if t.state is ThreadState.BLOCKED
                ]
                if blocked:
                    raise DeadlockError([repr(t) for t in blocked])
                return  # all finished
            thread = self.policy.choose(runnable, self.steps)
            self._step(thread)
            self.steps += 1
            if self.steps > self.max_steps:
                raise StepLimitExceeded(
                    f"exceeded {self.max_steps} scheduler steps"
                )

    def _wake_sleepers(self) -> None:
        for thread in self.threads:
            if (
                thread.state is ThreadState.SLEEPING
                and thread.wake_at <= self.clock + 1e-12
            ):
                thread.state = ThreadState.RUNNABLE
                thread.local_clock += max(
                    0.0, self.clock - thread.park_start
                )

    def _step(self, thread: SimThread) -> None:
        """Execute one syscall of ``thread``."""
        self.current = thread
        if thread.pending is not None:
            syscall = thread.pending
            thread.pending = None
        else:
            try:
                syscall = thread.body.send(thread.send_value)
            except StopIteration:
                self._finish(thread, ThreadState.FINISHED)
                return
            except Exception as exc:  # app bug: record and stop thread
                thread.error = exc
                self._finish(thread, ThreadState.FAILED)
                return
            # Control-flow exceptions (KeyboardInterrupt, SystemExit)
            # are *not* app failures: they propagate so Ctrl-C aborts a
            # long simulation instead of being recorded as a thread
            # error while the run grinds on.
            thread.send_value = None
        self._dispatch(thread, syscall)

    def _finish(self, thread: SimThread, state: ThreadState) -> None:
        thread.state = state
        self.wake_all(thread.done_waitset)

    # -- syscall dispatch -------------------------------------------------------------

    def _dispatch(self, thread: SimThread, syscall: Syscall) -> None:
        if isinstance(syscall, SysRead):
            name = syscall.obj.field_qname(syscall.fieldname)
            if self._maybe_defer(thread, syscall, OpType.READ, name):
                return
            if self._maybe_delay(thread, syscall, OpType.READ, name):
                return
            value = syscall.obj.get(syscall.fieldname)
            self._emit(thread, OpType.READ, name, syscall.obj.id)
            thread.send_value = value
        elif isinstance(syscall, SysWrite):
            name = syscall.obj.field_qname(syscall.fieldname)
            if self._maybe_defer(thread, syscall, OpType.WRITE, name):
                return
            if self._maybe_delay(thread, syscall, OpType.WRITE, name):
                return
            syscall.obj.set(syscall.fieldname, syscall.value)
            self._emit(thread, OpType.WRITE, name, syscall.obj.id)
        elif isinstance(syscall, SysEmit):
            if self._maybe_defer(
                thread, syscall, syscall.optype, syscall.name
            ):
                return
            if self._maybe_delay(thread, syscall, syscall.optype, syscall.name):
                return
            self._emit(
                thread, syscall.optype, syscall.name, syscall.address,
                syscall.meta,
            )
        elif isinstance(syscall, SysSleep):
            thread.state = ThreadState.SLEEPING
            thread.wake_at = self.clock + max(0.0, syscall.duration)
            thread.park_start = self.clock
        elif isinstance(syscall, SysWait):
            thread.state = ThreadState.BLOCKED
            thread.park_start = self.clock
            syscall.waitset.add(thread)
        elif isinstance(syscall, SysSpawn):
            child = self.spawn(syscall.body, syscall.name)
            self._advance(thread)
            thread.send_value = child
        elif isinstance(syscall, SysNow):
            thread.send_value = self.clock
        elif isinstance(syscall, SysRand):
            thread.send_value = self.rng.random()
        elif isinstance(syscall, SysYieldSched):
            self._advance(thread)
        else:
            raise IllegalSyscall(f"cannot dispatch {syscall!r}")

    # -- directed deferral -------------------------------------------------------------

    def _maybe_defer(
        self, thread: SimThread, syscall: Syscall, optype: OpType, name: str
    ) -> bool:
        """Let the schedule policy postpone a traced operation.

        A deferred syscall is parked on the thread exactly like a
        delayed one, but the thread stays RUNNABLE and no virtual time
        passes — the policy has simply demoted it, so other threads
        overtake at this static location (the
        :class:`~repro.sim.schedule.DirectedPolicy` reordering
        mechanism).  Consulted before delay injection so a deferred
        operation still pays its injected delay exactly once on
        re-dispatch.

        The policy is only consulted while some *other* thread is
        runnable: with every sibling parked (blocked in a phase wait,
        asleep, or finished) nobody can overtake, so a deferral would
        achieve no reordering while silently burning the policy's
        one-shot deferral at this site — exactly the situation of a
        directed target whose toucher outlives its phaser quorum.
        """
        if not any(
            t is not thread and t.state is ThreadState.RUNNABLE
            for t in self.threads
        ):
            return False
        if not self.policy.defer(thread, optype, name):
            return False
        thread.pending = syscall
        return True

    # -- delay injection ---------------------------------------------------------------

    def _maybe_delay(
        self, thread: SimThread, syscall: Syscall, optype: OpType, name: str
    ) -> bool:
        """Apply the Perturber's delay plan before a traced operation.

        Returns True when the thread was put to sleep; the syscall is
        parked on the thread and re-dispatched (delay already paid) on
        wake-up.
        """
        if thread.delay_paid:
            thread.delay_paid = False
            return False
        trigger = OpRef(name, optype)
        spec = self.delay_plan.get(trigger)
        if spec is None:
            return False
        if isinstance(spec, DelaySpec):
            duration, site = spec.duration, spec.site
        else:  # plain float: the trigger is the site itself
            duration, site = float(spec), trigger
        if duration <= 0:
            return False
        interval = DelayInterval(
            thread_id=thread.tid,
            start=self.clock,
            end=self.clock + duration,
            site=site,
            run_id=self.log.run_id if self.log else 0,
        )
        self.delays.append(interval)
        if self.log is not None:
            self.log.add_delay(interval)
        thread.pending = syscall
        thread.delay_paid = True
        thread.state = ThreadState.SLEEPING
        thread.wake_at = self.clock + duration
        thread.park_start = self.clock
        return True

    # -- event emission -------------------------------------------------------------------

    def _emit(
        self,
        thread: SimThread,
        optype: OpType,
        name: str,
        address: int,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        event = TraceEvent(
            timestamp=self.clock,
            thread_id=thread.tid,
            optype=optype,
            name=name,
            address=address,
            local_time=thread.local_clock,
            meta=meta or {},
        )
        if self.log is not None and (
            self.event_filter is None or self.event_filter(event)
        ):
            self.log.append(event)
        self._advance(thread)

    def _advance(self, thread: SimThread) -> None:
        """Advance the clock by one jittered op cost, charging the thread.

        Jitter is mild (±10%): instruction timing is far more stable than
        blocking time, which is exactly what makes the paper's
        Acquisition-Time-Varies signal work.
        """
        dt = self.op_cost * (0.9 + 0.2 * self.rng.random())
        self.clock += dt
        thread.local_clock += dt


__all__ = ["DEFAULT_OP_COST", "DelaySpec", "Kernel"]
