"""Simulated threads and wait sets."""

from __future__ import annotations

import enum
from typing import Any, List, Optional

from .syscalls import Syscall


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"
    SLEEPING = "sleeping"
    BLOCKED = "blocked"
    FINISHED = "finished"
    FAILED = "failed"


class WaitSet:
    """A set of threads blocked on a condition.

    Primitives park threads here via ``SysWait`` and the kernel's
    ``wake_all`` moves them back to RUNNABLE.  Spurious wakeups are allowed
    (and exercised): waiters re-check their predicate.
    """

    __slots__ = ("name", "waiters")

    def __init__(self, name: str = "waitset") -> None:
        self.name = name
        self.waiters: List["SimThread"] = []

    def add(self, thread: "SimThread") -> None:
        self.waiters.append(thread)

    def __len__(self) -> int:
        return len(self.waiters)

    def __repr__(self) -> str:
        return f"WaitSet({self.name}, waiting={len(self.waiters)})"


class SimThread:
    """One simulated thread: a generator plus scheduling state."""

    def __init__(self, tid: int, body: Any, name: str = "thread") -> None:
        self.tid = tid
        self.name = name
        self.body = body
        self.state = ThreadState.RUNNABLE
        self.wake_at = 0.0
        #: Thread-local clock: run time plus blocked/sleeping time,
        #: excluding runnable-but-unscheduled time.  This is the "CPU +
        #: wait" time real parallel hardware would charge the thread.
        self.local_clock = 0.0
        #: Global clock at the moment the thread last left RUNNABLE.
        self.park_start = 0.0
        #: Value to send into the generator on next resume.
        self.send_value: Any = None
        #: A syscall whose execution was postponed (delay injection).
        self.pending: Optional[Syscall] = None
        #: Set when the pending syscall already paid its injected delay.
        self.delay_paid = False
        #: Threads joining on this one wait here.
        self.done_waitset = WaitSet(f"join:{name}")
        #: Exception that killed the thread, if any.
        self.error: Optional[BaseException] = None

    @property
    def finished(self) -> bool:
        return self.state in (ThreadState.FINISHED, ThreadState.FAILED)

    def __repr__(self) -> str:
        return f"SimThread(#{self.tid} {self.name!r} {self.state.value})"


__all__ = ["SimThread", "ThreadState", "WaitSet"]
