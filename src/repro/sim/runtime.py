"""The runtime facade application code programs against.

Application methods and synchronization primitives are generator functions
that receive a :class:`Runtime` and ``yield`` syscalls (often indirectly,
through these helpers, with ``yield from``).
"""

from __future__ import annotations

from typing import Any, Optional

from ..trace.optypes import OpType
from .kernel import Kernel
from .methods import Method
from .objects import SimObject
from .syscalls import (
    SysEmit,
    SysNow,
    SysRand,
    SysRead,
    SysSleep,
    SysSpawn,
    SysWait,
    SysWrite,
    SysYieldSched,
)
from .thread import SimThread


class Runtime:
    """Facade over the kernel for app code and primitives."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel

    # -- identity ----------------------------------------------------------------

    @property
    def current_thread(self) -> SimThread:
        """The thread currently being stepped (valid during dispatch)."""
        return self.kernel.current

    # -- heap access --------------------------------------------------------------

    def new_object(
        self,
        class_name: str,
        fields: Optional[dict] = None,
        **kw_fields: Any,
    ) -> SimObject:
        """Allocate a heap object (allocation itself is untraced).

        Fields may be given as a dict or as keyword arguments.
        """
        merged = dict(fields or {})
        merged.update(kw_fields)
        return SimObject(class_name, merged)

    def read(self, obj: SimObject, fieldname: str):
        """Traced heap read; returns the value."""
        value = yield SysRead(obj, fieldname)
        return value

    def write(self, obj: SimObject, fieldname: str, value: Any):
        """Traced heap write."""
        yield SysWrite(obj, fieldname, value)

    # -- method calls ----------------------------------------------------------------

    def call(self, method: Method, obj: Optional[SimObject] = None, *args: Any):
        """Invoke a method with ENTER/EXIT instrumentation.

        ``obj`` becomes the event's parent object id (0 for static calls),
        which is the channel identity race detectors key on.
        """
        address = self._address_of(obj)
        meta = method.event_meta()
        yield SysEmit(OpType.ENTER, method.qname, address, meta)
        result = None
        if method.body is not None:
            result = yield from method.body(self, obj, *args)
        yield SysEmit(OpType.EXIT, method.qname, address, dict(meta))
        return result

    def emit(
        self,
        optype: OpType,
        name: str,
        obj: Optional[SimObject] = None,
        **meta: Any,
    ):
        """Low-level event emission for primitives that manage their own
        ENTER/EXIT placement (e.g. around blocking points)."""
        yield SysEmit(optype, name, self._address_of(obj), meta)

    @staticmethod
    def _address_of(obj: Any) -> int:
        if obj is None:
            return 0
        if isinstance(obj, SimObject):
            return obj.id
        if isinstance(obj, int):
            return obj
        if hasattr(obj, "id"):
            return int(obj.id)
        raise TypeError(f"cannot derive an address from {obj!r}")

    # -- time & scheduling ----------------------------------------------------------------

    def sleep(self, duration: float):
        yield SysSleep(duration)

    def now(self):
        value = yield SysNow()
        return value

    def rand(self):
        value = yield SysRand()
        return value

    def sched_yield(self):
        yield SysYieldSched()

    # -- raw threads (used by primitives, not by app code) -----------------------------------

    def spawn_raw(self, body: Any, name: str = "thread"):
        thread = yield SysSpawn(body, name)
        return thread

    def join_raw(self, thread: SimThread):
        while not thread.finished:
            yield SysWait(thread.done_waitset)

    def wait_on(self, waitset):
        yield SysWait(waitset)

    def notify_all(self, waitset) -> None:
        """Wake all waiters; synchronous, costs no virtual time."""
        self.kernel.wake_all(waitset)


__all__ = ["Runtime"]
