"""Pluggable scheduling policies for the kernel's choice points.

The kernel asks its :class:`SchedulePolicy` which runnable thread to step
next.  The default :class:`RandomPolicy` reproduces the kernel's historic
behavior bit-for-bit (it consumes the kernel RNG only when more than one
thread is runnable), so seed-0 golden traces are policy-agnostic.  The
:class:`PCTPolicy` is a PCT-style priority scheduler (Burckhardt et al.,
"A Randomized Scheduler with Probabilistic Guarantees of Finding Bugs"):
each thread gets a random priority, the highest-priority runnable thread
always runs, and at random change points the running thread's priority is
demoted — surfacing interleavings a uniform-random walk rarely visits.

Policies are addressed by *spec strings* (``"random"``, ``"pct"``,
``"pct:0.05"``) so they can cross process-pool boundaries and participate
in trace-cache keys as plain data.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from .thread import SimThread

#: Default probability per scheduling step that PCT demotes the chosen
#: thread's priority (the online analogue of PCT's d-1 change points).
DEFAULT_PCT_CHANGE_PROB = 0.02


class SchedulePolicy:
    """Decides which runnable thread the kernel steps next.

    ``reset(rng)`` is called once per kernel with the kernel's seeded RNG;
    every random decision must come from that RNG so a (seed, policy spec)
    pair fully determines the schedule.
    """

    #: Canonical spec string (used by cache keys and reports).
    spec: str = ""

    def reset(self, rng: random.Random) -> None:
        self.rng = rng

    def choose(
        self, runnable: Sequence[SimThread], step: int
    ) -> SimThread:  # pragma: no cover - interface
        raise NotImplementedError


class RandomPolicy(SchedulePolicy):
    """Uniform-random scheduling — the kernel's historic behavior.

    Consumes one RNG draw only when there is a real choice, exactly like
    the pre-policy kernel, so default-config traces are unchanged.
    """

    spec = "random"

    def choose(self, runnable: Sequence[SimThread], step: int) -> SimThread:
        if len(runnable) == 1:
            return runnable[0]
        return self.rng.choice(runnable)


class PCTPolicy(SchedulePolicy):
    """Priority-based scheduling with random priority change points."""

    def __init__(self, change_prob: float = DEFAULT_PCT_CHANGE_PROB) -> None:
        if not (0.0 <= change_prob <= 1.0):
            raise ValueError("pct change probability must be in [0, 1]")
        self.change_prob = change_prob
        self.spec = (
            "pct"
            if change_prob == DEFAULT_PCT_CHANGE_PROB
            else f"pct:{change_prob:g}"
        )
        self._priorities: Dict[int, float] = {}

    def reset(self, rng: random.Random) -> None:
        super().reset(rng)
        self._priorities = {}

    def choose(self, runnable: Sequence[SimThread], step: int) -> SimThread:
        for thread in runnable:
            if thread.tid not in self._priorities:
                self._priorities[thread.tid] = self.rng.random()
        # Highest priority wins; tid breaks ties deterministically.
        thread = max(
            runnable, key=lambda t: (self._priorities[t.tid], -t.tid)
        )
        if len(runnable) > 1 and self.rng.random() < self.change_prob:
            # Change point: demote below every current priority so a
            # lower-priority thread overtakes at the next choice.
            floor = min(self._priorities[t.tid] for t in runnable)
            self._priorities[thread.tid] = floor * self.rng.random()
        return thread


#: Spec-name → factory taking the optional ``:arg`` suffix.
_POLICIES = {
    "random": lambda arg: RandomPolicy(),
    "pct": lambda arg: PCTPolicy(
        DEFAULT_PCT_CHANGE_PROB if arg is None else float(arg)
    ),
}


def policy_names() -> List[str]:
    return sorted(_POLICIES)


def build_policy(spec: "str | SchedulePolicy") -> SchedulePolicy:
    """Instantiate a policy from its spec string (``"pct:0.05"`` style).

    A ready policy instance passes through unchanged, letting tests plug
    in custom policies without registering a spec.
    """
    if isinstance(spec, SchedulePolicy):
        return spec
    name, _, arg = spec.partition(":")
    factory = _POLICIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown schedule policy {spec!r}; known: {policy_names()}"
        )
    try:
        return factory(arg or None)
    except ValueError as exc:
        raise ValueError(f"bad schedule policy spec {spec!r}: {exc}") from exc


__all__ = [
    "DEFAULT_PCT_CHANGE_PROB",
    "PCTPolicy",
    "RandomPolicy",
    "SchedulePolicy",
    "build_policy",
    "policy_names",
]
