"""Pluggable scheduling policies for the kernel's choice points.

The kernel asks its :class:`SchedulePolicy` which runnable thread to step
next.  The default :class:`RandomPolicy` reproduces the kernel's historic
behavior bit-for-bit (it consumes the kernel RNG only when more than one
thread is runnable), so seed-0 golden traces are policy-agnostic.  The
:class:`PCTPolicy` is a PCT-style priority scheduler (Burckhardt et al.,
"A Randomized Scheduler with Probabilistic Guarantees of Finding Bugs"):
each thread gets a random priority, the highest-priority runnable thread
always runs, and at random change points the running thread's priority is
demoted — surfacing interleavings a uniform-random walk rarely visits.

:class:`DirectedPolicy` is the schedule-*search* variant: PCT priorities
whose change points are not random but pinned to a set of static target
locations (the fields of predicted-but-unwitnessed races from
:mod:`repro.predict`).  The first time a thread is about to touch a
target field the policy *defers* the access — the kernel parks the
syscall, the thread's priority drops below every other thread, and the
rest of the program overtakes it — forcing exactly the reordering the
predictive detector claims exposes the race.

Policies are addressed by *spec strings* (``"random"``, ``"pct"``,
``"pct:0.05"``, ``"directed:7|Cls::field[read/write]"``) so they can
cross process-pool boundaries and participate in trace-cache keys as
plain data.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..trace.optypes import OpType
from .thread import SimThread

#: Default probability per scheduling step that PCT demotes the chosen
#: thread's priority (the online analogue of PCT's d-1 change points).
DEFAULT_PCT_CHANGE_PROB = 0.02


class SchedulePolicy:
    """Decides which runnable thread the kernel steps next.

    ``reset(rng)`` is called once per kernel with the kernel's seeded RNG;
    every random decision must come from that RNG so a (seed, policy spec)
    pair fully determines the schedule.
    """

    #: Canonical spec string (used by cache keys and reports).
    spec: str = ""

    def reset(self, rng: random.Random) -> None:
        self.rng = rng

    def choose(
        self, runnable: Sequence[SimThread], step: int
    ) -> SimThread:  # pragma: no cover - interface
        raise NotImplementedError

    def defer(self, thread: SimThread, optype: OpType, name: str) -> bool:
        """Ask whether a traced operation should be postponed.

        Called by the kernel immediately before a traced operation
        executes; returning True parks the syscall on the thread (it
        re-dispatches untouched at the thread's next step) so the policy
        can let other threads overtake at that exact point.  The default
        never defers and consumes no randomness, so pre-existing
        policies and golden traces are unaffected.
        """
        return False


class RandomPolicy(SchedulePolicy):
    """Uniform-random scheduling — the kernel's historic behavior.

    Consumes one RNG draw only when there is a real choice, exactly like
    the pre-policy kernel, so default-config traces are unchanged.
    """

    spec = "random"

    def choose(self, runnable: Sequence[SimThread], step: int) -> SimThread:
        if len(runnable) == 1:
            return runnable[0]
        return self.rng.choice(runnable)


class PCTPolicy(SchedulePolicy):
    """Priority-based scheduling with random priority change points."""

    def __init__(self, change_prob: float = DEFAULT_PCT_CHANGE_PROB) -> None:
        if not (0.0 <= change_prob <= 1.0):
            raise ValueError("pct change probability must be in [0, 1]")
        self.change_prob = change_prob
        self.spec = (
            "pct"
            if change_prob == DEFAULT_PCT_CHANGE_PROB
            else f"pct:{change_prob:g}"
        )
        self._priorities: Dict[int, float] = {}

    def reset(self, rng: random.Random) -> None:
        super().reset(rng)
        self._priorities = {}

    def choose(self, runnable: Sequence[SimThread], step: int) -> SimThread:
        for thread in runnable:
            if thread.tid not in self._priorities:
                self._priorities[thread.tid] = self.rng.random()
        # Highest priority wins; tid breaks ties deterministically.
        thread = max(
            runnable, key=lambda t: (self._priorities[t.tid], -t.tid)
        )
        if len(runnable) > 1 and self.rng.random() < self.change_prob:
            # Change point: demote below every current priority so a
            # lower-priority thread overtakes at the next choice.
            floor = min(self._priorities[t.tid] for t in runnable)
            self._priorities[thread.tid] = floor * self.rng.random()
        return thread


#: Separator between the seed and the targets (and between targets) in a
#: directed spec.  ``|`` never appears in qualified field names, which
#: freely contain ``:``, ``.``, ``/``, ``[`` and ``]``.
_DIRECTED_SEP = "|"

#: A static schedule-search target: a fully qualified field name plus the
#: access kinds allowed to trigger a deferral (empty = any memory access).
TargetSite = Tuple[str, "frozenset[str]"]


def parse_target(target: str) -> TargetSite:
    """Parse one target spec: ``Cls::field`` or ``Cls::field[read/write]``.

    The bracketed form is exactly what the predicted-unwitnessed oracle
    and :meth:`CampaignReport.schedule_targets` emit, so campaign output
    feeds straight back in.
    """
    target = target.strip()
    if not target:
        raise ValueError("empty directed target")
    if target.endswith("]") and "[" in target:
        name, _, kinds_part = target[:-1].rpartition("[")
        kinds = frozenset(
            k.strip() for k in kinds_part.split("/") if k.strip()
        )
        bad = kinds - {"read", "write"}
        if bad:
            raise ValueError(
                f"bad access kind(s) {sorted(bad)} in target {target!r}"
            )
        return (name, kinds)
    return (target, frozenset())


def format_target(site: TargetSite) -> str:
    name, kinds = site
    if not kinds:
        return name
    return f"{name}[{'/'.join(sorted(kinds))}]"


class DirectedPolicy(SchedulePolicy):
    """PCT priorities with change points pinned to target locations.

    Where :class:`PCTPolicy` demotes the running thread at *random*
    steps, the directed policy demotes it exactly when it is about to
    access one of the target fields — and additionally defers that
    access, so every other thread overtakes the toucher at the racy
    site.  Each ``(thread, field)`` pair is deferred at most once per
    run: the re-dispatched access then proceeds, now reordered against
    the rest of the program.

    All randomness comes from a private RNG seeded by the spec's
    ``<seed>`` component, never from the kernel RNG — so the kernel's
    own draw sequence (op-cost jitter, finalizer lag) is byte-identical
    to an undirected run of the same kernel seed, and distinct directed
    seeds explore distinct priority orders over identical programs.
    """

    def __init__(
        self,
        seed: int = 0,
        targets: Iterable[str] = (),
        change_prob: float = DEFAULT_PCT_CHANGE_PROB,
    ) -> None:
        if not (0.0 <= change_prob <= 1.0):
            raise ValueError("directed change probability must be in [0, 1]")
        self.seed = int(seed)
        self.change_prob = change_prob
        sites = sorted({parse_target(t) for t in targets})
        #: field name → access kinds that trigger a deferral there.
        self._sites: Dict[str, Set[str]] = {}
        for name, kinds in sites:
            self._sites.setdefault(name, set()).update(kinds)
        self.targets: Tuple[str, ...] = tuple(
            format_target((name, frozenset(kinds)))
            for name, kinds in sorted(self._sites.items())
        )
        parts = [str(self.seed)]
        if change_prob != DEFAULT_PCT_CHANGE_PROB:
            parts[0] = f"{self.seed}@{change_prob:g}"
        parts.extend(self.targets)
        self.spec = "directed:" + _DIRECTED_SEP.join(parts)
        self._priorities: Dict[int, float] = {}
        self._deferred: Set[Tuple[int, str]] = set()
        self._floor = 0.0
        self._rng = random.Random(self.seed)

    @classmethod
    def from_arg(cls, arg: Optional[str]) -> "DirectedPolicy":
        """Build from the ``:<seed>[@prob]|<target>|...`` spec suffix."""
        if arg is None:
            return cls()
        head, *targets = arg.split(_DIRECTED_SEP)
        head = head.strip() or "0"
        seed_part, _, prob_part = head.partition("@")
        seed = int(seed_part)
        prob = float(prob_part) if prob_part else DEFAULT_PCT_CHANGE_PROB
        return cls(seed=seed, targets=targets, change_prob=prob)

    def reset(self, rng: random.Random) -> None:
        super().reset(rng)
        self._priorities = {}
        self._deferred = set()
        self._floor = 0.0
        self._rng = random.Random(self.seed)

    def _prio(self, thread: SimThread) -> float:
        if thread.tid not in self._priorities:
            self._priorities[thread.tid] = self._rng.random()
        return self._priorities[thread.tid]

    def _demote(self, thread: SimThread) -> None:
        """Push a thread strictly below every priority handed out so far."""
        self._floor -= 1.0
        self._priorities[thread.tid] = self._floor + 0.5 * self._rng.random()

    def choose(self, runnable: Sequence[SimThread], step: int) -> SimThread:
        for thread in runnable:
            self._prio(thread)
        thread = max(
            runnable, key=lambda t: (self._priorities[t.tid], -t.tid)
        )
        if len(runnable) > 1 and self._rng.random() < self.change_prob:
            self._demote(thread)
        return thread

    def defer(self, thread: SimThread, optype: OpType, name: str) -> bool:
        if not optype.is_memory:
            return False
        kinds = self._sites.get(name)
        if kinds is None:
            return False
        if kinds and optype.value not in kinds:
            return False
        key = (thread.tid, name)
        if key in self._deferred:
            return False
        self._deferred.add(key)
        self._prio(thread)
        self._demote(thread)
        return True


def directed_spec(
    seed: int,
    targets: Iterable[str],
    change_prob: float = DEFAULT_PCT_CHANGE_PROB,
) -> str:
    """Canonical ``directed:...`` spec string for a seed + target set."""
    return DirectedPolicy(
        seed=seed, targets=targets, change_prob=change_prob
    ).spec


#: Spec-name → factory taking the optional ``:arg`` suffix.
_POLICIES = {
    "random": lambda arg: RandomPolicy(),
    "pct": lambda arg: PCTPolicy(
        DEFAULT_PCT_CHANGE_PROB if arg is None else float(arg)
    ),
    "directed": lambda arg: DirectedPolicy.from_arg(arg),
}


def policy_names() -> List[str]:
    return sorted(_POLICIES)


def build_policy(spec: "str | SchedulePolicy") -> SchedulePolicy:
    """Instantiate a policy from its spec string (``"pct:0.05"`` style).

    A ready policy instance passes through unchanged, letting tests plug
    in custom policies without registering a spec.
    """
    if isinstance(spec, SchedulePolicy):
        return spec
    name, _, arg = spec.partition(":")
    factory = _POLICIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown schedule policy {spec!r}; known: {policy_names()}"
        )
    try:
        return factory(arg or None)
    except ValueError as exc:
        raise ValueError(f"bad schedule policy spec {spec!r}: {exc}") from exc


__all__ = [
    "DEFAULT_PCT_CHANGE_PROB",
    "DirectedPolicy",
    "PCTPolicy",
    "RandomPolicy",
    "SchedulePolicy",
    "build_policy",
    "directed_spec",
    "format_target",
    "parse_target",
    "policy_names",
]
