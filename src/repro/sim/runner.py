"""Test-harness runner: executes an application's unit tests on the kernel.

Reproduces the MSTest-style framework semantics the paper's App-1 relies
on: when an application defines a ``TestInitialize`` method, the harness
runs it on a separate thread and only then starts the test method on
another thread — the framework's own signalling is *not* traced, exactly
like the paper's un-instrumented test framework, so SherLock must infer
the edge from ``TestInitialize``'s end to the test method's begin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..trace.events import TraceEvent
from ..trace.log import TraceLog
from ..trace.optypes import OpRef
from .errors import SimulationError
from .kernel import DEFAULT_OP_COST, Kernel
from .methods import Method
from .program import Application, UnitTest
from .runtime import Runtime
from .thread import WaitSet


@dataclass
class TestExecution:
    """Result of executing one unit test once."""

    test_name: str
    log: TraceLog
    steps: int
    error: Optional[str] = None


@dataclass
class RunOptions:
    """Knobs for one application run (one round over all tests)."""

    seed: int = 0
    run_id: int = 0
    op_cost: float = DEFAULT_OP_COST
    delay_plan: Dict[OpRef, float] = field(default_factory=dict)
    event_filter: Optional[Callable[[TraceEvent], bool]] = None
    max_steps: int = 2_000_000
    #: Scheduling-policy spec ("random", "pct", "pct:0.05").
    schedule_policy: str = "random"


def run_unit_test(
    app: Application, test: UnitTest, options: RunOptions
) -> TestExecution:
    """Execute one unit test on a fresh kernel and return its trace."""
    log = TraceLog(run_id=options.run_id)
    kernel = Kernel(
        seed=_mix_seed(options.seed, test.qname, options.run_id),
        op_cost=options.op_cost,
        log=log,
        delay_plan=options.delay_plan,
        event_filter=options.event_filter,
        max_steps=options.max_steps,
        schedule_policy=options.schedule_policy,
    )
    rt = Runtime(kernel)
    ctx = app.make_context(rt)
    test_method = Method(
        test.qname, lambda rt_, obj, ctx_: test.body(rt_, ctx_)
    )

    init_done = {"flag": app.test_initialize is None}
    init_waitset = WaitSet("harness:init")

    def init_thread():
        yield from rt.call(app.test_initialize, ctx.host)
        init_done["flag"] = True
        rt.notify_all(init_waitset)

    def test_thread():
        # The harness's own signalling is framework-internal: untraced.
        while not init_done["flag"]:
            yield from rt.wait_on(init_waitset)
        yield from rt.call(test_method, ctx.host, ctx)

    if app.test_initialize is not None:
        kernel.spawn(init_thread(), "harness:init")
    kernel.spawn(test_thread(), f"test:{test.name}")

    error: Optional[str] = None
    try:
        kernel.run()
    except SimulationError as exc:
        error = f"{type(exc).__name__}: {exc}"
    for thread in kernel.threads:
        if thread.error is not None and error is None:
            error = f"thread {thread.name}: {thread.error!r}"
    return TestExecution(test.qname, log, kernel.steps, error)


def run_application(
    app: Application, options: RunOptions
) -> List[TestExecution]:
    """Execute all unit tests of an application (one round)."""
    return [run_unit_test(app, test, options) for test in app.tests]


def _mix_seed(seed: int, test_qname: str, run_id: int) -> int:
    """Derive a per-test, per-round seed deterministically."""
    h = 2166136261
    for ch in f"{seed}|{test_qname}|{run_id}":
        h = (h ^ ord(ch)) * 16777619 % (1 << 32)
    return h


__all__ = ["RunOptions", "TestExecution", "run_application", "run_unit_test"]
