"""Simulator error types."""

from __future__ import annotations

from typing import List


class SimulationError(RuntimeError):
    """Base class for simulator failures."""


class DeadlockError(SimulationError):
    """Raised when every live thread is blocked and none can be woken."""

    def __init__(self, blocked_threads: List[str]) -> None:
        self.blocked_threads = blocked_threads
        super().__init__(
            "deadlock: all live threads blocked: " + ", ".join(blocked_threads)
        )


class StepLimitExceeded(SimulationError):
    """Raised when a run exceeds the kernel's step budget (runaway loop)."""


class IllegalSyscall(SimulationError):
    """Raised when app code yields something the kernel cannot interpret."""


__all__ = [
    "DeadlockError",
    "IllegalSyscall",
    "SimulationError",
    "StepLimitExceeded",
]
