"""Static-constructor semantics.

C# guarantees a class's static constructor (``.cctor``) completes before
any other access to the class — a language-enforced happens-before edge
SherLock infers without knowing the semantics (§5.3.3): the *end* of
``Class::.cctor`` is a release; the begin of the first method that touches
the class is the paired acquire.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..methods import Method
from ..objects import StaticObject
from ..runtime import Runtime
from ..thread import WaitSet


class StaticClass:
    """Per-run state of one class with a static constructor."""

    def __init__(self, class_name: str, cctor: Optional[Method] = None,
                 **static_fields) -> None:
        self.obj = StaticObject(class_name, static_fields)
        self.cctor = cctor or Method(f"{class_name}::.cctor")
        if not self.cctor.qname.endswith("::.cctor"):
            raise ValueError(
                f"static constructor for {class_name} must be named "
                f"'{class_name}::.cctor'"
            )
        self.waitset = WaitSet(f"cctor:{class_name}")

    def ensure_initialized(self, rt: Runtime):
        """Run the static constructor on first access; block concurrent
        threads until it completes (the CLR's double-checked init)."""
        state = self.obj.cctor_state
        if state == "done":
            return
        if state == "running":
            while self.obj.cctor_state != "done":
                yield from rt.wait_on(self.waitset)
            return
        self.obj.cctor_state = "running"
        yield from rt.call(self.cctor, self.obj)
        self.obj.cctor_state = "done"
        rt.notify_all(self.waitset)


class StaticsTable:
    """All static classes of one application run."""

    def __init__(self) -> None:
        self.classes: Dict[str, StaticClass] = {}

    def register(self, static_class: StaticClass) -> StaticClass:
        self.classes[static_class.obj.class_name] = static_class
        return static_class

    def get(self, class_name: str) -> StaticClass:
        return self.classes[class_name]


__all__ = ["StaticClass", "StaticsTable"]
