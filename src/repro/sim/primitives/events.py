"""``EventWaitHandle`` / ``WaitHandle`` — signal/wait synchronization.

``Set`` is a release; ``WaitOne`` is an acquire.  ``WaitAll`` waits for a
group of handles — the paper's n-to-1 example (Radical's
``WaitHandle::WaitAll``).  Handles created with a shared ``group`` object
report that object as their event address, so n-to-1 pairings share one
channel without any detector-side semantics.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ...trace.optypes import OpType
from ..objects import SimObject
from ..runtime import Runtime
from ..thread import WaitSet

SET_API = "System.Threading.EventWaitHandle::Set"
WAIT_ONE_API = "System.Threading.WaitHandle::WaitOne"
WAIT_ALL_API = "System.Threading.WaitHandle::WaitAll"


class EventWaitHandle:
    """A manual-reset event."""

    def __init__(
        self, name: str = "event", group: Optional[SimObject] = None
    ) -> None:
        self.obj = SimObject("System.Threading.EventWaitHandle", {})
        self.group = group
        self.name = name
        self.signaled = False
        self.waitset = WaitSet(f"event:{name}")

    @property
    def channel_obj(self) -> SimObject:
        return self.group if self.group is not None else self.obj

    def set(self, rt: Runtime):
        yield from rt.emit(OpType.ENTER, SET_API, self.channel_obj, library=True)
        self.signaled = True
        rt.notify_all(self.waitset)
        yield from rt.emit(OpType.EXIT, SET_API, self.channel_obj, library=True)

    def reset(self) -> None:
        self.signaled = False

    def wait_one(self, rt: Runtime):
        yield from rt.emit(
            OpType.ENTER, WAIT_ONE_API, self.channel_obj, library=True
        )
        while not self.signaled:
            yield from rt.wait_on(self.waitset)
        yield from rt.emit(
            OpType.EXIT, WAIT_ONE_API, self.channel_obj, library=True
        )


def wait_all(rt: Runtime, handles: Iterable["EventWaitHandle"]):
    """``WaitHandle.WaitAll`` over a group of handles.

    Instrumented once per call site; the event address is the handles'
    shared group object (they must share one for the call to be traced as a
    single acquire, which is how the benchmark apps use it).
    """
    handle_list: List[EventWaitHandle] = list(handles)
    if not handle_list:
        return
    channel = handle_list[0].channel_obj
    yield from rt.emit(OpType.ENTER, WAIT_ALL_API, channel, library=True)
    for handle in handle_list:
        while not handle.signaled:
            yield from rt.wait_on(handle.waitset)
    yield from rt.emit(OpType.EXIT, WAIT_ALL_API, channel, library=True)


__all__ = [
    "EventWaitHandle",
    "SET_API",
    "WAIT_ALL_API",
    "WAIT_ONE_API",
    "wait_all",
]
