"""``System.Threading.SemaphoreSlim`` — counting semaphore."""

from __future__ import annotations

from ...trace.optypes import OpType
from ..objects import SimObject
from ..runtime import Runtime
from ..thread import WaitSet

RELEASE_API = "System.Threading.SemaphoreSlim::Release"
WAIT_API = "System.Threading.SemaphoreSlim::Wait"


class SemaphoreSlim:
    """Counting semaphore: ``release`` is a release synchronization,
    ``wait`` an acquire."""

    def __init__(self, initial: int = 0, name: str = "semaphore") -> None:
        if initial < 0:
            raise ValueError("semaphore count cannot be negative")
        self.obj = SimObject("System.Threading.SemaphoreSlim", {})
        self.name = name
        self.count = initial
        self.waitset = WaitSet(f"sem:{name}")

    def release(self, rt: Runtime, n: int = 1):
        yield from rt.emit(OpType.ENTER, RELEASE_API, self.obj, library=True)
        self.count += n
        rt.notify_all(self.waitset)
        yield from rt.emit(OpType.EXIT, RELEASE_API, self.obj, library=True)

    def wait(self, rt: Runtime):
        yield from rt.emit(OpType.ENTER, WAIT_API, self.obj, library=True)
        while self.count <= 0:
            yield from rt.wait_on(self.waitset)
        self.count -= 1
        yield from rt.emit(OpType.EXIT, WAIT_API, self.obj, library=True)


__all__ = ["RELEASE_API", "SemaphoreSlim", "WAIT_API"]
