""".NET-style synchronization primitives built on the kernel."""

from .barrier import Barrier, SIGNAL_AND_WAIT_API
from .collections import SimDictionary, SimList
from .concurrent import ConcurrentDictionary, GET_OR_ADD_API
from .dataflow import DataflowBlock, POST_API, RECEIVE_API
from .events import EventWaitHandle, SET_API, WAIT_ALL_API, WAIT_ONE_API, wait_all
from .gc import drop_last_reference
from .monitor import ENTER_API, EXIT_API, Monitor
from .phaser import (
    ARRIVE_API,
    AWAIT_ADVANCE_API,
    DEREGISTER_API,
    PHASER_ACQUIRE_APIS,
    PHASER_RELEASE_APIS,
    Phaser,
    REGISTER_API,
)
from .rwlock import (
    ACQUIRE_READER_API,
    ACQUIRE_WRITER_API,
    DOWNGRADE_API,
    RELEASE_READER_API,
    RELEASE_WRITER_API,
    ReaderWriterLock,
    UPGRADE_API,
)
from .semaphore import SemaphoreSlim
from .statics import StaticClass, StaticsTable
from .tasks import (
    AWAITER_GETRESULT_API,
    FACTORY_STARTNEW_API,
    SystemThread,
    TASK_CONTINUE_API,
    TASK_RUN_API,
    TASK_START_API,
    TASK_WAIT_API,
    THREADPOOL_QUEUE_API,
    THREAD_JOIN_API,
    THREAD_START_API,
    Task,
    TaskFactory,
    ThreadPool,
)

__all__ = [
    "ACQUIRE_READER_API",
    "ARRIVE_API",
    "AWAIT_ADVANCE_API",
    "Barrier",
    "DEREGISTER_API",
    "PHASER_ACQUIRE_APIS",
    "PHASER_RELEASE_APIS",
    "Phaser",
    "REGISTER_API",
    "SIGNAL_AND_WAIT_API",
    "ACQUIRE_WRITER_API",
    "AWAITER_GETRESULT_API",
    "ConcurrentDictionary",
    "DOWNGRADE_API",
    "DataflowBlock",
    "ENTER_API",
    "EXIT_API",
    "EventWaitHandle",
    "FACTORY_STARTNEW_API",
    "GET_OR_ADD_API",
    "Monitor",
    "POST_API",
    "RECEIVE_API",
    "RELEASE_READER_API",
    "RELEASE_WRITER_API",
    "ReaderWriterLock",
    "SET_API",
    "SemaphoreSlim",
    "SimDictionary",
    "SimList",
    "StaticClass",
    "StaticsTable",
    "SystemThread",
    "TASK_CONTINUE_API",
    "TASK_RUN_API",
    "TASK_START_API",
    "TASK_WAIT_API",
    "THREADPOOL_QUEUE_API",
    "THREAD_JOIN_API",
    "THREAD_START_API",
    "Task",
    "TaskFactory",
    "ThreadPool",
    "UPGRADE_API",
    "WAIT_ALL_API",
    "WAIT_ONE_API",
    "drop_last_reference",
    "wait_all",
]
