"""``System.Threading.ReaderWriterLock``.

Includes ``UpgradeToWriteLock`` / ``DowngradeFromWriterLock``, the APIs
that break SherLock's Single-Role assumption (§5.5 "Double Roles"):
``UpgradeToWriteLock`` first *releases* the reader lock and then *acquires*
the writer lock inside one API.
"""

from __future__ import annotations

from typing import Optional, Set

from ...trace.optypes import OpType
from ..objects import SimObject
from ..runtime import Runtime
from ..thread import SimThread, WaitSet

ACQUIRE_READER_API = "System.Threading.ReaderWriterLock::AcquireReaderLock"
RELEASE_READER_API = "System.Threading.ReaderWriterLock::ReleaseReaderLock"
ACQUIRE_WRITER_API = "System.Threading.ReaderWriterLock::AcquireWriterLock"
RELEASE_WRITER_API = "System.Threading.ReaderWriterLock::ReleaseWriterLock"
UPGRADE_API = "System.Threading.ReaderWriterLock::UpgradeToWriterLock"
DOWNGRADE_API = "System.Threading.ReaderWriterLock::DowngradeFromWriterLock"


class ReaderWriterLock:
    """Multiple readers / single writer lock."""

    def __init__(self, name: str = "rwlock") -> None:
        self.obj = SimObject("System.Threading.ReaderWriterLock", {})
        self.name = name
        self.readers: Set[SimThread] = set()
        self.writer: Optional[SimThread] = None
        self.waitset = WaitSet(f"rwlock:{name}")

    # -- internal helpers (no instrumentation) ---------------------------------

    def _take_reader(self, rt: Runtime):
        me = rt.current_thread
        while self.writer is not None:
            yield from rt.wait_on(self.waitset)
        self.readers.add(me)

    def _drop_reader(self, rt: Runtime) -> None:
        self.readers.discard(rt.current_thread)
        if not self.readers:
            rt.notify_all(self.waitset)

    def _take_writer(self, rt: Runtime):
        me = rt.current_thread
        while self.writer is not None or self.readers:
            yield from rt.wait_on(self.waitset)
        self.writer = me

    def _drop_writer(self, rt: Runtime) -> None:
        if self.writer is rt.current_thread:
            self.writer = None
            rt.notify_all(self.waitset)

    # -- instrumented API surface ------------------------------------------------

    def acquire_reader(self, rt: Runtime):
        yield from rt.emit(
            OpType.ENTER, ACQUIRE_READER_API, self.obj, library=True
        )
        yield from self._take_reader(rt)
        yield from rt.emit(
            OpType.EXIT, ACQUIRE_READER_API, self.obj, library=True
        )

    def release_reader(self, rt: Runtime):
        yield from rt.emit(
            OpType.ENTER, RELEASE_READER_API, self.obj, library=True
        )
        self._drop_reader(rt)
        yield from rt.emit(
            OpType.EXIT, RELEASE_READER_API, self.obj, library=True
        )

    def acquire_writer(self, rt: Runtime):
        yield from rt.emit(
            OpType.ENTER, ACQUIRE_WRITER_API, self.obj, library=True
        )
        yield from self._take_writer(rt)
        yield from rt.emit(
            OpType.EXIT, ACQUIRE_WRITER_API, self.obj, library=True
        )

    def release_writer(self, rt: Runtime):
        yield from rt.emit(
            OpType.ENTER, RELEASE_WRITER_API, self.obj, library=True
        )
        self._drop_writer(rt)
        yield from rt.emit(
            OpType.EXIT, RELEASE_WRITER_API, self.obj, library=True
        )

    def upgrade_to_writer(self, rt: Runtime):
        """Release the reader lock, then acquire the writer lock — one API
        playing both roles (breaks Single-Role)."""
        yield from rt.emit(OpType.ENTER, UPGRADE_API, self.obj, library=True)
        self._drop_reader(rt)
        yield from self._take_writer(rt)
        yield from rt.emit(OpType.EXIT, UPGRADE_API, self.obj, library=True)

    def downgrade_from_writer(self, rt: Runtime):
        yield from rt.emit(OpType.ENTER, DOWNGRADE_API, self.obj, library=True)
        me = rt.current_thread
        if self.writer is me:
            self.writer = None
            self.readers.add(me)
            rt.notify_all(self.waitset)
        yield from rt.emit(OpType.EXIT, DOWNGRADE_API, self.obj, library=True)


__all__ = [
    "ACQUIRE_READER_API",
    "ACQUIRE_WRITER_API",
    "DOWNGRADE_API",
    "RELEASE_READER_API",
    "RELEASE_WRITER_API",
    "ReaderWriterLock",
    "UPGRADE_API",
]
