"""``System.Threading.Tasks.Dataflow`` — asynchronous message blocks.

Models the paper's Example A (App-7 / Statsd): a message block with a
handler delegate.  ``Post`` is a release that happens before the handler's
entrance; ``Receive`` is an acquire that happens after the handler's exit.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from ...trace.optypes import OpType
from ..methods import Method
from ..objects import SimObject
from ..runtime import Runtime
from ..thread import WaitSet

POST_API = "System.Threading.Tasks.Dataflow.DataflowBlock::Post"
RECEIVE_API = "System.Threading.Tasks.Dataflow.DataflowBlock::Receive"


class DataflowBlock:
    """A message-processing block with a single worker pump."""

    def __init__(self, handler: Method, name: str = "block") -> None:
        self.obj = SimObject(
            "System.Threading.Tasks.Dataflow.DataflowBlock", {}
        )
        self.handler = handler
        self.name = name
        self.inbox: Deque[Any] = deque()
        self.outbox: Deque[Any] = deque()
        self.inbox_waitset = WaitSet(f"dataflow-in:{name}")
        self.outbox_waitset = WaitSet(f"dataflow-out:{name}")
        self.completed = False
        self._pump_started = False

    def _pump(self, rt: Runtime):
        """Worker loop: handle each posted message, publish the result."""
        while not self.completed or self.inbox:
            while not self.inbox and not self.completed:
                yield from rt.wait_on(self.inbox_waitset)
            if not self.inbox:
                break
            message = self.inbox.popleft()
            result = yield from rt.call(self.handler, self.obj, message)
            self.outbox.append(result)
            rt.notify_all(self.outbox_waitset)

    def _ensure_pump(self, rt: Runtime):
        if not self._pump_started:
            self._pump_started = True
            yield from rt.spawn_raw(self._pump(rt), f"dataflow:{self.name}")

    def post(self, rt: Runtime, message: Any):
        yield from rt.emit(OpType.ENTER, POST_API, self.obj, library=True)
        yield from self._ensure_pump(rt)
        self.inbox.append(message)
        rt.notify_all(self.inbox_waitset)
        yield from rt.emit(OpType.EXIT, POST_API, self.obj, library=True)

    def receive(self, rt: Runtime):
        yield from rt.emit(OpType.ENTER, RECEIVE_API, self.obj, library=True)
        while not self.outbox:
            yield from rt.wait_on(self.outbox_waitset)
        result = self.outbox.popleft()
        yield from rt.emit(OpType.EXIT, RECEIVE_API, self.obj, library=True)
        return result

    def complete(self, rt: Runtime) -> None:
        self.completed = True
        rt.notify_all(self.inbox_waitset)


__all__ = ["DataflowBlock", "POST_API", "RECEIVE_API"]
