"""``System.Collections.Concurrent.ConcurrentDictionary``.

``GetOrAdd(key, delegate)`` runs the delegate atomically with respect to
other ``GetOrAdd`` calls on the same dictionary (the paper's Example C):
the exit of one delegate happens before the entry of the next.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ...trace.optypes import OpType
from ..methods import Method
from ..objects import SimObject
from ..runtime import Runtime
from ..thread import SimThread, WaitSet

GET_OR_ADD_API = "System.Collections.Concurrent.ConcurrentDictionary::GetOrAdd"


class ConcurrentDictionary:
    """Thread-safe dictionary with an atomic ``GetOrAdd``."""

    def __init__(self, name: str = "cdict") -> None:
        self.obj = SimObject(
            "System.Collections.Concurrent.ConcurrentDictionary", {}
        )
        self.name = name
        self.data: Dict[Any, Any] = {}
        self._owner: Optional[SimThread] = None
        self._waitset = WaitSet(f"cdict:{name}")

    def get_or_add(self, rt: Runtime, key: Any, delegate: Method, args: tuple = ()):
        """Return ``data[key]``, running ``delegate`` atomically to create
        it when absent.  The delegate's parent address is the dictionary,
        which is the channel both paired delegates share."""
        yield from rt.emit(OpType.ENTER, GET_OR_ADD_API, self.obj, library=True)
        me = rt.current_thread
        while self._owner is not None and self._owner is not me:
            yield from rt.wait_on(self._waitset)
        self._owner = me
        try:
            if key not in self.data:
                value = yield from rt.call(delegate, self.obj, key, *args)
                self.data[key] = value
            result = self.data[key]
        finally:
            self._owner = None
            rt.notify_all(self._waitset)
        yield from rt.emit(OpType.EXIT, GET_OR_ADD_API, self.obj, library=True)
        return result

    def try_get(self, rt: Runtime, key: Any):
        """Non-delegate lookup (safe, no instrumentation of internals)."""
        yield from rt.sched_yield()
        return self.data.get(key)


__all__ = ["ConcurrentDictionary", "GET_OR_ADD_API"]
