"""``System.Threading.Barrier`` — phase synchronization.

``SignalAndWait`` is both-roled at the *phase* level (every participant
releases its work and acquires everyone else's), which FastTrack-style
manual annotation handles natively; for SherLock the interesting ops are
``SignalAndWait``'s begin (acquire: waits for the phase) and end
(release into the next phase).
"""

from __future__ import annotations

from ...trace.optypes import OpType
from ..objects import SimObject
from ..runtime import Runtime
from ..thread import WaitSet

SIGNAL_AND_WAIT_API = "System.Threading.Barrier::SignalAndWait"


class Barrier:
    """A reusable N-participant phase barrier."""

    def __init__(self, participants: int, name: str = "barrier") -> None:
        if participants < 1:
            raise ValueError("barrier needs at least one participant")
        self.obj = SimObject("System.Threading.Barrier", {})
        self.participants = participants
        self.name = name
        self.arrived = 0
        self.phase = 0
        self.waitset = WaitSet(f"barrier:{name}")

    def signal_and_wait(self, rt: Runtime):
        """Arrive at the barrier; block until the phase completes."""
        yield from rt.emit(
            OpType.ENTER, SIGNAL_AND_WAIT_API, self.obj, library=True
        )
        my_phase = self.phase
        self.arrived += 1
        if self.arrived >= self.participants:
            self.arrived = 0
            self.phase += 1
            rt.notify_all(self.waitset)
        else:
            while self.phase == my_phase:
                yield from rt.wait_on(self.waitset)
        yield from rt.emit(
            OpType.EXIT, SIGNAL_AND_WAIT_API, self.obj, library=True
        )


__all__ = ["Barrier", "SIGNAL_AND_WAIT_API"]
