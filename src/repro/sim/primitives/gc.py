"""Garbage collection and finalizers.

C# guarantees an object's finalizer only runs after the object became
unreachable, so the instruction removing the last reference happens before
``Finalize``'s begin (§5.3.3).  The kernel's finalizer thread runs queued
finalizers *after a sizable virtual lag*, reproducing §5.5's observation
that GC "can execute at a much later time after the pairing release
instruction" and is outside the Perturber's control.
"""

from __future__ import annotations

from typing import Tuple

from ..methods import Method
from ..objects import SimObject
from ..runtime import Runtime


def drop_last_reference(
    rt: Runtime,
    obj: SimObject,
    finalizer: Method,
    args: Tuple = (),
) -> None:
    """Mark ``obj`` unreachable; its finalizer will run on the GC thread.

    Must be called from inside a traced method — the enclosing method's
    exit is then the release instruction the paper's tables describe
    ("end of last access").  Synchronous (no yield): dropping a reference
    costs nothing by itself.
    """

    def body():
        yield from rt.call(finalizer, obj, *args)

    rt.kernel.enqueue_finalizer(body)


__all__ = ["drop_last_reference"]
