"""Task-parallel library: ``Task``, ``TaskFactory``, ``TaskAwaiter``,
``ContinueWith``, ``Thread`` and ``ThreadPool``.

Fork edges: the end of ``Task::Start`` / ``TaskFactory::StartNew`` /
``Thread::Start`` / ``ThreadPool::QueueUserWorkItem`` happens before the
begin of the spawned delegate.  Join edges: the end of the delegate happens
before the return of ``Task::Wait`` / ``TaskAwaiter::GetResult`` /
``Thread::Join``.

Delegate ENTER/EXIT events use the task (or thread/workitem) object as
parent address, so fork/join pairings share a channel a semantics-free
race detector can key on.
"""

from __future__ import annotations

from typing import Any, List

from ...trace.optypes import OpType
from ..methods import Method
from ..objects import SimObject
from ..runtime import Runtime
from ..thread import WaitSet

TASK_START_API = "System.Threading.Tasks.Task::Start"
TASK_RUN_API = "System.Threading.Tasks.Task::Run"
TASK_WAIT_API = "System.Threading.Tasks.Task::Wait"
TASK_CONTINUE_API = "System.Threading.Tasks.Task::ContinueWith"
FACTORY_STARTNEW_API = "System.Threading.Tasks.TaskFactory::StartNew"
AWAITER_GETRESULT_API = "System.Runtime.CompilerServices.TaskAwaiter::GetResult"
THREAD_START_API = "System.Threading.Thread::Start"
THREAD_JOIN_API = "System.Threading.Thread::Join"
THREADPOOL_QUEUE_API = "System.Threading.ThreadPool::QueueUserWorkItem"


class Task:
    """A fork-join task around a delegate :class:`Method`."""

    def __init__(
        self,
        delegate: Method,
        args: tuple = (),
        name: str = "task",
    ) -> None:
        self.obj = SimObject("System.Threading.Tasks.Task", {})
        self.delegate = delegate
        self.args = args
        self.name = name
        self.completed = False
        self.result: Any = None
        self.done_waitset = WaitSet(f"task:{name}")
        self.continuations: List["Task"] = []

    # -- body run on the worker thread ----------------------------------------

    def _body(self, rt: Runtime):
        # The delegate's parent address is the task object: the fork/join
        # channel identity.
        self.result = yield from rt.call(self.delegate, self.obj, *self.args)
        self.completed = True
        rt.notify_all(self.done_waitset)
        for continuation in self.continuations:
            yield from continuation._spawn(rt)

    def _spawn(self, rt: Runtime):
        yield from rt.spawn_raw(self._body(rt), f"task:{self.name}")

    # -- instrumented API surface -----------------------------------------------

    def start(self, rt: Runtime, api: str = TASK_START_API):
        yield from rt.emit(OpType.ENTER, api, self.obj, library=True)
        yield from self._spawn(rt)
        yield from rt.emit(OpType.EXIT, api, self.obj, library=True)
        return self

    def wait(self, rt: Runtime, api: str = TASK_WAIT_API):
        yield from rt.emit(OpType.ENTER, api, self.obj, library=True)
        while not self.completed:
            yield from rt.wait_on(self.done_waitset)
        yield from rt.emit(OpType.EXIT, api, self.obj, library=True)
        return self.result

    def get_result(self, rt: Runtime):
        """``await task`` — blocks via ``TaskAwaiter::GetResult``."""
        return (yield from self.wait(rt, api=AWAITER_GETRESULT_API))

    def continue_with(self, rt: Runtime, delegate: Method, args: tuple = ()):
        """Register a continuation; it runs after this task completes.

        The continuation delegate's parent address is *this* task: the
        paper's Example D pairs ``end(a1)`` with ``begin(a2)`` through the
        antecedent task.
        """
        yield from rt.emit(
            OpType.ENTER, TASK_CONTINUE_API, self.obj, library=True
        )
        continuation = Task(delegate, args, name=f"{self.name}.cont")
        continuation.obj = self.obj  # share the channel identity
        if self.completed:
            yield from continuation._spawn(rt)
        else:
            self.continuations.append(continuation)
        yield from rt.emit(
            OpType.EXIT, TASK_CONTINUE_API, self.obj, library=True
        )
        return continuation

    @staticmethod
    def run(rt: Runtime, delegate: Method, args: tuple = (), name: str = "task"):
        """``Task.Run(delegate)`` — create and start in one API."""
        task = Task(delegate, args, name)
        yield from task.start(rt, api=TASK_RUN_API)
        return task


class TaskFactory:
    """``Task.Factory.StartNew``."""

    @staticmethod
    def start_new(rt: Runtime, delegate: Method, args: tuple = (), name: str = "task"):
        task = Task(delegate, args, name)
        yield from task.start(rt, api=FACTORY_STARTNEW_API)
        return task


class SystemThread:
    """``System.Threading.Thread`` with Start/Join."""

    def __init__(self, delegate: Method, args: tuple = (), name: str = "thread"):
        self.obj = SimObject("System.Threading.Thread", {})
        self.delegate = delegate
        self.args = args
        self.name = name
        self.completed = False
        self.done_waitset = WaitSet(f"thread:{name}")

    def _body(self, rt: Runtime):
        yield from rt.call(self.delegate, self.obj, *self.args)
        self.completed = True
        rt.notify_all(self.done_waitset)

    def start(self, rt: Runtime):
        yield from rt.emit(OpType.ENTER, THREAD_START_API, self.obj, library=True)
        yield from rt.spawn_raw(self._body(rt), f"thread:{self.name}")
        yield from rt.emit(OpType.EXIT, THREAD_START_API, self.obj, library=True)
        return self

    def join(self, rt: Runtime):
        yield from rt.emit(OpType.ENTER, THREAD_JOIN_API, self.obj, library=True)
        while not self.completed:
            yield from rt.wait_on(self.done_waitset)
        yield from rt.emit(OpType.EXIT, THREAD_JOIN_API, self.obj, library=True)


class ThreadPool:
    """``ThreadPool.QueueUserWorkItem`` — fire-and-forget delegate."""

    @staticmethod
    def queue_user_work_item(rt: Runtime, delegate: Method, args: tuple = ()):
        workitem = SimObject("System.Threading.WorkItem", {})
        yield from rt.emit(
            OpType.ENTER, THREADPOOL_QUEUE_API, workitem, library=True
        )

        def body():
            yield from rt.call(delegate, workitem, *args)

        yield from rt.spawn_raw(body(), f"pool:{delegate.short_name}")
        yield from rt.emit(
            OpType.EXIT, THREADPOOL_QUEUE_API, workitem, library=True
        )
        return workitem


__all__ = [
    "AWAITER_GETRESULT_API",
    "FACTORY_STARTNEW_API",
    "SystemThread",
    "TASK_CONTINUE_API",
    "TASK_RUN_API",
    "TASK_START_API",
    "TASK_WAIT_API",
    "THREADPOOL_QUEUE_API",
    "THREAD_JOIN_API",
    "THREAD_START_API",
    "Task",
    "TaskFactory",
    "ThreadPool",
]
