"""Thread-unsafe collection classes (``System.Collections.Generic``).

The paper instruments 14 well-documented thread-unsafe classes; calls to
their read/write APIs form conflicting pairs just like raw heap accesses
(§4.1).  Events carry ``meta["unsafe_api"] = "read"|"write"`` so the window
extractor can treat call sites as accesses, and the TSVD baseline can
target them.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ...trace.optypes import OpType
from ..objects import SimObject
from ..runtime import Runtime

LIST_ADD_API = "System.Collections.Generic.List::Add"
LIST_GET_API = "System.Collections.Generic.List::get_Item"
LIST_CONTAINS_API = "System.Collections.Generic.List::Contains"
LIST_COUNT_API = "System.Collections.Generic.List::get_Count"
DICT_SET_API = "System.Collections.Generic.Dictionary::set_Item"
DICT_GET_API = "System.Collections.Generic.Dictionary::get_Item"
DICT_CONTAINS_API = "System.Collections.Generic.Dictionary::ContainsKey"


class SimList:
    """A thread-unsafe list with instrumented call sites."""

    def __init__(self, name: str = "list") -> None:
        self.obj = SimObject("System.Collections.Generic.List", {})
        self.name = name
        self.items: List[Any] = []

    def _api(self, rt: Runtime, api: str, mode: str):
        yield from rt.emit(
            OpType.ENTER, api, self.obj, library=True, unsafe_api=mode
        )
        yield from rt.emit(
            OpType.EXIT, api, self.obj, library=True, unsafe_api=mode
        )

    def add(self, rt: Runtime, item: Any):
        yield from self._api(rt, LIST_ADD_API, "write")
        self.items.append(item)

    def get_item(self, rt: Runtime, index: int):
        yield from self._api(rt, LIST_GET_API, "read")
        return self.items[index] if 0 <= index < len(self.items) else None

    def contains(self, rt: Runtime, item: Any):
        yield from self._api(rt, LIST_CONTAINS_API, "read")
        return item in self.items

    def count(self, rt: Runtime):
        yield from self._api(rt, LIST_COUNT_API, "read")
        return len(self.items)


class SimDictionary:
    """A thread-unsafe dictionary with instrumented call sites."""

    def __init__(self, name: str = "dict") -> None:
        self.obj = SimObject("System.Collections.Generic.Dictionary", {})
        self.name = name
        self.data: Dict[Any, Any] = {}

    def _api(self, rt: Runtime, api: str, mode: str):
        yield from rt.emit(
            OpType.ENTER, api, self.obj, library=True, unsafe_api=mode
        )
        yield from rt.emit(
            OpType.EXIT, api, self.obj, library=True, unsafe_api=mode
        )

    def set_item(self, rt: Runtime, key: Any, value: Any):
        yield from self._api(rt, DICT_SET_API, "write")
        self.data[key] = value

    def get_item(self, rt: Runtime, key: Any):
        yield from self._api(rt, DICT_GET_API, "read")
        return self.data.get(key)

    def contains_key(self, rt: Runtime, key: Any):
        yield from self._api(rt, DICT_CONTAINS_API, "read")
        return key in self.data


__all__ = [
    "DICT_CONTAINS_API",
    "DICT_GET_API",
    "DICT_SET_API",
    "LIST_ADD_API",
    "LIST_CONTAINS_API",
    "LIST_COUNT_API",
    "LIST_GET_API",
    "SimDictionary",
    "SimList",
]
