"""``System.Threading.Phaser`` — collective phase synchronization.

A phaser generalizes :class:`~repro.sim.primitives.barrier.Barrier`
(java.util.concurrent.Phaser style): parties register and deregister
dynamically, and the signal/wait halves of a phase are split —
``Arrive`` signals the current phase without blocking, ``AwaitAdvance``
blocks until a given phase completes, and ``arrive_and_await`` (the
split pair at one call site) recovers the classic barrier.  A phase completes when every registered
party has arrived; deregistration shrinks the quorum (and can complete
the phase on its own).

Instrumentation mirrors the paper's call-site tracing: the Observer sees
ENTER/EXIT events of the four APIs against the phaser object, none of
the internal counters (``arrive_and_await`` traces as its split-phase
``Arrive`` + ``AwaitAdvance`` pair).  The happens-before vocabulary is the collective
analogue of a lock's: every arrival *releases* into the phase (its state
is published when the API returns) and every wait *acquires* the whole
phase (the edge lands at the call's return, after the last arrival) —
so a waiter of phase ``p`` is ordered after **all** of phase ``p``'s
signals, not just the one that tipped the quorum.  ``manual_spec``
registers the release APIs as *collective* so the sync-preserving
closure accumulates their channel accordingly.
"""

from __future__ import annotations

from ...trace.optypes import OpType
from ..objects import SimObject
from ..runtime import Runtime
from ..thread import WaitSet

REGISTER_API = "System.Threading.Phaser::Register"
ARRIVE_API = "System.Threading.Phaser::Arrive"
AWAIT_ADVANCE_API = "System.Threading.Phaser::AwaitAdvance"
DEREGISTER_API = "System.Threading.Phaser::ArriveAndDeregister"

#: The phaser's release-side APIs: each publishes into the phase channel.
PHASER_RELEASE_APIS = (
    REGISTER_API,
    ARRIVE_API,
    DEREGISTER_API,
)
#: The phaser's acquire-side APIs: each joins the phase channel (the
#: blocking edge lands at the EXIT, after the last arrival).
PHASER_ACQUIRE_APIS = (AWAIT_ADVANCE_API,)


class Phaser:
    """A reusable phase barrier with dynamic party registration."""

    def __init__(self, parties: int = 0, name: str = "phaser") -> None:
        if parties < 0:
            raise ValueError("phaser cannot start with negative parties")
        self.obj = SimObject("System.Threading.Phaser", {})
        self.parties = parties
        self.name = name
        self.arrived = 0
        self.phase = 0
        self.waitset = WaitSet(f"phaser:{name}")

    # -- quorum bookkeeping ---------------------------------------------------

    def _advance_if_complete(self, rt: Runtime) -> None:
        """Advance the phase when every registered party has arrived."""
        if self.parties > 0 and self.arrived >= self.parties:
            self.arrived = 0
            self.phase += 1
            rt.notify_all(self.waitset)

    def _check_arrivable(self) -> None:
        if self.parties - self.arrived <= 0:
            raise ValueError(
                f"phaser {self.name!r}: arrive with no unarrived parties "
                f"(parties={self.parties}, arrived={self.arrived})"
            )

    # -- the five traced APIs -------------------------------------------------

    def register(self, rt: Runtime):
        """Add one party to the current and all future phases."""
        yield from rt.emit(OpType.ENTER, REGISTER_API, self.obj, library=True)
        self.parties += 1
        phase = self.phase
        yield from rt.emit(OpType.EXIT, REGISTER_API, self.obj, library=True)
        return phase

    def arrive(self, rt: Runtime):
        """Signal the current phase without waiting (split-phase)."""
        yield from rt.emit(OpType.ENTER, ARRIVE_API, self.obj, library=True)
        self._check_arrivable()
        my_phase = self.phase
        self.arrived += 1
        self._advance_if_complete(rt)
        yield from rt.emit(OpType.EXIT, ARRIVE_API, self.obj, library=True)
        return my_phase

    def await_advance(self, rt: Runtime, phase: int):
        """Block until the given phase has completed.

        Returns immediately when the phaser has already moved past
        ``phase`` — waiters need not be registered parties.
        """
        yield from rt.emit(
            OpType.ENTER, AWAIT_ADVANCE_API, self.obj, library=True
        )
        while self.phase == phase:
            yield from rt.wait_on(self.waitset)
        yield from rt.emit(
            OpType.EXIT, AWAIT_ADVANCE_API, self.obj, library=True
        )
        return self.phase

    def arrive_and_await(self, rt: Runtime):
        """Signal the current phase and wait for it to complete
        (the classic barrier recovered on a phaser).

        Emits the split-phase pair — ``Arrive`` then ``AwaitAdvance`` —
        at this call site.  The arrival must *publish* before the wait
        blocks (a single ENTER/EXIT pair cannot release before it
        acquires: reads/begins only acquire, writes/ends only release),
        which is exactly how the happens-before annotation of a phase
        barrier decomposes; a party blocked in the wait half has already
        released its arrival, so the phase's waiters are ordered after
        every arrival in every interleaving.
        """
        my_phase = yield from self.arrive(rt)
        yield from self.await_advance(rt, my_phase)
        return my_phase

    def arrive_and_deregister(self, rt: Runtime):
        """Signal the current phase and drop out of the quorum.

        The departing party neither waits nor counts toward future
        phases; when it was the last unarrived party — or the last party
        altogether — the phase completes on its way out.
        """
        yield from rt.emit(
            OpType.ENTER, DEREGISTER_API, self.obj, library=True
        )
        self._check_arrivable()
        my_phase = self.phase
        self.parties -= 1
        if self.parties == 0:
            # Last party out completes the phase for any bare waiters.
            self.arrived = 0
            self.phase += 1
            rt.notify_all(self.waitset)
        else:
            self._advance_if_complete(rt)
        yield from rt.emit(
            OpType.EXIT, DEREGISTER_API, self.obj, library=True
        )
        return my_phase


__all__ = [
    "ARRIVE_API",
    "AWAIT_ADVANCE_API",
    "DEREGISTER_API",
    "PHASER_ACQUIRE_APIS",
    "PHASER_RELEASE_APIS",
    "Phaser",
    "REGISTER_API",
]
