"""``System.Threading.Monitor`` — the classic mutual-exclusion lock.

Instrumentation mirrors the paper's call-site tracing: the Observer sees
``Monitor::Enter`` / ``Monitor::Exit`` ENTER/EXIT events with the lock
object as the parent address, but none of the lock's internal state.
SherLock should infer ``begin(Monitor::Enter)`` as an acquire and
``end(Monitor::Exit)`` as a release without being told.
"""

from __future__ import annotations

from typing import Optional

from ...trace.optypes import OpType
from ..objects import SimObject
from ..runtime import Runtime
from ..thread import SimThread, WaitSet

ENTER_API = "System.Threading.Monitor::Enter"
EXIT_API = "System.Threading.Monitor::Exit"


class Monitor:
    """A reentrant lock keyed on a lock object."""

    def __init__(self, name: str = "monitor") -> None:
        self.obj = SimObject("System.Threading.Monitor", {})
        self.name = name
        self.owner: Optional[SimThread] = None
        self.hold_count = 0
        self.waitset = WaitSet(f"monitor:{name}")

    def enter(self, rt: Runtime):
        """Blocking acquire with call-site instrumentation."""
        yield from rt.emit(OpType.ENTER, ENTER_API, self.obj, library=True)
        me = rt.current_thread
        while self.owner is not None and self.owner is not me:
            yield from rt.wait_on(self.waitset)
        self.owner = me
        self.hold_count += 1
        yield from rt.emit(OpType.EXIT, ENTER_API, self.obj, library=True)

    def exit(self, rt: Runtime):
        """Release; wakes all contenders (they re-check ownership)."""
        yield from rt.emit(OpType.ENTER, EXIT_API, self.obj, library=True)
        if self.owner is not rt.current_thread:
            raise RuntimeError(
                f"Monitor {self.name!r} released by non-owner thread"
            )
        self.hold_count -= 1
        if self.hold_count == 0:
            self.owner = None
            rt.notify_all(self.waitset)
        yield from rt.emit(OpType.EXIT, EXIT_API, self.obj, library=True)

    def locked(self, rt: Runtime, body):
        """Run ``body`` (a generator) under the lock."""
        yield from self.enter(rt)
        try:
            result = yield from body
        finally:
            yield from self.exit(rt)
        return result


__all__ = ["ENTER_API", "EXIT_API", "Monitor"]
