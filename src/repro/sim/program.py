"""Application containers and ground-truth metadata.

An :class:`Application` is the simulator-side analogue of one of the
paper's 8 C# benchmark projects: a set of classes/methods, a unit-test
suite, and — for *evaluation only* — ground truth about which operations
really are synchronizations, which fields are intentionally racy, and which
sync methods the (buggy) instrumentation heuristic hides.

SherLock itself never reads the ground truth; it is consumed by
:mod:`repro.analysis` to score inference results the way the paper's
authors scored theirs by manual inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from ..trace.optypes import OpRef, Role, SyncOp
from .methods import Method
from .objects import SimObject

#: Sync taxonomy used by Tables 2/4/5 style reporting.
KIND_API = "api"            # system-API-based (§5.3.1)
KIND_VARIABLE = "variable"  # variable-based (§5.3.2)
KIND_METHOD = "method"      # application-method-based (§5.3.3)


@dataclass
class SyncInfo:
    """Ground-truth record for one true synchronization operation."""

    kind: str  # KIND_API / KIND_VARIABLE / KIND_METHOD
    subcategory: str = "other"  # lock / fork_join / async / flag /
    #   framework / dispose / static_ctor / double_role / atomic_region ...
    description: str = ""


@dataclass
class GroundTruth:
    """Evaluation-only knowledge about an application."""

    #: Every true synchronization operation with its classification.
    syncs: Dict[SyncOp, SyncInfo] = field(default_factory=dict)
    #: Fully qualified fields with *intentional* data races (true races).
    racy_fields: Set[str] = field(default_factory=set)
    #: Qualified method names the Observer's skip-heuristic wrongly hides;
    #: must be a subset of the classes of true syncs.
    hidden_sync_methods: Set[str] = field(default_factory=set)
    #: Fields the manual annotation treats as volatile (Manual_dr).
    volatile_fields: Set[str] = field(default_factory=set)
    #: field qname -> subcategory of the sync protecting it; used to
    #: attribute false races to missed-sync categories (Table 4).
    protected_by: Dict[str, str] = field(default_factory=dict)

    def add_sync(
        self,
        op: OpRef,
        role: Role,
        kind: str,
        subcategory: str = "other",
        description: str = "",
    ) -> SyncOp:
        sync = SyncOp(op, role)
        self.syncs[sync] = SyncInfo(kind, subcategory, description)
        return sync

    def is_true_sync(self, sync: SyncOp) -> bool:
        return sync in self.syncs

    def true_sync_names(self) -> Set[str]:
        return {s.op.name for s in self.syncs}

    def syncs_of_kind(self, kind: str) -> List[SyncOp]:
        return [s for s, info in self.syncs.items() if info.kind == kind]


@dataclass
class UnitTest:
    """One unit test: a qualified test-method name plus a body.

    ``body(rt, ctx)`` is a generator function; the runner wraps it into a
    traced :class:`Method` so SherLock can infer the test framework's
    happens-before edge onto the test method's begin (paper Example E).
    """

    qname: str
    body: Callable[..., Any]

    @property
    def name(self) -> str:
        return self.qname.split("::", 1)[-1]


class AppContext:
    """Fresh per-test-execution state an application builds.

    ``host`` is the object that represents the test-class instance; method
    events of the test harness use its id as parent address.
    """

    def __init__(self, host: Optional[SimObject] = None) -> None:
        self.host = host or SimObject("TestHost", {})


@dataclass
class AppInfo:
    """Table 1 metadata carried from the paper."""

    app_id: str
    name: str
    loc_reported: str
    stars_reported: int
    tests_reported: int


class Application:
    """A benchmark application: metadata, tests, and ground truth."""

    def __init__(
        self,
        info: AppInfo,
        make_context: Callable[[Any], AppContext],
        tests: List[UnitTest],
        ground_truth: GroundTruth,
        test_initialize: Optional[Method] = None,
    ) -> None:
        self.info = info
        self.make_context = make_context
        self.tests = list(tests)
        self.ground_truth = ground_truth
        #: Optional framework setup method run before every test on a
        #: separate harness thread (MSTest's ``TestInitialize`` semantics).
        self.test_initialize = test_initialize

    @property
    def app_id(self) -> str:
        return self.info.app_id

    @property
    def name(self) -> str:
        return self.info.name

    def __repr__(self) -> str:
        return (
            f"Application({self.app_id} {self.name!r}, "
            f"tests={len(self.tests)}, "
            f"true_syncs={len(self.ground_truth.syncs)})"
        )


__all__ = [
    "AppContext",
    "AppInfo",
    "Application",
    "GroundTruth",
    "KIND_API",
    "KIND_METHOD",
    "KIND_VARIABLE",
    "SyncInfo",
    "UnitTest",
]
