"""Simulated heap objects.

A :class:`SimObject` is an instance of an application (or library) class
with named fields.  Every object receives a process-unique id which serves
as its "memory address" in trace events, so the Observer can distinguish
accesses to different instances of the same field (§4.1's "field name and
its memory address").
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

_object_ids = itertools.count(1)


def fresh_object_id() -> int:
    return next(_object_ids)


class SimObject:
    """A heap object: a class name plus a field store."""

    def __init__(
        self,
        class_name: str,
        fields: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.class_name = class_name
        self.id = fresh_object_id()
        self.fields: Dict[str, Any] = dict(fields or {})

    def field_qname(self, fieldname: str) -> str:
        """Fully qualified field name ``Class::field``."""
        return f"{self.class_name}::{fieldname}"

    def get(self, fieldname: str) -> Any:
        if fieldname not in self.fields:
            raise KeyError(
                f"{self.class_name} object has no field {fieldname!r}"
            )
        return self.fields[fieldname]

    def set(self, fieldname: str, value: Any) -> None:
        self.fields[fieldname] = value

    def __repr__(self) -> str:
        return f"SimObject({self.class_name}#{self.id})"


class StaticObject(SimObject):
    """The per-class object that owns static fields and the static ctor.

    One exists per class *per run* (the program context creates them), so
    static-constructor happens-before edges reset between runs like a fresh
    process would.
    """

    def __init__(self, class_name: str, fields: Optional[Dict[str, Any]] = None):
        super().__init__(class_name, fields)
        self.cctor_state = "uninitialized"  # -> running -> done


__all__ = ["SimObject", "StaticObject", "fresh_object_id"]
