"""Application and library methods.

A :class:`Method` is a named generator function.  Calling it through the
runtime emits ENTER/EXIT trace events around the body, which is exactly the
instrumentation surface SherLock's Observer sees (§4.1: entry and exit
points of application methods; call sites of library APIs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional


@dataclass
class Method:
    """A simulated method.

    Attributes
    ----------
    qname:
        Fully qualified ``Class::Name``.
    body:
        Generator function ``body(rt, obj, *args)``; may be ``None`` for
        pure marker methods (the runtime then emits ENTER/EXIT only).
    library:
        True for system/framework APIs — they participate in the
        Single-Role constraint and are displayed API-style in reports.
    hidden:
        True to simulate the paper's instrumentation bug: the Observer's
        skip-heuristic wrongly treats the method as compiler-generated and
        drops its events (§5.5 "Instr. Errors").
    unsafe_api:
        ``"read"``/``"write"`` when the method is a thread-unsafe
        collection API whose call sites form conflicting pairs (§4.1).
    """

    qname: str
    body: Optional[Callable[..., Any]] = None
    library: bool = False
    hidden: bool = False
    unsafe_api: Optional[str] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def class_name(self) -> str:
        return self.qname.split("::", 1)[0]

    @property
    def short_name(self) -> str:
        parts = self.qname.split("::", 1)
        return parts[1] if len(parts) > 1 else parts[0]

    def event_meta(self) -> Dict[str, Any]:
        meta: Dict[str, Any] = dict(self.meta)
        if self.library:
            meta["library"] = True
        if self.hidden:
            meta["hidden"] = True
        if self.unsafe_api:
            meta["unsafe_api"] = self.unsafe_api
        return meta

    def __repr__(self) -> str:
        flags = "".join(
            f for f, on in (
                ("L", self.library),
                ("H", self.hidden),
                ("U", bool(self.unsafe_api)),
            ) if on
        )
        return f"Method({self.qname}{'/' + flags if flags else ''})"


def method(qname: str, **kwargs: Any) -> Callable[[Callable], Method]:
    """Decorator: ``@method("Class::Name")`` turns a generator function
    into a :class:`Method`."""

    def wrap(fn: Callable) -> Method:
        return Method(qname, fn, **kwargs)

    return wrap


__all__ = ["Method", "method"]
