"""Deterministic concurrent-program simulator.

A discrete-event kernel runs simulated threads (generator coroutines)
under a seeded scheduler over a virtual clock, with call-site
instrumentation, delay injection, and a library of .NET-style
synchronization primitives.  This substrate replaces the paper's C#
applications + .NET runtime + Mono.Cecil instrumentation.
"""

from .errors import (
    DeadlockError,
    IllegalSyscall,
    SimulationError,
    StepLimitExceeded,
)
from .kernel import DEFAULT_OP_COST, Kernel
from .methods import Method, method
from .objects import SimObject, StaticObject
from .program import (
    AppContext,
    AppInfo,
    Application,
    GroundTruth,
    KIND_API,
    KIND_METHOD,
    KIND_VARIABLE,
    SyncInfo,
    UnitTest,
)
from .runner import RunOptions, TestExecution, run_application, run_unit_test
from .runtime import Runtime
from .schedule import (
    PCTPolicy,
    RandomPolicy,
    SchedulePolicy,
    build_policy,
    policy_names,
)
from .thread import SimThread, ThreadState, WaitSet

__all__ = [
    "AppContext",
    "AppInfo",
    "Application",
    "DEFAULT_OP_COST",
    "DeadlockError",
    "GroundTruth",
    "IllegalSyscall",
    "KIND_API",
    "KIND_METHOD",
    "KIND_VARIABLE",
    "Kernel",
    "Method",
    "PCTPolicy",
    "RandomPolicy",
    "RunOptions",
    "Runtime",
    "SchedulePolicy",
    "SimObject",
    "SimThread",
    "SimulationError",
    "StaticObject",
    "StepLimitExceeded",
    "SyncInfo",
    "TestExecution",
    "ThreadState",
    "UnitTest",
    "WaitSet",
    "build_policy",
    "method",
    "policy_names",
    "run_application",
    "run_unit_test",
]
