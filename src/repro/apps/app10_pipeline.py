"""App-10: phased data pipeline (family tier).

A phase-structured pipeline in the style of Python stream frameworks:
stage workers hand batches across phase boundaries of one shared
:class:`~repro.sim.primitives.phaser.Phaser` — producers publish into a
phase with split-phase ``Arrive`` signals, consumers acquire the whole
phase with ``AwaitAdvance``, and workers come and go through dynamic
``Register`` / ``ArriveAndDeregister``.

Synchronization inventory:

* The stage phaser: ``Arrive`` releases each worker's batch into the
  phase; ``AwaitAdvance`` acquires the completed phase (the collective
  n-to-1 edge); ``Register``/``ArriveAndDeregister`` resize the quorum.
* ``EventWaitHandle`` guards late registration (a party must be
  registered before the running phase can tip without it).
* ``Thread::Start`` / ``Thread::Join`` fork-join around the stage
  workers.
* Planted registration/signal race: the worker's registration stamp and
  the coordinator's signal stamp hit ``registrationLog`` with no
  synchronization — FastTrack sees it in the observed order.
* Planted masked race: the drain worker's split-phase window touches
  ``drainCount`` *after* signaling its arrival, racing the
  coordinator's read — but the ``registrationLog`` report lands first
  in every undirected schedule, so only a directed schedule (deferring
  the masker, rolling the §5.4 soundness horizon forward) converts it.
"""

from __future__ import annotations

from ..sim.methods import Method
from ..sim.objects import SimObject
from ..sim.program import AppContext, Application, UnitTest
from ..sim.primitives import EventWaitHandle, Phaser, SystemThread
from ..sim.primitives.events import SET_API, WAIT_ONE_API
from ..sim.primitives.phaser import (
    ARRIVE_API,
    AWAIT_ADVANCE_API,
    DEREGISTER_API,
    REGISTER_API,
)
from ..sim.primitives.tasks import THREAD_JOIN_API, THREAD_START_API
from .base import GroundTruthBuilder, make_info, noise_call

PIPE = "PyPipeline.Stages.StageRunner"
METER = PIPE + "/Meter"
TESTS = "PyPipeline.Tests.PhasedPipelineTests"


class App10Context(AppContext):
    def __init__(self, rt) -> None:
        super().__init__(SimObject(TESTS, {}))
        # Stage state handed across phase boundaries.
        self.stages = SimObject(
            PIPE,
            {"stageInput": "", "stageOutput": "", "batchSize": 0,
             "tickCount": 0},
        )
        # Pipeline metering — intentionally racy (no synchronization).
        self.meter = SimObject(
            METER, {"registrationLog": "", "drainCount": 0}
        )


def _test_phased_handoff(rt, ctx):
    phaser = Phaser(parties=2, name="handoff")

    def producer(rt_, obj):
        yield from rt_.write(ctx.stages, "stageInput", "batch-1")
        yield from rt_.write(ctx.stages, "batchSize", 3)
        yield from phaser.arrive_and_await(rt_)

    def consumer(rt_, obj):
        yield from phaser.arrive_and_await(rt_)
        batch = yield from rt_.read(ctx.stages, "stageInput")
        size = yield from rt_.read(ctx.stages, "batchSize")
        assert batch == "batch-1" and size == 3
        yield from rt_.write(ctx.stages, "stageOutput", f"{batch}!x{size}")

    t1 = SystemThread(
        Method(f"{PIPE}::<RunStage>b__produce", producer), name="produce"
    )
    t2 = SystemThread(
        Method(f"{PIPE}::<RunStage>b__consume", consumer), name="consume"
    )
    yield from t1.start(rt)
    yield from t2.start(rt)
    yield from t1.join(rt)
    yield from t2.join(rt)
    output = yield from rt.read(ctx.stages, "stageOutput")
    assert output == "batch-1!x3"


def _test_dynamic_stage_registration(rt, ctx):
    # The coordinator (main) holds one party; a late worker registers
    # its own before the phase may tip — guarded by the wait handle.
    phaser = Phaser(parties=1, name="elastic")
    registered = EventWaitHandle("registered")

    def late_worker(rt_, obj):
        yield from phaser.register(rt_)
        yield from registered.set(rt_)
        yield from rt_.write(ctx.stages, "stageInput", "late-batch")
        yield from phaser.arrive(rt_)
        yield from rt_.sleep(0.03)
        # Phase 1: the worker drains out of the quorum.
        yield from phaser.arrive_and_deregister(rt_)

    worker = SystemThread(
        Method(f"{PIPE}::<ElasticStage>b__0", late_worker), name="late"
    )
    yield from worker.start(rt)
    yield from registered.wait_one(rt)
    yield from phaser.arrive_and_await(rt)
    batch = yield from rt.read(ctx.stages, "stageInput")
    assert batch == "late-batch"
    ticks = yield from rt.read(ctx.stages, "tickCount")
    yield from rt.write(ctx.stages, "tickCount", ticks + 1)
    # Phase 1 completes as the worker deregisters.
    yield from phaser.arrive_and_await(rt)
    yield from worker.join(rt)
    assert phaser.parties == 1


def _test_registration_signal_race(rt, ctx):
    # The planted registration/signal race: both the registering worker
    # and the signaling coordinator stamp the metering log unprotected.
    phaser = Phaser(parties=2, name="metered")

    def registering_worker(rt_, obj):
        log = yield from rt_.read(ctx.meter, "registrationLog")  # racy
        yield from rt_.write(
            ctx.meter, "registrationLog", log + "|worker"
        )
        yield from phaser.register(rt_)
        # Arrive for both of this worker's parties.
        yield from phaser.arrive(rt_)
        yield from phaser.arrive(rt_)

    worker = SystemThread(
        Method(f"{PIPE}::<MeteredStage>b__0", registering_worker),
        name="metered",
    )
    yield from worker.start(rt)
    yield from rt.sleep(0.01)
    log = yield from rt.read(ctx.meter, "registrationLog")  # racy
    yield from rt.write(ctx.meter, "registrationLog", log + "|signal")
    yield from phaser.arrive(rt)
    yield from phaser.await_advance(rt, 0)
    yield from worker.join(rt)
    final = yield from rt.read(ctx.meter, "registrationLog")
    assert "worker" in final or "signal" in final


def _test_masked_drain_race(rt, ctx):
    # The masked race: the drain worker touches the meter inside its
    # split-phase window (after signaling, before the next wait).  The
    # registrationLog report always lands first in the observed order,
    # so drainCount only converts under a directed schedule with the
    # rolling soundness horizon.
    phaser = Phaser(parties=2, name="drain")

    def drain_worker(rt_, obj):
        log = yield from rt_.read(ctx.meter, "registrationLog")  # racy
        yield from rt_.write(ctx.meter, "registrationLog", log + "|drain")
        my_phase = yield from phaser.arrive(rt_)
        # Split-phase window: metering after the signal, unprotected.
        count = yield from rt_.read(ctx.meter, "drainCount")  # racy
        yield from rt_.write(ctx.meter, "drainCount", count + 1)
        yield from phaser.await_advance(rt_, my_phase)

    worker = SystemThread(
        Method(f"{PIPE}::<DrainStage>b__0", drain_worker), name="drain"
    )
    yield from worker.start(rt)
    yield from rt.sleep(0.01)
    log = yield from rt.read(ctx.meter, "registrationLog")  # racy
    yield from rt.write(ctx.meter, "registrationLog", log + "|coord")
    drained = yield from rt.read(ctx.meter, "drainCount")  # racy
    yield from phaser.arrive_and_await(rt)
    yield from worker.join(rt)
    assert drained >= 0


def _test_sequential_pipeline(rt, ctx):
    yield from rt.write(ctx.stages, "stageInput", "solo")
    yield from noise_call(rt, "PyPipeline.Logging.StageLogger::Debug")
    batch = yield from rt.read(ctx.stages, "stageInput")
    assert batch == "solo"


def build_app() -> Application:
    gt = (
        GroundTruthBuilder()
        # The stage phaser (collective phase ordering).
        .api_release(REGISTER_API, "phase", "register stage party")
        .api_release(ARRIVE_API, "phase", "signal stage phase")
        .api_acquire(AWAIT_ADVANCE_API, "phase", "wait for stage phase")
        .api_release(DEREGISTER_API, "phase", "drain stage party")
        # Late-registration guard.
        .api_release(SET_API, "signal", "registration published")
        .api_acquire(WAIT_ONE_API, "signal", "wait for registration")
        # Fork / join around stage workers.
        .api_release(THREAD_START_API, "fork_join", "launch new thread")
        .api_acquire(THREAD_JOIN_API, "fork_join", "wait for thread")
        .method_acquire(f"{PIPE}::<RunStage>b__produce", "fork_join",
                        "start of producer thread")
        .method_release(f"{PIPE}::<RunStage>b__produce", "fork_join",
                        "end of producer thread")
        .method_acquire(f"{PIPE}::<RunStage>b__consume", "fork_join",
                        "start of consumer thread")
        .method_release(f"{PIPE}::<RunStage>b__consume", "fork_join",
                        "end of consumer thread")
        .method_acquire(f"{PIPE}::<ElasticStage>b__0", "fork_join",
                        "start of elastic worker")
        .method_release(f"{PIPE}::<ElasticStage>b__0", "fork_join",
                        "end of elastic worker")
        .method_acquire(f"{PIPE}::<MeteredStage>b__0", "fork_join",
                        "start of metered worker")
        .method_release(f"{PIPE}::<MeteredStage>b__0", "fork_join",
                        "end of metered worker")
        .method_acquire(f"{PIPE}::<DrainStage>b__0", "fork_join",
                        "start of drain worker")
        .method_release(f"{PIPE}::<DrainStage>b__0", "fork_join",
                        "end of drain worker")
        # Planted races.
        .racy_field(f"{METER}::registrationLog")
        .racy_field(f"{METER}::drainCount")
        .protect_many(
            [f"{PIPE}::stageInput", f"{PIPE}::batchSize"],
            AWAIT_ADVANCE_API,
        )
        .protect(f"{PIPE}::stageOutput", THREAD_JOIN_API)
        .protect(f"{PIPE}::tickCount", AWAIT_ADVANCE_API)
        .build()
    )
    tests = [
        UnitTest(f"{TESTS}::Phased_Handoff", _test_phased_handoff),
        UnitTest(f"{TESTS}::Dynamic_Stage_Registration",
                 _test_dynamic_stage_registration),
        UnitTest(f"{TESTS}::Registration_Signal_Race",
                 _test_registration_signal_race),
        UnitTest(f"{TESTS}::Masked_Drain_Race", _test_masked_drain_race),
        UnitTest(f"{TESTS}::Sequential_Pipeline",
                 _test_sequential_pipeline),
    ]
    return Application(
        info=make_info("App-10", "PyPipeline", "7.6K", 58, 203),
        make_context=App10Context,
        tests=tests,
        ground_truth=gt,
    )


__all__ = ["build_app"]
