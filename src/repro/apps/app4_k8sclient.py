"""App-4: KubernetesClient (332.4K LoC, 395 stars, 139 tests).

Synchronization inventory mirrored from Table 9:

* ``k8s.ByteBuffer::endOfFile`` — the paper's Example B while-loop flag:
  Write releases, Read acquires; ``ByteBuffer::Read/Write/WriteEnd``
  Begins acquire around the buffer's await machinery.
* ``System.Threading.Monitor`` Enter/Exit around the buffer state.
* await-task pattern: ``KubernetesClientConfiguration::
  GetKubernetesClientConfiguration/MergeKubeConfig/LoadKubeConfigAsync``
  Ends release and Begins acquire;
  ``System.Runtime.CompilerServices.TaskAwaiter::GetResult`` acquires.
* ``k8s.KubernetesException::Status`` — error flag: Write releases,
  Read acquires.
"""

from __future__ import annotations

from ..sim.methods import Method
from ..sim.objects import SimObject
from ..sim.program import AppContext, Application, UnitTest
from ..sim.primitives import Monitor, SystemThread, Task
from ..sim.primitives.monitor import ENTER_API, EXIT_API
from ..sim.primitives.tasks import AWAITER_GETRESULT_API, TASK_RUN_API
from .base import GroundTruthBuilder, make_info, noise_call

BUFFER = "k8s.ByteBuffer"
CONFIG = "k8s.KubernetesClientConfiguration"
EXCEPTION = "k8s.KubernetesException"
YAML = "k8s.Yaml"
DEMUX = "k8s.StreamDemuxer"
TESTS = "k8s.Tests.KubernetesClientTests"


class App4Context(AppContext):
    def __init__(self, rt) -> None:
        super().__init__(SimObject(TESTS, {}))
        self.buffer = SimObject(
            BUFFER,
            {"endOfFile": False, "bytesWritten": 0, "readOffset": 0,
             "watermark": 0},
        )
        self.buffer_lock = Monitor("byte-buffer")
        self.config = SimObject(
            CONFIG,
            {"host": "", "token": "", "namespace": "", "contextName": "",
             "skipTls": False, "mergedFrom": ""},
        )
        self.error = SimObject(EXCEPTION, {"Status": ""})


# -- ByteBuffer: Example B -----------------------------------------------------------

def _buffer_write(rt, ctx, data_len, heterogeneous):
    def body(rt_, obj):
        yield from ctx.buffer_lock.enter(rt_)
        if heterogeneous:
            written = yield from rt_.read(obj, "bytesWritten")
            yield from rt_.write(obj, "bytesWritten", written + data_len)
            mark = yield from rt_.read(obj, "watermark")
            yield from rt_.write(obj, "watermark", max(mark, written))
        else:
            mark = yield from rt_.read(obj, "watermark")
            yield from rt_.write(obj, "watermark", mark + 1)
            written = yield from rt_.read(obj, "bytesWritten")
            yield from rt_.write(obj, "bytesWritten", written + data_len)
        yield from ctx.buffer_lock.exit(rt_)

    return rt.call(Method(f"{BUFFER}::Write", body), ctx.buffer)


def _buffer_write_end(rt, ctx):
    def body(rt_, obj):
        yield from rt_.write(obj, "endOfFile", True)

    return rt.call(Method(f"{BUFFER}::WriteEnd", body), ctx.buffer)


def _buffer_read(rt, ctx):
    def body(rt_, obj):
        # Example B: while (!this.endOfFile) { /* wait */ }
        while not (yield from rt_.read(obj, "endOfFile")):
            yield from rt_.sleep(0.015)
        total = yield from rt_.read(obj, "bytesWritten")
        offset = yield from rt_.read(obj, "readOffset")
        yield from rt_.write(obj, "readOffset", offset + total)
        return total

    return rt.call(Method(f"{BUFFER}::Read", body), ctx.buffer)


def _test_buffer_end_of_file(rt, ctx):
    def writer(rt_, obj):
        for k in range(3):
            yield from _buffer_write(rt_, ctx, 10 + k, heterogeneous=k % 2 == 0)
            pause = yield from rt_.rand()
            yield from rt_.sleep(0.04 + 0.04 * pause)
        yield from _buffer_write_end(rt_, ctx)

    def reader(rt_, obj):
        total = yield from _buffer_read(rt_, ctx)
        assert total == 33

    tw = SystemThread(Method(f"{DEMUX}::<CopyLoop>b__0", writer), name="w")
    tr = SystemThread(Method(f"{DEMUX}::<ReadLoop>b__0", reader), name="r")
    yield from tw.start(rt)
    yield from tr.start(rt)
    yield from tw.join(rt)
    yield from tr.join(rt)


def _test_buffer_concurrent_writers(rt, ctx):
    def writer(index):
        def body(rt_, obj):
            yield from rt_.sleep(0.02 * index)
            for k in range(2):
                yield from _buffer_write(
                    rt_, ctx, 5, heterogeneous=(index + k) % 2 == 0
                )
                pause = yield from rt_.rand()
                yield from rt_.sleep(0.05 + 0.04 * pause)

        return Method(f"{DEMUX}::<CopyLoop>b__{index}", body)

    threads = [
        SystemThread(writer(i), name=f"w{i}") for i in range(2)
    ]
    for t in threads:
        yield from t.start(rt)
    for t in threads:
        yield from t.join(rt)
    written = yield from rt.read(ctx.buffer, "bytesWritten")
    assert written == 20


# -- await-task configuration loading -------------------------------------------------

def _merge_kube_config(rt, ctx, source):
    def body(rt_, obj):
        host = yield from rt_.read(obj, "host")
        yield from rt_.write(obj, "mergedFrom", source)
        yield from rt_.write(obj, "contextName", f"ctx-{source}")
        yield from rt_.write(obj, "namespace", "default")
        yield from noise_call(rt_, "k8s.KubeConfigSerializer::Deserialize")
        yield from rt_.write(obj, "token", f"token-{source}")
        yield from rt_.write(obj, "host", host or f"https://{source}")

    return rt.call(Method(f"{CONFIG}::MergeKubeConfig", body), ctx.config)


def _load_kube_config_async(rt, ctx):
    def delegate_body(rt_, obj):
        yield from _merge_kube_config(rt_, ctx, "kubeconfig")
        yield from rt_.write(ctx.config, "skipTls", True)

    def body(rt_, obj):
        task = Task(
            Method(f"{CONFIG}::<LoadKubeConfigAsync>b__0", delegate_body),
            name="load",
        )
        yield from task.start(rt_)
        return task

    return rt.call(Method(f"{CONFIG}::LoadKubeConfigAsync", body), ctx.config)


def _test_get_configuration(rt, ctx):
    # GetKubernetesClientConfiguration awaits LoadKubeConfigAsync.
    def body(rt_, obj):
        task = yield from _load_kube_config_async(rt_, ctx)
        yield from rt_.sleep(0.02)
        yield from task.get_result(rt_)  # TaskAwaiter::GetResult
        host = yield from rt_.read(obj, "host")
        token = yield from rt_.read(obj, "token")
        ns = yield from rt_.read(obj, "namespace")
        skip = yield from rt_.read(obj, "skipTls")
        assert host and token and ns and skip
        return host

    host = yield from rt.call(
        Method(f"{CONFIG}::GetKubernetesClientConfiguration", body),
        ctx.config,
    )
    assert host.startswith("https://")


def _test_merge_concurrent(rt, ctx):
    # Two threads load configuration; the merge is awaited on both sides.
    def loader(index):
        def body(rt_, obj):
            yield from rt_.sleep(0.025 * index)
            task = yield from _load_kube_config_async(rt_, ctx)
            yield from task.get_result(rt_)
            name = yield from rt_.read(ctx.config, "contextName")
            merged = yield from rt_.read(ctx.config, "mergedFrom")
            assert name and merged

        return Method(f"{TESTS}::<LoadTwice>b__{index}", body)

    t1 = SystemThread(loader(0), name="l0")
    t2 = SystemThread(loader(1), name="l1")
    yield from t1.start(rt)
    yield from t2.start(rt)
    yield from t1.join(rt)
    yield from t2.join(rt)


def _test_exception_status_flag(rt, ctx):
    def watcher(rt_, obj):
        yield from noise_call(rt_, "k8s.Watcher::ProcessEvent")
        yield from rt_.write(ctx.config, "namespace", "kube-system")
        yield from rt_.write(ctx.config, "host", "https://fail")
        yield from rt_.write(ctx.error, "Status", "Failure")

    def observer(rt_, obj):
        while not (yield from rt_.read(ctx.error, "Status")):
            yield from rt_.sleep(0.015)
        ns = yield from rt_.read(ctx.config, "namespace")
        host = yield from rt_.read(ctx.config, "host")
        assert ns == "kube-system" and host == "https://fail"

    tw = SystemThread(Method(f"{TESTS}::<WatchLoop>b__0", watcher), name="w")
    to = SystemThread(Method(f"{TESTS}::<WatchObserver>b__0", observer), name="o")
    yield from tw.start(rt)
    yield from to.start(rt)
    yield from tw.join(rt)
    yield from to.join(rt)


def _test_yaml_sequential(rt, ctx):
    def body(rt_, obj):
        yield from noise_call(rt_, "k8s.KubeConfigSerializer::Deserialize")
        yield from rt_.write(ctx.config, "contextName", "yaml")

    yield from rt.call(Method(f"{YAML}::LoadFromString", body), ctx.config)
    name = yield from rt.read(ctx.config, "contextName")
    assert name == "yaml"


def build_app() -> Application:
    gt = (
        GroundTruthBuilder()
        .flag(f"{BUFFER}::endOfFile", "write flag: file is ready")
        .api_acquire(ENTER_API, "lock", "acquire a lock")
        .api_release(EXIT_API, "lock", "release a lock")
        .method_acquire(f"{BUFFER}::Read", "async", "await task beginning")
        .method_acquire(f"{BUFFER}::Write", "async", "await task beginning")
        .method_acquire(f"{BUFFER}::WriteEnd", "async", "await task beginning")
        .method_release(f"{BUFFER}::WriteEnd", "flag", "write flag: ready")
        .method_release(f"{CONFIG}::MergeKubeConfig", "async",
                        "end of await task")
        .method_acquire(f"{CONFIG}::MergeKubeConfig", "async",
                        "await task beginning")
        .method_release(f"{CONFIG}::LoadKubeConfigAsync", "async",
                        "end of await task")
        .method_release(f"{CONFIG}::GetKubernetesClientConfiguration",
                        "async", "end of await task")
        .method_acquire(f"{CONFIG}::GetKubernetesClientConfiguration",
                        "async", "await task beginning")
        .method_release(f"{CONFIG}::<LoadKubeConfigAsync>b__0", "async",
                        "end of await task")
        .method_acquire(f"{CONFIG}::<LoadKubeConfigAsync>b__0", "async",
                        "await task beginning")
        .api_acquire(AWAITER_GETRESULT_API, "async", "wait for an await task")
        .api_release(TASK_RUN_API, "fork_join", "create task")
        .flag(f"{EXCEPTION}::Status", "write flag: meet error")
        .method_release(f"{YAML}::LoadFromString", "async",
                        "end of await task")
        .method_acquire(f"{DEMUX}::<CopyLoop>b__0", "fork_join",
                        "start of thread")
        .method_release(f"{DEMUX}::<CopyLoop>b__0", "fork_join",
                        "end of thread")
        .method_acquire(f"{DEMUX}::<ReadLoop>b__0", "fork_join",
                        "start of thread")
        .protect_many(
            [f"{BUFFER}::bytesWritten", f"{BUFFER}::watermark"],
            EXIT_API,
        )
        .protect(f"{BUFFER}::readOffset", f"{BUFFER}::endOfFile")
        .protect_many(
            [f"{CONFIG}::host", f"{CONFIG}::token", f"{CONFIG}::namespace",
             f"{CONFIG}::contextName", f"{CONFIG}::skipTls",
             f"{CONFIG}::mergedFrom"],
            AWAITER_GETRESULT_API,
        )
        .build()
    )
    tests = [
        UnitTest(f"{TESTS}::Buffer_EndOfFile", _test_buffer_end_of_file),
        UnitTest(f"{TESTS}::Buffer_ConcurrentWriters", _test_buffer_concurrent_writers),
        UnitTest(f"{TESTS}::Get_Configuration", _test_get_configuration),
        UnitTest(f"{TESTS}::Merge_Concurrent", _test_merge_concurrent),
        UnitTest(f"{TESTS}::Exception_Status_Flag", _test_exception_status_flag),
        UnitTest(f"{TESTS}::Yaml_Sequential", _test_yaml_sequential),
    ]
    return Application(
        info=make_info("App-4", "K8s-client", "332.4K", 395, 139),
        make_context=App4Context,
        tests=tests,
        ground_truth=gt,
    )


__all__ = ["build_app"]
