"""App-3: FluentAssertions (78.1K LoC, 1886 stars, 3729 tests).

Synchronization inventory mirrored from Table 8:

* ``FluentAssertions.Execution.AssertionScope::.cctor`` End releases.
* ``System.Threading.Monitor`` Enter (acquire) / Exit (release) around the
  scope's shared state.
* ``System.Threading.Tasks.Task::Run`` End releases into the
  ``AssertionOptionsSpecs.When_concurrently_getting_equality_strategy.b2``
  and ``ExecutionTime::<.ctor>b__0`` task delegates.
* ``FluentAssertions.Specialized.ExecutionTime::<isRunning>`` — a flag:
  Write releases, Read acquires.
* Two genuine sync methods hidden by the instrumentation skip-heuristic
  (the paper's "Instr. Errors" false positives).
"""

from __future__ import annotations

from ..sim.methods import Method
from ..sim.objects import SimObject
from ..sim.program import AppContext, Application, UnitTest
from ..sim.primitives import Monitor, StaticClass, SystemThread, Task
from ..sim.primitives.monitor import ENTER_API, EXIT_API
from ..sim.primitives.tasks import TASK_RUN_API
from ..sim.thread import WaitSet
from .base import GroundTruthBuilder, make_info, noise_call

SCOPE = "FluentAssertions.Execution.AssertionScope"
EXECTIME = "FluentAssertions.Specialized.ExecutionTime"
SPECS = "AssertionOptionsSpecs.When_concurrently_getting_equality_strategy"
STRATEGY = "FluentAssertions.Equivalency.EquivalencyOptions"


class App3Context(AppContext):
    def __init__(self, rt) -> None:
        super().__init__(SimObject("FluentAssertions.Specs", {}))
        self.scope_static = StaticClass(
            SCOPE,
            Method(f"{SCOPE}::.cctor", _scope_cctor),
            current=None,
            defaultStrategy="",
        )
        self.scope_lock = Monitor("assertion-scope")
        self.scope = SimObject(
            SCOPE + "/State",
            {"reportables": "", "failures": 0, "contextData": ""},
        )
        self.exec_time = SimObject(
            EXECTIME, {"<isRunning>": False, "elapsed": 0, "actionLabel": ""}
        )
        # Hidden custom synchronization: completion latch whose method the
        # instrumentation heuristic wrongly skips.
        self.latch = SimObject(
            EXECTIME + "/Latch", {"completedAt": 0, "observedBy": ""}
        )
        self._latch_set = [False]
        self._latch_ws = WaitSet("exec-latch")


def _scope_cctor(rt, obj):
    yield from rt.write(obj, "defaultStrategy", "default")
    yield from rt.write(obj, "current", "root-scope")


def _get_current_scope(rt, ctx):
    def body(rt_, obj):
        yield from ctx.scope_static.ensure_initialized(rt_)
        current = yield from rt_.read(ctx.scope_static.obj, "current")
        strategy = yield from rt_.read(ctx.scope_static.obj, "defaultStrategy")
        return (current, strategy)

    return rt.call(Method(f"{SCOPE}::GetCurrentScope", body), ctx.scope_static.obj)


def _scope_worker(ctx, order):
    def body(rt, obj):
        for _ in range(3):
            yield from _get_current_scope(rt, ctx)
            yield from ctx.scope_lock.enter(rt)
            if order == 0:
                reportables = yield from rt.read(ctx.scope, "reportables")
                yield from rt.write(ctx.scope, "reportables", reportables + "r")
                failures = yield from rt.read(ctx.scope, "failures")
                yield from rt.write(ctx.scope, "failures", failures + 1)
            else:
                failures = yield from rt.read(ctx.scope, "failures")
                yield from rt.write(ctx.scope, "failures", failures + 1)
                data = yield from rt.read(ctx.scope, "contextData")
                yield from rt.write(ctx.scope, "contextData", data + "d")
                reportables = yield from rt.read(ctx.scope, "reportables")
                yield from rt.write(ctx.scope, "reportables", reportables + "x")
            yield from ctx.scope_lock.exit(rt)
            pause = yield from rt.rand()
            yield from rt.sleep(0.05 + 0.05 * pause)

    return Method(f"{SPECS}.b__{order + 2}", body)


def _test_concurrent_scopes(rt, ctx):
    t1 = yield from Task.run(rt, _scope_worker(ctx, 0), name="scope-0")
    yield from rt.sleep(0.04)
    t2 = yield from Task.run(rt, _scope_worker(ctx, 1), name="scope-1")
    yield from t1.wait(rt)
    yield from t2.wait(rt)
    failures = yield from rt.read(ctx.scope, "failures")
    assert failures == 6


def _test_execution_time(rt, ctx):
    # ExecutionTime: a monitored action flips <isRunning> when done; the
    # measuring thread spins on the flag (Table 8's flag variable).
    def action(rt_, obj):
        yield from rt_.write(ctx.exec_time, "actionLabel", "subject")
        yield from rt_.sleep(0.05)
        yield from rt_.write(ctx.exec_time, "elapsed", 50)
        yield from rt_.write(ctx.exec_time, "<isRunning>", False)

    yield from rt.write(ctx.exec_time, "<isRunning>", True)
    task = yield from Task.run(
        rt, Method(f"{EXECTIME}::<.ctor>b__0", action), name="exec"
    )
    while (yield from rt.read(ctx.exec_time, "<isRunning>")):
        yield from rt.sleep(0.012)
    elapsed = yield from rt.read(ctx.exec_time, "elapsed")
    label = yield from rt.read(ctx.exec_time, "actionLabel")
    assert elapsed == 50 and label == "subject"
    yield from task.wait(rt)


def _test_hidden_completion_latch(rt, ctx):
    # WaitForCompletion is a *real* synchronization method, but it is
    # marked compiler-generated-looking and the Observer's skip heuristic
    # drops its events: SherLock will blame a neighbouring operation.
    def complete_body(rt_, obj):
        yield from rt_.write(ctx.latch, "completedAt", 42)
        yield from rt_.write(ctx.latch, "observedBy", "worker")
        ctx._latch_set[0] = True
        rt_.notify_all(ctx._latch_ws)

    complete = Method(
        f"{EXECTIME}/Latch::<SignalCompletion>b__h", complete_body,
        hidden=True,
    )

    def wait_body(rt_, obj):
        while not ctx._latch_set[0]:
            yield from rt_.wait_on(ctx._latch_ws)

    wait_for = Method(
        f"{EXECTIME}/Latch::<WaitForCompletion>b__h", wait_body, hidden=True
    )

    def worker(rt_, obj):
        yield from rt_.sleep(0.03)
        yield from noise_call(rt_, "FluentAssertions.Common.Services::Log")
        yield from rt_.call(complete, ctx.latch)

    def observer(rt_, obj):
        yield from rt_.call(wait_for, ctx.latch)
        at = yield from rt_.read(ctx.latch, "completedAt")
        who = yield from rt_.read(ctx.latch, "observedBy")
        assert at == 42 and who == "worker"

    t1 = SystemThread(Method(f"{SPECS}.b__worker", worker), name="w")
    t2 = SystemThread(Method(f"{SPECS}.b__observer", observer), name="o")
    yield from t1.start(rt)
    yield from t2.start(rt)
    yield from t1.join(rt)
    yield from t2.join(rt)


def _test_sequential_assertions(rt, ctx):
    yield from _get_current_scope(rt, ctx)
    yield from noise_call(rt, "FluentAssertions.Common.Services::Log")
    yield from _get_current_scope(rt, ctx)


def build_app() -> Application:
    gt = (
        GroundTruthBuilder()
        .method_release(f"{SCOPE}::.cctor", "static_ctor",
                        "end of static constructor")
        .method_acquire(f"{SCOPE}::GetCurrentScope", "static_ctor",
                        "first access after static constructor")
        .api_acquire(ENTER_API, "lock", "acquire lock")
        .api_release(EXIT_API, "lock", "release lock")
        .api_release(TASK_RUN_API, "fork_join", "create new task")
        .method_acquire(f"{SPECS}.b__2", "fork_join", "start of task")
        .method_acquire(f"{SPECS}.b__3", "fork_join", "start of task")
        .method_release(f"{SPECS}.b__2", "fork_join", "end of task")
        .method_release(f"{SPECS}.b__3", "fork_join", "end of task")
        .method_acquire(f"{EXECTIME}::<.ctor>b__0", "fork_join",
                        "start of task")
        .method_release(f"{EXECTIME}::<.ctor>b__0", "fork_join",
                        "end of task")
        .flag(f"{EXECTIME}::<isRunning>", "execution flag")
        # Hidden (skip-heuristic) sync methods — expected misses.
        .method_release(f"{EXECTIME}/Latch::<SignalCompletion>b__h",
                        "custom", "completion latch signal")
        .method_acquire(f"{EXECTIME}/Latch::<WaitForCompletion>b__h",
                        "custom", "completion latch wait")
        .hidden_method(f"{EXECTIME}/Latch::<SignalCompletion>b__h")
        .hidden_method(f"{EXECTIME}/Latch::<WaitForCompletion>b__h")
        .protect_many(
            [f"{SCOPE}/State::reportables", f"{SCOPE}/State::failures",
             f"{SCOPE}/State::contextData"],
            EXIT_API,
        )
        .protect_many(
            [f"{SCOPE}::current", f"{SCOPE}::defaultStrategy"],
            f"{SCOPE}::.cctor",
        )
        .protect_many(
            [f"{EXECTIME}::elapsed", f"{EXECTIME}::actionLabel"],
            f"{EXECTIME}::<isRunning>",
        )
        .protect_many(
            [f"{EXECTIME}/Latch::completedAt", f"{EXECTIME}/Latch::observedBy"],
            f"{EXECTIME}/Latch::<SignalCompletion>b__h",
        )
        .build()
    )
    tests = [
        UnitTest("FluentAssertions.Specs::Concurrent_Scopes", _test_concurrent_scopes),
        UnitTest("FluentAssertions.Specs::ExecutionTime_Flag", _test_execution_time),
        UnitTest("FluentAssertions.Specs::Hidden_Completion_Latch", _test_hidden_completion_latch),
        UnitTest("FluentAssertions.Specs::Sequential_Assertions", _test_sequential_assertions),
    ]
    return Application(
        info=make_info("App-3", "FluentAssertion", "78.1K", 1886, 3729),
        make_context=App3Context,
        tests=tests,
        ground_truth=gt,
    )


__all__ = ["build_app"]
