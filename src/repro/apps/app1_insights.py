"""App-1: ApplicationInsights (67.5K LoC, 306 stars, 1193 tests).

The largest benchmark app.  Synchronization inventory mirrored from the
paper (Example E and Table 2's App-1 row — many syncs, 10 data-racy
misclassifications, 2 instrumentation errors, several Not-Sync FPs):

* The MSTest framework edge: ``TestInitialize`` End releases before every
  test method's Begin (inferred without any framework knowledge).
* ``System.Threading.Monitor`` Enter/Exit around the telemetry buffer.
* ``TaskFactory::StartNew`` / transmission delegates.
* An ``isSending`` flag variable.
* Three intentionally racy metric fields (Data-Racy misclassifications).
* Two genuine sync methods hidden by the instrumentation skip-heuristic.
"""

from __future__ import annotations

from ..sim.methods import Method
from ..sim.objects import SimObject
from ..sim.program import AppContext, Application, UnitTest
from ..sim.primitives import Monitor, SystemThread, TaskFactory
from ..sim.primitives.monitor import ENTER_API, EXIT_API
from ..sim.primitives.tasks import FACTORY_STARTNEW_API
from ..sim.thread import WaitSet
from .base import GroundTruthBuilder, make_info, noise_call

TESTS = "Microsoft.ApplicationInsights.Tests.TelemetryClientTests"
CONFIG = "Microsoft.ApplicationInsights.Extensibility.TelemetryConfiguration"
BUFFER = "Microsoft.ApplicationInsights.Channel.TelemetryBuffer"
SENDER = "Microsoft.ApplicationInsights.Channel.Transmitter"
METRICS = "Microsoft.ApplicationInsights.Metrics.MetricManager"

#: Configuration fields TestInitialize sets up (more fields than tests —
#: the regime in which per-test begins out-compete per-field reads).
CONFIG_FIELDS = (
    "instrumentationKey", "endpoint", "channelName", "samplingRate",
    "flushTimeout", "disableTelemetry", "sessionId", "roleName",
    "roleInstance", "retryPolicy", "quickPulse", "heartbeatInterval",
)


class App1Context(AppContext):
    def __init__(self, rt) -> None:
        super().__init__(SimObject(TESTS, {}))
        self.config = SimObject(
            CONFIG, {name: "" for name in CONFIG_FIELDS}
        )
        self.buffer = SimObject(
            BUFFER, {"items": 0, "capacity": 0, "lastItem": ""}
        )
        self.buffer_lock = Monitor("telemetry-buffer")
        self.sender = SimObject(
            SENDER,
            {"isSending": False, "sentCount": 0, "lastBatch": ""},
        )
        # Racy metric counters (no synchronization at all).
        self.metrics = SimObject(
            METRICS,
            {"aggregatedValue": 0, "metricSeries": "", "samplesSeen": 0},
        )
        # Hidden custom synchronization (instrumentation-error plant).
        self.flush_state = SimObject(
            SENDER + "/FlushState", {"flushedBatch": "", "flushCount": 0}
        )
        self._flush_done = [False]
        self._flush_ws = WaitSet("flush")


def _test_initialize_body(rt, obj, ctx):
    """TestInitialize: sets up the telemetry configuration (Example E)."""
    for index, name in enumerate(CONFIG_FIELDS):
        yield from rt.write(ctx.config, name, f"{name}-value-{index}")
    yield from noise_call(
        rt, "Microsoft.ApplicationInsights.TestFramework::Setup"
    )


def _framework_test(name, fields):
    """A test method whose body consumes a slice of the configuration."""

    def body(rt, ctx):
        for fieldname in fields:
            value = yield from rt.read(ctx.config, fieldname)
            assert value.startswith(fieldname)
        yield from noise_call(
            rt, "Microsoft.ApplicationInsights.TestFramework::Assert"
        )

    return UnitTest(f"{TESTS}::{name}", body)


# Each test consumes its own slice of the fixture (as real test suites
# do): per-field reads then amortize no better than per-test begins.
FRAMEWORK_TESTS = [
    ("BasicStartOperationWithActivity",
     ["instrumentationKey", "endpoint"]),
    ("TrackEventSendsTelemetry",
     ["channelName", "samplingRate"]),
    ("TrackMetricAggregates",
     ["flushTimeout", "disableTelemetry"]),
    ("TrackExceptionSerializes",
     ["sessionId", "roleName"]),
    ("TrackDependencyRecordsDuration",
     ["roleInstance", "retryPolicy"]),
    ("TrackPageViewUsesSession",
     ["quickPulse", "heartbeatInterval"]),
]


def _test_buffer_concurrent_enqueue(rt, ctx):
    def producer1(rt_, obj):
        for _ in range(3):
            yield from ctx.buffer_lock.enter(rt_)
            items = yield from rt_.read(ctx.buffer, "items")
            yield from rt_.write(ctx.buffer, "items", items + 1)
            yield from rt_.write(ctx.buffer, "lastItem", "event")
            yield from ctx.buffer_lock.exit(rt_)
            pause = yield from rt_.rand()
            yield from rt_.sleep(0.05 + 0.05 * pause)

    def producer2(rt_, obj):
        yield from rt_.sleep(0.04)
        for _ in range(3):
            yield from ctx.buffer_lock.enter(rt_)
            capacity = yield from rt_.read(ctx.buffer, "capacity")
            yield from rt_.write(ctx.buffer, "capacity", capacity + 2)
            items = yield from rt_.read(ctx.buffer, "items")
            yield from rt_.write(ctx.buffer, "items", items + 1)
            yield from ctx.buffer_lock.exit(rt_)
            pause = yield from rt_.rand()
            yield from rt_.sleep(0.05 + 0.05 * pause)

    t1 = SystemThread(Method(f"{BUFFER}::<Enqueue>b__0", producer1), name="p1")
    t2 = SystemThread(Method(f"{BUFFER}::<Enqueue>b__1", producer2), name="p2")
    yield from t1.start(rt)
    yield from t2.start(rt)
    yield from t1.join(rt)
    yield from t2.join(rt)
    items = yield from rt.read(ctx.buffer, "items")
    assert items == 6


def _test_transmission_flag(rt, ctx):
    def send_loop(rt_, obj):
        batch = yield from rt_.read(ctx.sender, "lastBatch")
        yield from rt_.write(ctx.sender, "sentCount", 1)
        yield from rt_.write(ctx.sender, "lastBatch", batch + "|sent")
        yield from rt_.write(ctx.sender, "isSending", False)

    yield from rt.write(ctx.sender, "lastBatch", "batch-1")
    yield from rt.write(ctx.sender, "isSending", True)
    task = yield from TaskFactory.start_new(
        rt, Method(f"{SENDER}::<SendAsync>b__0", send_loop), name="send"
    )
    while (yield from rt.read(ctx.sender, "isSending")):
        yield from rt.sleep(0.012)
    count = yield from rt.read(ctx.sender, "sentCount")
    batch = yield from rt.read(ctx.sender, "lastBatch")
    assert count == 1 and batch.endswith("|sent")
    yield from task.wait(rt)


def _test_racy_metrics(rt, ctx):
    # Unsynchronized metric aggregation: true data races the paper's
    # Data-Racy misclassification category captures.
    def aggregator(rt_, obj):
        value = yield from rt_.read(ctx.metrics, "aggregatedValue")
        yield from rt_.write(ctx.metrics, "aggregatedValue", value + 10)
        yield from rt_.write(ctx.metrics, "metricSeries", "cpu|mem")

    def sampler(rt_, obj):
        while not (yield from rt_.read(ctx.metrics, "metricSeries")):
            yield from rt_.sleep(0.014)
        value = yield from rt_.read(ctx.metrics, "aggregatedValue")
        seen = yield from rt_.read(ctx.metrics, "samplesSeen")
        yield from rt_.write(ctx.metrics, "samplesSeen", seen + 1)
        assert value >= 10

    t1 = SystemThread(Method(f"{METRICS}::<Aggregate>b__0", aggregator), name="a")
    t2 = SystemThread(Method(f"{METRICS}::<Sample>b__0", sampler), name="s")
    yield from t1.start(rt)
    yield from t2.start(rt)
    yield from t1.join(rt)
    yield from t2.join(rt)


def _test_hidden_flush_latch(rt, ctx):
    # FlushAndWait is genuine synchronization hidden by the skip
    # heuristic — the Instr.-Errors false-positive plant.
    def flush_body(rt_, obj):
        yield from rt_.write(ctx.flush_state, "flushedBatch", "b-7")
        yield from rt_.write(ctx.flush_state, "flushCount", 7)
        ctx._flush_done[0] = True
        rt_.notify_all(ctx._flush_ws)

    flush = Method(
        f"{SENDER}/FlushState::<Flush>b__h", flush_body, hidden=True
    )

    def wait_body(rt_, obj):
        while not ctx._flush_done[0]:
            yield from rt_.wait_on(ctx._flush_ws)

    wait_flush = Method(
        f"{SENDER}/FlushState::<WaitFlush>b__h", wait_body, hidden=True
    )

    def flusher(rt_, obj):
        yield from rt_.sleep(0.03)
        yield from noise_call(
            rt_, "Microsoft.ApplicationInsights.TestFramework::Assert"
        )
        yield from rt_.call(flush, ctx.flush_state)

    def waiter(rt_, obj):
        yield from rt_.call(wait_flush, ctx.flush_state)
        batch = yield from rt_.read(ctx.flush_state, "flushedBatch")
        count = yield from rt_.read(ctx.flush_state, "flushCount")
        assert batch == "b-7" and count == 7

    t1 = SystemThread(Method(f"{SENDER}::<FlushWorker>b__0", flusher), name="f")
    t2 = SystemThread(Method(f"{SENDER}::<FlushWaiter>b__0", waiter), name="w")
    yield from t1.start(rt)
    yield from t2.start(rt)
    yield from t1.join(rt)
    yield from t2.join(rt)


def _test_sequential_configuration(rt, ctx):
    key = yield from rt.read(ctx.config, "instrumentationKey")
    yield from noise_call(
        rt, "Microsoft.ApplicationInsights.TestFramework::Assert"
    )
    assert key


def build_app() -> Application:
    builder = (
        GroundTruthBuilder()
        .method_release(f"{TESTS}::TestInitialize", "framework",
                        "runs before every test")
        .api_acquire(ENTER_API, "lock", "acquire lock")
        .api_release(EXIT_API, "lock", "release lock")
        .api_release(FACTORY_STARTNEW_API, "fork_join", "create new task")
        .flag(f"{SENDER}::isSending", "sending flag")
        .method_acquire(f"{SENDER}::<SendAsync>b__0", "fork_join",
                        "start of task")
        .method_release(f"{SENDER}::<SendAsync>b__0", "fork_join",
                        "end of task")
        .method_acquire(f"{BUFFER}::<Enqueue>b__0", "fork_join",
                        "start of thread")
        .method_acquire(f"{BUFFER}::<Enqueue>b__1", "fork_join",
                        "start of thread")
        .method_release(f"{BUFFER}::<Enqueue>b__0", "fork_join",
                        "end of thread")
        .method_release(f"{BUFFER}::<Enqueue>b__1", "fork_join",
                        "end of thread")
        # Hidden genuine syncs (Instr. Errors).
        .method_release(f"{SENDER}/FlushState::<Flush>b__h", "custom",
                        "flush latch signal")
        .method_acquire(f"{SENDER}/FlushState::<WaitFlush>b__h", "custom",
                        "flush latch wait")
        .hidden_method(f"{SENDER}/FlushState::<Flush>b__h")
        .hidden_method(f"{SENDER}/FlushState::<WaitFlush>b__h")
        .racy_field(f"{METRICS}::aggregatedValue")
        .racy_field(f"{METRICS}::metricSeries")
        .racy_field(f"{METRICS}::samplesSeen")
        .protect_many(
            [f"{CONFIG}::{f}" for f in CONFIG_FIELDS],
            f"{TESTS}::TestInitialize",
        )
        .protect_many(
            [f"{BUFFER}::items", f"{BUFFER}::capacity",
             f"{BUFFER}::lastItem"],
            EXIT_API,
        )
        .protect_many(
            [f"{SENDER}::sentCount", f"{SENDER}::lastBatch"],
            f"{SENDER}::isSending",
        )
        .protect_many(
            [f"{SENDER}/FlushState::flushedBatch",
             f"{SENDER}/FlushState::flushCount"],
            f"{SENDER}/FlushState::<Flush>b__h",
        )
    )
    # Every framework test's Begin is a true acquire (Example E).
    for name, _fields in FRAMEWORK_TESTS:
        builder.method_acquire(
            f"{TESTS}::{name}", "framework", "test begin after TestInitialize"
        )
    gt = builder.build()

    tests = [_framework_test(name, fields) for name, fields in FRAMEWORK_TESTS]
    tests += [
        UnitTest(f"{TESTS}::Buffer_ConcurrentEnqueue", _test_buffer_concurrent_enqueue),
        UnitTest(f"{TESTS}::Transmission_Flag", _test_transmission_flag),
        UnitTest(f"{TESTS}::Racy_Metrics", _test_racy_metrics),
        UnitTest(f"{TESTS}::Hidden_Flush_Latch", _test_hidden_flush_latch),
        UnitTest(f"{TESTS}::Sequential_Configuration", _test_sequential_configuration),
    ]
    test_initialize = Method(
        f"{TESTS}::TestInitialize",
        lambda rt, obj, ctx=None: _test_initialize_body(rt, obj, CTX_BOX[0]),
    )
    app = Application(
        info=make_info("App-1", "ApplicationInsights", "67.5K", 306, 1193),
        make_context=lambda rt: _make_context(rt),
        tests=tests,
        ground_truth=gt,
        test_initialize=test_initialize,
    )
    return app


#: The TestInitialize body needs the per-execution context.
CTX_BOX = [None]


def _make_context(rt) -> App1Context:
    ctx = App1Context(rt)
    CTX_BOX[0] = ctx
    return ctx


__all__ = ["build_app"]
