"""App-7: Statsd (2.3K LoC, 125 stars, 34 tests).

Synchronization inventory mirrored from the paper (Example A, Example D,
Table 2 row: 19 syncs, 4 data-racy misclassifications = 2 race pairs):

* ``DataflowBlock::Post`` releases into ``MessageHandler`` Begin;
  ``MessageHandler`` End releases into ``DataflowBlock::Receive`` Begin.
* ``Task::ContinueWith``: the antecedent action's End releases into the
  continuation action's Begin (Example D).
* ``Task::Start`` / ``Task::Wait`` fork-join around the pipeline driver.
* Two intentionally racy counter fields (``statsSent``, ``lastError``) —
  unsynchronized cross-thread accesses that SherLock misclassifies as
  flag synchronizations (the paper's "Data Racy" category).
"""

from __future__ import annotations

from ..sim.methods import Method
from ..sim.objects import SimObject
from ..sim.program import AppContext, Application, UnitTest
from ..sim.primitives import DataflowBlock, SimList, Task
from ..sim.primitives.dataflow import POST_API, RECEIVE_API
from ..sim.primitives.tasks import TASK_CONTINUE_API, TASK_START_API, TASK_WAIT_API
from .base import GroundTruthBuilder, make_info, noise_call

PARSER = "Statsd.MessageParser"
METRICS = "Statsd.Metrics"
UDP = "Statsd.UdpListener"
TESTS = "Statsd.Tests.MetricsTests"


class App7Context(AppContext):
    def __init__(self, rt) -> None:
        super().__init__(SimObject(TESTS, {}))
        self.metrics = SimObject(
            METRICS,
            {
                "counterName": "",
                "counterValue": 0,
                "sampleRate": 1.0,
                "tags": "",
                "flushInterval": 0,
                # Intentionally racy fields (no synchronization at all):
                "statsSent": 0,
                "lastError": "",
            },
        )
        self.parsed = SimObject(
            PARSER, {"parsedCount": 0, "lastMetric": ""}
        )
        # Thread-unsafe collection exercised through the dataflow ordering
        # (gives the TSVD baseline conflicting API-call pairs to reason
        # about).
        self.batch = SimList("metric-batch")
        # Send pipeline state (ContinueWith tests only).
        self.sender = SimObject(
            UDP + "/SendState",
            {"sendBuffer": "", "sendCount": 0, "flushed": False,
             "flushLog": ""},
        )
        # Listener state (fork-join driver tests only).
        self.listener = SimObject(
            UDP + "/ListenState", {"listenFailures": 0, "listenStatus": ""}
        )


def _message_handler(ctx):
    def body(rt, obj, message):
        # Parse the message: the configuration is consulted once per token,
        # so these popular reads recur within any window (and make handler
        # durations message-dependent).
        tokens = 2 + (int(message) % 3)
        for _ in range(tokens):
            name = yield from rt.read(ctx.metrics, "counterName")
            rate = yield from rt.read(ctx.metrics, "sampleRate")
            tags = yield from rt.read(ctx.metrics, "tags")
        # Racy bookkeeping (the bug the paper's category captures).
        sent = yield from rt.read(ctx.metrics, "statsSent")
        yield from rt.write(ctx.metrics, "statsSent", sent + 1)
        yield from ctx.batch.add(rt, message)
        count = yield from rt.read(ctx.parsed, "parsedCount")
        if int(message) % 2:
            yield from rt.write(ctx.parsed, "parsedCount", count + 1)
            yield from rt.write(ctx.parsed, "lastMetric", f"{name}:{message}")
        else:
            yield from rt.write(ctx.parsed, "lastMetric", f"{name}:{message}")
            yield from rt.write(ctx.parsed, "parsedCount", count + 1)
        return f"{name}:{message}|@{rate}|#{tags}"

    return Method(f"{PARSER}::MessageHandler", body)


def _test_post_receive(rt, ctx):
    yield from rt.write(ctx.metrics, "counterName", "requests")
    yield from rt.write(ctx.metrics, "sampleRate", 0.5)
    yield from rt.write(ctx.metrics, "tags", "env:test")
    block = DataflowBlock(_message_handler(ctx), "parser")
    for i in range(3):
        yield from block.post(rt, i)
        yield from rt.sleep(0.02)
        result = yield from block.receive(rt)
        assert result.startswith("requests")
        assert (yield from ctx.batch.contains(rt, i))
        last = yield from rt.read(ctx.parsed, "lastMetric")
        count = yield from rt.read(ctx.parsed, "parsedCount")
        assert last and count == i + 1
        yield from rt.sleep(0.03)
    block.complete(rt)


def _test_post_burst(rt, ctx):
    yield from rt.write(ctx.metrics, "sampleRate", 1.0)
    yield from rt.write(ctx.metrics, "tags", "env:burst")
    yield from rt.write(ctx.metrics, "counterName", "burst")
    block = DataflowBlock(_message_handler(ctx), "parser")
    for i in range(4):
        yield from block.post(rt, i * 10)
        yield from rt.sleep(0.01)
    for i in range(4):
        result = yield from block.receive(rt)
        assert "burst" in result
    count = yield from rt.read(ctx.parsed, "parsedCount")
    last = yield from rt.read(ctx.parsed, "lastMetric")
    assert count == 4 and last
    block.complete(rt)


def _continue_actions(ctx):
    def a1_body(rt, obj):
        for _ in range(2):
            name = yield from rt.read(ctx.metrics, "counterName")
            value = yield from rt.read(ctx.metrics, "counterValue")
            interval = yield from rt.read(ctx.metrics, "flushInterval")
        yield from rt.write(ctx.sender, "sendBuffer", f"{name}={value}")
        yield from rt.write(ctx.sender, "sendCount", 1)
        yield from rt.sleep(0.02)

    def a2_body(rt, obj):
        # Runs strictly after a1 via ContinueWith.
        count = yield from rt.read(ctx.sender, "sendCount")
        buffer = yield from rt.read(ctx.sender, "sendBuffer")
        assert buffer and count == 1
        yield from rt.write(ctx.sender, "flushLog", buffer)
        yield from rt.write(ctx.sender, "flushed", True)
        # Racy error reporting.
        yield from rt.write(ctx.metrics, "lastError", "")

    return (
        Method(f"{UDP}::<SendAsync>b__a1", a1_body),
        Method(f"{UDP}::<SendAsync>b__a2", a2_body),
    )


def _test_continue_with(rt, ctx):
    yield from rt.write(ctx.metrics, "counterName", "flush")
    yield from rt.write(ctx.metrics, "counterValue", 7)
    yield from rt.write(ctx.metrics, "flushInterval", 10)
    a1, a2 = _continue_actions(ctx)
    task = Task(a1, name="send")
    continuation = yield from task.continue_with(rt, a2)
    yield from task.start(rt)
    # Racy read while the pipeline may still run:
    err = yield from rt.read(ctx.metrics, "lastError")
    sent = yield from rt.read(ctx.metrics, "statsSent")
    while not continuation.completed:
        yield from rt.sleep(0.01)
    log = yield from rt.read(ctx.sender, "flushLog")
    flushed = yield from rt.read(ctx.sender, "flushed")
    assert flushed and log
    yield from noise_call(rt, "Statsd.Logger::Debug")


def _test_pipeline_fork_join(rt, ctx):
    yield from rt.write(ctx.metrics, "counterValue", 3)
    yield from rt.write(ctx.metrics, "flushInterval", 5)
    yield from rt.write(ctx.metrics, "counterName", "pipeline")

    def driver_body(rt_, obj):
        spins = yield from rt_.rand()
        for _ in range(2 + int(spins * 2)):
            value = yield from rt_.read(ctx.metrics, "counterValue")
            interval = yield from rt_.read(ctx.metrics, "flushInterval")
            name = yield from rt_.read(ctx.metrics, "counterName")
            assert name and interval
            yield from rt_.sleep(0.03)
        yield from rt_.write(ctx.listener, "listenFailures", 0)
        yield from rt_.write(ctx.listener, "listenStatus", f"{name}={value}")

    task = Task(Method(f"{UDP}::<Listen>b__0", driver_body), name="driver")
    yield from task.start(rt)
    yield from rt.sleep(0.02)
    yield from task.wait(rt)
    failures = yield from rt.read(ctx.listener, "listenFailures")
    status = yield from rt.read(ctx.listener, "listenStatus")
    assert failures == 0 and status


def _test_racy_stats_flag(rt, ctx):
    # A non-volatile "ready" flag: dynamically it looks exactly like a
    # flag synchronization, but it is a data race (missing volatile) —
    # the paper's "Data Racy" misclassification source.

    def publisher(rt_, obj):
        sent = yield from rt_.read(ctx.metrics, "statsSent")
        yield from rt_.write(ctx.metrics, "statsSent", sent + 5)
        yield from rt_.write(ctx.metrics, "lastError", "none")

    def poller(rt_, obj):
        while True:
            err = yield from rt_.read(ctx.metrics, "lastError")
            if err:
                break
            yield from rt_.sleep(0.015)
        sent = yield from rt_.read(ctx.metrics, "statsSent")
        assert sent >= 5

    from ..sim.primitives import SystemThread

    t1 = SystemThread(
        Method(f"{TESTS}::<RacyStats>b__pub", publisher), name="pub"
    )
    t2 = SystemThread(
        Method(f"{TESTS}::<RacyStats>b__poll", poller), name="poll"
    )
    yield from t1.start(rt)
    yield from t2.start(rt)
    yield from t1.join(rt)
    yield from t2.join(rt)


def _test_sequential_parse(rt, ctx):
    yield from rt.write(ctx.metrics, "counterName", "solo")
    yield from noise_call(rt, "Statsd.Logger::Debug")
    name = yield from rt.read(ctx.metrics, "counterName")
    assert name == "solo"


def build_app() -> Application:
    gt = (
        GroundTruthBuilder()
        .api_release(POST_API, "async", "post message to block")
        .api_acquire(RECEIVE_API, "async", "receive handler result")
        .method_acquire(
            f"{PARSER}::MessageHandler", "async", "start of message handler"
        )
        .method_release(
            f"{PARSER}::MessageHandler", "async", "end of message handler"
        )
        .method_release(f"{UDP}::<SendAsync>b__a1", "async", "end of action a1")
        .method_acquire(
            f"{UDP}::<SendAsync>b__a1", "fork_join", "start of send action"
        )
        .method_acquire(
            f"{UDP}::<SendAsync>b__a2", "async", "start of continuation a2"
        )
        .method_release(
            f"{UDP}::<SendAsync>b__a2", "async", "end of continuation a2"
        )
        .api_release(TASK_START_API, "fork_join", "create new task")
        .api_acquire(TASK_WAIT_API, "fork_join", "wait for task")
        .method_acquire(f"{UDP}::<Listen>b__0", "fork_join", "start of task")
        .method_release(f"{UDP}::<Listen>b__0", "fork_join", "end of task")
        .racy_field(f"{METRICS}::statsSent")
        .racy_field(f"{METRICS}::lastError")
        .protect_many(
            [
                f"{METRICS}::counterName",
                f"{METRICS}::sampleRate",
                f"{METRICS}::tags",
            ],
            POST_API,
        )
        .protect_many(
            [f"{PARSER}::parsedCount", f"{PARSER}::lastMetric"],
            RECEIVE_API,
        )
        .protect_many(
            [f"{UDP}/SendState::sendBuffer", f"{UDP}/SendState::sendCount"],
            TASK_CONTINUE_API,
        )
        .protect_many(
            [f"{UDP}/SendState::flushed", f"{UDP}/SendState::flushLog"],
            TASK_CONTINUE_API,
        )
        .protect_many(
            [
                f"{UDP}/ListenState::listenFailures",
                f"{UDP}/ListenState::listenStatus",
            ],
            TASK_WAIT_API,
        )
        .protect(f"{METRICS}::counterValue", TASK_START_API)
        .protect(f"{METRICS}::flushInterval", TASK_START_API)
        .build()
    )
    tests = [
        UnitTest(f"{TESTS}::Post_Receive_RoundTrip", _test_post_receive),
        UnitTest(f"{TESTS}::Post_Burst", _test_post_burst),
        UnitTest(f"{TESTS}::ContinueWith_Pipeline", _test_continue_with),
        UnitTest(f"{TESTS}::Pipeline_ForkJoin", _test_pipeline_fork_join),
        UnitTest(f"{TESTS}::Racy_Stats_Flag", _test_racy_stats_flag),
        UnitTest(f"{TESTS}::Sequential_Parse", _test_sequential_parse),
    ]
    return Application(
        info=make_info("App-7", "Stastd", "2.3K", 125, 34),
        make_context=App7Context,
        tests=tests,
        ground_truth=gt,
    )


__all__ = ["build_app"]
