"""Benchmark application registry (Table 1)."""

from __future__ import annotations

from typing import List

from ..sim.program import Application
from . import (
    app1_insights,
    app2_datetime,
    app3_fluentassertions,
    app4_k8sclient,
    app5_radical,
    app6_restsharp,
    app7_statsd,
    app8_linqdynamic,
)

_BUILDERS = {
    "App-1": app1_insights.build_app,
    "App-2": app2_datetime.build_app,
    "App-3": app3_fluentassertions.build_app,
    "App-4": app4_k8sclient.build_app,
    "App-5": app5_radical.build_app,
    "App-6": app6_restsharp.build_app,
    "App-7": app7_statsd.build_app,
    "App-8": app8_linqdynamic.build_app,
}


#: Module-style aliases ("app7_statsd", "app7", "app-7") → canonical id.
_ALIASES = {
    alias: app_id
    for app_id, module in (
        ("App-1", app1_insights),
        ("App-2", app2_datetime),
        ("App-3", app3_fluentassertions),
        ("App-4", app4_k8sclient),
        ("App-5", app5_radical),
        ("App-6", app6_restsharp),
        ("App-7", app7_statsd),
        ("App-8", app8_linqdynamic),
    )
    for alias in (
        module.__name__.rsplit(".", 1)[-1],  # app7_statsd
        app_id.lower(),                      # app-7
        app_id.lower().replace("-", ""),     # app7
    )
}


def app_ids() -> List[str]:
    return list(_BUILDERS)


def resolve_app_id(app_id: str) -> str:
    """Canonical id for an app id or alias (raises KeyError when unknown)."""
    if app_id in _BUILDERS:
        return app_id
    canonical = _ALIASES.get(app_id.lower())
    if canonical is None:
        raise KeyError(
            f"unknown application {app_id!r}; known: {sorted(_BUILDERS)} "
            f"(module aliases like 'app7_statsd' also work)"
        )
    return canonical


def get_application(app_id: str) -> Application:
    """Build a fresh instance of one benchmark application."""
    return _BUILDERS[resolve_app_id(app_id)]()


def all_applications() -> List[Application]:
    """Build all 8 benchmark applications (fresh instances)."""
    return [build() for build in _BUILDERS.values()]


__all__ = [
    "all_applications",
    "app_ids",
    "get_application",
    "resolve_app_id",
]
