"""Benchmark application registry (Table 1 + the synthetic scale tier)."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim.program import Application
from . import (
    app1_insights,
    app2_datetime,
    app3_fluentassertions,
    app4_k8sclient,
    app5_radical,
    app6_restsharp,
    app7_statsd,
    app8_linqdynamic,
    app9_registry,
    app10_pipeline,
    synth,
)

#: The paper's 8 benchmark apps.  ``app_ids()``/``all_applications()``
#: cover exactly these — golden hashes, the determinism audit, and the
#: e2e differential suites all quantify over "the 8 apps".
_BUILDERS: Dict[str, Callable[[], Application]] = {
    "App-1": app1_insights.build_app,
    "App-2": app2_datetime.build_app,
    "App-3": app3_fluentassertions.build_app,
    "App-4": app4_k8sclient.build_app,
    "App-5": app5_radical.build_app,
    "App-6": app6_restsharp.build_app,
    "App-7": app7_statsd.build_app,
    "App-8": app8_linqdynamic.build_app,
}

#: The family tier (App-9, App-10): phaser-centric apps grown beyond the
#: paper's Table 1.  They get the full lockdown treatment (golden
#: hashes, fuzz, predict/convert) via ``family_app_ids()``, but stay out
#: of ``app_ids()`` so suites quantifying over "the 8 paper apps" keep
#: their meaning.
_FAMILY_BUILDERS: Dict[str, Callable[[], Application]] = {
    "App-9": app9_registry.build_app,
    "App-10": app10_pipeline.build_app,
}

#: Synthetic large apps (App-XL1..XL3): opt-in via explicit id — never
#: part of the default iteration, their traces are ~20x the paper apps'.
_SCALE_BUILDERS: Dict[str, Callable[[], Application]] = {
    app_id: (lambda _id=app_id: synth.build_synth_app(synth.SCALE_SPECS[_id]))
    for app_id in synth.SCALE_SPECS
}

#: Aliases (lowercase) → canonical id, e.g. "app-7"/"app7"/"app7_statsd"
#: → "App-7" and "app-xl1"/"appxl1" → "App-XL1".
_ALIASES: Dict[str, str] = {}


def _register_aliases(app_id: str, *extra: str) -> None:
    for alias in (app_id.lower(), app_id.lower().replace("-", ""), *extra):
        existing = _ALIASES.setdefault(alias.lower(), app_id)
        if existing != app_id:
            raise ValueError(
                f"alias {alias!r} of {app_id!r} already bound to {existing!r}"
            )


for _app_id, _module in (
    ("App-1", app1_insights),
    ("App-2", app2_datetime),
    ("App-3", app3_fluentassertions),
    ("App-4", app4_k8sclient),
    ("App-5", app5_radical),
    ("App-6", app6_restsharp),
    ("App-7", app7_statsd),
    ("App-8", app8_linqdynamic),
    ("App-9", app9_registry),
    ("App-10", app10_pipeline),
):
    _register_aliases(_app_id, _module.__name__.rsplit(".", 1)[-1])
for _app_id in _SCALE_BUILDERS:
    _register_aliases(_app_id)
del _app_id, _module


def app_ids() -> List[str]:
    """The 8 paper-app ids (the default corpus)."""
    return list(_BUILDERS)


def family_app_ids() -> List[str]:
    """The grown family-tier ids (App-9, App-10)."""
    return list(_FAMILY_BUILDERS)


def scale_app_ids() -> List[str]:
    """The synthetic scale-tier ids, smallest first."""
    return list(_SCALE_BUILDERS)


def _builder(app_id: str) -> Optional[Callable[[], Application]]:
    return (
        _BUILDERS.get(app_id)
        or _FAMILY_BUILDERS.get(app_id)
        or _SCALE_BUILDERS.get(app_id)
    )


def resolve_app_id(app_id: str) -> str:
    """Canonical id for an app id or alias (raises KeyError when unknown)."""
    if _builder(app_id) is not None:
        return app_id
    canonical = _ALIASES.get(app_id.lower())
    if canonical is None:
        known = (
            sorted(_BUILDERS) + sorted(_FAMILY_BUILDERS) + sorted(_SCALE_BUILDERS)
        )
        raise KeyError(
            f"unknown application {app_id!r}; known: {known} "
            f"(aliases like 'app7_statsd' or 'app-xl1' also work)"
        )
    return canonical


def get_application(app_id: str) -> Application:
    """Build a fresh instance of one registered application."""
    return _builder(resolve_app_id(app_id))()


def all_applications() -> List[Application]:
    """Build all 8 paper benchmark applications (fresh instances)."""
    return [build() for build in _BUILDERS.values()]


__all__ = [
    "all_applications",
    "app_ids",
    "family_app_ids",
    "get_application",
    "resolve_app_id",
    "scale_app_ids",
]
