"""App-5: Radical (95.9K LoC, 33 stars, 798 tests).

Synchronization inventory mirrored from Table 8:

* Finalizer / dispose edges: the end of the last-access method
  (``Entity::EnsureNotDisposed``, ``Assert::IsTrue``) releases; the begin
  of ``Entity::Finalize`` / ``ChangeTrackingService::Finalize`` /
  ``TestMetadata::Dispose`` acquires (language-enforced GC ordering).
* ``MessageBroker``: ``<SubscribeCore>`` End releases into
  ``<Broadcast>`` Begin (the broker delivers only to registered
  subscribers).
* ``System.Threading.Thread::Start`` / ``TaskFactory::StartNew`` fork
  edges into the test-runner delegates; ``WaitHandle::WaitAll`` joins
  multiple broadcast threads (the n-to-1 acquire).
* Two intentionally racy fields (the paper's Data-Racy category) and a
  dispose case whose window SherLock cannot refine (the "Dispose" FP
  class — GC runs much later and delay injection cannot control it).
"""

from __future__ import annotations

from ..sim.methods import Method
from ..sim.objects import SimObject
from ..sim.program import AppContext, Application, UnitTest
from ..sim.primitives import (
    EventWaitHandle,
    SystemThread,
    TaskFactory,
    drop_last_reference,
    wait_all,
)
from ..sim.primitives.events import SET_API, WAIT_ALL_API
from ..sim.primitives.tasks import FACTORY_STARTNEW_API, THREAD_START_API
from ..sim.thread import WaitSet
from .base import GroundTruthBuilder, make_info, noise_call

ENTITY = "Radical.Model.Entity"
TRACKER = "Radical.ChangeTracking.ChangeTrackingService"
BROKER = "Radical.Messaging.MessageBroker"
BTESTS = "Radical.Messaging.MessageBrokerTests"
ASSERT = "Microsoft.VisualStudio.TestTools.UnitTesting.Assert"
METADATA = "Radical.Tests.Model.Entity.EntityTests/TestMetadata"


class App5Context(AppContext):
    def __init__(self, rt) -> None:
        super().__init__(SimObject("Radical.Tests", {}))
        self.broker = SimObject(
            BROKER,
            {"subscriberName": "", "subscriberTopic": "", "queueDepth": 0,
             "delivered": 0, "lastPayload": ""},
        )
        self._subscribers = []
        self._broker_ws = WaitSet("broker")
        # Racy counters (no synchronization by design).
        self.stats = SimObject(
            BROKER + "/Stats", {"dispatchCount": 0, "dispatchTag": ""}
        )


# -- finalizer / dispose patterns ------------------------------------------------

def _test_entity_finalizer(rt, ctx):
    entity = SimObject(
        ENTITY, {"isDisposed": False, "changeLog": "", "snapshot": ""}
    )

    def finalize_body(rt_, obj):
        log = yield from rt_.read(obj, "changeLog")
        snap = yield from rt_.read(obj, "snapshot")
        yield from rt_.write(obj, "isDisposed", True)
        assert log and snap

    finalize = Method(f"{ENTITY}::Finalize", finalize_body)

    def ensure_body(rt_, obj):
        disposed = yield from rt_.read(obj, "isDisposed")
        assert not disposed
        yield from rt_.write(obj, "changeLog", "created,modified")
        yield from rt_.write(obj, "snapshot", "v1")
        drop_last_reference(rt_, obj, finalize)

    yield from rt.call(Method(f"{ENTITY}::EnsureNotDisposed", ensure_body), entity)
    yield from noise_call(rt, "Radical.ComponentModel::Validate")
    yield from rt.sleep(0.4)  # test keeps running while GC finalizes


def _test_tracker_finalizer(rt, ctx):
    tracker = SimObject(
        TRACKER, {"trackedCount": 0, "rejectLog": "", "closed": False}
    )

    def finalize_body(rt_, obj):
        count = yield from rt_.read(obj, "trackedCount")
        log = yield from rt_.read(obj, "rejectLog")
        yield from rt_.write(obj, "closed", True)
        assert count == 3 and log

    finalize = Method(f"{TRACKER}::Finalize", finalize_body)

    def last_access(rt_, obj):
        yield from rt_.write(tracker, "rejectLog", "none")
        yield from rt_.write(tracker, "trackedCount", 3)
        drop_last_reference(rt_, tracker, finalize)
        return True

    result = yield from rt.call(Method(f"{ASSERT}::IsTrue", last_access), tracker)
    assert result
    yield from rt.sleep(0.4)


def _test_metadata_dispose(rt, ctx):
    # The "Dispose" FP class: the metadata object keeps being touched by
    # the test thread after the last reference drops, so the release
    # window is wide and noisy — and the Perturber cannot control GC.
    metadata = SimObject(
        METADATA, {"keys": "", "values": "", "sealed": False}
    )

    def dispose_body(rt_, obj):
        keys = yield from rt_.read(obj, "keys")
        values = yield from rt_.read(obj, "values")
        yield from rt_.write(obj, "sealed", True)
        assert keys and values

    dispose = Method(f"{METADATA}::Dispose", dispose_body)

    def is_false_body(rt_, obj):
        yield from rt_.write(metadata, "keys", "k1,k2")
        yield from rt_.write(metadata, "values", "v1,v2")
        drop_last_reference(rt_, metadata, dispose)
        return False

    result = yield from rt.call(Method(f"{ASSERT}::IsFalse", is_false_body), metadata)
    assert not result
    # Unrelated busywork that lands inside the dispose window.
    for _ in range(4):
        yield from noise_call(rt, "Radical.ComponentModel::Validate")
        yield from rt.sleep(0.06)


# -- message broker --------------------------------------------------------------

def _subscribe(rt, ctx, name, topic):
    def body(rt_, obj):
        yield from rt_.write(ctx.broker, "subscriberName", name)
        yield from rt_.write(ctx.broker, "subscriberTopic", topic)
        depth = yield from rt_.read(ctx.broker, "queueDepth")
        yield from rt_.write(ctx.broker, "queueDepth", depth + 1)
        ctx._subscribers.append((name, topic))

    return rt.call(Method(f"{BROKER}::<SubscribeCore>", body), ctx.broker)


def _broadcast_body(rt, ctx, payload):
    # Reads the subscription table (written by SubscribeCore) repeatedly.
    for _ in range(2):
        name = yield from rt.read(ctx.broker, "subscriberName")
        topic = yield from rt.read(ctx.broker, "subscriberTopic")
        depth = yield from rt.read(ctx.broker, "queueDepth")
        assert name and topic and depth
    delivered = yield from rt.read(ctx.broker, "delivered")
    yield from rt.write(ctx.broker, "delivered", delivered + 1)
    yield from rt.write(ctx.broker, "lastPayload", payload)
    # Racy dispatch statistics.
    count = yield from rt.read(ctx.stats, "dispatchCount")
    yield from rt.write(ctx.stats, "dispatchCount", count + 1)
    yield from rt.write(ctx.stats, "dispatchTag", payload)


def _test_broker_on_different_thread(rt, ctx):
    yield from _subscribe(rt, ctx, "logger", "entity/changed")

    def broadcast(rt_, obj):
        yield from _broadcast_body(rt_, ctx, "changed#1")

    thread = SystemThread(
        Method(f"{BROKER}::<Broadcast>", broadcast), name="broadcast"
    )
    yield from thread.start(rt)
    yield from thread.join(rt)
    payload = yield from rt.read(ctx.broker, "lastPayload")
    count = yield from rt.read(ctx.broker, "delivered")
    tag = yield from rt.read(ctx.stats, "dispatchTag")  # racy read
    assert payload == "changed#1" and count == 1


def _test_broadcast_from_multiple_threads(rt, ctx):
    yield from _subscribe(rt, ctx, "audit", "entity/saved")
    group = SimObject("Radical.WaitGroup", {})
    handles = [
        EventWaitHandle(f"bcast{i}", group=group) for i in range(2)
    ]

    def runner(index):
        def body(rt_, obj):
            yield from rt_.sleep(0.02 * index)
            yield from _broadcast_body(rt_, ctx, f"saved#{index}")
            yield from handles[index].set(rt_)

        return Method(f"{BTESTS}::<broadcast_from_multiple_thread>_{index + 1}", body)

    t0 = yield from TaskFactory.start_new(rt, runner(0), name="b0")
    t1 = yield from TaskFactory.start_new(rt, runner(1), name="b1")
    yield from wait_all(rt, handles)
    delivered = yield from rt.read(ctx.broker, "delivered")
    payload = yield from rt.read(ctx.broker, "lastPayload")
    assert delivered == 2 and payload.startswith("saved")
    yield from t0.wait(rt)
    yield from t1.wait(rt)


def _test_sequential_tracking(rt, ctx):
    yield from _subscribe(rt, ctx, "solo", "solo/topic")
    yield from noise_call(rt, "Radical.ComponentModel::Validate")
    name = yield from rt.read(ctx.broker, "subscriberName")
    assert name == "solo"


def build_app() -> Application:
    gt = (
        GroundTruthBuilder()
        # Finalizer / dispose edges.
        .method_release(f"{ENTITY}::EnsureNotDisposed", "dispose",
                        "end of last access")
        .method_acquire(f"{ENTITY}::Finalize", "dispose", "start of disposal")
        .method_release(f"{ASSERT}::IsTrue", "dispose", "end of last access")
        .method_acquire(f"{TRACKER}::Finalize", "dispose", "start of disposal")
        .method_release(f"{ASSERT}::IsFalse", "dispose", "end of last access")
        .method_acquire(f"{METADATA}::Dispose", "dispose", "start of disposal")
        # Broker.
        .method_release(f"{BROKER}::<SubscribeCore>", "custom",
                        "end of subscription")
        .method_acquire(f"{BROKER}::<Broadcast>", "custom",
                        "start of broadcast thread")
        .method_release(f"{BROKER}::<Broadcast>", "fork_join",
                        "end of thread")
        # Fork / join APIs.
        .api_release(THREAD_START_API, "fork_join", "launch new thread")
        .api_release(FACTORY_STARTNEW_API, "fork_join", "create new task")
        .api_release(SET_API, "signal", "release semaphore")
        .api_acquire(WAIT_ALL_API, "signal", "wait for semaphore")
        .method_acquire(f"{BTESTS}::<broadcast_from_multiple_thread>_1",
                        "fork_join", "start of thread")
        .method_acquire(f"{BTESTS}::<broadcast_from_multiple_thread>_2",
                        "fork_join", "start of thread")
        .method_release(f"{BTESTS}::<broadcast_from_multiple_thread>_1",
                        "fork_join", "end of thread")
        .method_release(f"{BTESTS}::<broadcast_from_multiple_thread>_2",
                        "fork_join", "end of thread")
        .racy_field(f"{BROKER}/Stats::dispatchCount")
        .racy_field(f"{BROKER}/Stats::dispatchTag")
        .protect_many(
            [f"{ENTITY}::changeLog", f"{ENTITY}::snapshot",
             f"{ENTITY}::isDisposed"],
            f"{ENTITY}::EnsureNotDisposed",
        )
        .protect_many(
            [f"{TRACKER}::trackedCount", f"{TRACKER}::rejectLog",
             f"{TRACKER}::closed"],
            f"{ASSERT}::IsTrue",
        )
        .protect_many(
            [f"{METADATA}::keys", f"{METADATA}::values",
             f"{METADATA}::sealed"],
            f"{ASSERT}::IsFalse",
        )
        .protect_many(
            [f"{BROKER}::subscriberName", f"{BROKER}::subscriberTopic",
             f"{BROKER}::queueDepth"],
            f"{BROKER}::<SubscribeCore>",
        )
        .protect_many(
            [f"{BROKER}::delivered", f"{BROKER}::lastPayload"],
            WAIT_ALL_API,
        )
        .build()
    )
    tests = [
        UnitTest(f"{BTESTS}::Entity_Finalizer", _test_entity_finalizer),
        UnitTest(f"{BTESTS}::Tracker_Finalizer", _test_tracker_finalizer),
        UnitTest(f"{BTESTS}::Metadata_Dispose", _test_metadata_dispose),
        UnitTest(f"{BTESTS}::messageBroker_on_different_thread",
                 _test_broker_on_different_thread),
        UnitTest(f"{BTESTS}::broadcast_from_multiple_thread",
                 _test_broadcast_from_multiple_threads),
        UnitTest(f"{BTESTS}::Sequential_Tracking", _test_sequential_tracking),
    ]
    return Application(
        info=make_info("App-5", "Radical", "95.9K", 33, 798),
        make_context=App5Context,
        tests=tests,
        ground_truth=gt,
    )


__all__ = ["build_app"]
