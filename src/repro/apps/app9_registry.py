"""App-9: iPOPO-style service registry (family tier).

A Python service-framework idiom (iPOPO's listener registry): listeners
register with the framework's service registry and events are dispatched
to them under the registry lock, while service *startup* is coordinated
by a :class:`~repro.sim.primitives.phaser.Phaser` — each service signals
its registration phase and the dispatcher waits for the whole phase
before delivering.

Synchronization inventory:

* ``Monitor`` guards the listener table (registration and dispatch
  critical sections are heterogeneous, per the design rules).
* The phaser coordinates startup: ``Register``/``Arrive`` release each
  service's wiring into the phase; ``AwaitAdvance`` /
  ``ArriveAndAwaitAdvance`` acquire the completed phase;
  ``ArriveAndDeregister`` retires services.
* ``Thread::Start`` / ``Thread::Join`` fork-join around the dispatcher.
* Planted unregister/dispatch race: the unregister path drops
  ``listenerRef`` and stamps ``callbackLog`` *without* the registry lock
  while a dispatch is in flight (the classic iPOPO listener-removal
  hazard).
* Instrumentation-skip bug: the unregister commit latch is genuine
  synchronization carried by two hidden methods the tracing heuristic
  drops (the paper's Instr.-Errors false-positive source).
"""

from __future__ import annotations

from ..sim.methods import Method
from ..sim.objects import SimObject
from ..sim.program import AppContext, Application, UnitTest
from ..sim.primitives import Monitor, Phaser, SystemThread
from ..sim.primitives.monitor import ENTER_API, EXIT_API
from ..sim.primitives.phaser import (
    ARRIVE_API,
    AWAIT_ADVANCE_API,
    DEREGISTER_API,
    REGISTER_API,
)
from ..sim.primitives.tasks import THREAD_JOIN_API, THREAD_START_API
from ..sim.thread import WaitSet
from .base import GroundTruthBuilder, make_info, noise_call

REGISTRY = "iPOPO.Framework.ServiceRegistry"
DISPATCHER = "iPOPO.Framework.EventDispatcher"
TESTS = "iPOPO.Tests.ServiceRegistryTests"


class App9Context(AppContext):
    def __init__(self, rt) -> None:
        super().__init__(SimObject(TESTS, {}))
        # Listener table, guarded by the registry lock.
        self.registry = SimObject(
            REGISTRY,
            {"listenerName": "", "listenerTopic": "", "listenerCount": 0},
        )
        # Service wiring published through the startup phaser.
        self.startup = SimObject(
            REGISTRY + "/Startup",
            {"svcConfig": "", "svcValidator": "", "dispatchReady": 0},
        )
        self.dispatcher = SimObject(
            DISPATCHER,
            {
                "eventCount": 0,
                "lastEvent": "",
                # Intentionally racy (unregister during dispatch):
                "listenerRef": "",
                "callbackLog": "",
            },
        )
        # Unregister commit latch state (hidden-method tests only).
        self.unreg_state = SimObject(
            REGISTRY + "/UnregState", {"unregLog": "", "unregCount": 0}
        )
        self.lock = Monitor("registry")
        self._unreg_done = [False]
        self._unreg_ws = WaitSet("unreg-latch")


def _register_listener(rt, ctx, name, topic):
    """Add one listener to the table, under the registry lock."""

    def body(rt_, obj):
        yield from ctx.lock.enter(rt_)
        yield from rt_.write(ctx.registry, "listenerName", name)
        yield from rt_.write(ctx.registry, "listenerTopic", topic)
        count = yield from rt_.read(ctx.registry, "listenerCount")
        yield from rt_.write(ctx.registry, "listenerCount", count + 1)
        yield from ctx.lock.exit(rt_)

    return rt.call(
        Method(f"{REGISTRY}::<RegisterListener>", body), ctx.registry
    )


def _test_register_dispatch_under_lock(rt, ctx):
    yield from _register_listener(rt, ctx, "config-admin", "svc/changed")

    def dispatch_body(rt_, obj):
        for i in range(2):
            yield from ctx.lock.enter(rt_)
            # Heterogeneous critical section: different first/last
            # fields than the registration path.
            count = yield from rt_.read(ctx.dispatcher, "eventCount")
            name = yield from rt_.read(ctx.registry, "listenerName")
            topic = yield from rt_.read(ctx.registry, "listenerTopic")
            yield from rt_.write(ctx.dispatcher, "lastEvent",
                                 f"{topic}@{name}#{i}")
            yield from rt_.write(ctx.dispatcher, "eventCount", count + 1)
            yield from ctx.lock.exit(rt_)
            yield from rt_.sleep(0.03)

    worker = SystemThread(
        Method(f"{DISPATCHER}::<DispatchEvent>b__0", dispatch_body),
        name="dispatch",
    )
    yield from worker.start(rt)
    yield from rt.sleep(0.02)
    yield from _register_listener(rt, ctx, "log-service", "svc/logged")
    yield from worker.join(rt)
    yield from ctx.lock.enter(rt)
    count = yield from rt.read(ctx.dispatcher, "eventCount")
    last = yield from rt.read(ctx.dispatcher, "lastEvent")
    yield from ctx.lock.exit(rt)
    assert count == 2 and last


def _test_phased_listener_startup(rt, ctx):
    # Dynamic parties: the dispatcher (main) holds the initial party and
    # registers one more per service *before* any can tip the phase.
    phaser = Phaser(parties=1, name="startup")
    yield from phaser.register(rt)
    yield from phaser.register(rt)

    def service(field, value, qname):
        def body(rt_, obj):
            yield from rt_.write(ctx.startup, field, value)
            yield from phaser.arrive(rt_)  # split-phase: signal, no wait
            yield from rt_.sleep(0.04)     # unrelated teardown work
            yield from phaser.arrive_and_deregister(rt_)

        return SystemThread(Method(qname, body), name=field)

    s1 = service("svcConfig", "cfg-v1", f"{REGISTRY}::<StartService>b__1")
    s2 = service("svcValidator", "check", f"{REGISTRY}::<StartService>b__2")
    yield from s1.start(rt)
    yield from s2.start(rt)
    # Phase 0 completes once both services have wired up.
    yield from phaser.arrive_and_await(rt)
    config = yield from rt.read(ctx.startup, "svcConfig")
    validator = yield from rt.read(ctx.startup, "svcValidator")
    assert config == "cfg-v1" and validator == "check"
    yield from rt.write(ctx.startup, "dispatchReady", 1)
    # Phase 1 completes as the services deregister on their way out.
    yield from phaser.arrive_and_await(rt)
    yield from s1.join(rt)
    yield from s2.join(rt)
    assert phaser.parties == 1


def _test_unregister_during_dispatch(rt, ctx):
    yield from rt.write(ctx.dispatcher, "listenerRef", "listener-1")
    yield from rt.write(ctx.dispatcher, "callbackLog", "start")

    def dispatch_body(rt_, obj):
        for i in range(2):
            # Racy dispatch: reads the listener reference and appends to
            # the callback log without the registry lock.
            ref = yield from rt_.read(ctx.dispatcher, "listenerRef")
            log = yield from rt_.read(ctx.dispatcher, "callbackLog")
            yield from rt_.write(
                ctx.dispatcher, "callbackLog", f"{log}|{ref}#{i}"
            )
            yield from rt_.sleep(0.02)

    worker = SystemThread(
        Method(f"{DISPATCHER}::<DispatchEvent>b__r", dispatch_body),
        name="dispatch",
    )
    yield from worker.start(rt)
    yield from rt.sleep(0.01)
    # The planted bug: unregister forgets the lock while a dispatch is
    # in flight — the reference drop and log stamp race the dispatcher.
    yield from rt.write(ctx.dispatcher, "listenerRef", "")
    yield from rt.write(ctx.dispatcher, "callbackLog", "unregistered")
    yield from worker.join(rt)
    log = yield from rt.read(ctx.dispatcher, "callbackLog")
    assert log


def _test_hidden_unreg_latch(rt, ctx):
    # The unregister commit latch is genuine synchronization hidden by
    # the instrumentation skip heuristic (Instr.-Errors plant).
    def commit_body(rt_, obj):
        yield from rt_.write(ctx.unreg_state, "unregLog", "listener-1")
        yield from rt_.write(ctx.unreg_state, "unregCount", 1)
        ctx._unreg_done[0] = True
        rt_.notify_all(ctx._unreg_ws)

    commit = Method(
        f"{REGISTRY}/UnregState::<CommitUnregister>b__h",
        commit_body,
        hidden=True,
    )

    def await_body(rt_, obj):
        while not ctx._unreg_done[0]:
            yield from rt_.wait_on(ctx._unreg_ws)

    await_unreg = Method(
        f"{REGISTRY}/UnregState::<AwaitUnregister>b__h",
        await_body,
        hidden=True,
    )

    def committer(rt_, obj):
        yield from rt_.sleep(0.03)
        yield from noise_call(rt_, "iPOPO.Framework.LogService::Info")
        yield from rt_.call(commit, ctx.unreg_state)

    def waiter(rt_, obj):
        yield from rt_.call(await_unreg, ctx.unreg_state)
        log = yield from rt_.read(ctx.unreg_state, "unregLog")
        count = yield from rt_.read(ctx.unreg_state, "unregCount")
        assert log == "listener-1" and count == 1

    t1 = SystemThread(
        Method(f"{TESTS}::<HiddenUnreg>b__commit", committer), name="commit"
    )
    t2 = SystemThread(
        Method(f"{TESTS}::<HiddenUnreg>b__wait", waiter), name="wait"
    )
    yield from t1.start(rt)
    yield from t2.start(rt)
    yield from t1.join(rt)
    yield from t2.join(rt)


def _test_sequential_registry(rt, ctx):
    yield from rt.write(ctx.registry, "listenerTopic", "solo/topic")
    yield from noise_call(rt, "iPOPO.Framework.LogService::Info")
    topic = yield from rt.read(ctx.registry, "listenerTopic")
    assert topic == "solo/topic"


def build_app() -> Application:
    gt = (
        GroundTruthBuilder()
        # Registry lock.
        .api_acquire(ENTER_API, "lock", "acquire registry lock")
        .api_release(EXIT_API, "lock", "release registry lock")
        # Startup phaser (collective phase ordering).
        .api_release(REGISTER_API, "phase", "register startup party")
        .api_release(ARRIVE_API, "phase", "signal startup phase")
        .api_acquire(AWAIT_ADVANCE_API, "phase", "wait for startup phase")
        .api_release(DEREGISTER_API, "phase", "retire startup party")
        # Fork / join around the dispatcher threads.
        .api_release(THREAD_START_API, "fork_join", "launch new thread")
        .api_acquire(THREAD_JOIN_API, "fork_join", "wait for thread")
        .method_acquire(f"{DISPATCHER}::<DispatchEvent>b__0", "fork_join",
                        "start of dispatch thread")
        .method_release(f"{DISPATCHER}::<DispatchEvent>b__0", "fork_join",
                        "end of dispatch thread")
        .method_acquire(f"{DISPATCHER}::<DispatchEvent>b__r", "fork_join",
                        "start of dispatch thread")
        .method_release(f"{DISPATCHER}::<DispatchEvent>b__r", "fork_join",
                        "end of dispatch thread")
        .method_acquire(f"{REGISTRY}::<StartService>b__1", "fork_join",
                        "start of service thread")
        .method_release(f"{REGISTRY}::<StartService>b__1", "fork_join",
                        "end of service thread")
        .method_acquire(f"{REGISTRY}::<StartService>b__2", "fork_join",
                        "start of service thread")
        .method_release(f"{REGISTRY}::<StartService>b__2", "fork_join",
                        "end of service thread")
        .method_acquire(f"{TESTS}::<HiddenUnreg>b__commit", "fork_join",
                        "start of committer thread")
        .method_release(f"{TESTS}::<HiddenUnreg>b__commit", "fork_join",
                        "end of committer thread")
        .method_acquire(f"{TESTS}::<HiddenUnreg>b__wait", "fork_join",
                        "start of waiter thread")
        .method_release(f"{TESTS}::<HiddenUnreg>b__wait", "fork_join",
                        "end of waiter thread")
        # Hidden genuine syncs (Instr. Errors).
        .method_release(f"{REGISTRY}/UnregState::<CommitUnregister>b__h",
                        "custom", "unregister commit latch signal")
        .method_acquire(f"{REGISTRY}/UnregState::<AwaitUnregister>b__h",
                        "custom", "unregister commit latch wait")
        .hidden_method(f"{REGISTRY}/UnregState::<CommitUnregister>b__h")
        .hidden_method(f"{REGISTRY}/UnregState::<AwaitUnregister>b__h")
        # Planted unregister/dispatch races.
        .racy_field(f"{DISPATCHER}::listenerRef")
        .racy_field(f"{DISPATCHER}::callbackLog")
        .protect_many(
            [
                f"{REGISTRY}::listenerName",
                f"{REGISTRY}::listenerTopic",
                f"{REGISTRY}::listenerCount",
            ],
            EXIT_API,
        )
        .protect_many(
            [f"{REGISTRY}/Startup::svcConfig",
             f"{REGISTRY}/Startup::svcValidator"],
            AWAIT_ADVANCE_API,
        )
        .protect_many(
            [f"{DISPATCHER}::eventCount", f"{DISPATCHER}::lastEvent"],
            EXIT_API,
        )
        .protect_many(
            [f"{REGISTRY}/UnregState::unregLog",
             f"{REGISTRY}/UnregState::unregCount"],
            f"{REGISTRY}/UnregState::<CommitUnregister>b__h",
        )
        .build()
    )
    tests = [
        UnitTest(f"{TESTS}::Register_Dispatch_UnderLock",
                 _test_register_dispatch_under_lock),
        UnitTest(f"{TESTS}::Phased_Listener_Startup",
                 _test_phased_listener_startup),
        UnitTest(f"{TESTS}::Unregister_During_Dispatch",
                 _test_unregister_during_dispatch),
        UnitTest(f"{TESTS}::Hidden_Unreg_Latch", _test_hidden_unreg_latch),
        UnitTest(f"{TESTS}::Sequential_Registry", _test_sequential_registry),
    ]
    return Application(
        info=make_info("App-9", "iPOPO", "18.4K", 74, 312),
        make_context=App9Context,
        tests=tests,
        ground_truth=gt,
    )


__all__ = ["build_app"]
