"""App-6: RestSharp (19.8K LoC, 7363 stars, 92 tests).

Synchronization inventory mirrored from Table 8:

* ``System.Threading.ThreadPool::QueueUserWorkItem`` End releases into the
  ``WebServer::<Run>b__40`` / handler delegate begins.
* ``System.Threading.EventWaitHandle::Set`` End releases;
  ``System.Threading.WaitHandle::WaitOne`` Begin acquires.
* ``System.IO.Stream::CopyTo`` End releases (producer);
  ``System.IO.Stream::Read`` Begin acquires (consumer).
* ``System.Net.WebRequest::BeginGetResponse`` End releases into the
  response callback's begin.
"""

from __future__ import annotations

from ..sim.methods import Method
from ..sim.objects import SimObject
from ..sim.program import AppContext, Application, UnitTest
from ..sim.primitives import EventWaitHandle, SimList, ThreadPool
from ..sim.primitives.events import SET_API, WAIT_ONE_API
from ..sim.primitives.tasks import THREADPOOL_QUEUE_API
from ..sim.runtime import Runtime
from ..sim.thread import WaitSet
from ..trace.optypes import OpType
from .base import GroundTruthBuilder, make_info, noise_call

HTTP = "RestSharp.Http"
CLIENT = "RestSharp.RestClient"
SERVER = "RestSharp.Tests.Shared.Fixtures.WebServer"
STREAM_COPYTO_API = "System.IO.Stream::CopyTo"
STREAM_READ_API = "System.IO.Stream::Read"
BEGIN_RESPONSE_API = "System.Net.WebRequest::BeginGetResponse"


class SimStream:
    """A blocking in-memory stream: ``CopyTo`` produces, ``Read``
    consumes (both instrumented as library call sites)."""

    def __init__(self, name: str = "stream") -> None:
        self.obj = SimObject("System.IO.MemoryStream", {})
        self.chunks = []
        self.closed = False
        self.waitset = WaitSet(f"stream:{name}")

    def copy_to(self, rt: Runtime, data):
        yield from rt.emit(
            OpType.ENTER, STREAM_COPYTO_API, self.obj, library=True
        )
        self.chunks.append(data)
        rt.notify_all(self.waitset)
        yield from rt.emit(
            OpType.EXIT, STREAM_COPYTO_API, self.obj, library=True
        )

    def read(self, rt: Runtime):
        yield from rt.emit(
            OpType.ENTER, STREAM_READ_API, self.obj, library=True
        )
        while not self.chunks and not self.closed:
            yield from rt.wait_on(self.waitset)
        data = self.chunks.pop(0) if self.chunks else None
        yield from rt.emit(
            OpType.EXIT, STREAM_READ_API, self.obj, library=True
        )
        return data


class App6Context(AppContext):
    def __init__(self, rt) -> None:
        super().__init__(SimObject("RestSharp.Tests", {}))
        self.http = SimObject(
            HTTP,
            {"requestBody": "", "contentType": "", "timeout": 0,
             "responseCode": 0, "responseBody": ""},
        )
        self.server = SimObject(
            SERVER, {"handledCount": 0, "lastPath": "", "running": False}
        )
        self.request_log = SimList("request-log")


def _test_threadpool_request(rt, ctx):
    # Client queues the request processing on the thread pool; a wait
    # handle signals completion (Table 8's Set / WaitOne pair).
    done = EventWaitHandle("request-done")
    yield from rt.write(ctx.http, "requestBody", "{'q': 1}")
    yield from rt.write(ctx.http, "contentType", "application/json")
    yield from rt.write(ctx.http, "timeout", 30)

    def work(rt_, obj):
        for _ in range(2):
            body = yield from rt_.read(ctx.http, "requestBody")
            ctype = yield from rt_.read(ctx.http, "contentType")
            timeout = yield from rt_.read(ctx.http, "timeout")
            assert body and ctype and timeout
            yield from rt_.sched_yield()
        yield from ctx.request_log.add(rt_, "POST /resource")
        yield from rt_.write(ctx.http, "responseCode", 200)
        yield from rt_.write(ctx.http, "responseBody", "ok")
        yield from done.set(rt_)

    delegate = Method(f"{SERVER}::<Run>b__40", work)
    yield from ThreadPool.queue_user_work_item(rt, delegate)
    yield from noise_call(rt, "RestSharp.Authenticators::Authenticate")
    yield from done.wait_one(rt)
    code = yield from rt.read(ctx.http, "responseCode")
    body = yield from rt.read(ctx.http, "responseBody")
    assert code == 200 and body == "ok"
    assert (yield from ctx.request_log.contains(rt, "POST /resource"))


def _test_stream_producer_consumer(rt, ctx):
    # WriteRequestBodyAsync copies the body into the request stream on one
    # thread; the server reads it on another.
    stream = SimStream("request-body")

    def producer(rt_, obj):
        body = yield from rt_.read(ctx.http, "requestBody")
        for chunk_index in range(3):
            yield from stream.copy_to(rt_, f"{body}#{chunk_index}")
            pause = yield from rt_.rand()
            yield from rt_.sleep(0.02 + 0.02 * pause)
        stream.closed = True
        rt_.notify_all(stream.waitset)

    def consumer(rt_, obj):
        received = 0
        while True:
            data = yield from stream.read(rt_)
            if data is None:
                break
            received += 1
        count = yield from rt_.read(ctx.server, "handledCount")
        yield from rt_.write(ctx.server, "handledCount", count + received)

    yield from rt.write(ctx.http, "requestBody", "payload")
    producer_m = Method(f"{HTTP}::<WriteRequestBodyAsync>b__2", producer)
    consumer_m = Method(f"{SERVER}::<HandleRequests>b__0", consumer)
    yield from ThreadPool.queue_user_work_item(rt, producer_m)
    yield from ThreadPool.queue_user_work_item(rt, consumer_m)
    while not (yield from rt.read(ctx.server, "handledCount")):
        yield from rt.sleep(0.02)


def _test_begin_get_response(rt, ctx):
    # Async request: BeginGetResponse sends, the callback fires later.
    response_ready = EventWaitHandle("response")

    def callback(rt_, obj):
        code = yield from rt_.read(ctx.http, "responseCode")
        yield from rt_.write(ctx.http, "responseBody", f"status-{code}")
        yield from response_ready.set(rt_)

    def begin_get_response(rt_, obj):
        yield from rt_.emit(
            OpType.ENTER, BEGIN_RESPONSE_API, ctx.http, library=True
        )

        def network_side():
            yield from rt_.sleep(0.04)
            yield from rt_.write(ctx.http, "responseCode", 201)
            yield from rt_.call(
                Method(
                    f"{HTTP}::<GetStyleMethodInternalAsync>b__0", callback
                ),
                ctx.http,
            )

        yield from rt_.spawn_raw(network_side(), "network")
        yield from rt_.emit(
            OpType.EXIT, BEGIN_RESPONSE_API, ctx.http, library=True
        )

    yield from rt.write(ctx.http, "timeout", 10)
    yield from begin_get_response(rt, None)
    yield from response_ready.wait_one(rt)
    body = yield from rt.read(ctx.http, "responseBody")
    assert body == "status-201"


def _test_server_lifecycle(rt, ctx):
    # The web server runs on a pool thread; tests poll the running flag.
    def server_loop(rt_, obj):
        yield from rt_.write(ctx.server, "lastPath", "/")
        yield from rt_.write(ctx.server, "running", True)
        yield from rt_.sleep(0.05)

    yield from ThreadPool.queue_user_work_item(
        rt, Method(f"{SERVER}::<Run>b__41", server_loop)
    )
    while not (yield from rt.read(ctx.server, "running")):
        yield from rt.sleep(0.015)
    path = yield from rt.read(ctx.server, "lastPath")
    assert path == "/"


def _test_sequential_client(rt, ctx):
    yield from rt.write(ctx.http, "requestBody", "solo")
    yield from noise_call(rt, "RestSharp.Authenticators::Authenticate")
    body = yield from rt.read(ctx.http, "requestBody")
    assert body == "solo"


def build_app() -> Application:
    gt = (
        GroundTruthBuilder()
        .api_release(THREADPOOL_QUEUE_API, "fork_join", "create new task")
        .api_release(SET_API, "signal", "release semaphore")
        .api_acquire(WAIT_ONE_API, "signal", "wait for semaphore")
        .api_release(STREAM_COPYTO_API, "producer_consumer", "producer")
        .api_acquire(STREAM_READ_API, "producer_consumer", "consumer")
        .api_release(BEGIN_RESPONSE_API, "async", "send network request")
        .method_acquire(f"{SERVER}::<Run>b__40", "fork_join", "start of task")
        .method_release(f"{SERVER}::<Run>b__40", "fork_join", "end of task")
        .method_acquire(f"{SERVER}::<Run>b__41", "fork_join", "start of thread")
        .method_acquire(f"{HTTP}::<WriteRequestBodyAsync>b__2", "fork_join",
                        "start of task")
        .method_release(f"{HTTP}::<WriteRequestBodyAsync>b__2", "fork_join",
                        "end of task")
        .method_acquire(f"{SERVER}::<HandleRequests>b__0", "fork_join",
                        "start of message handler")
        .method_acquire(f"{HTTP}::<GetStyleMethodInternalAsync>b__0",
                        "async", "start of event handler")
        .method_release(f"{HTTP}::<GetStyleMethodInternalAsync>b__0",
                        "async", "end of event handler")
        .flag(f"{SERVER}::running", "server running flag")
        .flag(f"{SERVER}::handledCount", "handled counter", volatile=False)
        .protect_many(
            [f"{HTTP}::requestBody", f"{HTTP}::contentType",
             f"{HTTP}::timeout"],
            THREADPOOL_QUEUE_API,
        )
        .protect_many(
            [f"{HTTP}::responseCode", f"{HTTP}::responseBody"],
            SET_API,
        )
        .protect(f"{SERVER}::lastPath", f"{SERVER}::running")
        .build()
    )
    tests = [
        UnitTest("RestSharp.Tests::ThreadPool_Request", _test_threadpool_request),
        UnitTest("RestSharp.Tests::Stream_ProducerConsumer", _test_stream_producer_consumer),
        UnitTest("RestSharp.Tests::BeginGetResponse_Callback", _test_begin_get_response),
        UnitTest("RestSharp.Tests::Server_Lifecycle", _test_server_lifecycle),
        UnitTest("RestSharp.Tests::Sequential_Client", _test_sequential_client),
    ]
    return Application(
        info=make_info("App-6", "RestSharp", "19.8K", 7363, 92),
        make_context=App6Context,
        tests=tests,
        ground_truth=gt,
    )


__all__ = ["build_app"]
