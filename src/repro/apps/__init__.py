"""The benchmark applications: Table 1 analogues + the grown family tier."""

from .registry import all_applications, app_ids, family_app_ids, get_application

__all__ = ["all_applications", "app_ids", "family_app_ids", "get_application"]
