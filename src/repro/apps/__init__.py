"""The 8 benchmark applications (Table 1 analogues)."""

from .registry import all_applications, app_ids, get_application

__all__ = ["all_applications", "app_ids", "get_application"]
