"""App-2: DateTimeExtensions (3.1K LoC, 335 stars, 219 tests).

Synchronization inventory mirrored from Table 9:

* ``App.Common.ConcurrentLazyDictionary::GetOrAdd`` — an application-level
  atomic region: End releases, Begin acquires (the internal mutex is
  framework code SherLock never sees).
* ``App.WorkingDays.EasterBasedHoliday/EasterCalculator::.cctor`` — static
  constructor End releases; the first access
  (``EasterCalculator::CalculateEasterDate`` Begin) acquires.
* ``App.WorkingDays.ChristianHolidays::ascension`` — a flag variable:
  Write releases, Read acquires.
"""

from __future__ import annotations

from ..sim.methods import Method
from ..sim.objects import SimObject
from ..sim.program import AppContext, Application, UnitTest
from ..sim.primitives import StaticClass, SystemThread
from ..sim.thread import WaitSet
from .base import GroundTruthBuilder, make_info, noise_call

LAZY_DICT = "App.Common.ConcurrentLazyDictionary"
CALCULATOR = "App.WorkingDays.EasterBasedHoliday/EasterCalculator"
HOLIDAYS = "App.WorkingDays.ChristianHolidays"


class App2Context(AppContext):
    """Fresh state per test execution."""

    def __init__(self, rt) -> None:
        super().__init__(SimObject("App.Tests.DateTimeTests", {}))
        # ConcurrentLazyDictionary: instrumented fields hold the public
        # cache surface; the mutex below is framework-internal (untraced).
        self.day_cache = SimObject(
            LAZY_DICT, {"count": 0, "lastYear": 0, "lastValue": ""}
        )
        self._cache_data = {}
        self._cache_lock_owner = [None]
        self._cache_waitset = WaitSet("lazy-dict")
        # Easter calculator static class.
        self.calculator = StaticClass(
            CALCULATOR,
            Method(f"{CALCULATOR}::.cctor", _cctor_body),
            goldenNumbers=None,
            epoch=0,
        )
        # Christian holidays shared state (ascension is the flag).
        self.holidays = SimObject(
            HOLIDAYS,
            {"ascension": False, "ascensionDate": "", "easterDate": ""},
        )

    # -- ConcurrentLazyDictionary.GetOrAdd (app method, atomic region) ------

    def get_or_add(self, rt, key, delegate: Method):
        method = Method(
            f"{LAZY_DICT}::GetOrAdd",
            lambda rt_, obj, k, d: self._get_or_add_body(rt_, k, d),
        )
        return rt.call(method, self.day_cache, key, delegate)

    def _get_or_add_body(self, rt, key, delegate: Method):
        # Framework-internal mutual exclusion: raw wait set, no trace.
        me = rt.current_thread
        while (
            self._cache_lock_owner[0] is not None
            and self._cache_lock_owner[0] is not me
        ):
            yield from rt.wait_on(self._cache_waitset)
        self._cache_lock_owner[0] = me
        try:
            if key not in self._cache_data:
                value = yield from rt.call(delegate, self.day_cache, key)
                self._cache_data[key] = value
        finally:
            self._cache_lock_owner[0] = None
            rt.notify_all(self._cache_waitset)
        return self._cache_data[key]


def _cctor_body(rt, obj):
    """Static constructor: precompute the golden-number table."""
    yield from rt.write(obj, "goldenNumbers", [(y % 19) + 1 for y in range(30)])
    yield from rt.write(obj, "epoch", 1583)


def _calculate_easter(rt, ctx, year):
    """EasterCalculator.CalculateEasterDate — first access runs .cctor."""
    method = Method(
        f"{CALCULATOR}::CalculateEasterDate",
        lambda rt_, obj, y: _calculate_body(rt_, ctx, y),
    )
    return rt.call(method, ctx.calculator.obj, year)


def _calculate_body(rt, ctx, year):
    yield from ctx.calculator.ensure_initialized(rt)
    golden = yield from rt.read(ctx.calculator.obj, "goldenNumbers")
    epoch = yield from rt.read(ctx.calculator.obj, "epoch")
    yield from noise_call(rt, "App.Common.Logger::Trace")
    return f"easter-{year}-g{golden[year % 30]}-e{epoch}"


# ---------------------------------------------------------------------------
# Unit tests
# ---------------------------------------------------------------------------

def _delegate(name, fields):
    """A cache-filling delegate writing a heterogeneous field mix."""

    def body(rt, obj, key):
        for i, fieldname in enumerate(fields):
            current = yield from rt.read(obj, fieldname)
            value = key if fieldname != "lastValue" else f"day-{key}"
            yield from rt.write(obj, fieldname, value)
            if i == 0:
                yield from rt.sched_yield()
        return f"{name}:{key}"

    return Method(f"App.WorkingDays.WorkingDayProviders::<{name}>", body)


def _test_cache_concurrent(rt, ctx):
    # Both threads GetOrAdd the *same* key: one delegate fills the cache
    # stats, the other call returns the cached value and the caller then
    # validates the stats fields — the paper's Example C shape.
    d1 = _delegate("GetHolidays>b__0", ["count", "lastYear", "lastValue"])
    d2 = _delegate("GetHolidays>b__1", ["lastValue", "count", "lastYear"])

    def filler(rt_, obj):
        value = yield from ctx.get_or_add(rt_, 2020, d1)
        assert "2020" in value

    def checker(rt_, obj):
        yield from rt_.sleep(0.012)
        value = yield from ctx.get_or_add(rt_, 2020, d2)
        assert "2020" in value
        last = yield from rt_.read(ctx.day_cache, "lastValue")
        count = yield from rt_.read(ctx.day_cache, "count")
        assert last == "day-2020"
        assert count == 2020

    t1 = SystemThread(Method("App.Tests::CacheFiller", filler), name="c1")
    t2 = SystemThread(Method("App.Tests::CacheChecker", checker), name="c2")
    yield from t1.start(rt)
    yield from t2.start(rt)
    yield from t1.join(rt)
    yield from t2.join(rt)


def _test_cache_two_years(rt, ctx):
    # Same shape, different keys and read order (heterogeneity matters).
    d1 = _delegate("GetWorkdays>b__2", ["lastYear", "lastValue", "count"])
    d2 = _delegate("GetWorkdays>b__3", ["count", "lastValue", "lastYear"])

    def filler(rt_, obj):
        yield from ctx.get_or_add(rt_, 2031, d1)
        yield from rt_.sleep(0.05)
        yield from ctx.get_or_add(rt_, 2032, d1)

    def checker(rt_, obj):
        yield from rt_.sleep(0.015)
        yield from ctx.get_or_add(rt_, 2031, d2)
        year = yield from rt_.read(ctx.day_cache, "lastYear")
        assert year == 2031
        yield from rt_.sleep(0.06)
        yield from ctx.get_or_add(rt_, 2032, d2)
        count = yield from rt_.read(ctx.day_cache, "count")
        last = yield from rt_.read(ctx.day_cache, "lastValue")
        assert count == 2032
        assert last == "day-2032"

    t1 = SystemThread(Method("App.Tests::YearFiller", filler), name="c1")
    t2 = SystemThread(Method("App.Tests::YearChecker", checker), name="c2")
    yield from t1.start(rt)
    yield from t2.start(rt)
    yield from t1.join(rt)
    yield from t2.join(rt)


def _test_easter_static_init(rt, ctx):
    def worker(rt_, obj, first_year, stagger):
        yield from rt_.sleep(stagger)
        for k in range(3):
            result = yield from _calculate_easter(rt_, ctx, first_year + k)
            assert result.startswith("easter")
            pause = yield from rt_.rand()
            yield from rt_.sleep(0.03 + 0.03 * pause)

    t1 = SystemThread(
        Method("App.Tests::EasterWorker1", worker), (2020, 0.0), name="e1"
    )
    t2 = SystemThread(
        Method("App.Tests::EasterWorker2", worker), (2030, 0.02), name="e2"
    )
    yield from t1.start(rt)
    yield from t2.start(rt)
    yield from t1.join(rt)
    yield from t2.join(rt)


def _test_easter_many_threads(rt, ctx):
    threads = []
    for i in range(3):
        def worker(rt_, obj, base=2000 + 10 * i, stagger=0.015 * i):
            yield from rt_.sleep(stagger)
            for k in range(2):
                yield from _calculate_easter(rt_, ctx, base + k)
                yield from rt_.sleep(0.04)

        threads.append(
            SystemThread(
                Method(f"App.Tests::EasterBatch{i + 1}", worker),
                name=f"b{i}",
            )
        )
    for t in threads:
        yield from t.start(rt)
    for t in threads:
        yield from t.join(rt)


def _test_ascension_flag(rt, ctx):
    def producer(rt_, obj):
        easter = yield from _calculate_easter(rt_, ctx, 2022)
        yield from rt_.write(ctx.holidays, "easterDate", easter)
        yield from rt_.write(ctx.holidays, "ascensionDate", easter + "+39d")
        yield from rt_.write(ctx.holidays, "ascension", True)

    def consumer(rt_, obj):
        while not (yield from rt_.read(ctx.holidays, "ascension")):
            yield from rt_.sleep(0.015)
        date = yield from rt_.read(ctx.holidays, "ascensionDate")
        easter = yield from rt_.read(ctx.holidays, "easterDate")
        assert date.endswith("+39d")
        assert easter.startswith("easter")

    tp = SystemThread(Method("App.Tests::AscensionSetter", producer), name="p")
    tc = SystemThread(Method("App.Tests::AscensionChecker", consumer), name="c")
    yield from tp.start(rt)
    yield from tc.start(rt)
    yield from tp.join(rt)
    yield from tc.join(rt)


def _test_sequential_workdays(rt, ctx):
    # Single-threaded test: pure noise for the inference.
    d1 = _delegate("GetAllDays>b__4", ["count", "lastYear", "lastValue"])
    yield from ctx.get_or_add(rt, 1999, d1)
    yield from noise_call(rt, "App.Common.Logger::Trace")
    value = yield from _calculate_easter(rt, ctx, 1999)
    assert value.startswith("easter")


def build_app() -> Application:
    gt = (
        GroundTruthBuilder()
        .method_release(
            f"{LAZY_DICT}::GetOrAdd", "atomic_region", "end of atomic region"
        )
        .method_acquire(
            f"{LAZY_DICT}::GetOrAdd", "atomic_region",
            "start of atomic region",
        )
        .method_release(
            f"{CALCULATOR}::.cctor", "static_ctor",
            "end of static constructor",
        )
        .method_acquire(
            f"{CALCULATOR}::CalculateEasterDate", "static_ctor",
            "first access after static constructor",
        )
        .flag(f"{HOLIDAYS}::ascension", "write/check flag")
        .protect(f"{LAZY_DICT}::count", f"{LAZY_DICT}::GetOrAdd")
        .protect(f"{LAZY_DICT}::lastYear", f"{LAZY_DICT}::GetOrAdd")
        .protect(f"{LAZY_DICT}::lastValue", f"{LAZY_DICT}::GetOrAdd")
        .protect(f"{CALCULATOR}::goldenNumbers", f"{CALCULATOR}::.cctor")
        .protect(f"{CALCULATOR}::epoch", f"{CALCULATOR}::.cctor")
        .protect(f"{HOLIDAYS}::ascensionDate", f"{HOLIDAYS}::ascension")
        .protect(f"{HOLIDAYS}::easterDate", f"{HOLIDAYS}::ascension")
        .build()
    )
    tests = [
        UnitTest("App.Tests.DateTimeTests::Cache_Concurrent", _test_cache_concurrent),
        UnitTest("App.Tests.DateTimeTests::Cache_TwoYears", _test_cache_two_years),
        UnitTest("App.Tests.DateTimeTests::Easter_StaticInit", _test_easter_static_init),
        UnitTest("App.Tests.DateTimeTests::Easter_ManyThreads", _test_easter_many_threads),
        UnitTest("App.Tests.DateTimeTests::Ascension_Flag", _test_ascension_flag),
        UnitTest("App.Tests.DateTimeTests::Workdays_Sequential", _test_sequential_workdays),
    ]
    return Application(
        info=make_info("App-2", "DataTimeExtention", "3.1K", 335, 219),
        make_context=App2Context,
        tests=tests,
        ground_truth=gt,
    )


__all__ = ["build_app"]
