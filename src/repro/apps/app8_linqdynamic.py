"""App-8: System.Linq.Dynamic (1.1K LoC, 399 stars, 7 tests).

Synchronization inventory mirrored from Table 9:

* ``System.Linq.Dynamic.ClassFactory::.cctor`` — static ctor End releases;
  ``ClassFactory::GetDynamicClass`` Begin is the first-access acquire.
* ``System.Threading.ReaderWriterLock`` — ``UpgradeToWriterLock`` Begin
  acquires (waits for readers), ``DowngradeFromWriterLock`` End and
  ``ReleaseReaderLock`` End release.  ``UpgradeToWriterLock`` also
  *releases* the reader lock inside the same API — the double role that
  breaks SherLock's Single-Role assumption (§5.5).
* ``System.Threading.Tasks.TaskFactory::StartNew`` End releases into the
  ``DynamicExpressionTests::<CreateClass_TheadSafe>`` delegate begins.
"""

from __future__ import annotations

from ..sim.methods import Method
from ..sim.objects import SimObject
from ..sim.program import AppContext, Application, UnitTest
from ..sim.primitives import ReaderWriterLock, TaskFactory
from ..sim.primitives.rwlock import (
    ACQUIRE_READER_API,
    DOWNGRADE_API,
    RELEASE_READER_API,
    UPGRADE_API,
)
from ..sim.primitives.tasks import FACTORY_STARTNEW_API
from ..trace.optypes import Role, end_of
from .base import (
    GroundTruthBuilder,
    KIND_API,
    make_info,
    noise_call,
)

FACTORY = "System.Linq.Dynamic.ClassFactory"
TESTS = "System.Linq.Dynamic.Test.DynamicExpressionTests"


class App8Context(AppContext):
    def __init__(self, rt) -> None:
        super().__init__(SimObject(TESTS, {}))
        self.rwlock = ReaderWriterLock("classfactory")
        self.factory = SimObject(
            FACTORY, {"classCount": 0, "types": "", "signatures": ""}
        )
        self._type_cache = {}
        # Per-test fixture object, planted by each test body.
        self.config = None
        # Static side of ClassFactory (module builder setup).
        from ..sim.primitives import StaticClass

        self.static_factory = StaticClass(
            FACTORY,
            Method(FACTORY + "::.cctor", _cctor_body),
            moduleBuilder=None,
            assembly=None,
        )


def _cctor_body(rt, obj):
    yield from rt.write(obj, "assembly", "dynamic-assembly")
    yield from rt.write(obj, "moduleBuilder", "module-builder")


def get_dynamic_class(rt, ctx, signature, write_first):
    """ClassFactory.GetDynamicClass: reader lock, upgrade on miss."""

    def body(rt_, obj, sig):
        yield from ctx.static_factory.ensure_initialized(rt_)
        if write_first == "types":
            builder = yield from rt_.read(
                ctx.static_factory.obj, "moduleBuilder"
            )
            assembly = yield from rt_.read(ctx.static_factory.obj, "assembly")
        else:
            assembly = yield from rt_.read(ctx.static_factory.obj, "assembly")
            builder = yield from rt_.read(
                ctx.static_factory.obj, "moduleBuilder"
            )
        assert builder == "module-builder"
        assert assembly == "dynamic-assembly"
        yield from ctx.rwlock.acquire_reader(rt_)
        known = yield from rt_.read(ctx.factory, "types")
        if sig not in ctx._type_cache:
            yield from ctx.rwlock.upgrade_to_writer(rt_)
            if sig not in ctx._type_cache:
                ctx._type_cache[sig] = f"DynamicClass{len(ctx._type_cache)}"
                if write_first == "types":
                    yield from rt_.write(ctx.factory, "types", known + sig)
                    count = yield from rt_.read(ctx.factory, "classCount")
                    yield from rt_.write(ctx.factory, "classCount", count + 1)
                    yield from rt_.write(ctx.factory, "signatures", sig)
                else:
                    sigs = yield from rt_.read(ctx.factory, "signatures")
                    yield from rt_.write(ctx.factory, "signatures", sigs + sig)
                    yield from rt_.write(ctx.factory, "classCount", 1)
                    yield from rt_.write(ctx.factory, "types", known + sig)
            yield from ctx.rwlock.downgrade_from_writer(rt_)
        count = yield from rt_.read(ctx.factory, "classCount")
        yield from ctx.rwlock.release_reader(rt_)
        return ctx._type_cache[sig]

    method = Method(f"{FACTORY}::GetDynamicClass", body)
    return rt.call(method, ctx.factory, signature)


def _creator_delegate(index, write_first):
    def body(rt, obj):
        ctx = APP8_CTX[0]
        classes = []
        # Re-read the fixture per iteration, as real parsing loops do —
        # popular fields recur inside windows while true syncs fire once.
        for k in range(3):
            if write_first == "types":
                expr = yield from rt.read(ctx.config, "expression")
                expected = yield from rt.read(ctx.config, "expected")
                param = yield from rt.read(ctx.config, "paramName")
                culture = yield from rt.read(ctx.config, "culture")
            else:
                param = yield from rt.read(ctx.config, "paramName")
                culture = yield from rt.read(ctx.config, "culture")
                result = yield from rt.read(ctx.config, "resultType")
                expr = yield from rt.read(ctx.config, "expression")
                expected = yield from rt.read(ctx.config, "expected")
            assert expr
            cls = yield from get_dynamic_class(
                rt, ctx, f"Sig{index}_{k}", write_first
            )
            assert cls.startswith("DynamicClass")
            classes.append(cls)
            # Publish progress per iteration into this task's own slot.
            if write_first == "types":
                yield from rt.write(
                    ctx.config, f"classes{index}", ",".join(classes)
                )
                yield from rt.write(ctx.config, f"succeeded{index}", k == 2)
            else:
                yield from rt.write(ctx.config, f"succeeded{index}", k == 2)
                yield from rt.write(
                    ctx.config, f"classes{index}", ",".join(classes)
                )
            pause = yield from rt.rand()
            yield from rt.sleep(0.04 + 0.04 * pause)

    return Method(f"{TESTS}::<CreateClass_TheadSafe>b__{index}", body)


# The delegate needs the per-test context; the test body plants it here.
APP8_CTX = [None]


def _test_create_class_threadsafe(rt, ctx):
    APP8_CTX[0] = ctx
    ctx.config = SimObject(
        TESTS + "/WhereFixture",
        {
            "expression": "",
            "expected": 0,
            "paramName": "",
            "culture": "",
            "resultType": "",
        },
    )
    yield from rt.write(ctx.config, "expression", "x => x.Age > 21")
    yield from rt.write(ctx.config, "expected", 2)
    yield from rt.write(ctx.config, "paramName", "x")
    yield from rt.write(ctx.config, "culture", "en-US")
    yield from rt.write(ctx.config, "resultType", "Boolean")
    t1 = yield from TaskFactory.start_new(
        rt, _creator_delegate(0, "types"), name="create0"
    )
    yield from rt.sleep(0.03)
    t2 = yield from TaskFactory.start_new(
        rt, _creator_delegate(1, "signatures"), name="create1"
    )
    yield from t1.wait(rt)
    yield from t2.wait(rt)
    ok0 = yield from rt.read(ctx.config, "succeeded0")
    created0 = yield from rt.read(ctx.config, "classes0")
    created1 = yield from rt.read(ctx.config, "classes1")
    ok1 = yield from rt.read(ctx.config, "succeeded1")
    assert ok0 and ok1 and created0 and created1


def _test_create_class_same_signature(rt, ctx):
    APP8_CTX[0] = ctx
    ctx.config = SimObject(
        TESTS + "/SelectFixture",
        {
            "expression": "",
            "expected": 0,
            "paramName": "",
            "culture": "",
            "resultType": "",
        },
    )
    yield from rt.write(ctx.config, "expected", 1)
    yield from rt.write(ctx.config, "resultType", "String")
    yield from rt.write(ctx.config, "expression", "x => x.Name")
    yield from rt.write(ctx.config, "culture", "fr-FR")
    yield from rt.write(ctx.config, "paramName", "p")

    def body(rt_, obj, slot):
        result = yield from rt_.read(ctx.config, "resultType")
        expr = yield from rt_.read(ctx.config, "expression")
        culture = yield from rt_.read(ctx.config, "culture")
        expected = yield from rt_.read(ctx.config, "expected")
        assert expr and result and culture and expected
        cls = yield from get_dynamic_class(rt_, ctx, "Shared", "types")
        yield from noise_call(rt_, "System.Linq.Dynamic.ExpressionParser::Parse")
        assert cls.startswith("DynamicClass")
        yield from rt_.write(ctx.config, f"classes{slot}", cls)
        yield from rt_.write(ctx.config, f"succeeded{slot}", True)

    t1 = yield from TaskFactory.start_new(
        rt, Method(f"{TESTS}::<CreateClass_TheadSafe>b__2", body), (2,),
        name="s0",
    )
    yield from rt.sleep(0.025)
    t2 = yield from TaskFactory.start_new(
        rt, Method(f"{TESTS}::<CreateClass_TheadSafe>b__3", body), (3,),
        name="s1",
    )
    yield from t1.wait(rt)
    yield from t2.wait(rt)
    created = yield from rt.read(ctx.config, "classes2")
    ok = yield from rt.read(ctx.config, "succeeded3")
    assert ok and created


def _test_parse_sequential(rt, ctx):
    APP8_CTX[0] = ctx
    cls = yield from get_dynamic_class(rt, ctx, "Solo", "types")
    assert cls == "DynamicClass0"
    yield from noise_call(rt, "System.Linq.Dynamic.ExpressionParser::Parse")


def build_app() -> Application:
    builder = (
        GroundTruthBuilder()
        .method_release(
            FACTORY + "::.cctor", "static_ctor",
            "end of static constructor",
        )
        .method_acquire(
            f"{FACTORY}::GetDynamicClass", "static_ctor",
            "first access after static constructor",
        )
        .api_release(
            FACTORY_STARTNEW_API, "fork_join", "create new Task"
        )
        .api_release(DOWNGRADE_API, "lock", "release lock")
        .api_release(RELEASE_READER_API, "lock", "release lock")
        .api_acquire(UPGRADE_API, "lock", "require lock")
        .api_acquire(ACQUIRE_READER_API, "lock", "acquire lock")
    )
    # The delegate begins/ends (start of thread / end of task) and the
    # join acquire.
    for i in range(4):
        builder.method_acquire(
            f"{TESTS}::<CreateClass_TheadSafe>b__{i}", "fork_join",
            "start of thread",
        )
        builder.method_release(
            f"{TESTS}::<CreateClass_TheadSafe>b__{i}", "fork_join",
            "end of task",
        )
    from ..sim.primitives.tasks import TASK_WAIT_API

    builder.api_acquire(TASK_WAIT_API, "fork_join", "wait for task")
    # UpgradeToWriterLock's hidden reader-release — the double role the
    # Single-Role constraint forbids; expected to be missed.
    builder.gt.add_sync(
        end_of(UPGRADE_API), Role.RELEASE, KIND_API, "double_role",
        "release reader lock inside upgrade",
    )
    gt = (
        builder
        .protect(f"{FACTORY}::types", UPGRADE_API)
        .protect(f"{FACTORY}::classCount", UPGRADE_API)
        .protect(f"{FACTORY}::signatures", UPGRADE_API)
        .protect(f"{FACTORY}::moduleBuilder", FACTORY + "::.cctor")
        .protect(f"{FACTORY}::assembly", FACTORY + "::.cctor")
        .protect_many(
            [
                f"{TESTS}/WhereFixture::{f}"
                for f in ("expression", "expected", "paramName", "culture",
                          "resultType", "classes0", "succeeded0", "classes1",
                          "succeeded1")
            ] + [
                f"{TESTS}/SelectFixture::{f}"
                for f in ("expression", "expected", "paramName", "culture",
                          "resultType", "classes2", "succeeded2", "classes3",
                          "succeeded3")
            ],
            FACTORY_STARTNEW_API,
        )
        .build()
    )
    tests = [
        UnitTest(f"{TESTS}::CreateClass_ThreadSafe", _test_create_class_threadsafe),
        UnitTest(f"{TESTS}::CreateClass_SameSignature", _test_create_class_same_signature),
        UnitTest(f"{TESTS}::Parse_Sequential", _test_parse_sequential),
    ]
    return Application(
        info=make_info("App-8", "System.Linq.Dynamic", "1.1K", 399, 7),
        make_context=App8Context,
        tests=tests,
        ground_truth=gt,
    )


__all__ = ["build_app"]
