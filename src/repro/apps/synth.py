"""Deterministic synthetic large-app generator (the scale tier).

The 8 paper apps yield LPs of a few hundred rows — big enough to verify
inference quality, far too small for solver asymptotics to show.  This
module synthesizes *large* applications (``App-XL1``..``App-XL3``) that
drive the existing :mod:`repro.sim` kernel purely through the program API
(:class:`~repro.sim.program.Application`, :class:`~repro.sim.methods.Method`,
the standard primitives) and produce traces whose accumulated observation
store encodes to LPs with tens of thousands of windows and well over
10⁴ variables.

Shape of a generated app (:class:`SynthSpec`):

* ``pairs`` producer/consumer thread pairs per unit test, each owning a
  private shard object with ``fields_per_pair`` fields plus one ``seq``
  handoff flag;
* per *episode*, the producer writes every shard field and (for guarded
  fields) bumps ``seq``; the consumer spin-reads ``seq`` (a flag-variable
  synchronization, §5.3.2) and then reads the field — every guarded
  field contributes one tight conflicting-access window per episode;
* a ``sync_density`` fraction of fields is guarded; the rest are written
  and read with no ordering at all, so the racy-window path (§4.3) sees
  realistic traffic too;
* episodes are separated by a sleep larger than ``Near`` so window
  counts are exact products, not interleaving accidents.

Everything is derived from the spec and the kernel seed — no wall clock,
no ambient randomness — so trace digests, golden hashes, and the trace
cache key are stable across processes (pinned by
``tests/apps/test_synth.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..sim.methods import Method
from ..sim.objects import SimObject
from ..sim.primitives import SystemThread
from ..sim.program import AppContext, Application, GroundTruth, UnitTest
from .base import GroundTruthBuilder, make_info

#: Qualified-name roots of every generated app.
_NS = "SynthXL"


@dataclass(frozen=True)
class SynthSpec:
    """Size/shape parameters of one synthetic large app.

    The generated workload is deterministic in (spec, kernel seed): the
    same spec always builds the same program, and the kernel's seeded
    scheduler is the only source of nondeterminism between runs.
    """

    app_id: str
    #: Producer/consumer thread pairs per unit test (2x this many worker
    #: threads, plus the harness thread).
    pairs: int
    #: Shared fields per pair's shard object.
    fields_per_pair: int
    #: Write→read handoff episodes per field.  Each guarded field yields
    #: one window per episode (up to the per-log window cap of 15).
    episodes: int
    #: Fraction of each shard's fields guarded by the ``seq`` flag
    #: handoff; the rest are unsynchronized (racy) traffic.
    sync_density: float = 0.85
    #: Unit tests (= trace logs) per round.
    tests: int = 2
    #: Consumer flag poll interval, seconds (simulated time).
    poll: float = 0.01
    #: Inter-episode sleep, seconds; kept above the paper's ``Near`` = 1 s
    #: so episodes never pair across each other.
    gap: float = 1.2

    def __post_init__(self) -> None:
        if self.pairs < 1 or self.fields_per_pair < 1 or self.episodes < 1:
            raise ValueError("pairs/fields_per_pair/episodes must be >= 1")
        if not (0.0 <= self.sync_density <= 1.0):
            raise ValueError("sync_density must be in [0, 1]")
        if self.tests < 1:
            raise ValueError("tests must be >= 1")

    @property
    def guarded_per_pair(self) -> int:
        """Fields per shard guarded by the flag handoff (at least one, so
        every pair has a true inferable synchronization)."""
        return max(1, round(self.fields_per_pair * self.sync_density))

    @property
    def threads(self) -> int:
        """Worker threads per unit test."""
        return 2 * self.pairs

    @property
    def approx_events_per_test(self) -> int:
        """Rough trace length (sizing aid for benchmark budgets)."""
        # Per field-episode: write + flag write/spin reads + read, each
        # framed by the kernel's internal bookkeeping.
        return self.pairs * self.fields_per_pair * self.episodes * 6

    def min_guarded_windows_per_test(self) -> int:
        """Lower bound on non-racy windows one test log contributes:
        every guarded field yields ``min(episodes, 15)`` write→read
        windows (the per-log cap), plus the flag pairs themselves."""
        per_field = min(self.episodes, 15)
        return self.pairs * self.guarded_per_pair * per_field


def _field_name(i: int) -> str:
    return f"item{i:04d}"


def _shard_class(spec: SynthSpec, p: int) -> str:
    return f"{_NS}.{spec.app_id.replace('-', '')}.Shard{p:03d}"


class _SynthContext(AppContext):
    """Per-execution state: one shard object per producer/consumer pair."""

    def __init__(self, spec: SynthSpec) -> None:
        super().__init__(SimObject(f"{_NS}.Tests", {}))
        self.spec = spec
        self.shards: List[SimObject] = []
        for p in range(spec.pairs):
            fields = {
                _field_name(i): 0 for i in range(spec.fields_per_pair)
            }
            fields["seq"] = 0
            self.shards.append(SimObject(_shard_class(spec, p), fields))


def _producer_method(spec: SynthSpec, shard: SimObject, p: int) -> Method:
    guarded = spec.guarded_per_pair

    def body(rt, obj):
        for episode in range(1, spec.episodes + 1):
            for i in range(spec.fields_per_pair):
                yield from rt.write(shard, _field_name(i), episode)
                if i < guarded:
                    # Publish: the flag write is the release the solver
                    # should infer (write(seq)^rel).
                    yield from rt.write(
                        shard, "seq", (episode - 1) * guarded + i + 1
                    )
            yield from rt.sleep(spec.gap)

    return Method(f"{_shard_class(spec, p)}::Produce", body)


def _consumer_method(spec: SynthSpec, shard: SimObject, p: int) -> Method:
    guarded = spec.guarded_per_pair

    def body(rt, obj):
        for episode in range(1, spec.episodes + 1):
            for i in range(spec.fields_per_pair):
                if i < guarded:
                    # Spin on the flag: read(seq)^acq orders the field
                    # read strictly after the matching write.
                    target = (episode - 1) * guarded + i + 1
                    while True:
                        seen = yield from rt.read(shard, "seq")
                        if seen >= target:
                            break
                        yield from rt.sleep(spec.poll)
                yield from rt.read(shard, _field_name(i))
            yield from rt.sleep(spec.gap)

    return Method(f"{_shard_class(spec, p)}::Consume", body)


def _make_test_body(spec: SynthSpec):
    def body(rt, ctx):
        threads = []
        for p, shard in enumerate(ctx.shards):
            threads.append(
                SystemThread(
                    _producer_method(spec, shard, p), name=f"prod{p:03d}"
                )
            )
            threads.append(
                SystemThread(
                    _consumer_method(spec, shard, p), name=f"cons{p:03d}"
                )
            )
        for t in threads:
            yield from t.start(rt)
        for t in threads:
            yield from t.join(rt)

    return body


def _ground_truth(spec: SynthSpec) -> GroundTruth:
    from ..sim.primitives.tasks import THREAD_JOIN_API, THREAD_START_API

    gt = GroundTruthBuilder()
    gt.api_release(THREAD_START_API, "fork_join", "thread start")
    gt.api_acquire(THREAD_JOIN_API, "fork_join", "thread join")
    for p in range(spec.pairs):
        cls = _shard_class(spec, p)
        gt.flag(f"{cls}::seq", "per-pair handoff flag")
        gt.protect_many(
            [
                f"{cls}::{_field_name(i)}"
                for i in range(spec.guarded_per_pair)
            ],
            f"{cls}::seq",
        )
        for i in range(spec.guarded_per_pair, spec.fields_per_pair):
            gt.racy_field(f"{cls}::{_field_name(i)}")
    return gt.build()


def build_synth_app(spec: SynthSpec) -> Application:
    """Build one synthetic large application from its spec."""
    body = _make_test_body(spec)
    tests = [
        UnitTest(f"{_NS}.Tests::Pipeline_{t:02d}", body)
        for t in range(spec.tests)
    ]
    loc = spec.pairs * spec.fields_per_pair * spec.episodes
    return Application(
        info=make_info(
            spec.app_id,
            f"Synthetic-{spec.app_id}",
            f"{loc // 1000}K" if loc >= 1000 else str(loc),
            0,
            spec.tests,
        ),
        make_context=lambda rt, _spec=spec: _SynthContext(_spec),
        tests=tests,
        ground_truth=_ground_truth(spec),
    )


#: The registered scale tier.  XL1 is the smallest config that clears
#: the floor of ~10,000 coverage windows and ~10,000 LP variables over a
#: standard 3-round x ``tests``-log accumulation; XL2/XL3 scale the LP
#: further while keeping the dense-tableau reference runnable (its
#: tableau is O(rows x columns) dense memory).
SCALE_SPECS = {
    "App-XL1": SynthSpec(
        app_id="App-XL1", pairs=8, fields_per_pair=24, episodes=10
    ),
    "App-XL2": SynthSpec(
        app_id="App-XL2", pairs=10, fields_per_pair=26, episodes=11
    ),
    "App-XL3": SynthSpec(
        app_id="App-XL3", pairs=12, fields_per_pair=30, episodes=12
    ),
}


def scale_app_ids() -> List[str]:
    """Registered synthetic scale-tier app ids, smallest first."""
    return list(SCALE_SPECS)


def build_app_xl1() -> Application:
    return build_synth_app(SCALE_SPECS["App-XL1"])


def build_app_xl2() -> Application:
    return build_synth_app(SCALE_SPECS["App-XL2"])


def build_app_xl3() -> Application:
    return build_synth_app(SCALE_SPECS["App-XL3"])


__all__ = [
    "SCALE_SPECS",
    "SynthSpec",
    "build_synth_app",
    "build_app_xl1",
    "build_app_xl2",
    "build_app_xl3",
    "scale_app_ids",
]
