"""Shared machinery for the benchmark applications.

Each app module builds an :class:`~repro.sim.program.Application` that
mirrors one of the paper's 8 C# projects: same synchronization idioms
(Tables 8/9), same misclassification sources (planted data races, hidden
methods), plus realistic noise (logging/metrics calls) that makes the
inference non-trivial.

Design rules distilled from the paper's evaluation (and validated by the
end-to-end tests):

* critical sections guarding the same lock must be *heterogeneous* —
  different first/last fields per code path — so only the lock APIs cover
  every window;
* threads do "work" (sleeps) between synchronization episodes, keeping
  locks mostly uncontended like real unit tests;
* blocking joins and contended acquires are fine — the spanning-call rule
  and delay refinement recover them;
* flag variables spin with a poll interval.
"""

from __future__ import annotations


from ..sim.methods import Method
from ..sim.program import (
    AppContext,
    AppInfo,
    Application,
    GroundTruth,
    KIND_API,
    KIND_METHOD,
    KIND_VARIABLE,
    UnitTest,
)
from ..trace.optypes import Role, begin_of, end_of, read_of, write_of

__all__ = [
    "GroundTruthBuilder",
    "KIND_API",
    "KIND_METHOD",
    "KIND_VARIABLE",
    "make_info",
    "noise_call",
]


def make_info(
    app_id: str, name: str, loc: str, stars: int, tests: int
) -> AppInfo:
    return AppInfo(app_id, name, loc, stars, tests)


def noise_call(rt, qname: str, obj=None, work: int = 1):
    """A cheap utility call (logging/metrics style): pure noise to the
    inference.  Returns a generator to ``yield from``."""
    method = Method(qname, lambda rt_, o: iter(_noise_body(rt_, work)))
    return rt.call(method, obj)


def _noise_body(rt_, work: int):
    for _ in range(work):
        yield from rt_.sched_yield()


class GroundTruthBuilder:
    """Fluent helper for declaring an app's ground truth."""

    def __init__(self) -> None:
        self.gt = GroundTruth()

    # -- true synchronizations ------------------------------------------------

    def api_pair(
        self,
        release_name: str,
        acquire_name: str,
        subcategory: str,
        description: str = "",
    ) -> "GroundTruthBuilder":
        """A system-API release/acquire pair: end(release) + begin(acquire)."""
        self.gt.add_sync(
            end_of(release_name), Role.RELEASE, KIND_API, subcategory,
            description,
        )
        self.gt.add_sync(
            begin_of(acquire_name), Role.ACQUIRE, KIND_API, subcategory,
            description,
        )
        return self

    def api_release(self, name: str, subcategory: str, desc: str = ""):
        self.gt.add_sync(end_of(name), Role.RELEASE, KIND_API, subcategory, desc)
        return self

    def api_acquire(self, name: str, subcategory: str, desc: str = ""):
        self.gt.add_sync(begin_of(name), Role.ACQUIRE, KIND_API, subcategory, desc)
        return self

    def method_release(self, name: str, subcategory: str, desc: str = ""):
        self.gt.add_sync(
            end_of(name), Role.RELEASE, KIND_METHOD, subcategory, desc
        )
        return self

    def method_acquire(self, name: str, subcategory: str, desc: str = ""):
        self.gt.add_sync(
            begin_of(name), Role.ACQUIRE, KIND_METHOD, subcategory, desc
        )
        return self

    def flag(self, field_qname: str, desc: str = "", volatile: bool = True):
        """A flag variable: write releases, read acquires."""
        self.gt.add_sync(
            write_of(field_qname), Role.RELEASE, KIND_VARIABLE, "flag", desc
        )
        self.gt.add_sync(
            read_of(field_qname), Role.ACQUIRE, KIND_VARIABLE, "flag", desc
        )
        if volatile:
            self.gt.volatile_fields.add(field_qname)
        return self

    # -- misclassification sources -----------------------------------------------

    def racy_field(self, field_qname: str) -> "GroundTruthBuilder":
        self.gt.racy_fields.add(field_qname)
        return self

    def hidden_method(self, qname: str) -> "GroundTruthBuilder":
        """A genuine sync method the instrumentation heuristic skips."""
        self.gt.hidden_sync_methods.add(qname)
        return self

    def protect(self, field_qname: str, sync_name: str):
        """Record which sync protects a field (Table 4 attribution)."""
        self.gt.protected_by[field_qname] = sync_name
        return self

    def protect_many(self, field_qnames, sync_name: str):
        for qname in field_qnames:
            self.gt.protected_by[qname] = sync_name
        return self

    def build(self) -> GroundTruth:
        return self.gt
