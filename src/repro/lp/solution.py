"""Solver results."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from .expr import ExprLike, as_expr
from .variable import Variable


class SolveStatus(enum.Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass
class Solution:
    """An LP solution: a status, an objective value, and an assignment."""

    status: SolveStatus
    objective: float = float("nan")
    values: Dict[Variable, float] = field(default_factory=dict)
    backend: str = ""
    iterations: int = 0
    #: Final basis of a simplex backend, as backend-independent labels:
    #: ``("v", variable_name)`` for structural columns, ``("s", ub_row)``
    #: for constraint-row slacks and ``("b", variable_name)`` for
    #: upper-bound-row slacks (``("a", row)`` marks an artificial stuck
    #: on a redundant row; other backends reject it and cold-start).
    #: ``None`` for backends that don't expose one.  Feed it back via
    #: ``warm_basis=`` to warm-start a re-solve.
    basis: Optional[Tuple[Tuple[str, object], ...]] = None
    #: Basis (re)factorization counters of the revised simplex: total LU
    #: factorizations performed during the solve, and how many of those
    #: were mid-solve refactorizations (eta chain full or an unsafe
    #: pivot).  Zero for backends without a factorized basis.
    factorizations: int = 0
    refactorizations: int = 0
    #: Cold-solve phase breakdown of the revised simplex (seconds spent
    #: LU-factorizing the basis, in ftran/btran triangular solves, and
    #: in Bland pricing), plus the total packed length of the eta file
    #: (entries appended across the solve).  Zero for other backends.
    factorize_s: float = 0.0
    ftran_btran_s: float = 0.0
    pricing_s: float = 0.0
    eta_len: int = 0
    #: Presolve observability (:mod:`repro.lp.presolve`): wall-clock
    #: spent reducing, and how many rows/columns the reductions removed
    #: before the backend saw the problem.  Zero when presolve was off
    #: or the identity.
    presolve_s: float = 0.0
    presolve_rows_eliminated: int = 0
    presolve_cols_eliminated: int = 0
    #: Phase-1 / dual re-solve observability: dual-simplex pivots taken
    #: by the re-solve path (:mod:`repro.lp.dual`), primal phase-1
    #: iterations performed, and whether the solve did *zero* phase-1
    #: work (warm start, dual re-solve, or a crash basis covering every
    #: row).
    dual_iterations: int = 0
    phase1_iterations: int = 0
    phase1_skipped: bool = False

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    def value(self, expr: ExprLike) -> float:
        """Evaluate a variable or expression under this solution."""
        return as_expr(expr).value(self.values)

    def by_name(self) -> Mapping[str, float]:
        """Assignment keyed by variable name (for reports and tests)."""
        return {var.name: val for var, val in self.values.items()}

    def __repr__(self) -> str:
        return (
            f"Solution(status={self.status.value}, objective={self.objective:.6g}, "
            f"n_vars={len(self.values)}, backend={self.backend!r})"
        )
