"""Dual-simplex re-solve for warm-started scale-tier rounds.

:class:`~repro.core.encoder.IncrementalEncoder` carries the previous
round's basis forward, but a round's delta (new windows, new
constraints, presolve eliminating different rows) usually leaves that
basis *short* or *primal-infeasible*: the plain warm start in
:mod:`repro.lp.revised` then gives up and the cold path re-runs its
two-phase driver from the crash basis.  The basis is almost always
still **dual-feasible**, though — optimality of reduced costs does not
depend on the right-hand side — so this module re-enters the solve
without any phase-1 work:

1. *partially* resolve the carried labels (unknown labels are simply
   skipped, where the strict warm path rejects the whole basis);
2. deterministically extend to a full basis — each uncovered row takes
   its own slack column, else its crash singleton (the ``max0``
   auxiliary that covers every Mostly-Protected window row);
3. if the basic point is primal-feasible, hand straight to the primal
   phase-2 iterator; otherwise run textbook dual-simplex pivots
   (leaving row = most negative basic value, entering column by the
   dual ratio test over ``reduced_j / -alpha_rj``, ties to the largest
   pivot magnitude) on the same LU/eta machinery
   (:class:`~repro.lp.factor.LUFactor`) the primal iterator uses;
4. if the extended basis is not dual-feasible either, *cost shifting*
   makes it so exactly (each offending nonbasic reduced cost is raised
   to zero), the dual loop restores primal feasibility under the
   shifted costs, and a final primal phase-2 pass under the true costs
   finishes — still zero phase-1 iterations.

Every failure path returns ``None`` and the caller falls back to the
existing primal cold start; this module never declares a problem
infeasible or unbounded from a partial basis.  It is only entered at
scale-tier sizes (``n_real >=`` the 4096-column Dantzig gate), so the
paper-sized byte-identity contract between the built-in backends is
untouched.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional

import numpy as np

from .simplex import BasisLabels
from .solution import Solution, SolveStatus

_EPS = 1e-9
#: Reduced costs no worse than this count as dual-feasible (slightly
#: looser than ``_EPS``: the carried basis was optimal for the previous
#: round's data, so its reduced costs are only roundoff-negative).
_DUAL_FEAS_TOL = 1e-7


def _partial_resolve(problem, warm_basis: BasisLabels) -> List[int]:
    """Carried labels → current column indices, *skipping* labels that
    no longer resolve (the strict resolver rejects the whole basis) and
    deduplicating on first occurrence."""
    name_to_col: Dict[str, int] = {
        var.name: i for i, var in enumerate(problem.form.variables)
    }
    bound_col: Dict[str, int] = {
        name: problem.n + problem.m_ub_con + k
        for k, name in enumerate(problem.bound_row_vars)
    }
    cols: List[int] = []
    seen = set()
    for kind, key in warm_basis:
        if kind == "v":
            col = name_to_col.get(key)
        elif kind == "s":
            col = (
                problem.n + key
                if isinstance(key, int) and 0 <= key < problem.m_ub_con
                else None
            )
        elif kind == "b":
            col = bound_col.get(key)
        else:
            col = None
        if col is None or col in seen:
            continue
        seen.add(col)
        cols.append(col)
    return cols


def _singleton_columns(problem) -> Dict[int, int]:
    """Row → its crash-singleton structural column (the same scan as
    ``_crash_singletons``: exactly one stored nonzero, positive after
    sign normalization, lowest column index wins)."""
    a = problem.matrix  # CSC
    indptr, indices, data = a.indptr, a.indices, a.data
    nz_pos = np.nonzero(data != 0.0)[0]
    col_of = np.searchsorted(indptr, nz_pos, side="right") - 1
    counts = np.bincount(col_of, minlength=a.shape[1])
    out: Dict[int, int] = {}
    for j in np.nonzero(counts[: problem.n] == 1)[0].tolist():
        lo, hi = indptr[j], indptr[j + 1]
        k = lo + int(np.nonzero(data[lo:hi])[0][0])
        if data[k] > _EPS:
            out.setdefault(int(indices[k]), j)
    return out


def _extend_basis(problem, cols: List[int]) -> Optional[List[int]]:
    """Complete a partial column set to ``m`` columns deterministically:
    uncovered rows take their slack, else their crash singleton; any
    remaining shortfall is padded with unused slacks then singletons.
    ``None`` when no artificial-free completion exists (the caller then
    cold-starts)."""
    m = problem.m
    if len(cols) > m:
        return None
    used = set(cols)
    covered = np.zeros(m, dtype=bool)
    a = problem.matrix
    for col in cols:
        lo, hi = a.indptr[col], a.indptr[col + 1]
        covered[a.indices[lo:hi]] = True
    singles = _singleton_columns(problem)
    out = list(cols)
    for i in range(m):
        if len(out) == m:
            break
        if covered[i]:
            continue
        slack = problem.n + i if i < problem.m_ub else None
        if slack is not None and slack not in used:
            used.add(slack)
            out.append(slack)
            continue
        j = singles.get(i)
        if j is not None and j not in used:
            used.add(j)
            out.append(j)
    if len(out) < m:
        for i in range(problem.m_ub):
            if len(out) == m:
                break
            col = problem.n + i
            if col not in used:
                used.add(col)
                out.append(col)
    if len(out) < m:
        for i in sorted(singles):
            if len(out) == m:
                break
            j = singles[i]
            if j not in used:
                used.add(j)
                out.append(j)
    if len(out) != m:
        return None
    return out


def _dual_iterate(state, costs_real: np.ndarray, max_iter: int):
    """Dual-simplex pivots until the basic point is primal-feasible.

    Returns the iteration count, or ``None`` on any trouble (no
    eligible entering column, tiny pivot, singular refactorization,
    iteration limit) — the caller falls back to the primal cold start.
    """
    problem = state.problem
    matrix_t = problem.matrix_t
    n_real = problem.n_real
    m = problem.m
    timers = state.timers
    basis = state.basis
    basis_arr = np.asarray(basis, dtype=np.int64)
    in_basis = np.zeros(n_real, dtype=bool)
    in_basis[basis_arr] = True
    cb = costs_real[basis_arr]
    iters = 0
    while iters < max_iter:
        if state.lu.should_refactor and not state.refactor():
            return None
        xb = state.xb
        r = int(np.argmin(xb))
        if xb[r] >= -_EPS:
            return iters
        t0 = perf_counter()
        y = state.lu.btran(cb)
        e_r = np.zeros(m)
        e_r[r] = 1.0
        rho = state.lu.btran(e_r)
        timers.ftran_btran_s += perf_counter() - t0
        t0 = perf_counter()
        reduced = costs_real - matrix_t @ y
        reduced[in_basis] = 0.0
        alpha = matrix_t @ rho  # row r of B^-1 A over the real columns
        candidates = np.nonzero(~in_basis & (alpha < -_EPS))[0]
        timers.pricing_s += perf_counter() - t0
        if candidates.size == 0:
            # The row cannot be repaired by a dual pivot.  A complete
            # dual simplex would declare primal infeasibility here, but
            # an extended partial basis does not carry that proof —
            # fall back and let the two-phase driver decide.
            return None
        ratios = reduced[candidates] / -alpha[candidates]
        tied = np.nonzero(ratios <= ratios.min() + _EPS)[0]
        pick = tied[int(np.argmax(np.abs(alpha[candidates[tied]])))]
        j = int(candidates[pick])
        t0 = perf_counter()
        w = state.lu.ftran(problem.column_dense(j))
        timers.ftran_btran_s += perf_counter() - t0
        if abs(w[r]) <= _EPS:
            return None
        step = xb[r] / w[r]
        state.xb = xb - step * w
        state.xb[r] = step
        np.copyto(
            state.xb, 0.0, where=(state.xb < 0) & (state.xb > -1e-9)
        )
        leaving = basis[r]
        in_basis[leaving] = False
        in_basis[j] = True
        basis[r] = j
        basis_arr[r] = j
        cb[r] = costs_real[j]
        iters += 1
        if state.lu.can_update(w, r):
            state.counters.eta_entries += state.lu.update(w, r)
            state.counters.eta_updates += 1
        elif not state.refactor():
            return None
    return None


def attempt_dual_resolve(
    problem,
    warm_basis: BasisLabels,
    counters,
    timers,
    max_iter: int,
) -> Optional[Solution]:
    """Re-solve from a carried (possibly short or stale) basis with zero
    phase-1 iterations, or ``None`` to fall back to the cold start."""
    from .revised import (
        BACKEND_NAME,
        _FactorContext,
        _IterationState,
        _extract,
        _factor,
        _iterate,
        _perturb_rhs,
    )

    cols = _partial_resolve(problem, warm_basis)
    # A *full* carried basis extended by fresh slacks for new rows is
    # provably nonsingular (unit columns on distinct new rows reduce
    # the determinant to the old basis's), but a partially-resolved one
    # can complete to a dependent column set — retry once from the pure
    # slack/crash completion (the cold start's initial basis without
    # artificials) before giving up.
    lu = None
    full = None
    ctx = _FactorContext()
    for attempt in (cols, []) if cols else (cols,):
        full = _extend_basis(problem, list(attempt))
        if full is None:
            continue
        ctx = _FactorContext()
        lu = _factor(problem, full, counters, timers, ctx)
        if lu is not None:
            break
    if lu is None or full is None:
        return None
    _perturb_rhs(problem)
    state = _IterationState(problem, full, lu, counters, timers, ctx)
    costs = np.zeros(problem.n_real)
    costs[: problem.n] = problem.c

    dual_iters = 0
    if np.any(state.xb < 0):
        basis_arr = np.asarray(state.basis, dtype=np.int64)
        cb = costs[basis_arr]
        t0 = perf_counter()
        y = state.lu.btran(cb)
        timers.ftran_btran_s += perf_counter() - t0
        reduced = costs - problem.matrix_t @ y
        in_basis = np.zeros(problem.n_real, dtype=bool)
        in_basis[basis_arr] = True
        reduced[in_basis] = 0.0
        work_costs = costs
        if float(reduced.min()) < -_DUAL_FEAS_TOL:
            # Cost shifting: raise each offending nonbasic reduced cost
            # to exactly zero so the basis is dual-feasible by
            # construction; the closing primal pass below runs under
            # the true costs and restores optimality.
            work_costs = costs.copy()
            neg = reduced < 0
            work_costs[neg] -= reduced[neg]
        dual_iters = _dual_iterate(state, work_costs, max_iter)
        if dual_iters is None:
            return None

    status = _iterate(
        state, costs, art_cost=0.0, max_iter=max_iter, pin_artificials=False
    )
    if status == "unbounded":
        sol = Solution(SolveStatus.UNBOUNDED, backend=BACKEND_NAME)
        sol.dual_iterations = dual_iters
        sol.phase1_skipped = True
        return sol
    if status != "optimal":
        return None
    sol = _extract(problem, state, counters, dual_iters)
    sol.dual_iterations = dual_iters
    sol.phase1_iterations = 0
    sol.phase1_skipped = True
    return sol


__all__ = ["attempt_dual_resolve"]
