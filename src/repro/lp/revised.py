"""Sparse revised simplex over an LU-factorized basis.

The built-in default backend.  Where the dense tableau
(:mod:`repro.lp.simplex`) densifies the standard form and carries the
whole ``[A | b]`` tableau through every pivot, this solver:

* assembles the phase-1/phase-2 constraint matrix directly from the
  ``csr_matrix`` standard form (``scipy.sparse`` block operations; the
  constraint matrix is **never** densified — a source-scan test guards
  the hot path);
* keeps only the *basis* factorized (:class:`~repro.lp.factor.LUFactor`:
  sparse LU plus an eta file, refactorized periodically), and per
  iteration does one btran (pricing duals), one sparse
  ``A^T y`` product (reduced costs), and one ftran (entering column);
* prices with Bland's rule (first improving column), the same rule the
  dense reference uses.  Bland's rule is both the anti-cycling guarantee
  *and* the byte-identity guarantee: entering-column selection depends
  only on the sign of each reduced cost, so the LU-based arithmetic here
  and the tableau arithmetic of the reference make the same pivot
  decisions and visit the same vertices.  (Dantzig pricing was measured
  to break that: its argmin is decided by ulp-level comparisons between
  reduced costs computed by different arithmetic, and on the degenerate
  SherLock LPs the two backends then settle on different — equally
  optimal — vertices, which the differential suite must rule out);
* above :data:`_DANTZIG_MIN_COLUMNS` real columns it switches to
  deterministic Dantzig pricing (most negative reduced cost, lowest
  index on ties) with a Bland fallback after a run of degenerate
  pivots (the anti-cycling guarantee).  The byte-identity contract only
  covers the paper-sized LPs — every app in the corpus and every LP the
  differential suites generate sits far below the threshold — while the
  scale tier (``App-XL1..XL3``, where no cross-backend identity is
  promised) gets the pricing rule that converges in a small multiple of
  ``m`` pivots instead of Bland's degeneracy crawl;
* runs the textbook phase-1 (artificial variables for rows without a
  usable slack) / phase-2 driver.  Artificial columns are virtual unit
  columns — never materialized; in phase 2 a still-basic artificial is
  pinned at zero by the ratio test (any pivot that would move it forces
  ``theta = 0`` and drives it out of the basis);
* **crashes a singleton basis** before resorting to artificials: a
  structural column with exactly one (positive) nonzero can serve as
  the basic column of its row directly, since the normalized rhs is
  non-negative.  On SherLock-shaped LPs every Mostly-Protected window
  row carries such a column (the ``max0`` auxiliary variable), so the
  crash eliminates phase 1 entirely — the asymptotically dominant cost
  at scale-tier sizes.  The dense tableau applies the *same* rule in
  the same column order, so both built-ins still walk the same pivot
  path.

Cold-solve cost is kept down by blockwise Bland pricing with early
exit over CSR column slices (bit-identical to the full product — CSR
matvec is an independent sequential dot per column), an incrementally
maintained basic-cost vector, a ratio test that enumerates candidate
rows via ``np.nonzero`` and replays the exact fuzzy tie-break chain
over that (small) subset, a packed sparse eta file, reuse of the
previous factorization's column ordering, and a batched ftran that
combines the basic-solution refresh with the entering-column solve at
refactorization points (see :mod:`repro.lp.factor`).

Column layout, row layout and :data:`~repro.lp.simplex.BasisLabels`
semantics are identical to the dense tableau, so a basis emitted by one
built-in backend warm-starts the other and
:class:`~repro.core.encoder.IncrementalEncoder`'s round-over-round
warm-start path works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from .factor import DEFAULT_REFACTOR_INTERVAL, LUFactor, SingularBasisError
from .model import Model, StandardForm
from .simplex import (
    BasisLabels,
    finalize_basic_solution,
    solve_unconstrained,
)
from .solution import Solution, SolveStatus

#: Backend name this module reports on its solutions.
BACKEND_NAME = "revised-simplex"

_EPS = 1e-9
_MAX_ITER_FACTOR = 50

#: Columns priced per block in the Bland scan (early exit on the first
#: block containing a negative reduced cost).
_PRICE_BLOCK = 4096

#: Real-column count at which pricing switches from Bland's rule to
#: deterministic Dantzig (most negative reduced cost, lowest index on
#: ties).  Every paper-app LP and every LP the differential suites
#: generate sits orders of magnitude below this, so the cross-backend
#: byte-identity contract (which holds only under Bland) is untouched;
#: only the scale tier crosses it.
_DANTZIG_MIN_COLUMNS = 4096

#: Consecutive degenerate (``theta <= _EPS``) Dantzig pivots tolerated
#: before falling back to Bland's rule (on both the entering column and
#: the leaving-row tie-break — the anti-cycling theorem needs both);
#: the first nondegenerate pivot switches back.
_DEGENERATE_STREAK_LIMIT = 64

#: Relative magnitude of the deterministic rhs perturbation applied in
#: scale mode.  SherLock LPs are massively degenerate (every window row
#: reads ``aux + Σ vars - s = 1``), and a primal simplex stalls on the
#: resulting zero-step plateaus; perturbing each right-hand side by a
#: distinct tiny amount makes almost every pivot strictly improving.
#: The final basis is re-solved against the *true* rhs (dual
#: feasibility — optimality of the basis — is rhs-independent), so the
#: perturbation never appears in reported values.
_PERTURB_SCALE = 1e-7

#: Eta-chain length between refactorizations in scale mode (measured
#: sweet spot on App-XL1: fewer LU factorizations without the eta
#: chains growing past what they save).  Paper-sized solves keep
#: :data:`~repro.lp.factor.DEFAULT_REFACTOR_INTERVAL` so their
#: arithmetic path — and with it cross-backend byte-identity — is
#: untouched.
_SCALE_REFACTOR_INTERVAL = 96

#: A reused column ordering is abandoned once the factor's fill exceeds
#: this multiple of the last fresh (COLAMD) factorization's fill.
_FILL_DEGRADATION = 2.0


@dataclass
class _Problem:
    """The assembled phase-1/2 problem in ``x >= 0`` form.

    ``matrix`` is the sign-normalized ``m × (n + n_slack)`` constraint
    matrix in CSC (structural columns, then one slack per ub row);
    artificial columns are virtual (``col >= n_real`` maps to the unit
    vector of row ``art_rows[col - n_real]``).
    """

    matrix: object  # scipy.sparse.csc_matrix
    matrix_t: object  # CSR transpose for pricing products
    rhs: np.ndarray
    c: np.ndarray  # original objective over structural columns
    shift: np.ndarray
    n: int  # structural columns
    n_slack: int
    m_ub: int  # ub rows (constraint rows + bound rows)
    m_ub_con: int  # ub rows that come from model constraints
    bound_row_vars: List[str]
    form: StandardForm
    art_rows: List[int] = field(default_factory=list)
    #: rhs used *during iteration*: equals :attr:`rhs` normally, or the
    #: deterministically perturbed copy in scale mode.  Final values are
    #: always re-solved against the true :attr:`rhs`.
    rhs_iter: Optional[np.ndarray] = None

    @property
    def b_iter(self) -> np.ndarray:
        return self.rhs if self.rhs_iter is None else self.rhs_iter

    @property
    def m(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_real(self) -> int:
        return self.n + self.n_slack

    def column(self, col: int) -> Tuple[np.ndarray, np.ndarray]:
        """Sparse (indices, values) of any column, artificials included."""
        if col < self.n_real:
            a = self.matrix
            lo, hi = a.indptr[col], a.indptr[col + 1]
            return a.indices[lo:hi], a.data[lo:hi]
        row = self.art_rows[col - self.n_real]
        return (
            np.array([row], dtype=np.int64),
            np.array([1.0], dtype=np.float64),
        )

    def column_dense(self, col: int) -> np.ndarray:
        idx, vals = self.column(col)
        out = np.zeros(self.m)
        out[idx] = vals
        return out


@dataclass
class _Counters:
    """Factorization observability, surfaced on :class:`Solution`."""

    factorizations: int = 0
    refactorizations: int = 0
    eta_updates: int = 0
    eta_entries: int = 0


@dataclass
class _Timers:
    """Cold-solve phase breakdown, surfaced on :class:`Solution`."""

    factorize_s: float = 0.0
    ftran_btran_s: float = 0.0
    pricing_s: float = 0.0


@dataclass
class _FactorContext:
    """Ordering reuse across refactorizations of one solve: the last
    effective column ordering, and the fill of the last fresh (COLAMD)
    factorization it is judged against."""

    order: Optional[np.ndarray] = None
    fresh_fill: int = 0


def _as_csr(a, n: int):
    """The standard form's constraint block as CSR without densifying:
    cached lowerings already arrive sparse, the dense
    :meth:`~repro.lp.model.Model.to_standard_form` path is *sparsified*
    (the reverse of what the tableau does)."""
    from scipy.sparse import csr_matrix, issparse

    if issparse(a):
        return a.tocsr()
    if getattr(a, "size", 0):
        return csr_matrix(a)
    return csr_matrix((0, n))


def _prepare_sparse(form: StandardForm) -> _Problem:
    """Sparse analogue of the tableau's ``_prepare`` + row assembly.

    Produces the same rows in the same order (model ub rows, one bound
    row per finite upper bound in variable order, eq rows), the same
    slack columns, and the same sign normalization of negative-rhs rows,
    so basis labels mean the same thing in both built-in backends.
    """
    from scipy import sparse

    n = len(form.variables)
    shift = np.zeros(n)
    bound_cols: List[int] = []
    bound_rhs: List[float] = []
    for i, (lo, hi) in enumerate(form.bounds):
        if lo is None or not np.isfinite(lo):
            raise ValueError("simplex backend requires finite lower bounds")
        shift[i] = lo
        if hi is not None and np.isfinite(hi):
            bound_cols.append(i)
            bound_rhs.append(hi - lo)

    a_ub = _as_csr(form.a_ub, n)
    a_eq = _as_csr(form.a_eq, n)
    m_ub_con = a_ub.shape[0]
    m_eq = a_eq.shape[0]
    n_bound = len(bound_cols)
    m_ub = m_ub_con + n_bound
    m = m_ub + m_eq

    b_ub = (
        np.asarray(form.b_ub, dtype=np.float64) - a_ub @ shift
        if m_ub_con
        else np.zeros(0)
    )
    b_eq = (
        np.asarray(form.b_eq, dtype=np.float64) - a_eq @ shift
        if m_eq
        else np.zeros(0)
    )
    rhs = np.concatenate([b_ub, np.asarray(bound_rhs), b_eq])

    bound_block = sparse.csr_matrix(
        (
            np.ones(n_bound),
            (np.arange(n_bound), np.asarray(bound_cols, dtype=np.int64)),
        ),
        shape=(n_bound, n),
    )
    struct = sparse.vstack(
        [a_ub, bound_block, a_eq], format="csr"
    )
    slack = sparse.csr_matrix(
        (np.ones(m_ub), (np.arange(m_ub), np.arange(m_ub))),
        shape=(m, m_ub),
    )
    matrix = sparse.hstack([struct, slack], format="csr")

    # Normalize negative rhs (same flip the tableau applies row-wise).
    signs = np.where(rhs < 0, -1.0, 1.0)
    if m and np.any(signs < 0):
        matrix = sparse.diags(signs) @ matrix
    rhs = rhs * signs

    bound_row_vars = [form.variables[i].name for i in bound_cols]
    matrix = matrix.tocsc()
    return _Problem(
        matrix=matrix,
        matrix_t=matrix.T.tocsr(),
        rhs=rhs,
        c=np.asarray(form.c, dtype=np.float64).copy(),
        shift=shift,
        n=n,
        n_slack=m_ub,
        m_ub=m_ub,
        m_ub_con=m_ub_con,
        bound_row_vars=bound_row_vars,
        form=form,
    )


def _factor(
    problem: _Problem,
    basis: List[int],
    counters: _Counters,
    timers: _Timers,
    ctx: Optional[_FactorContext] = None,
) -> Optional[LUFactor]:
    columns = [problem.column(col) for col in basis]
    order = ctx.order if ctx is not None else None
    interval = (
        _SCALE_REFACTOR_INTERVAL
        if problem.n_real >= _DANTZIG_MIN_COLUMNS
        else DEFAULT_REFACTOR_INTERVAL
    )
    t0 = perf_counter()
    try:
        lu = LUFactor(
            columns,
            refactor_interval=interval,
            col_order=order,
        )
    except SingularBasisError:
        lu = None
        if order is not None:
            # A reused ordering can go numerically bad where a fresh
            # COLAMD factorization would not; retry once from scratch.
            try:
                lu = LUFactor(columns, refactor_interval=interval)
            except SingularBasisError:
                lu = None
    timers.factorize_s += perf_counter() - t0
    if lu is None:
        return None
    counters.factorizations += 1
    if ctx is not None:
        if lu.reused_ordering:
            ctx.order = lu.ordering
            if (
                ctx.fresh_fill
                and lu.fill_nnz > _FILL_DEGRADATION * ctx.fresh_fill
            ):
                ctx.order = None  # fill degraded: reorder next time
        else:
            ctx.fresh_fill = lu.fill_nnz
            ctx.order = lu.ordering
    return lu


class _IterationState:
    """One phase's basis, factorization and basic solution."""

    def __init__(
        self,
        problem: _Problem,
        basis: List[int],
        lu: LUFactor,
        counters: _Counters,
        timers: _Timers,
        ctx: Optional[_FactorContext] = None,
    ) -> None:
        self.problem = problem
        self.basis = basis
        self.lu = lu
        self.counters = counters
        self.timers = timers
        self.ctx = ctx
        self.xb = self._basic_solution()
        self.iterations = 0

    def _basic_solution(self) -> np.ndarray:
        t0 = perf_counter()
        xb = self.lu.ftran(self.problem.b_iter)
        self.timers.ftran_btran_s += perf_counter() - t0
        # Flush roundoff-scale negativity so the ratio test stays sane.
        np.copyto(xb, 0.0, where=(xb < 0) & (xb > -1e-9))
        return xb

    def refactor(self, recompute_xb: bool = True) -> bool:
        lu = _factor(
            self.problem, self.basis, self.counters, self.timers, self.ctx
        )
        if lu is None:
            return False
        self.counters.refactorizations += 1
        self.lu = lu
        if recompute_xb:
            self.xb = self._basic_solution()
        return True


def _iterate(
    state: _IterationState,
    costs_real: np.ndarray,
    art_cost: float,
    max_iter: int,
    pin_artificials: bool,
) -> str:
    """Run revised-simplex pivots until optimal/unbounded/limit.

    ``costs_real`` covers the real (structural + slack) columns;
    every artificial column costs ``art_cost``.  With
    ``pin_artificials`` (phase 2), a basic artificial sits at zero and
    any pivot touching its row is forced degenerate, which ejects it.

    Pivot selection below :data:`_DANTZIG_MIN_COLUMNS` real columns is
    Bland's rule on both ends (first column with a negative reduced
    cost; leaving-row ties broken by the smallest basic column),
    matching the dense tableau pivot-for-pivot — see the module
    docstring for why this is load-bearing.  Above it, entering columns
    are picked by deterministic Dantzig pricing with a Bland fallback
    under sustained degeneracy.
    """
    problem = state.problem
    m = problem.m
    n_real = problem.n_real
    matrix_t = problem.matrix_t
    timers = state.timers
    basis = state.basis
    use_dantzig = n_real >= _DANTZIG_MIN_COLUMNS
    degenerate_streak = 0
    # Pre-sliced pricing blocks: CSR row slicing copies the submatrix,
    # which at one slice per iteration dominates small cold solves.
    # Slicing once up front computes the same products on the same
    # stored values — bit-identical, minus the per-iteration copies.
    # (Dantzig mode prices off the whole matrix and, on its rare Bland
    # fallback iterations, eats the slice copy instead of fronting a
    # full-matrix copy it would almost never use.)
    if use_dantzig:
        price_blocks = None
    elif n_real <= _PRICE_BLOCK:
        price_blocks = [(0, matrix_t)]
    else:
        price_blocks = [
            (lo, matrix_t[lo : min(lo + _PRICE_BLOCK, n_real)])
            for lo in range(0, n_real, _PRICE_BLOCK)
        ]

    # Incrementally maintained pricing state: the basic-cost vector, an
    # int mirror of the basis (for vectorized masks) and a bool map of
    # which real columns are basic.
    basis_arr = np.asarray(basis, dtype=np.int64)
    in_basis = np.zeros(n_real, dtype=bool)
    in_basis[basis_arr[basis_arr < n_real]] = True
    cb = np.where(
        basis_arr < n_real,
        costs_real[np.minimum(basis_arr, n_real - 1)],
        art_cost,
    )

    while state.iterations < max_iter:
        refactored = False
        if state.lu.should_refactor:
            # Delay the basic-solution refresh: it is batched with the
            # entering-column ftran below (one multi-RHS LU solve).
            if not state.refactor(recompute_xb=False):
                return "singular"
            refactored = True

        t0 = perf_counter()
        y = state.lu.btran(cb)
        timers.ftran_btran_s += perf_counter() - t0

        t0 = perf_counter()
        entering = -1
        dantzig_iter = (
            use_dantzig and degenerate_streak < _DEGENERATE_STREAK_LIMIT
        )
        if dantzig_iter:
            # Dantzig: one full sparse product, most negative reduced
            # cost, ties to the lowest index (np.argmin's convention).
            reduced = costs_real - matrix_t @ y
            # Basic columns price to ~0; mask them out so roundoff
            # never re-selects one.
            reduced[in_basis] = 0.0
            j = int(np.argmin(reduced))
            if reduced[j] < -_EPS:
                entering = j
        else:
            # Blockwise Bland pricing with early exit.  Each CSR row of
            # ``matrix_t`` prices independently (a sequential sparse
            # dot), so per-block products are bit-identical to the full
            # one and the first negative entry is the same column Bland
            # would pick.
            blocks = price_blocks
            if blocks is None:  # rare Bland fallback in Dantzig mode
                blocks = (
                    (lo, matrix_t[lo : min(lo + _PRICE_BLOCK, n_real)])
                    for lo in range(0, n_real, _PRICE_BLOCK)
                )
            for lo, block in blocks:
                hi = min(lo + _PRICE_BLOCK, n_real)
                reduced = costs_real[lo:hi] - block @ y
                reduced[in_basis[lo:hi]] = 0.0
                negative = np.nonzero(reduced < -_EPS)[0]
                if negative.size:
                    entering = lo + int(negative[0])
                    break
        timers.pricing_s += perf_counter() - t0
        if entering < 0:
            return "optimal"

        t0 = perf_counter()
        if refactored:
            pair = np.empty((m, 2), dtype=np.float64)
            pair[:, 0] = problem.b_iter
            pair[:, 1] = problem.column_dense(entering)
            both = state.lu.ftran(pair)
            xb = np.ascontiguousarray(both[:, 0])
            np.copyto(xb, 0.0, where=(xb < 0) & (xb > -1e-9))
            state.xb = xb
            w = np.ascontiguousarray(both[:, 1])
        else:
            w = state.lu.ftran(problem.column_dense(entering))
        timers.ftran_btran_s += perf_counter() - t0

        # Ratio test: pick candidate rows vectorized, then replay the
        # exact order-dependent fuzzy tie-break chain over that (small)
        # subset — skipped rows were ``continue`` in the full loop, so
        # the outcome is identical.
        if pin_artificials:
            art_basic = basis_arr >= n_real
            candidates = np.nonzero(
                (art_basic & (np.abs(w) > _EPS))
                | (~art_basic & (w > _EPS))
            )[0]
        else:
            candidates = np.nonzero(w > _EPS)[0]
        best_row, best_ratio = -1, np.inf
        xb = state.xb
        if dantzig_iter and candidates.size:
            # Scale mode, fully vectorized: minimum ratio, ties (within
            # ``_EPS``) to the row with the largest pivot magnitude —
            # the standard anti-stalling (and numerically safest) choice
            # on heavily degenerate LPs.  ``argmax`` takes the first of
            # equal magnitudes, so the choice is deterministic.
            ratios = xb[candidates] / w[candidates]
            if pin_artificials:
                ratios[basis_arr[candidates] >= n_real] = 0.0
            tied = np.nonzero(ratios == ratios.min())[0]
            pick = tied[int(np.argmax(np.abs(w[candidates[tied]])))]
            best_row = int(candidates[pick])
            best_ratio = float(ratios[pick])
        elif not dantzig_iter:
            for i in candidates.tolist():
                if pin_artificials and basis[i] >= n_real:
                    # Basic artificial, pinned at zero: any movement of
                    # this row caps theta at 0 and swaps the artificial
                    # out.
                    ratio = 0.0
                else:
                    ratio = xb[i] / w[i]
                if ratio < best_ratio - _EPS or (
                    abs(ratio - best_ratio) <= _EPS
                    and (best_row < 0 or basis[i] < basis[best_row])
                ):
                    best_ratio = ratio
                    best_row = i
        if best_row < 0:
            return "unbounded"

        theta = max(best_ratio, 0.0)
        # Degeneracy watchdog for Dantzig mode: a long run of zero-step
        # pivots could cycle, so Bland (which cannot) takes over until
        # the objective strictly moves again.
        if theta <= _EPS:
            degenerate_streak += 1
        else:
            degenerate_streak = 0
        state.xb -= theta * w
        state.xb[best_row] = theta
        np.copyto(
            state.xb, 0.0, where=(state.xb < 0) & (state.xb > -1e-9)
        )
        leaving = basis[best_row]
        if leaving < n_real:
            in_basis[leaving] = False
        in_basis[entering] = True
        basis[best_row] = entering
        basis_arr[best_row] = entering
        cb[best_row] = costs_real[entering]
        state.iterations += 1

        if state.lu.can_update(w, best_row):
            state.counters.eta_entries += state.lu.update(w, best_row)
            state.counters.eta_updates += 1
        elif not state.refactor():
            return "singular"
    return "iteration_limit"


def _perturb_rhs(problem: _Problem) -> None:
    """Scale-mode anti-degeneracy: iterate against a deterministically
    perturbed rhs so ratio-test ties (and the degenerate plateaus they
    cause) all but vanish.  Each row gets a distinct positive nudge —
    positive keeps the normalized ``rhs >= 0`` invariant, distinct
    breaks the ties — sized relative to the row.  Knuth's
    multiplicative-hash constant spreads the 16-bit fractions.  The
    final basis is always re-solved against the true rhs.  No-op below
    the Dantzig gate so paper-sized arithmetic is untouched."""
    if problem.n_real < _DANTZIG_MIN_COLUMNS:
        return
    m = problem.m
    rows = np.arange(m, dtype=np.uint64)
    frac = (
        (rows * np.uint64(2654435761)) & np.uint64(0xFFFF)
    ).astype(np.float64) / 65536.0
    problem.rhs_iter = problem.rhs + _PERTURB_SCALE * (1.0 + frac) * (
        np.maximum(1.0, np.abs(problem.rhs))
    )


def _crash_singletons(problem: _Problem, basis: List[int]) -> None:
    """Crash singleton structural columns onto still-uncovered rows.

    A structural column with exactly one nonzero entry, positive after
    sign normalization, is a valid initial basic column for its row (the
    normalized rhs is ``>= 0``, so the basic value stays feasible).  On
    SherLock LPs this covers every Mostly-Protected window row via its
    ``max0`` auxiliary variable, eliminating phase 1.  Columns are
    scanned in ascending index and "nonzero" means a stored value
    ``!= 0.0`` — the dense tableau applies the identical rule, which is
    what keeps the two built-in backends on the same pivot path.
    """
    a = problem.matrix  # CSC
    indptr, indices, data = a.indptr, a.indices, a.data
    nz_pos = np.nonzero(data != 0.0)[0]
    col_of = np.searchsorted(indptr, nz_pos, side="right") - 1
    counts = np.bincount(col_of, minlength=a.shape[1])
    for j in np.nonzero(counts[: problem.n] == 1)[0].tolist():
        lo, hi = indptr[j], indptr[j + 1]
        vals = data[lo:hi]
        k = lo + int(np.nonzero(vals)[0][0])
        if data[k] > _EPS:
            i = int(indices[k])
            if basis[i] < 0:
                basis[i] = j


def _basis_labels(problem: _Problem, basis: List[int]) -> BasisLabels:
    """Backend-independent labels; identical scheme to the tableau's,
    with ``("a", row)`` for an artificial stuck on a redundant row (the
    other backends reject such a basis and fall back to a cold start)."""
    labels: List[Tuple[str, object]] = []
    for col in basis:
        if col < problem.n:
            labels.append(("v", problem.form.variables[col].name))
        elif col < problem.n + problem.m_ub_con:
            labels.append(("s", col - problem.n))
        elif col < problem.n_real:
            labels.append(
                ("b", problem.bound_row_vars[col - problem.n - problem.m_ub_con])
            )
        else:
            labels.append(("a", problem.art_rows[col - problem.n_real]))
    return tuple(labels)


def _basis_csc(problem: _Problem, basis: List[int]):
    """The basis matrix assembled sparse from the untouched column data
    (never an ``m × m`` dense array — that alone would dwarf the whole
    solve at scale-tier sizes)."""
    from scipy.sparse import csc_matrix

    m = len(basis)
    cols = [problem.column(col) for col in basis]
    indptr = np.zeros(m + 1, dtype=np.int64)
    for j, (idx, _) in enumerate(cols):
        indptr[j + 1] = indptr[j] + len(idx)
    indices = np.empty(indptr[-1], dtype=np.int64)
    data = np.empty(indptr[-1], dtype=np.float64)
    for j, (idx, vals) in enumerate(cols):
        indices[indptr[j] : indptr[j + 1]] = idx
        data[indptr[j] : indptr[j + 1]] = vals
    return csc_matrix((data, indices, indptr), shape=(m, m))


def _extract(
    problem: _Problem,
    state: _IterationState,
    counters: _Counters,
    prior_iterations: int,
) -> Solution:
    n = problem.n
    x = np.zeros(problem.n_real)
    # Re-solve the final basis from the untouched column data (shared
    # with the dense tableau) so both built-ins report bit-identical
    # values whenever they agree on the basis; fall back to the LU
    # iterate if the one-off basis solve fails.
    xb = finalize_basic_solution(_basis_csc(problem, state.basis), problem.rhs)
    if xb is None:
        xb = state.xb
    for row, col in enumerate(state.basis):
        if col < problem.n_real:
            x[col] = xb[row]
    c = problem.c
    values = {
        var: float(x[i] + problem.shift[i])
        for i, var in enumerate(problem.form.variables)
    }
    objective = (
        float(c @ x[:n])
        + float(c @ problem.shift)
        + problem.form.objective_offset
    )
    sol = Solution(SolveStatus.OPTIMAL, objective, values, BACKEND_NAME)
    sol.iterations = prior_iterations + state.iterations
    sol.basis = _basis_labels(problem, state.basis)
    sol.factorizations = counters.factorizations
    sol.refactorizations = counters.refactorizations
    timers = state.timers
    sol.factorize_s = timers.factorize_s
    sol.ftran_btran_s = timers.ftran_btran_s
    sol.pricing_s = timers.pricing_s
    sol.eta_len = counters.eta_entries
    return sol


def _resolve_labels(
    problem: _Problem, warm_basis: BasisLabels
) -> Optional[List[int]]:
    """Map basis labels onto the current column layout, or ``None``."""
    if len(warm_basis) != problem.m:
        return None
    name_to_col: Dict[str, int] = {
        var.name: i for i, var in enumerate(problem.form.variables)
    }
    bound_col: Dict[str, int] = {
        name: problem.n + problem.m_ub_con + k
        for k, name in enumerate(problem.bound_row_vars)
    }
    cols: List[int] = []
    for kind, key in warm_basis:
        if kind == "v":
            col = name_to_col.get(key)
        elif kind == "s":
            col = (
                problem.n + key
                if isinstance(key, int) and 0 <= key < problem.m_ub_con
                else None
            )
        elif kind == "b":
            col = bound_col.get(key)
        else:
            return None
        if col is None:
            return None
        cols.append(col)
    if len(set(cols)) != problem.m:
        return None
    return cols


def _attempt_warm(
    problem: _Problem,
    warm_basis: BasisLabels,
    counters: _Counters,
    timers: _Timers,
    max_iter: int,
) -> Optional[Solution]:
    """Start phase 2 straight from a previous solve's basis; ``None``
    falls back to the two-phase cold start (label no longer resolves,
    singular basis, or an infeasible basic point)."""
    cols = _resolve_labels(problem, warm_basis)
    if cols is None:
        return None
    ctx = _FactorContext()
    lu = _factor(problem, cols, counters, timers, ctx)
    if lu is None:
        return None
    t0 = perf_counter()
    xb = lu.ftran(problem.rhs)
    timers.ftran_btran_s += perf_counter() - t0
    if not np.all(np.isfinite(xb)) or np.any(xb < 0):
        return None
    state = _IterationState(problem, list(cols), lu, counters, timers, ctx)
    state.xb = xb
    costs = np.zeros(problem.n_real)
    costs[: problem.n] = problem.c
    status = _iterate(
        state, costs, art_cost=0.0, max_iter=max_iter, pin_artificials=False
    )
    if status == "unbounded":
        return Solution(SolveStatus.UNBOUNDED, backend=BACKEND_NAME)
    if status != "optimal":
        return None
    return _extract(problem, state, counters, 0)


def solve_revised(
    model: Model,
    form: Optional[StandardForm] = None,
    warm_basis: Optional[BasisLabels] = None,
) -> Solution:
    """Solve a :class:`Model` with the sparse revised simplex.

    ``form`` lets callers reuse an already-lowered standard form (sparse
    or dense); ``warm_basis`` (a previous :attr:`Solution.basis`, from
    either built-in backend) skips phase 1 when it still resolves to a
    feasible basis, and falls back to the cold start cleanly otherwise.
    """
    if form is None:
        form = model.to_standard_form()
    try:
        problem = _prepare_sparse(form)
    except ValueError:
        return Solution(SolveStatus.ERROR, backend=BACKEND_NAME)

    if problem.m == 0:
        return solve_unconstrained(form, problem.c, BACKEND_NAME)

    counters = _Counters()
    timers = _Timers()
    m = problem.m
    max_iter = _MAX_ITER_FACTOR * (m + problem.n_real + m)

    if warm_basis is not None:
        warm = _attempt_warm(problem, warm_basis, counters, timers, max_iter)
        if warm is not None:
            warm.phase1_skipped = True
            return warm
        if problem.n_real >= _DANTZIG_MIN_COLUMNS:
            # Scale tier: the carried basis no longer resolves cleanly
            # or is primal-infeasible after the round's delta — re-enter
            # through the dual simplex instead of redoing phase 1.
            # Below the gate the strict warm path is the only warm path,
            # keeping the byte-identity contract untouched.
            from .dual import attempt_dual_resolve

            dual = attempt_dual_resolve(
                problem, warm_basis, counters, timers, max_iter
            )
            if dual is not None:
                return dual

    _perturb_rhs(problem)

    # Initial basis: the slack where it survived sign normalization with
    # coefficient +1, then crashed singleton structural columns, a
    # (virtual) artificial only where neither applies.
    basis: List[int] = [-1] * m
    signs_ok = problem.rhs >= 0  # rhs already normalized; kept for clarity
    slack_sign = np.ones(m)
    # A flipped ub row has slack coefficient -1; recover the sign from
    # the stored matrix instead of re-deriving the flip.
    for i in range(problem.m_ub):
        col = problem.n + i
        idx, vals = problem.column(col)
        slack_sign[i] = vals[0] if len(vals) else 0.0
    for i in range(m):
        if i < problem.m_ub and slack_sign[i] > 0.5 and signs_ok[i]:
            basis[i] = problem.n + i
    _crash_singletons(problem, basis)
    for i in range(m):
        if basis[i] < 0:
            problem.art_rows.append(i)
            basis[i] = problem.n_real + len(problem.art_rows) - 1

    ctx = _FactorContext()
    lu = _factor(problem, basis, counters, timers, ctx)
    if lu is None:
        return Solution(SolveStatus.ERROR, backend=BACKEND_NAME)
    state = _IterationState(problem, basis, lu, counters, timers, ctx)

    iterations1 = 0
    if problem.art_rows:
        # Phase 1: minimize the sum of artificials.
        costs1 = np.zeros(problem.n_real)
        status = _iterate(
            state,
            costs1,
            art_cost=1.0,
            max_iter=max_iter,
            pin_artificials=False,
        )
        if status != "optimal":
            return Solution(SolveStatus.ERROR, backend=BACKEND_NAME)
        art_value = sum(
            state.xb[row]
            for row, col in enumerate(state.basis)
            if col >= problem.n_real
        )
        if art_value > 1e-6:
            return Solution(SolveStatus.INFEASIBLE, backend=BACKEND_NAME)
        iterations1 = state.iterations
        state.iterations = 0

    # Phase 2: original objective; leftover basic artificials stay
    # pinned at zero and are ejected by the first pivot touching them.
    costs2 = np.zeros(problem.n_real)
    costs2[: problem.n] = problem.c
    status = _iterate(
        state, costs2, art_cost=0.0, max_iter=max_iter, pin_artificials=True
    )
    if status == "unbounded":
        sol = Solution(SolveStatus.UNBOUNDED, backend=BACKEND_NAME)
        sol.phase1_iterations = iterations1
        sol.phase1_skipped = iterations1 == 0
        return sol
    if status != "optimal":
        return Solution(SolveStatus.ERROR, backend=BACKEND_NAME)
    sol = _extract(problem, state, counters, iterations1)
    sol.phase1_iterations = iterations1
    sol.phase1_skipped = iterations1 == 0
    return sol


__all__ = ["BACKEND_NAME", "solve_revised"]
