"""Sparse revised simplex over an LU-factorized basis.

The built-in default backend.  Where the dense tableau
(:mod:`repro.lp.simplex`) densifies the standard form and carries the
whole ``[A | b]`` tableau through every pivot, this solver:

* assembles the phase-1/phase-2 constraint matrix directly from the
  ``csr_matrix`` standard form (``scipy.sparse`` block operations; the
  constraint matrix is **never** densified — a source-scan test guards
  the hot path);
* keeps only the *basis* factorized (:class:`~repro.lp.factor.LUFactor`:
  sparse LU plus an eta file, refactorized periodically), and per
  iteration does one btran (pricing duals), one sparse
  ``A^T y`` product (reduced costs), and one ftran (entering column);
* prices with Bland's rule (first improving column), the same rule the
  dense reference uses.  Bland's rule is both the anti-cycling guarantee
  *and* the byte-identity guarantee: entering-column selection depends
  only on the sign of each reduced cost, so the LU-based arithmetic here
  and the tableau arithmetic of the reference make the same pivot
  decisions and visit the same vertices.  (Dantzig pricing was measured
  to break that: its argmin is decided by ulp-level comparisons between
  reduced costs computed by different arithmetic, and on the degenerate
  SherLock LPs the two backends then settle on different — equally
  optimal — vertices, which the differential suite must rule out);
* runs the textbook phase-1 (artificial variables for rows without a
  usable slack) / phase-2 driver.  Artificial columns are virtual unit
  columns — never materialized; in phase 2 a still-basic artificial is
  pinned at zero by the ratio test (any pivot that would move it forces
  ``theta = 0`` and drives it out of the basis).

Column layout, row layout and :data:`~repro.lp.simplex.BasisLabels`
semantics are identical to the dense tableau, so a basis emitted by one
built-in backend warm-starts the other and
:class:`~repro.core.encoder.IncrementalEncoder`'s round-over-round
warm-start path works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .factor import DEFAULT_REFACTOR_INTERVAL, LUFactor, SingularBasisError
from .model import Model, StandardForm
from .simplex import (
    BasisLabels,
    finalize_basic_solution,
    solve_unconstrained,
)
from .solution import Solution, SolveStatus

#: Backend name this module reports on its solutions.
BACKEND_NAME = "revised-simplex"

_EPS = 1e-9
_MAX_ITER_FACTOR = 50


@dataclass
class _Problem:
    """The assembled phase-1/2 problem in ``x >= 0`` form.

    ``matrix`` is the sign-normalized ``m × (n + n_slack)`` constraint
    matrix in CSC (structural columns, then one slack per ub row);
    artificial columns are virtual (``col >= n_real`` maps to the unit
    vector of row ``art_rows[col - n_real]``).
    """

    matrix: object  # scipy.sparse.csc_matrix
    matrix_t: object  # CSR transpose for pricing products
    rhs: np.ndarray
    c: np.ndarray  # original objective over structural columns
    shift: np.ndarray
    n: int  # structural columns
    n_slack: int
    m_ub: int  # ub rows (constraint rows + bound rows)
    m_ub_con: int  # ub rows that come from model constraints
    bound_row_vars: List[str]
    form: StandardForm
    art_rows: List[int] = field(default_factory=list)

    @property
    def m(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_real(self) -> int:
        return self.n + self.n_slack

    def column(self, col: int) -> Tuple[np.ndarray, np.ndarray]:
        """Sparse (indices, values) of any column, artificials included."""
        if col < self.n_real:
            a = self.matrix
            lo, hi = a.indptr[col], a.indptr[col + 1]
            return a.indices[lo:hi], a.data[lo:hi]
        row = self.art_rows[col - self.n_real]
        return (
            np.array([row], dtype=np.int64),
            np.array([1.0], dtype=np.float64),
        )

    def column_dense(self, col: int) -> np.ndarray:
        idx, vals = self.column(col)
        out = np.zeros(self.m)
        out[idx] = vals
        return out


@dataclass
class _Counters:
    """Factorization observability, surfaced on :class:`Solution`."""

    factorizations: int = 0
    refactorizations: int = 0
    eta_updates: int = 0


def _as_csr(a, n: int):
    """The standard form's constraint block as CSR without densifying:
    cached lowerings already arrive sparse, the dense
    :meth:`~repro.lp.model.Model.to_standard_form` path is *sparsified*
    (the reverse of what the tableau does)."""
    from scipy.sparse import csr_matrix, issparse

    if issparse(a):
        return a.tocsr()
    if getattr(a, "size", 0):
        return csr_matrix(a)
    return csr_matrix((0, n))


def _prepare_sparse(form: StandardForm) -> _Problem:
    """Sparse analogue of the tableau's ``_prepare`` + row assembly.

    Produces the same rows in the same order (model ub rows, one bound
    row per finite upper bound in variable order, eq rows), the same
    slack columns, and the same sign normalization of negative-rhs rows,
    so basis labels mean the same thing in both built-in backends.
    """
    from scipy import sparse

    n = len(form.variables)
    shift = np.zeros(n)
    bound_cols: List[int] = []
    bound_rhs: List[float] = []
    for i, (lo, hi) in enumerate(form.bounds):
        if lo is None or not np.isfinite(lo):
            raise ValueError("simplex backend requires finite lower bounds")
        shift[i] = lo
        if hi is not None and np.isfinite(hi):
            bound_cols.append(i)
            bound_rhs.append(hi - lo)

    a_ub = _as_csr(form.a_ub, n)
    a_eq = _as_csr(form.a_eq, n)
    m_ub_con = a_ub.shape[0]
    m_eq = a_eq.shape[0]
    n_bound = len(bound_cols)
    m_ub = m_ub_con + n_bound
    m = m_ub + m_eq

    b_ub = (
        np.asarray(form.b_ub, dtype=np.float64) - a_ub @ shift
        if m_ub_con
        else np.zeros(0)
    )
    b_eq = (
        np.asarray(form.b_eq, dtype=np.float64) - a_eq @ shift
        if m_eq
        else np.zeros(0)
    )
    rhs = np.concatenate([b_ub, np.asarray(bound_rhs), b_eq])

    bound_block = sparse.csr_matrix(
        (
            np.ones(n_bound),
            (np.arange(n_bound), np.asarray(bound_cols, dtype=np.int64)),
        ),
        shape=(n_bound, n),
    )
    struct = sparse.vstack(
        [a_ub, bound_block, a_eq], format="csr"
    )
    slack = sparse.csr_matrix(
        (np.ones(m_ub), (np.arange(m_ub), np.arange(m_ub))),
        shape=(m, m_ub),
    )
    matrix = sparse.hstack([struct, slack], format="csr")

    # Normalize negative rhs (same flip the tableau applies row-wise).
    signs = np.where(rhs < 0, -1.0, 1.0)
    if m and np.any(signs < 0):
        matrix = sparse.diags(signs) @ matrix
    rhs = rhs * signs

    bound_row_vars = [form.variables[i].name for i in bound_cols]
    matrix = matrix.tocsc()
    return _Problem(
        matrix=matrix,
        matrix_t=matrix.T.tocsr(),
        rhs=rhs,
        c=np.asarray(form.c, dtype=np.float64).copy(),
        shift=shift,
        n=n,
        n_slack=m_ub,
        m_ub=m_ub,
        m_ub_con=m_ub_con,
        bound_row_vars=bound_row_vars,
        form=form,
    )


def _factor(
    problem: _Problem, basis: List[int], counters: _Counters
) -> Optional[LUFactor]:
    try:
        lu = LUFactor(
            [problem.column(col) for col in basis],
            refactor_interval=DEFAULT_REFACTOR_INTERVAL,
        )
    except SingularBasisError:
        return None
    counters.factorizations += 1
    return lu


class _IterationState:
    """One phase's basis, factorization and basic solution."""

    def __init__(
        self,
        problem: _Problem,
        basis: List[int],
        lu: LUFactor,
        counters: _Counters,
    ) -> None:
        self.problem = problem
        self.basis = basis
        self.lu = lu
        self.counters = counters
        self.xb = self._basic_solution()
        self.iterations = 0

    def _basic_solution(self) -> np.ndarray:
        xb = self.lu.ftran(self.problem.rhs)
        # Flush roundoff-scale negativity so the ratio test stays sane.
        np.copyto(xb, 0.0, where=(xb < 0) & (xb > -1e-9))
        return xb

    def refactor(self) -> bool:
        lu = _factor(self.problem, self.basis, self.counters)
        if lu is None:
            return False
        self.counters.refactorizations += 1
        self.lu = lu
        self.xb = self._basic_solution()
        return True


def _iterate(
    state: _IterationState,
    costs_real: np.ndarray,
    art_cost: float,
    max_iter: int,
    pin_artificials: bool,
) -> str:
    """Run revised-simplex pivots until optimal/unbounded/limit.

    ``costs_real`` covers the real (structural + slack) columns;
    every artificial column costs ``art_cost``.  With
    ``pin_artificials`` (phase 2), a basic artificial sits at zero and
    any pivot touching its row is forced degenerate, which ejects it.

    Pivot selection is Bland's rule on both ends (first column with a
    negative reduced cost; leaving-row ties broken by the smallest basic
    column), matching the dense tableau pivot-for-pivot — see the module
    docstring for why this is load-bearing.
    """
    problem = state.problem
    m = problem.m
    n_real = problem.n_real

    while state.iterations < max_iter:
        if state.lu.should_refactor and not state.refactor():
            return "singular"

        basis = state.basis
        cb = np.fromiter(
            (
                costs_real[col] if col < n_real else art_cost
                for col in basis
            ),
            np.float64,
            m,
        )
        y = state.lu.btran(cb)
        reduced = costs_real - problem.matrix_t @ y
        # Basic columns price to ~0; mask them out so roundoff never
        # re-selects one.
        basic_real = [col for col in basis if col < n_real]
        if basic_real:
            reduced[np.asarray(basic_real, dtype=np.int64)] = 0.0

        negative = np.nonzero(reduced < -_EPS)[0]
        if negative.size == 0:
            return "optimal"
        entering = int(negative[0])

        w = state.lu.ftran(problem.column_dense(entering))

        best_row, best_ratio = -1, np.inf
        for i in range(m):
            wi = w[i]
            if pin_artificials and basis[i] >= n_real:
                # Basic artificial, pinned at zero: any movement of this
                # row caps theta at 0 and swaps the artificial out.
                if abs(wi) > _EPS:
                    ratio = 0.0
                else:
                    continue
            elif wi > _EPS:
                ratio = state.xb[i] / wi
            else:
                continue
            if ratio < best_ratio - _EPS or (
                abs(ratio - best_ratio) <= _EPS
                and (best_row < 0 or basis[i] < basis[best_row])
            ):
                best_ratio = ratio
                best_row = i
        if best_row < 0:
            return "unbounded"

        theta = max(best_ratio, 0.0)
        state.xb -= theta * w
        state.xb[best_row] = theta
        np.copyto(
            state.xb, 0.0, where=(state.xb < 0) & (state.xb > -1e-9)
        )
        basis[best_row] = entering
        state.iterations += 1

        if state.lu.can_update(w, best_row):
            state.lu.update(w, best_row)
            state.counters.eta_updates += 1
        elif not state.refactor():
            return "singular"
    return "iteration_limit"


def _basis_labels(problem: _Problem, basis: List[int]) -> BasisLabels:
    """Backend-independent labels; identical scheme to the tableau's,
    with ``("a", row)`` for an artificial stuck on a redundant row (the
    other backends reject such a basis and fall back to a cold start)."""
    labels: List[Tuple[str, object]] = []
    for col in basis:
        if col < problem.n:
            labels.append(("v", problem.form.variables[col].name))
        elif col < problem.n + problem.m_ub_con:
            labels.append(("s", col - problem.n))
        elif col < problem.n_real:
            labels.append(
                ("b", problem.bound_row_vars[col - problem.n - problem.m_ub_con])
            )
        else:
            labels.append(("a", problem.art_rows[col - problem.n_real]))
    return tuple(labels)


def _extract(
    problem: _Problem,
    state: _IterationState,
    counters: _Counters,
    prior_iterations: int,
) -> Solution:
    n = problem.n
    x = np.zeros(problem.n_real)
    # Re-solve the final basis from the untouched column data (shared
    # with the dense tableau) so both built-ins report bit-identical
    # values whenever they agree on the basis; fall back to the LU
    # iterate if the one-off dense basis solve fails.
    basis_matrix = np.column_stack(
        [problem.column_dense(col) for col in state.basis]
    )
    xb = finalize_basic_solution(basis_matrix, problem.rhs)
    if xb is None:
        xb = state.xb
    for row, col in enumerate(state.basis):
        if col < problem.n_real:
            x[col] = xb[row]
    c = problem.c
    values = {
        var: float(x[i] + problem.shift[i])
        for i, var in enumerate(problem.form.variables)
    }
    objective = (
        float(c @ x[:n])
        + float(c @ problem.shift)
        + problem.form.objective_offset
    )
    sol = Solution(SolveStatus.OPTIMAL, objective, values, BACKEND_NAME)
    sol.iterations = prior_iterations + state.iterations
    sol.basis = _basis_labels(problem, state.basis)
    sol.factorizations = counters.factorizations
    sol.refactorizations = counters.refactorizations
    return sol


def _resolve_labels(
    problem: _Problem, warm_basis: BasisLabels
) -> Optional[List[int]]:
    """Map basis labels onto the current column layout, or ``None``."""
    if len(warm_basis) != problem.m:
        return None
    name_to_col: Dict[str, int] = {
        var.name: i for i, var in enumerate(problem.form.variables)
    }
    bound_col: Dict[str, int] = {
        name: problem.n + problem.m_ub_con + k
        for k, name in enumerate(problem.bound_row_vars)
    }
    cols: List[int] = []
    for kind, key in warm_basis:
        if kind == "v":
            col = name_to_col.get(key)
        elif kind == "s":
            col = (
                problem.n + key
                if isinstance(key, int) and 0 <= key < problem.m_ub_con
                else None
            )
        elif kind == "b":
            col = bound_col.get(key)
        else:
            return None
        if col is None:
            return None
        cols.append(col)
    if len(set(cols)) != problem.m:
        return None
    return cols


def _attempt_warm(
    problem: _Problem,
    warm_basis: BasisLabels,
    counters: _Counters,
    max_iter: int,
) -> Optional[Solution]:
    """Start phase 2 straight from a previous solve's basis; ``None``
    falls back to the two-phase cold start (label no longer resolves,
    singular basis, or an infeasible basic point)."""
    cols = _resolve_labels(problem, warm_basis)
    if cols is None:
        return None
    lu = _factor(problem, cols, counters)
    if lu is None:
        return None
    xb = lu.ftran(problem.rhs)
    if not np.all(np.isfinite(xb)) or np.any(xb < 0):
        return None
    state = _IterationState(problem, list(cols), lu, counters)
    state.xb = xb
    costs = np.zeros(problem.n_real)
    costs[: problem.n] = problem.c
    status = _iterate(
        state, costs, art_cost=0.0, max_iter=max_iter, pin_artificials=False
    )
    if status == "unbounded":
        return Solution(SolveStatus.UNBOUNDED, backend=BACKEND_NAME)
    if status != "optimal":
        return None
    return _extract(problem, state, counters, 0)


def solve_revised(
    model: Model,
    form: Optional[StandardForm] = None,
    warm_basis: Optional[BasisLabels] = None,
) -> Solution:
    """Solve a :class:`Model` with the sparse revised simplex.

    ``form`` lets callers reuse an already-lowered standard form (sparse
    or dense); ``warm_basis`` (a previous :attr:`Solution.basis`, from
    either built-in backend) skips phase 1 when it still resolves to a
    feasible basis, and falls back to the cold start cleanly otherwise.
    """
    if form is None:
        form = model.to_standard_form()
    try:
        problem = _prepare_sparse(form)
    except ValueError:
        return Solution(SolveStatus.ERROR, backend=BACKEND_NAME)

    if problem.m == 0:
        return solve_unconstrained(form, problem.c, BACKEND_NAME)

    counters = _Counters()
    m = problem.m
    max_iter = _MAX_ITER_FACTOR * (m + problem.n_real + m)

    if warm_basis is not None:
        warm = _attempt_warm(problem, warm_basis, counters, max_iter)
        if warm is not None:
            return warm

    # Initial basis: the slack where it survived sign normalization with
    # coefficient +1, a (virtual) artificial everywhere else.
    basis: List[int] = []
    signs_ok = problem.rhs >= 0  # rhs already normalized; kept for clarity
    slack_sign = np.ones(m)
    # A flipped ub row has slack coefficient -1; recover the sign from
    # the stored matrix instead of re-deriving the flip.
    for i in range(problem.m_ub):
        col = problem.n + i
        idx, vals = problem.column(col)
        slack_sign[i] = vals[0] if len(vals) else 0.0
    for i in range(m):
        if i < problem.m_ub and slack_sign[i] > 0.5 and signs_ok[i]:
            basis.append(problem.n + i)
        else:
            problem.art_rows.append(i)
            basis.append(problem.n_real + len(problem.art_rows) - 1)

    lu = _factor(problem, basis, counters)
    if lu is None:
        return Solution(SolveStatus.ERROR, backend=BACKEND_NAME)
    state = _IterationState(problem, basis, lu, counters)

    iterations1 = 0
    if problem.art_rows:
        # Phase 1: minimize the sum of artificials.
        costs1 = np.zeros(problem.n_real)
        status = _iterate(
            state,
            costs1,
            art_cost=1.0,
            max_iter=max_iter,
            pin_artificials=False,
        )
        if status != "optimal":
            return Solution(SolveStatus.ERROR, backend=BACKEND_NAME)
        art_value = sum(
            state.xb[row]
            for row, col in enumerate(state.basis)
            if col >= problem.n_real
        )
        if art_value > 1e-6:
            return Solution(SolveStatus.INFEASIBLE, backend=BACKEND_NAME)
        iterations1 = state.iterations
        state.iterations = 0

    # Phase 2: original objective; leftover basic artificials stay
    # pinned at zero and are ejected by the first pivot touching them.
    costs2 = np.zeros(problem.n_real)
    costs2[: problem.n] = problem.c
    status = _iterate(
        state, costs2, art_cost=0.0, max_iter=max_iter, pin_artificials=True
    )
    if status == "unbounded":
        return Solution(SolveStatus.UNBOUNDED, backend=BACKEND_NAME)
    if status != "optimal":
        return Solution(SolveStatus.ERROR, backend=BACKEND_NAME)
    return _extract(problem, state, counters, iterations1)


__all__ = ["BACKEND_NAME", "solve_revised"]
